//! Scan a synthetic Internet and reproduce the study's headline view.
//!
//! ```sh
//! cargo run --release -p iw-bench --example internet_scan
//! ```
//!
//! Builds a scaled IPv4 world (~2.5 k responsive hosts across cloud,
//! CDN, hosting, access-ISP, university and legacy networks), runs the
//! full-space HTTP and TLS scans sharded over all cores, and prints the
//! Table-1 overview plus both IW distributions.

use iw_analysis::figures::render_iw_bars;
use iw_analysis::histogram::IwHistogram;
use iw_analysis::tables::Table1;
use iw_core::{Protocol, ScanConfig, ScanRunner, Topology};
use iw_internet::{Population, PopulationConfig};
use std::sync::Arc;

fn main() {
    let population = Arc::new(Population::new(PopulationConfig {
        seed: 42,
        space_size: 1 << 17,
        target_responsive: 2_500,
        loss_scale: 0.0,
    }));
    println!(
        "world: {} addresses, {} ASes, ~{} responsive hosts",
        population.space_size(),
        population.registry().ases().len(),
        population.config().target_responsive
    );

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get() as u32);
    let scan = |protocol| {
        let mut config = ScanConfig::study(protocol, population.space_size(), 42);
        config.rate_pps = 4_000_000;
        ScanRunner::new(&population)
            .config(config)
            .topology(Topology::threads(threads))
            .run()
    };

    let http = scan(Protocol::Http);
    let tls = scan(Protocol::Tls);

    println!(
        "\n{}",
        Table1::new(&[("HTTP", &http.summary), ("TLS", &tls.summary)]).render()
    );
    print!(
        "{}",
        render_iw_bars(
            "HTTP IW distribution",
            &IwHistogram::from_results(&http.results),
            0.001,
            false
        )
    );
    println!();
    print!(
        "{}",
        render_iw_bars(
            "TLS IW distribution",
            &IwHistogram::from_results(&tls.results),
            0.001,
            false
        )
    );
    println!(
        "\nscan stats: {} packets sent, {} received, {} simulated events",
        http.sim_stats.scanner_tx + tls.sim_stats.scanner_tx,
        http.sim_stats.scanner_rx + tls.sim_stats.scanner_rx,
        http.sim_stats.events + tls.sim_stats.events,
    );
}
