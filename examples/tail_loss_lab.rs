//! The tail-loss laboratory (§3.5): watch the one failure mode of the
//! methodology happen, then watch the multi-probe vote fix it.
//!
//! ```sh
//! cargo run --release -p iw-bench --example tail_loss_lab
//! ```
//!
//! Tail loss — losing the *last* segment of the initial flight — is
//! undetectable from sequence numbers: the flight just looks one segment
//! shorter. The paper's defence is probing each host three times and
//! requiring the agreeing majority to be the maximum.

use iw_core::testbed::{probe_host, TestbedSpec};
use iw_core::{MssVerdict, Protocol};
use iw_hoststack::HostConfig;
use iw_netsim::LinkConfig;

fn main() {
    println!("host ground truth: IW 10, 50 kB page\n");

    // A clean link: every probe exact.
    let clean = TestbedSpec::new(HostConfig::simple_web(50_000), Protocol::Http);
    let (result, _) = probe_host(&clean);
    println!(
        "clean link:              verdict {:?}",
        result.unwrap().primary_verdict().unwrap()
    );

    // Drop exactly the last segment of the first probe's flight
    // (host-to-scanner packet #10; #0 is the SYN-ACK).
    let mut tail = TestbedSpec::new(HostConfig::simple_web(50_000), Protocol::Http);
    tail.link = LinkConfig::testbed().with_reverse_drop(10);
    let (result, _) = probe_host(&tail);
    let result = result.unwrap();
    println!("\ntail loss on probe 1:");
    for (mss, outcomes) in &result.runs {
        for (i, o) in outcomes.iter().enumerate() {
            if let iw_core::ProbeOutcome::Success { segments, .. } = o {
                println!("  MSS {mss:>3} probe {}: IW {segments}", i + 1);
            }
        }
    }
    match result.primary_verdict().unwrap() {
        MssVerdict::Success(iw) => {
            println!("  vote: IW {iw}  (the two clean probes outvote the victim)")
        }
        other => println!("  vote: {other:?}"),
    }

    // Now sabotage two of the three probes: the vote must NOT report a
    // wrong value with confidence — the 2-of-3-maximum rule rejects it.
    let mut double = TestbedSpec::new(HostConfig::simple_web(50_000), Protocol::Http);
    double.link = LinkConfig::testbed()
        .with_reverse_drop(10) // probe 1: last segment of the flight
        .with_reverse_drop(23); // probe 2: last segment of its flight
    let (result, _) = probe_host(&double);
    let result = result.unwrap();
    println!("\ntail loss on probes 1 and 2:");
    for (mss, outcomes) in &result.runs {
        println!("  MSS {mss:>3}: {outcomes:?}");
    }
    println!("  vote: {:?}", result.primary_verdict().unwrap());
    println!(
        "\ntwo agreeing underestimates never beat a single higher reading:\n\
         the rule demands the agreeing pair BE the maximum (§4 'Dataset')."
    );
}
