//! Quickstart: measure one host's TCP initial congestion window.
//!
//! ```sh
//! cargo run --release -p iw-bench --example quickstart
//! ```
//!
//! Sets up a two-node testbed (scanner ↔ host over a clean link), runs
//! the full six-probe measurement (3 × MSS 64 + 3 × MSS 128) against a
//! host configured with IW 10, and prints the packet trace plus the
//! verdict.

use iw_core::testbed::{probe_host, TestbedSpec};
use iw_core::Protocol;
use iw_hoststack::{HostConfig, IwPolicy};

fn main() {
    // 1. Describe the host under test: a Linux web server with the
    //    kernel-default IW of 10 segments serving a 50 kB page.
    let mut host = HostConfig::simple_web(50_000);
    host.iw = IwPolicy::Segments(10);

    // 2. Probe it over HTTP with a recorded trace.
    let mut spec = TestbedSpec::new(host, Protocol::Http);
    spec.record_trace = true;
    let (result, trace) = probe_host(&spec);

    // 3. Inspect the exchange (Figure 1 of the paper, live).
    println!("packet trace:\n{}", trace.render_tcp());

    // 4. Read the verdict.
    let result = result.expect("host answered");
    println!("per-probe outcomes:");
    for (mss, outcomes) in &result.runs {
        for o in outcomes {
            println!("  MSS {mss:>3}: {o:?}");
        }
    }
    println!("\nmeasured initial window: {:?}", result.host_verdict);
    println!("(the host was configured with IW 10 — the scanner has no access to that)");
}
