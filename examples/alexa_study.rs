//! The popularity study (Fig. 4): how the IW landscape changes when you
//! scan *popular* sites instead of the whole address space.
//!
//! ```sh
//! cargo run --release -p iw-bench --example alexa_study
//! ```
//!
//! Also demonstrates the one thing the top-list scan has that the
//! full-space scan lacks: prior knowledge. Each entry carries a domain,
//! which becomes the Host header (unlocking virtual hosts) and the SNI
//! name (unlocking SNI-requiring TLS servers).

use iw_analysis::figures::render_iw_bars;
use iw_analysis::histogram::IwHistogram;
use iw_core::{Protocol, ScanConfig, ScanRunner, TargetSpec, Topology};
use iw_internet::{alexa, Population, PopulationConfig};
use std::sync::Arc;

fn main() {
    let population = Arc::new(Population::new(PopulationConfig {
        seed: 7,
        space_size: 1 << 17,
        target_responsive: 2_500,
        loss_scale: 0.0,
    }));

    // Build the synthetic top list.
    let list = alexa::build(&population, 400, 1);
    println!("top of the list:");
    for e in list.iter().take(5) {
        println!(
            "  #{:<3} {} @ {}",
            e.rank,
            e.domain,
            iw_wire::ipv4::Ipv4Addr::from_u32(e.ip)
        );
    }

    // Scan it (domains known!) and the full space (no prior knowledge).
    let targets: Vec<(u32, Option<String>)> =
        list.into_iter().map(|e| (e.ip, Some(e.domain))).collect();
    let mut cfg = ScanConfig::study(Protocol::Http, population.space_size(), 7);
    cfg.targets = TargetSpec::List(targets);
    cfg.rate_pps = 4_000_000;
    let alexa_scan = ScanRunner::new(&population).config(cfg).run();

    let mut full_cfg = ScanConfig::study(Protocol::Http, population.space_size(), 7);
    full_cfg.rate_pps = 4_000_000;
    let full_scan = ScanRunner::new(&population)
        .config(full_cfg)
        .topology(Topology::threads(4))
        .run();

    let alexa_hist = IwHistogram::from_results(&alexa_scan.results);
    let full_hist = IwHistogram::from_results(&full_scan.results);

    print!(
        "{}",
        render_iw_bars("Alexa top list", &alexa_hist, 0.0, true)
    );
    println!();
    print!(
        "{}",
        render_iw_bars("entire space", &full_hist, 0.001, false)
    );

    let (alexa_success, ..) = alexa_scan.summary.rates();
    let (full_success, ..) = full_scan.summary.rates();
    println!("\nsuccess rate: top list {alexa_success:.1}% vs full space {full_success:.1}%");
    println!(
        "IW10 share:   top list {:.1}% vs full space {:.1}%",
        alexa_hist.fraction(10) * 100.0,
        full_hist.fraction(10) * 100.0
    );
    println!("\npopular infrastructure chases performance: IW10 everywhere (paper §4.1).");
}
