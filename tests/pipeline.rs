//! The full measurement → analysis pipeline on a small world: every
//! table and figure artifact must be constructible from a real scan and
//! satisfy the paper's shape checks.

use iw_analysis::classify::{Classifier, Service};
use iw_analysis::compare;
use iw_analysis::dbscan::{dbscan, summarize, AsPoint};
use iw_analysis::histogram::IwHistogram;
use iw_analysis::sampling;
use iw_analysis::tables::{Table1, Table2, Table3};
use iw_core::{Protocol, ScanConfig, ScanOutput, ScanRunner, Topology};
use iw_internet::{Population, PopulationConfig};
use std::collections::HashMap;
use std::sync::Arc;

fn world() -> Arc<Population> {
    Arc::new(Population::new(PopulationConfig {
        seed: 0x13072017,
        space_size: 1 << 17,
        target_responsive: 2_500,
        loss_scale: 0.0,
    }))
}

fn scan(pop: &Arc<Population>, protocol: Protocol) -> ScanOutput {
    let mut config = ScanConfig::study(protocol, pop.space_size(), 0x13072017);
    config.rate_pps = 4_000_000;
    ScanRunner::new(pop)
        .config(config)
        .topology(Topology::threads(4))
        .run()
}

#[test]
fn tables_and_figures_pass_paper_shape_checks() {
    let pop = world();
    let http = scan(&pop, Protocol::Http);
    let tls = scan(&pop, Protocol::Tls);

    // Table 1.
    let t1 = Table1::new(&[("HTTP", &http.summary), ("TLS", &tls.summary)]);
    let c1 = compare::check_table1(&t1);
    assert!(c1.iter().all(|c| c.pass), "{}", compare::render_checks(&c1));

    // Table 2.
    let t2h = Table2::new(&http.results);
    let t2t = Table2::new(&tls.results);
    let c2 = compare::check_table2(&t2h, &t2t);
    assert!(c2.iter().all(|c| c.pass), "{}", compare::render_checks(&c2));

    // Table 3.
    let t3h = Table3::new(&http.results, &pop);
    let t3t = Table3::new(&tls.results, &pop);
    let c3 = compare::check_table3(&t3h, &t3t);
    assert!(c3.iter().all(|c| c.pass), "{}", compare::render_checks(&c3));

    // Figure 3.
    let h_http = IwHistogram::from_results(&http.results);
    let h_tls = IwHistogram::from_results(&tls.results);
    let c4 = compare::check_fig3(&h_http, &h_tls);
    assert!(c4.iter().all(|c| c.pass), "{}", compare::render_checks(&c4));
}

#[test]
fn classifier_never_reads_ground_truth_yet_matches_it() {
    let pop = world();
    let classifier = Classifier::new(&pop);
    let mut disagreements = 0u32;
    let mut checked = 0u32;
    for ip in 0..pop.space_size() {
        let Some(meta) = pop.meta(ip) else { continue };
        checked += 1;
        let predicted = classifier.classify(ip, meta.rdns.as_deref());
        // Spot-check the exemplars only (fillers legitimately map to Other).
        let expected = match meta.asn {
            20940 => Some(Service::Akamai),
            16509 => Some(Service::Ec2),
            13335 => Some(Service::Cloudflare),
            8075 => Some(Service::Azure),
            _ => None,
        };
        if let Some(expected) = expected {
            if predicted != expected {
                disagreements += 1;
            }
        }
    }
    assert!(checked > 1000);
    assert_eq!(disagreements, 0, "published ranges must classify exactly");
}

#[test]
fn dbscan_separates_network_families_on_scan_data() {
    let pop = world();
    let http = scan(&pop, Protocol::Http);
    let mut per_as: HashMap<u32, HashMap<u32, u64>> = HashMap::new();
    for r in &http.results {
        if let (Some(iw), Some(meta)) = (r.iw_estimate(), pop.meta(r.ip)) {
            *per_as.entry(meta.asn).or_default().entry(iw).or_insert(0) += 1;
        }
    }
    let points: Vec<AsPoint> = per_as
        .into_iter()
        .filter(|(_, c)| c.values().sum::<u64>() >= 3)
        .map(|(asn, c)| AsPoint::from_counts(asn, &c.into_iter().collect::<Vec<_>>()))
        .collect();
    assert!(points.len() > 40, "{} ASes with data", points.len());
    let labels = dbscan(&points, 0.12, 5);
    let clusters = summarize(&points, &labels);
    assert!(clusters.len() >= 3, "{} clusters", clusters.len());
    // The biggest cluster must be IW10-led (content infrastructure), and
    // some cluster must be IW2-led (legacy/access).
    let leads: Vec<usize> = clusters
        .iter()
        .map(|c| {
            c.centroid
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty")
        })
        .collect();
    assert_eq!(leads[0], 3, "largest cluster is IW10-led");
    assert!(leads.contains(&1), "an IW2-led cluster exists");
}

#[test]
fn subsampling_study_on_real_scan() {
    let pop = world();
    let http = scan(&pop, Protocol::Http);
    let full = IwHistogram::from_results(&http.results);
    // 30% subsamples track the full distribution tightly.
    let h30 = sampling::subsample_histogram(&http.results, 0.3, 99);
    assert!(full.l1_distance(&h30) < 0.12, "{}", full.l1_distance(&h30));
    // Repeated small samples bracket every dominant bar.
    let stats = sampling::repeated_sample_stats(&http.results, 0.2, 20, 7);
    for (iw, frac) in full.dominant(0.05) {
        let bar = stats
            .iter()
            .find(|b| b.iw == iw)
            .unwrap_or_else(|| panic!("IW{iw} missing from samples"));
        assert!(
            bar.min <= frac && frac <= bar.max,
            "IW{iw}: full {frac} outside sample range [{}, {}]",
            bar.min,
            bar.max
        );
    }
}

#[test]
fn one_percent_of_space_scan_matches_full_distribution() {
    // The actual §4.1 experiment: sample the address space (not the
    // result set) and compare distributions.
    let pop = world();
    let full = scan(&pop, Protocol::Http);
    let mut cfg = ScanConfig::study(Protocol::Http, pop.space_size(), 0x13072017);
    cfg.rate_pps = 4_000_000;
    cfg.sample_fraction = 0.2;
    cfg.sample_salt = 5;
    let sampled = ScanRunner::new(&pop)
        .config(cfg)
        .topology(Topology::threads(4))
        .run();

    let fh = IwHistogram::from_results(&full.results);
    let sh = IwHistogram::from_results(&sampled.results);
    assert!(sh.total() > 150, "sample produced {}", sh.total());
    for iw in [1u32, 2, 4, 10] {
        assert!(
            (fh.fraction(iw) - sh.fraction(iw)).abs() < 0.08,
            "IW{iw}: {} vs {}",
            fh.fraction(iw),
            sh.fraction(iw)
        );
    }
}

#[test]
fn table2_rows_reflect_configured_page_model() {
    // The HTTP few-data histogram must inherit the content model's
    // IW7 peak (paper: default error pages of 448–511 B).
    let pop = world();
    let http = scan(&pop, Protocol::Http);
    let t2 = Table2::new(&http.results);
    let peak = t2
        .iw
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i + 1)
        .expect("rows");
    assert_eq!(peak, 7);
    assert!(t2.total > 300, "few-data set size {}", t2.total);
}
