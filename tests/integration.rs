//! Cross-crate integration: scanner ↔ host stack ↔ population, driven
//! end-to-end, checked against ground truth.

use iw_core::testbed::{probe_host, TestbedSpec};
use iw_core::{MssVerdict, Protocol};
use iw_hoststack::{
    HostConfig, HttpBehavior, HttpConfig, IwPolicy, OsProfile, TlsBehavior, TlsConfig,
};
use iw_wire::tls::CipherSuite;

fn http_host(os: OsProfile, iw: IwPolicy, body: u32) -> HostConfig {
    HostConfig {
        os,
        iw,
        http: Some(HttpConfig {
            behavior: HttpBehavior::Direct {
                root_size: body,
                echo_404: false,
            },
            server_header: "it".into(),
            vhost_iw: Vec::new(),
        }),
        tls: None,
        path_mtu: 1500,
        icmp: true,
    }
}

fn tls_host(iw: IwPolicy, chain: Vec<u32>, behavior: TlsBehavior) -> HostConfig {
    HostConfig {
        os: OsProfile::linux(),
        iw,
        http: None,
        tls: Some(TlsConfig {
            behavior,
            cipher: CipherSuite::ECDHE_RSA_AES128_GCM,
            cert_lens: chain,
            ocsp_len: Some(471),
            sni_iw: Vec::new(),
        }),
        path_mtu: 1500,
        icmp: true,
    }
}

#[test]
fn full_matrix_of_os_and_iw_policies() {
    // The §3.5 validation matrix as an automated test: every OS × IW
    // combination with plentiful data must be recovered exactly.
    for os in [
        OsProfile::linux(),
        OsProfile::windows(),
        OsProfile::embedded(),
        OsProfile::bsd(),
    ] {
        for iw in [
            IwPolicy::Segments(1),
            IwPolicy::Segments(2),
            IwPolicy::Segments(4),
            IwPolicy::Segments(10),
            IwPolicy::Segments(25),
            IwPolicy::Segments(48),
            IwPolicy::Segments(64),
            IwPolicy::Bytes(4096),
            IwPolicy::MtuFill(1536),
            IwPolicy::Rfc6928,
        ] {
            let expected = iw.initial_segments(os.effective_mss(Some(64)));
            let spec = TestbedSpec::new(http_host(os.clone(), iw, 80_000), Protocol::Http);
            let (result, _) = probe_host(&spec);
            let result = result.expect("host answered");
            assert_eq!(
                result.primary_verdict(),
                Some(MssVerdict::Success(expected)),
                "os={} iw={iw:?}",
                os.name
            );
        }
    }
}

#[test]
fn dual_mss_classification_matrix() {
    use iw_core::HostVerdict;
    let cases = [
        (IwPolicy::Segments(10), HostVerdict::SegmentBased(10)),
        (IwPolicy::Segments(48), HostVerdict::SegmentBased(48)),
        (IwPolicy::Bytes(4096), HostVerdict::ByteBased(4096)),
        (IwPolicy::MtuFill(1536), HostVerdict::ByteBased(1536)),
        (IwPolicy::Rfc6928, HostVerdict::SegmentBased(10)),
    ];
    for (iw, expected) in cases {
        let spec = TestbedSpec::new(http_host(OsProfile::linux(), iw, 80_000), Protocol::Http);
        let (result, _) = probe_host(&spec);
        assert_eq!(result.unwrap().host_verdict, expected, "iw={iw:?}");
    }
}

#[test]
fn tls_chain_sizes_drive_success_vs_few_data() {
    // A 2.1 kB chain fills IW10 at MSS 64 comfortably.
    let spec = TestbedSpec::new(
        tls_host(IwPolicy::Segments(10), vec![1200, 900], TlsBehavior::Serve),
        Protocol::Tls,
    );
    let (result, _) = probe_host(&spec);
    assert_eq!(
        result.unwrap().primary_verdict(),
        Some(MssVerdict::Success(10))
    );

    // A 36 B chain with ECDHE + stapled OCSP still fills IW10: "these
    // calculations neglect the actual size of the server hello and
    // possible extensions that follow, yielding even more payload to
    // rely on" (§3.3). The flight, not the chain, is what counts.
    let spec = TestbedSpec::new(
        tls_host(IwPolicy::Segments(10), vec![36], TlsBehavior::Serve),
        Protocol::Tls,
    );
    let (result, _) = probe_host(&spec);
    assert_eq!(
        result.unwrap().primary_verdict(),
        Some(MssVerdict::Success(10))
    );

    // Strip the extras (static RSA, no OCSP): now the tiny chain leaves
    // the flight below the IW — few data with a meaningful lower bound.
    let bare = HostConfig {
        os: OsProfile::linux(),
        iw: IwPolicy::Segments(10),
        http: None,
        tls: Some(TlsConfig {
            behavior: TlsBehavior::Serve,
            cipher: CipherSuite::RSA_AES128_CBC,
            cert_lens: vec![36],
            ocsp_len: None,
            sni_iw: Vec::new(),
        }),
        path_mtu: 1500,
        icmp: true,
    };
    let (result, _) = probe_host(&TestbedSpec::new(bare, Protocol::Tls));
    match result.unwrap().primary_verdict().unwrap() {
        MssVerdict::FewData(lb) => assert!((1..10).contains(&lb), "bound {lb}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn sni_gate_flips_with_domain_knowledge() {
    // Without SNI: silent close → NoData.
    let host = tls_host(
        IwPolicy::Segments(10),
        vec![1500, 800],
        TlsBehavior::CloseWithoutSni,
    );
    let spec = TestbedSpec::new(host.clone(), Protocol::Tls);
    let (result, _) = probe_host(&spec);
    assert_eq!(
        result.unwrap().primary_verdict(),
        Some(MssVerdict::FewData(0)),
        "no SNI → zero bytes"
    );

    // With a domain (the Alexa case) the same host serves.
    let mut spec = TestbedSpec::new(host, Protocol::Tls);
    spec.domain = Some("www.known-site.example".into());
    let (result, _) = probe_host(&spec);
    assert_eq!(
        result.unwrap().primary_verdict(),
        Some(MssVerdict::Success(10))
    );
}

#[test]
fn http_redirect_chain_recovers_iw() {
    // Host serves a tiny 301 at "/" but a big page at the redirect
    // target — only the follow-up connection can fill the IW.
    let host = HostConfig {
        os: OsProfile::linux(),
        iw: IwPolicy::Segments(10),
        http: Some(HttpConfig {
            behavior: HttpBehavior::Redirect {
                host: "www.vhost.example".into(),
                path: "/landing.html".into(),
                target_size: 40_000,
            },
            server_header: "it".into(),
            vhost_iw: Vec::new(),
        }),
        tls: None,
        path_mtu: 1500,
        icmp: true,
    };
    let spec = TestbedSpec::new(host, Protocol::Http);
    let (result, _) = probe_host(&spec);
    let result = result.unwrap();
    assert_eq!(result.primary_verdict(), Some(MssVerdict::Success(10)));
    // The success must come from the redirected connection.
    let (_, outcomes) = &result.runs[0];
    match &outcomes[0] {
        iw_core::ProbeOutcome::Success { redirected, .. } => assert!(redirected),
        other => panic!("{other:?}"),
    }
}

#[test]
fn windows_servers_are_measured_via_observed_segments() {
    // IW 4 on Windows: announces 64, gets 536-byte segments back.
    let spec = TestbedSpec::new(
        http_host(OsProfile::windows(), IwPolicy::Segments(4), 80_000),
        Protocol::Http,
    );
    let (result, _) = probe_host(&spec);
    let result = result.unwrap();
    assert_eq!(result.primary_verdict(), Some(MssVerdict::Success(4)));
    match &result.runs[0].1[0] {
        iw_core::ProbeOutcome::Success { max_seg, bytes, .. } => {
            assert_eq!(*max_seg, 536, "observed segment size");
            assert_eq!(*bytes, 4 * 536);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn mute_and_reset_hosts_categorized() {
    let mut mute = http_host(OsProfile::linux(), IwPolicy::Segments(10), 0);
    mute.http.as_mut().unwrap().behavior = HttpBehavior::Mute;
    let (result, _) = probe_host(&TestbedSpec::new(mute, Protocol::Http));
    assert_eq!(
        result.unwrap().primary_verdict(),
        Some(MssVerdict::FewData(0)),
        "mute host = NoData row"
    );

    let mut rst = http_host(OsProfile::linux(), IwPolicy::Segments(10), 0);
    rst.http.as_mut().unwrap().behavior = HttpBehavior::Reset;
    let (result, _) = probe_host(&TestbedSpec::new(rst, Protocol::Http));
    assert_eq!(result.unwrap().primary_verdict(), Some(MssVerdict::Error));
}

#[test]
fn ablation_disabling_verification_misclassifies() {
    use iw_core::scanner::{ScanConfig, TargetSpec};
    // A TLS host that runs out of data but never FINs (waits for the
    // client): without the exhaustion check this becomes a false
    // "success" with an underestimate. Static RSA, no OCSP — the whole
    // flight is ~280 B, well under IW10's 640 B.
    let host = HostConfig {
        os: OsProfile::linux(),
        iw: IwPolicy::Segments(10),
        http: None,
        tls: Some(TlsConfig {
            behavior: TlsBehavior::Serve,
            cipher: CipherSuite::RSA_AES128_CBC,
            cert_lens: vec![200],
            ocsp_len: None,
            sni_iw: Vec::new(),
        }),
        path_mtu: 1500,
        icmp: true,
    };

    let run = |verify: bool| {
        let mut config = ScanConfig::study(Protocol::Tls, 1 << 8, 3);
        config.targets = TargetSpec::List(vec![(iw_core::testbed::TESTBED_HOST_IP, None)]);
        config.verify_exhaustion = verify;
        config.rate_pps = 1_000_000;
        let scanner = iw_core::Scanner::new(config);
        let host = host.clone();
        let factory = move |ip: u32| {
            (ip == iw_core::testbed::TESTBED_HOST_IP).then(|| {
                (
                    Box::new(iw_hoststack::Host::new(
                        iw_wire::ipv4::Ipv4Addr::from_u32(ip),
                        host.clone(),
                        3,
                    )) as Box<dyn iw_netsim::Endpoint>,
                    iw_netsim::LinkConfig::testbed(),
                )
            })
        };
        let mut sim = iw_netsim::Sim::new(scanner, factory, iw_netsim::sim::SimConfig::default());
        sim.kick_scanner(|s, now, fx| s.start(now, fx));
        sim.run_to_completion();
        sim.scanner().results().first().cloned().unwrap()
    };

    let with = run(true);
    match with.primary_verdict().unwrap() {
        MssVerdict::FewData(_) => {}
        other => panic!("verification on: {other:?}"),
    }
    let without = run(false);
    match without.primary_verdict().unwrap() {
        MssVerdict::Success(wrong) => {
            assert!(wrong < 10, "the ablation reports a confident underestimate");
        }
        other => panic!("verification off: {other:?}"),
    }
}
