//! Failure injection: loss, reordering, duplication, blacklists — the
//! estimator must stay correct or degrade loudly, never silently wrong
//! (except tail loss, which is the documented failure mode).

use iw_core::blacklist::{CidrSet, ScanFilter};
use iw_core::testbed::{probe_host, TestbedSpec};
use iw_core::{MssVerdict, Protocol, ScanConfig, ScanRunner};
use iw_hoststack::{HostConfig, IwPolicy};
use iw_internet::{Population, PopulationConfig};
use iw_netsim::{Duration, LinkConfig};
use iw_wire::ipv4::{Cidr, Ipv4Addr};
use std::sync::Arc;

fn iw10_host() -> HostConfig {
    let mut h = HostConfig::simple_web(60_000);
    h.iw = IwPolicy::Segments(10);
    h
}

#[test]
fn heavy_jitter_reordering_does_not_break_estimates() {
    // Jitter far beyond the inter-segment gap: segments arrive shuffled.
    let mut spec = TestbedSpec::new(iw10_host(), Protocol::Http);
    spec.link = LinkConfig {
        latency: Duration::from_millis(5),
        jitter: Duration::from_millis(40),
        loss: 0.0,
        dup: 0.0,
        drops_fwd: vec![],
        drops_rev: vec![],
        ..LinkConfig::default()
    };
    for seed in 0..10 {
        spec.seed = 100 + seed;
        let (result, _) = probe_host(&spec);
        assert_eq!(
            result.unwrap().primary_verdict(),
            Some(MssVerdict::Success(10)),
            "seed {seed}"
        );
    }
}

#[test]
fn duplication_does_not_inflate_estimates() {
    // Network duplicates look like retransmissions; the estimate must
    // never EXCEED the true IW because of them (dup ends the count early
    // at worst).
    let mut spec = TestbedSpec::new(iw10_host(), Protocol::Http);
    spec.link = LinkConfig {
        latency: Duration::from_millis(5),
        jitter: Duration::ZERO,
        loss: 0.0,
        dup: 0.10,
        drops_fwd: vec![],
        drops_rev: vec![],
        ..LinkConfig::default()
    };
    for seed in 0..10 {
        spec.seed = 200 + seed;
        let (result, _) = probe_host(&spec);
        if let Some(MssVerdict::Success(iw)) = result.unwrap().primary_verdict() {
            assert!(iw <= 10, "overestimate under duplication: {iw}");
        }
    }
}

#[test]
fn moderate_loss_mostly_recovered_by_voting() {
    let mut correct = 0;
    let trials = 30;
    for seed in 0..trials {
        let mut spec = TestbedSpec::new(iw10_host(), Protocol::Http);
        spec.link = LinkConfig::testbed().with_loss(0.02);
        spec.seed = 300 + seed;
        let (result, _) = probe_host(&spec);
        if result.and_then(|r| r.iw_estimate()) == Some(10) {
            correct += 1;
        }
    }
    assert!(
        correct >= trials * 3 / 4,
        "only {correct}/{trials} correct under 2% loss"
    );
}

#[test]
fn estimates_never_exceed_ground_truth_under_loss() {
    // Loss can only remove segments from the flight: any successful
    // estimate must be ≤ the configured IW.
    for seed in 0..30 {
        let mut spec = TestbedSpec::new(iw10_host(), Protocol::Http);
        spec.link = LinkConfig::testbed().with_loss(0.08);
        spec.seed = 400 + seed;
        let (result, _) = probe_host(&spec);
        if let Some(result) = result {
            for (_, outcomes) in &result.runs {
                for o in outcomes {
                    if let iw_core::ProbeOutcome::Success { segments, .. } = o {
                        assert!(*segments <= 10, "overestimate {segments} (seed {seed})");
                    }
                }
            }
        }
    }
}

#[test]
fn first_syn_loss_misses_the_host_like_zmap() {
    // ZMap never retries SYNs: losing the very first one (forward
    // packet 0) means the host is simply not in the result set.
    let mut spec = TestbedSpec::new(iw10_host(), Protocol::Http);
    spec.link = LinkConfig::testbed().with_forward_drop(0);
    let (result, _) = probe_host(&spec);
    assert!(result.is_none(), "no session without the first SYN-ACK");
}

#[test]
fn mid_session_syn_loss_costs_a_probe_not_the_host() {
    // Probe 1's forward packets: SYN(0), ACK+request(1), verify-ACK(2),
    // RST(3). Dropping index 4 kills probe 2's SYN: that probe times out
    // as a handshake failure, the rest proceed, and the vote still
    // succeeds. (With `probe_retries` > 0 the probe would be retried on
    // a fresh source port instead — see the fault matrix.)
    let mut spec = TestbedSpec::new(iw10_host(), Protocol::Http);
    spec.link = LinkConfig::testbed().with_forward_drop(4);
    let (result, _) = probe_host(&spec);
    let result = result.expect("session exists from probe 1");
    assert_eq!(result.primary_verdict(), Some(MssVerdict::Success(10)));
    let timed_out = result
        .runs
        .iter()
        .flat_map(|(_, o)| o)
        .filter(|o| {
            matches!(
                o,
                iw_core::ProbeOutcome::Error {
                    kind: iw_core::ErrorKind::HandshakeTimeout
                }
            )
        })
        .count();
    assert_eq!(timed_out, 1, "exactly the sabotaged probe is lost");
}

#[test]
fn blacklisted_ranges_are_never_touched() {
    let pop = Arc::new(Population::new(PopulationConfig::tiny(0xb1)));
    let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), 1);
    config.rate_pps = 2_000_000;
    // Blacklist the lower half of the space.
    let half = Cidr::new(Ipv4Addr::from_u32(0), 16); // 0..65536 of a 2^17 space
    config.filter = ScanFilter {
        whitelist: CidrSet::new(),
        blacklist: CidrSet::from_cidrs(&[half]),
    };
    let out = ScanRunner::new(&pop).config(config).run();
    assert!(out.summary.targets > 0);
    for r in &out.results {
        assert!(r.ip >= 1 << 16, "blacklisted address {} was scanned", r.ip);
    }
}

#[test]
fn lossy_population_scan_remains_sane() {
    // A whole-world scan with calibrated loss: categories stay sane and
    // estimates still never exceed ground truth.
    let pop = Arc::new(Population::new(PopulationConfig {
        seed: 77,
        space_size: 1 << 15,
        target_responsive: 600,
        loss_scale: 1.0,
    }));
    let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), 77);
    config.rate_pps = 2_000_000;
    let out = ScanRunner::new(&pop).config(config).run();
    assert!(out.summary.reachable > 100);
    let mut overestimates = 0;
    for r in &out.results {
        if let Some(est) = r.iw_estimate() {
            let gt = pop.ground_truth(r.ip).expect("host exists");
            let mss = pop
                .host_config(r.ip)
                .expect("host exists")
                .os
                .effective_mss(Some(64));
            if est > gt.iw.initial_segments(mss) {
                overestimates += 1;
            }
        }
    }
    assert_eq!(overestimates, 0, "loss must never inflate estimates");
}

#[test]
fn tail_loss_is_the_known_failure_mode_and_only_that() {
    // With tail loss on all three probes of the MSS-64 run, the vote
    // converges on the (wrong) consistent underestimate — exactly what
    // the paper warns about. The test pins the failure mode.
    let mut spec = TestbedSpec::new(iw10_host(), Protocol::Http);
    spec.link = LinkConfig::testbed()
        .with_reverse_drop(10)
        .with_reverse_drop(23)
        .with_reverse_drop(36);
    let (result, _) = probe_host(&spec);
    let result = result.unwrap();
    match result.primary_verdict().unwrap() {
        MssVerdict::Success(9) => {} // consistent underestimate
        other => panic!("expected the documented underestimate, got {other:?}"),
    }
}
