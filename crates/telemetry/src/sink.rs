//! Streaming JSONL telemetry: what the scan looks like *while it runs*.
//!
//! A [`TelemetrySink`] accumulates two record types as newline-delimited
//! JSON, each stamped with virtual time:
//!
//! * `snapshot` — periodic deltas of the counter set since the previous
//!   snapshot (`{"type":"snapshot","at_nanos":..,"shard":..,"delta":{..}}`).
//!   Deltas are per-shard observations: which shard's counter moved in
//!   which interval depends on scheduling, so these records carry their
//!   shard index and are *not* part of the canonical cross-shard
//!   contract. Summing every delta for a counter always reproduces the
//!   final merged total (the last snapshot is flushed at harvest).
//! * `result` — one line per concluded target
//!   (`{"type":"result","at_nanos":..,"ip":"..","verdict":".."}`).
//!   Conclusion times and verdicts are population-determined, so after a
//!   merge these lines are identical across shard counts.
//!
//! Records merge across shards by `(time, type, key)` with a full-line
//! tie-break, so a merged stream is deterministic for a fixed sharding.
//! The CLI appends the stream to `--stream-out`; `iw-cli inspect`
//! summarizes it offline.

use crate::json::{push_key, push_str_literal, push_u64_field};
use crate::registry::Snapshot;
use std::collections::BTreeMap;

/// Record-type tag (orders snapshot lines before result lines at equal
/// timestamps).
const ORDER_SNAPSHOT: u8 = 0;
/// See [`ORDER_SNAPSHOT`].
const ORDER_RESULT: u8 = 1;

/// One rendered JSONL record with its sort key.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SinkRecord {
    at_nanos: u64,
    order: u8,
    key: u64,
    line: String,
}

/// Streaming JSONL sink. See module docs.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    enabled: bool,
    records: Vec<SinkRecord>,
    /// Counter values at the previous snapshot, for delta computation.
    last: BTreeMap<String, u64>,
}

impl TelemetrySink {
    /// A sink; disabled sinks never record or allocate.
    pub fn new(enabled: bool) -> TelemetrySink {
        TelemetrySink {
            enabled,
            ..TelemetrySink::default()
        }
    }

    /// Is recording on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a snapshot-delta record: every counter that moved since the
    /// previous snapshot. Emitted even when nothing moved (heartbeat).
    pub fn note_snapshot(&mut self, at_nanos: u64, shard: u32, snap: &Snapshot) {
        if !self.enabled {
            return;
        }
        let mut line = String::new();
        line.push('{');
        push_key(&mut line, "type");
        line.push_str("\"snapshot\",");
        push_u64_field(&mut line, "at_nanos", at_nanos);
        line.push(',');
        push_u64_field(&mut line, "shard", u64::from(shard));
        line.push(',');
        push_key(&mut line, "delta");
        line.push('{');
        let mut first = true;
        for (name, (_, v)) in &snap.counters {
            let prev = self.last.get(name).copied().unwrap_or(0);
            if *v == prev {
                continue;
            }
            if !first {
                line.push(',');
            }
            first = false;
            push_u64_field(&mut line, name, v - prev);
            self.last.insert(name.clone(), *v);
        }
        line.push_str("}}");
        self.records.push(SinkRecord {
            at_nanos,
            order: ORDER_SNAPSHOT,
            key: u64::from(shard),
            line,
        });
    }

    /// Append a per-target result record.
    pub fn note_result(&mut self, at_nanos: u64, ip: u32, verdict: &str) {
        if !self.enabled {
            return;
        }
        let mut line = String::new();
        line.push('{');
        push_key(&mut line, "type");
        line.push_str("\"result\",");
        push_u64_field(&mut line, "at_nanos", at_nanos);
        line.push(',');
        push_key(&mut line, "ip");
        push_str_literal(
            &mut line,
            &format!(
                "{}.{}.{}.{}",
                (ip >> 24) & 0xff,
                (ip >> 16) & 0xff,
                (ip >> 8) & 0xff,
                ip & 0xff
            ),
        );
        line.push(',');
        push_key(&mut line, "verdict");
        push_str_literal(&mut line, verdict);
        line.push('}');
        self.records.push(SinkRecord {
            at_nanos,
            order: ORDER_RESULT,
            key: u64::from(ip),
            line,
        });
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Merge another shard's stream and restore canonical order.
    pub fn merge(&mut self, other: &TelemetrySink) {
        self.enabled |= other.enabled;
        self.records.extend(other.records.iter().cloned());
        self.records.sort_by(|a, b| {
            (a.at_nanos, a.order, a.key, &a.line).cmp(&(b.at_nanos, b.order, b.key, &b.line))
        });
    }

    /// The stream as JSONL (trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.line);
            out.push('\n');
        }
        out
    }

    /// The result lines only (the cross-shard-deterministic subset).
    pub fn result_lines(&self) -> Vec<&str> {
        self.records
            .iter()
            .filter(|r| r.order == ORDER_RESULT)
            .map(|r| r.line.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricsRegistry, Scope};

    fn snap_with(count: u64) -> Snapshot {
        let mut r = MetricsRegistry::new();
        let c = r.counter("scan.targets_sent", Scope::Scan);
        r.add(c, count);
        r.snapshot()
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut s = TelemetrySink::new(false);
        s.note_result(1, 1, "success");
        s.note_snapshot(2, 0, &snap_with(3));
        assert!(s.is_empty());
        assert_eq!(s.to_jsonl(), "");
    }

    #[test]
    fn snapshot_records_deltas_not_totals() {
        let mut s = TelemetrySink::new(true);
        s.note_snapshot(100, 0, &snap_with(10));
        s.note_snapshot(200, 0, &snap_with(25));
        s.note_snapshot(300, 0, &snap_with(25)); // heartbeat, empty delta
        let out = s.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains("\"delta\":{\"scan.targets_sent\":10}"),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].contains("\"delta\":{\"scan.targets_sent\":15}"),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("\"delta\":{}"), "{}", lines[2]);
    }

    #[test]
    fn result_lines_render_ip_and_verdict() {
        let mut s = TelemetrySink::new(true);
        s.note_result(7_000, 0x0a000001, "few_data");
        assert_eq!(
            s.to_jsonl(),
            "{\"type\":\"result\",\"at_nanos\":7000,\"ip\":\"10.0.0.1\",\"verdict\":\"few_data\"}\n"
        );
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mk = |ip: u32, at: u64| {
            let mut s = TelemetrySink::new(true);
            s.note_result(at, ip, "success");
            s
        };
        let mut a = mk(2, 50);
        a.merge(&mk(1, 50));
        let mut b = mk(1, 50);
        b.merge(&mk(2, 50));
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert!(a.to_jsonl().find("0.0.0.1").unwrap() < a.to_jsonl().find("0.0.0.2").unwrap());
    }
}
