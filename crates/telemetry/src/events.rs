//! The structured session event log.
//!
//! Every per-host probe session emits lifecycle transitions as it runs:
//! SYN sent → SYN-ACK validated → probe started → retransmit detected →
//! verify-ACK sent → probe concluded → session finished. The log is a flat
//! vector of time-stamped records, cheap to append to, mergeable across
//! shards by concatenation + sort, and precise enough for tests to assert
//! on exact sequences (the §3.5 "manual inspection" made mechanical).

use crate::json::{push_key, push_u64_field};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Terminal classification of a probe or session, mirroring the scanner's
/// outcome/verdict taxonomy without depending on the core crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OutcomeKind {
    /// Inference succeeded (verdict reached with enough data).
    Success,
    /// Host answered but sent too little data to pin the window.
    FewData,
    /// Protocol error or reset mid-inference.
    Error,
    /// No usable response at all.
    Unreachable,
}

impl OutcomeKind {
    /// Stable lowercase name used in JSON and status lines.
    pub fn name(self) -> &'static str {
        match self {
            OutcomeKind::Success => "success",
            OutcomeKind::FewData => "few_data",
            OutcomeKind::Error => "error",
            OutcomeKind::Unreachable => "unreachable",
        }
    }
}

/// A single lifecycle transition of one host's probe session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// The stateless layer sent the initial SYN to this host.
    SynSent,
    /// A SYN-ACK carried a valid ISN cookie; the host is reachable.
    SynAckValidated,
    /// The host answered with a valid RST: port closed.
    Refused,
    /// A stateful [`HostSession`] was created for the host.
    SessionStarted,
    /// An inference probe began (one MSS trial).
    ProbeStarted {
        /// Zero-based probe index within the session.
        probe: u8,
        /// The MSS advertised for this probe.
        mss: u16,
    },
    /// A same-MSS follow-up connection began (majority voting).
    FollowUpStarted {
        /// The probe the follow-up belongs to.
        probe: u8,
    },
    /// The first retransmission was observed; bytes in flight frozen.
    RetransmitDetected {
        /// The probe during which the retransmit occurred.
        probe: u8,
        /// Unacked payload bytes at the moment of the retransmit.
        bytes_in_flight: u64,
    },
    /// The 2×MSS verify-ACK was sent to confirm window exhaustion.
    VerifyAckSent {
        /// The probe being verified.
        probe: u8,
    },
    /// One probe reached a terminal outcome.
    ProbeConcluded {
        /// The probe index.
        probe: u8,
        /// Its outcome.
        outcome: OutcomeKind,
    },
    /// The whole session finished with a host verdict.
    SessionFinished {
        /// The session's primary outcome.
        outcome: OutcomeKind,
    },
    /// The stateless layer retransmitted the initial SYN (retry budget).
    SynRetried {
        /// One-based retransmission attempt.
        attempt: u8,
    },
    /// A probe connection was relaunched on a fresh source port after an
    /// Error/Unreachable outcome (per-probe retry policy).
    ProbeRetried {
        /// The probe being retried.
        probe: u8,
        /// One-based connection attempt for this probe.
        attempt: u8,
    },
    /// The session was force-concluded by the per-session watchdog.
    WatchdogForced,
    /// The session was force-concluded to make room under `max_sessions`.
    SessionEvicted,
    /// An ICMP destination-unreachable arrived for this target.
    IcmpUnreachable,
}

impl SessionEvent {
    /// Stable snake_case name of the event variant.
    pub fn name(&self) -> &'static str {
        match self {
            SessionEvent::SynSent => "syn_sent",
            SessionEvent::SynAckValidated => "syn_ack_validated",
            SessionEvent::Refused => "refused",
            SessionEvent::SessionStarted => "session_started",
            SessionEvent::ProbeStarted { .. } => "probe_started",
            SessionEvent::FollowUpStarted { .. } => "follow_up_started",
            SessionEvent::RetransmitDetected { .. } => "retransmit_detected",
            SessionEvent::VerifyAckSent { .. } => "verify_ack_sent",
            SessionEvent::ProbeConcluded { .. } => "probe_concluded",
            SessionEvent::SessionFinished { .. } => "session_finished",
            SessionEvent::SynRetried { .. } => "syn_retried",
            SessionEvent::ProbeRetried { .. } => "probe_retried",
            SessionEvent::WatchdogForced => "watchdog_forced",
            SessionEvent::SessionEvicted => "session_evicted",
            SessionEvent::IcmpUnreachable => "icmp_unreachable",
        }
    }
}

/// One time-stamped event for one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Virtual time of the transition, in nanoseconds since scan start.
    pub at_nanos: u64,
    /// The target host (IPv4 address as u32 — the scanner's native key).
    pub ip: u32,
    /// The transition itself.
    pub event: SessionEvent,
}

/// An append-only log of session lifecycle events.
///
/// Recording is gated on `enabled` so the scanner can carry a log
/// unconditionally and pay nothing when event capture is off.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    enabled: bool,
    records: Vec<EventRecord>,
}

impl EventLog {
    /// A log that records (`enabled = true`) or discards everything.
    pub fn new(enabled: bool) -> EventLog {
        EventLog {
            enabled,
            records: Vec::new(),
        }
    }

    /// Whether this log is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, at_nanos: u64, ip: u32, event: SessionEvent) {
        if self.enabled {
            self.records.push(EventRecord {
                at_nanos,
                ip,
                event,
            });
        }
    }

    /// All records, in insertion order (per shard: chronological).
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records for one host, in order.
    pub fn for_ip(&self, ip: u32) -> Vec<EventRecord> {
        self.records
            .iter()
            .copied()
            .filter(|r| r.ip == ip)
            .collect()
    }

    /// Merge another shard's log into this one, restoring the canonical
    /// global order (by time, ties broken by ip then event name). After a
    /// merge the log is deterministic regardless of shard count.
    pub fn merge(&mut self, other: &EventLog) {
        self.enabled |= other.enabled;
        self.records.extend_from_slice(&other.records);
        self.records
            .sort_by_key(|r| (r.at_nanos, r.ip, r.event.name()));
    }

    /// Count of `SessionFinished` events by outcome — the event log's own
    /// verdict mix, cross-checkable against `summarize()`.
    pub fn terminal_counts(&self) -> BTreeMap<OutcomeKind, u64> {
        let mut counts = BTreeMap::new();
        for r in &self.records {
            if let SessionEvent::SessionFinished { outcome } = r.event {
                *counts.entry(outcome).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Count of events by variant name.
    pub fn counts_by_name(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for r in &self.records {
            *counts.entry(r.event.name()).or_insert(0) += 1;
        }
        counts
    }

    /// Serialize the per-variant and per-verdict counts as a JSON object:
    /// `{"events": {...}, "verdicts": {...}}`. Deterministic (sorted keys),
    /// and — because it contains counts only, no timestamps — identical
    /// across shard counts for the same scan.
    pub fn summary_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        push_key(&mut out, "events");
        out.push('{');
        let mut first = true;
        for (name, n) in self.counts_by_name() {
            if !first {
                out.push(',');
            }
            first = false;
            push_u64_field(&mut out, name, n);
        }
        out.push_str("},");
        push_key(&mut out, "verdicts");
        out.push('{');
        let mut first = true;
        for (kind, n) in self.terminal_counts() {
            if !first {
                out.push(',');
            }
            first = false;
            push_u64_field(&mut out, kind.name(), n);
        }
        out.push_str("}}");
        out
    }

    /// Render one record as a human-readable line (for `--monitor`-style
    /// debugging and pcap cross-referencing).
    pub fn render_record(r: &EventRecord) -> String {
        let mut line = String::new();
        let secs = r.at_nanos / 1_000_000_000;
        let millis = (r.at_nanos / 1_000_000) % 1_000;
        let o = [
            (r.ip >> 24) & 0xff,
            (r.ip >> 16) & 0xff,
            (r.ip >> 8) & 0xff,
            r.ip & 0xff,
        ];
        let _ = write!(
            line,
            "{secs}.{millis:03} {}.{}.{}.{} {}",
            o[0],
            o[1],
            o[2],
            o[3],
            r.event.name()
        );
        match r.event {
            SessionEvent::ProbeStarted { probe, mss } => {
                let _ = write!(line, " probe={probe} mss={mss}");
            }
            SessionEvent::FollowUpStarted { probe } | SessionEvent::VerifyAckSent { probe } => {
                let _ = write!(line, " probe={probe}");
            }
            SessionEvent::RetransmitDetected {
                probe,
                bytes_in_flight,
            } => {
                let _ = write!(line, " probe={probe} bytes_in_flight={bytes_in_flight}");
            }
            SessionEvent::ProbeConcluded { probe, outcome } => {
                let _ = write!(line, " probe={probe} outcome={}", outcome.name());
            }
            SessionEvent::SessionFinished { outcome } => {
                let _ = write!(line, " outcome={}", outcome.name());
            }
            SessionEvent::SynRetried { attempt } => {
                let _ = write!(line, " attempt={attempt}");
            }
            SessionEvent::ProbeRetried { probe, attempt } => {
                let _ = write!(line, " probe={probe} attempt={attempt}");
            }
            _ => {}
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finished(at: u64, ip: u32, outcome: OutcomeKind) -> EventRecord {
        EventRecord {
            at_nanos: at,
            ip,
            event: SessionEvent::SessionFinished { outcome },
        }
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = EventLog::new(false);
        log.record(1, 2, SessionEvent::SynSent);
        assert!(log.is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn terminal_counts_and_filtering() {
        let mut log = EventLog::new(true);
        log.record(10, 1, SessionEvent::SynSent);
        log.record(20, 1, SessionEvent::SynAckValidated);
        log.record(
            30,
            1,
            SessionEvent::SessionFinished {
                outcome: OutcomeKind::Success,
            },
        );
        log.record(
            40,
            2,
            SessionEvent::SessionFinished {
                outcome: OutcomeKind::Error,
            },
        );
        let counts = log.terminal_counts();
        assert_eq!(counts[&OutcomeKind::Success], 1);
        assert_eq!(counts[&OutcomeKind::Error], 1);
        assert_eq!(log.for_ip(1).len(), 3);
        assert_eq!(log.counts_by_name()["syn_sent"], 1);
    }

    #[test]
    fn merge_restores_global_order() {
        let mut a = EventLog::new(true);
        a.record(30, 1, SessionEvent::SynSent);
        a.record(50, 1, SessionEvent::SynAckValidated);
        let mut b = EventLog::new(true);
        b.record(10, 2, SessionEvent::SynSent);
        b.record(40, 2, SessionEvent::SynAckValidated);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.records(), ba.records(), "merge is order-independent");
        let times: Vec<u64> = ab.records().iter().map(|r| r.at_nanos).collect();
        assert_eq!(times, vec![10, 30, 40, 50]);
    }

    #[test]
    fn summary_json_is_deterministic_across_sharding() {
        let mut single = EventLog::new(true);
        single.records = vec![
            finished(5, 3, OutcomeKind::Success),
            finished(7, 4, OutcomeKind::FewData),
            finished(9, 5, OutcomeKind::Success),
        ];
        let mut shard_a = EventLog::new(true);
        shard_a.records = vec![finished(7, 4, OutcomeKind::FewData)];
        let mut shard_b = EventLog::new(true);
        shard_b.records = vec![
            finished(5, 3, OutcomeKind::Success),
            finished(9, 5, OutcomeKind::Success),
        ];
        shard_a.merge(&shard_b);
        assert_eq!(single.summary_json(), shard_a.summary_json());
        assert_eq!(
            single.summary_json(),
            "{\"events\":{\"session_finished\":3},\"verdicts\":{\"success\":2,\"few_data\":1}}"
        );
    }

    #[test]
    fn render_record_is_readable() {
        let r = EventRecord {
            at_nanos: 1_234_000_000,
            ip: 0x0a000001,
            event: SessionEvent::RetransmitDetected {
                probe: 1,
                bytes_in_flight: 14600,
            },
        };
        assert_eq!(
            EventLog::render_record(&r),
            "1.234 10.0.0.1 retransmit_detected probe=1 bytes_in_flight=14600"
        );
    }
}
