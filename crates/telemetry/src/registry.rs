//! The metrics registry: counters, gauges and log₂ histograms.
//!
//! Metrics are registered once up front (returning a typed index handle)
//! and recorded through the handle — the hot path is an array index plus
//! an integer add, with zero allocation and zero hashing. Snapshots are
//! name-keyed, mergeable, and serialize to deterministic JSON.

use crate::json::{push_key, push_u64_field};
use crate::manifest::{MetricDef, MetricKind};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Determinism scope of a metric (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Population-determined: merges exactly across shard counts and is
    /// part of the canonical snapshot.
    Scan,
    /// Scheduling-determined (pacing, queue depths): reported but excluded
    /// from the canonical snapshot because sharding legitimately changes it.
    Shard,
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Number of log₂ buckets: index 0 holds the value 0, index `i ≥ 1` holds
/// values in `[2^(i-1), 2^i)`; u64::MAX lands in index 64.
pub const BUCKETS: usize = 65;

/// Bucket index of a value (0 → 0, 1 → 1, 2..=3 → 2, 4..=7 → 3, …).
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive lower bound of a bucket (0 for bucket 0, else `2^(i-1)`).
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one sample. Allocation-free.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

struct Metric<T> {
    name: &'static str,
    scope: Scope,
    value: T,
}

/// A gauge: last-set value plus the high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Gauge {
    value: u64,
    peak: u64,
}

/// The registry. Build one per scanner (or per shard); merge snapshots.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Vec<Metric<u64>>,
    gauges: Vec<Metric<Gauge>>,
    histograms: Vec<Metric<Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Register a monotonic counter. Names must be unique per registry.
    pub fn counter(&mut self, name: &'static str, scope: Scope) -> CounterId {
        debug_assert!(self.counters.iter().all(|m| m.name != name), "{name}");
        self.counters.push(Metric {
            name,
            scope,
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge (tracks last value and peak).
    pub fn gauge(&mut self, name: &'static str, scope: Scope) -> GaugeId {
        debug_assert!(self.gauges.iter().all(|m| m.name != name), "{name}");
        self.gauges.push(Metric {
            name,
            scope,
            value: Gauge::default(),
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a histogram.
    pub fn histogram(&mut self, name: &'static str, scope: Scope) -> HistogramId {
        debug_assert!(self.histograms.iter().all(|m| m.name != name), "{name}");
        self.histograms.push(Metric {
            name,
            scope,
            value: Histogram::default(),
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Register a counter declared in the [`crate::manifest`]. This is
    /// the preferred registration path: name and scope come from the
    /// manifest's single declaration and cannot drift.
    pub fn register_counter(&mut self, def: &'static MetricDef) -> CounterId {
        assert_eq!(
            def.kind,
            MetricKind::Counter,
            "{} is not a counter",
            def.name
        );
        self.counter(def.name, def.scope)
    }

    /// Register a gauge declared in the [`crate::manifest`].
    pub fn register_gauge(&mut self, def: &'static MetricDef) -> GaugeId {
        assert_eq!(def.kind, MetricKind::Gauge, "{} is not a gauge", def.name);
        self.gauge(def.name, def.scope)
    }

    /// Register a histogram declared in the [`crate::manifest`].
    pub fn register_histogram(&mut self, def: &'static MetricDef) -> HistogramId {
        assert_eq!(
            def.kind,
            MetricKind::Histogram,
            "{} is not a histogram",
            def.name
        );
        self.histogram(def.name, def.scope)
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].value += 1;
    }

    /// Add to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].value += n;
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Set a gauge (peak is kept automatically).
    #[inline]
    pub fn gauge_set(&mut self, id: GaugeId, value: u64) {
        let g = &mut self.gauges[id.0].value;
        g.value = value;
        g.peak = g.peak.max(value);
    }

    /// Record a histogram sample.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].value.observe(value);
    }

    /// Read a histogram back (for reporting and tests).
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].value
    }

    /// Produce a name-keyed, mergeable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for m in &self.counters {
            snap.counters.insert(m.name.to_string(), (m.scope, m.value));
        }
        for m in &self.gauges {
            snap.gauges
                .insert(m.name.to_string(), (m.scope, m.value.peak));
        }
        for m in &self.histograms {
            snap.histograms.insert(
                m.name.to_string(),
                HistogramSnapshot::from_histogram(m.scope, &m.value),
            );
        }
        snap
    }
}

/// Frozen histogram state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Determinism scope.
    pub scope: Scope,
    /// Sample count.
    pub count: u64,
    /// Saturating sample sum.
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(bucket_index, count)` pairs for non-empty buckets, ascending.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    fn from_histogram(scope: Scope, h: &Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            scope,
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, c)| **c > 0)
                .map(|(i, c)| (i, *c))
                .collect(),
        }
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<usize, u64> = self.buckets.iter().copied().collect();
        for (i, c) in &other.buckets {
            *merged.entry(*i).or_insert(0) += c;
        }
        self.buckets = merged.into_iter().collect();
    }

    /// Estimated `pct`-th percentile (0–100) by linear interpolation
    /// inside the log₂ bucket holding that rank, clamped to the observed
    /// `[min, max]`. Integer arithmetic only, and a pure function of the
    /// merged snapshot state — so the estimate is byte-identical across
    /// shard counts. Returns 0 for an empty histogram.
    pub fn quantile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // 1-based rank of the requested percentile, ceiling division.
        let rank =
            ((u128::from(self.count) * u128::from(pct)).div_ceil(100) as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            if seen + c < rank {
                seen += c;
                continue;
            }
            let lo = bucket_floor(i);
            let hi = if i + 1 < BUCKETS {
                bucket_floor(i + 1) - 1
            } else {
                u64::MAX
            };
            let pos = rank - seen; // 1..=c
            let est = lo + (u128::from(hi - lo) * u128::from(pos) / u128::from(c)) as u64;
            return est.clamp(self.min, self.max);
        }
        self.max
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.quantile(50)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(95)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(99)
    }

    fn to_json(&self, out: &mut String) {
        out.push('{');
        push_u64_field(out, "count", self.count);
        out.push(',');
        push_u64_field(out, "sum", self.sum);
        if self.count > 0 {
            out.push(',');
            push_u64_field(out, "min", self.min);
            out.push(',');
            push_u64_field(out, "max", self.max);
            out.push(',');
            push_u64_field(out, "p50", self.p50());
            out.push(',');
            push_u64_field(out, "p95", self.p95());
            out.push(',');
            push_u64_field(out, "p99", self.p99());
        }
        out.push(',');
        push_key(out, "buckets");
        out.push('[');
        for (n, (i, c)) in self.buckets.iter().enumerate() {
            if n > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", bucket_floor(*i), c);
        }
        out.push_str("]}");
    }
}

/// A frozen, name-keyed view of a registry. Mergeable across shards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, (Scope, u64)>,
    /// Gauge peaks by name (merged with `max`).
    pub gauges: BTreeMap<String, (Scope, u64)>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Merge another shard's snapshot into this one: counters and
    /// histogram buckets add, gauge peaks take the maximum.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, (scope, v)) in &other.counters {
            let e = self.counters.entry(name.clone()).or_insert((*scope, 0));
            e.1 += v;
        }
        for (name, (scope, v)) in &other.gauges {
            let e = self.gauges.entry(name.clone()).or_insert((*scope, 0));
            e.1 = e.1.max(*v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |(_, v)| *v)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    fn section_json(&self, out: &mut String, scope: Scope) {
        out.push('{');
        push_key(out, "counters");
        out.push('{');
        let mut first = true;
        for (name, (s, v)) in &self.counters {
            if *s != scope {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            push_u64_field(out, name, *v);
        }
        out.push_str("},");
        push_key(out, "gauges");
        out.push('{');
        let mut first = true;
        for (name, (s, v)) in &self.gauges {
            if *s != scope {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            push_u64_field(out, name, *v);
        }
        out.push_str("},");
        push_key(out, "histograms");
        out.push('{');
        let mut first = true;
        for (name, h) in &self.histograms {
            if h.scope != scope {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            push_key(out, name);
            h.to_json(out);
        }
        out.push_str("}}");
    }

    /// The canonical snapshot: scan-scoped metrics only. Byte-identical
    /// between a sharded run and a single-thread run of the same scan.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::new();
        self.section_json(&mut out, Scope::Scan);
        out
    }

    /// The full snapshot: `{"scan": {...}, "shard": {...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        push_key(&mut out, "scan");
        self.section_json(&mut out, Scope::Scan);
        out.push(',');
        push_key(&mut out, "shard");
        self.section_json(&mut out, Scope::Shard);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(11), 1024);
        // floor/index are consistent.
        for i in 1..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i);
        }
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::default();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        for v in [0u64, 1, 5, 5, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1011);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert!((h.mean().unwrap() - 202.2).abs() < 1e-9);
    }

    #[test]
    fn quantile_estimates_interpolate_within_buckets() {
        let snap_of = |values: &[u64]| {
            let mut r = MetricsRegistry::new();
            let h = r.histogram("scan.rtt_nanos", Scope::Scan);
            for v in values {
                r.observe(h, *v);
            }
            r.snapshot()
        };

        // Empty histogram: all quantiles are 0.
        let empty = snap_of(&[]);
        assert_eq!(empty.histogram("scan.rtt_nanos").unwrap().p99(), 0);

        // Single sample: every quantile is that sample.
        let one = snap_of(&[42]);
        let h = one.histogram("scan.rtt_nanos").unwrap();
        assert_eq!((h.p50(), h.p95(), h.p99()), (42, 42, 42));

        // Two samples 3 and 1024: p50 hits the first, tail hits the second.
        let two = snap_of(&[3, 1024]);
        let h = two.histogram("scan.rtt_nanos").unwrap();
        assert_eq!((h.p50(), h.p95(), h.p99()), (3, 1024, 1024));

        // 100 samples of 0..100: estimates land in the right log₂ bucket
        // and are monotone in the percentile.
        let many: Vec<u64> = (0..100).collect();
        let snap = snap_of(&many);
        let h = snap.histogram("scan.rtt_nanos").unwrap();
        assert!(h.p50() >= 32 && h.p50() <= 63, "p50 = {}", h.p50());
        assert!(h.p95() >= 64 && h.p95() <= 99, "p95 = {}", h.p95());
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert!(h.p99() <= h.max);

        // Estimates never escape [min, max] even for the top bucket.
        let extreme = snap_of(&[u64::MAX]);
        let h = extreme.histogram("scan.rtt_nanos").unwrap();
        assert_eq!(h.p99(), u64::MAX);
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("scan.syn_sent", Scope::Scan);
        let g = r.gauge("shard.live", Scope::Shard);
        let h = r.histogram("scan.rtt", Scope::Scan);
        r.inc(c);
        r.add(c, 4);
        r.gauge_set(g, 7);
        r.gauge_set(g, 3);
        r.observe(h, 100);
        assert_eq!(r.counter_value(c), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("scan.syn_sent"), 5);
        assert_eq!(snap.gauges["shard.live"], (Scope::Shard, 7), "peak kept");
        assert_eq!(snap.histogram("scan.rtt").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let build = |vals: &[u64]| {
            let mut r = MetricsRegistry::new();
            let c = r.counter("c", Scope::Scan);
            let h = r.histogram("h", Scope::Scan);
            for v in vals {
                r.add(c, *v);
                r.observe(h, *v);
            }
            r.snapshot()
        };
        let a = build(&[1, 2, 3]);
        let b = build(&[10, 20]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 36);
        let h = ab.histogram("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 20);
    }

    #[test]
    fn sharded_merge_equals_single_registry() {
        // The determinism contract in miniature: recording the same
        // samples split across two registries merges to the same snapshot
        // (and the same canonical JSON bytes) as one registry.
        let samples: Vec<u64> = (0..100).map(|i| i * 37 % 1000).collect();
        let record = |vals: &[u64]| {
            let mut r = MetricsRegistry::new();
            let c = r.counter("scan.n", Scope::Scan);
            let h = r.histogram("scan.v", Scope::Scan);
            let p = r.counter("shard.ticks", Scope::Shard);
            for v in vals {
                r.inc(c);
                r.observe(h, *v);
            }
            r.inc(p); // shard-local noise: one tick per registry
            r.snapshot()
        };
        let single = record(&samples);
        let mut merged = record(&samples[..33]);
        merged.merge(&record(&samples[33..]));
        assert_eq!(single.to_canonical_json(), merged.to_canonical_json());
        // The full JSON legitimately differs (shard.ticks: 1 vs 2).
        assert_ne!(single.to_json(), merged.to_json());
    }

    #[test]
    fn json_shape() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("scan.syn_sent", Scope::Scan);
        let h = r.histogram("scan.rtt_nanos", Scope::Scan);
        r.add(c, 7);
        r.observe(h, 3);
        r.observe(h, 1024);
        let json = r.snapshot().to_json();
        assert!(json.starts_with("{\"scan\":{"), "{json}");
        assert!(json.contains("\"scan.syn_sent\":7"), "{json}");
        assert!(
            json.contains("\"scan.rtt_nanos\":{\"count\":2,\"sum\":1027,\"min\":3,\"max\":1024,\"p50\":3,\"p95\":1024,\"p99\":1024,\"buckets\":[[2,1],[1024,1]]}"),
            "{json}"
        );
        assert!(json.contains("\"shard\":{"), "{json}");
        // Canonical form is exactly the scan section.
        let canon = r.snapshot().to_canonical_json();
        assert!(json.contains(&canon), "canonical is a substring");
    }

    #[test]
    fn manifest_registration_uses_declared_name_and_scope() {
        use crate::manifest;
        let mut r = MetricsRegistry::new();
        let c = r.register_counter(&manifest::SCAN_TARGETS_SENT);
        let g = r.register_gauge(&manifest::SHARD_SESSIONS_LIVE_PEAK);
        let h = r.register_histogram(&manifest::SCAN_RTT_NANOS);
        r.add(c, 3);
        r.gauge_set(g, 2);
        r.observe(h, 9);
        let snap = r.snapshot();
        assert_eq!(snap.counters["scan.targets_sent"], (Scope::Scan, 3));
        assert_eq!(snap.gauges["shard.sessions.live_peak"], (Scope::Shard, 2));
        assert_eq!(snap.histogram("scan.rtt_nanos").unwrap().scope, Scope::Scan);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn manifest_registration_checks_kind() {
        let mut r = MetricsRegistry::new();
        let _ = r.register_gauge(&crate::manifest::SCAN_TARGETS_SENT);
    }

    #[test]
    fn empty_histogram_json_omits_min_max() {
        let mut r = MetricsRegistry::new();
        r.histogram("scan.empty", Scope::Scan);
        let json = r.snapshot().to_canonical_json();
        assert!(
            json.contains("\"scan.empty\":{\"count\":0,\"sum\":0,\"buckets\":[]}"),
            "{json}"
        );
    }
}
