//! # iw-telemetry — the scanner's measurement layer
//!
//! ZMap-style scanners are operated by watching them: hit rates, pacing,
//! and failure modes tell the operator whether a campaign is healthy long
//! before the results land ("Ten Years of ZMap" calls the live status
//! monitor essential operational machinery). This crate is that layer for
//! the IW scanner, in three parts:
//!
//! * a cheap **metrics registry** ([`registry`]) — named monotonic
//!   counters, gauges and log₂-bucketed histograms with a deterministic
//!   JSON snapshot format and exact shard merging;
//! * a structured **session event log** ([`events`]) — per-host lifecycle
//!   transitions (SYN sent → SYN-ACK validated → retransmit detected →
//!   verify-ACK → verdict) that tests can assert on exactly;
//! * a **progress monitor** ([`monitor`]) — periodic ZMap-style status
//!   lines (send progress, hit rate, pps, verdict mix, ETA) through a
//!   pluggable sink.
//!
//! The crate is dependency-free by design: every recording operation is
//! allocation-free (array index + integer add), and the JSON emitters are
//! hand-rolled so snapshots are byte-stable across platforms and shard
//! counts. Time is passed in as plain `u64` nanoseconds so the crate does
//! not depend on the simulator's clock types.
//!
//! ## Determinism contract
//!
//! Metrics are registered with a [`registry::Scope`]:
//!
//! * [`Scope::Scan`](registry::Scope::Scan) metrics describe the scanned
//!   population (verdicts, RTTs, session lifetimes). They are defined to
//!   merge exactly: summing per-shard registries yields byte-identical
//!   canonical snapshots whether a scan ran on one thread or sixteen.
//! * [`Scope::Shard`](registry::Scope::Shard) metrics describe scheduling
//!   (pacing ticks, token-bucket waits, peak live sessions). They are
//!   still merged and reported, but excluded from the canonical snapshot
//!   because shard boundaries legitimately change them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod manifest;
pub mod monitor;
pub mod registry;

pub use events::{EventLog, EventRecord, OutcomeKind, SessionEvent};
pub use manifest::{MetricDef, MetricKind};
pub use monitor::{BufferSink, ProgressMonitor, ProgressSample, StatusSink, StdoutSink};
pub use registry::{
    CounterId, GaugeId, HistogramId, HistogramSnapshot, MetricsRegistry, Scope, Snapshot,
};
