//! # iw-telemetry — the scanner's measurement layer
//!
//! ZMap-style scanners are operated by watching them: hit rates, pacing,
//! and failure modes tell the operator whether a campaign is healthy long
//! before the results land ("Ten Years of ZMap" calls the live status
//! monitor essential operational machinery). This crate is that layer for
//! the IW scanner, in three parts:
//!
//! * a cheap **metrics registry** ([`registry`]) — named monotonic
//!   counters, gauges and log₂-bucketed histograms with a deterministic
//!   JSON snapshot format and exact shard merging;
//! * a structured **session event log** ([`events`]) — per-host lifecycle
//!   transitions (SYN sent → SYN-ACK validated → retransmit detected →
//!   verify-ACK → verdict) that tests can assert on exactly;
//! * a **progress monitor** ([`monitor`]) — periodic ZMap-style status
//!   lines (send progress, hit rate, pps, verdict mix, ETA) through a
//!   pluggable sink;
//! * a **span tracer** ([`trace`]) — virtual-time spans over session
//!   phases and the event-loop hot path, exported as Chrome trace-event
//!   JSON (Perfetto-loadable) with a byte-identical canonical form
//!   across shard counts;
//! * a **flight recorder** ([`recorder`]) — bounded per-session rings of
//!   wire and state-machine activity, dumped as JSONL black boxes for
//!   sessions that end in an error;
//! * a **streaming sink** ([`sink`]) — JSONL metric deltas and
//!   per-target results emitted while the scan runs;
//! * an **ICMP harvest** ([`harvest`]) — classified control-plane
//!   side-traffic (unreachable subtypes, per-source counts,
//!   rate-limiting signatures) for the results manifest.
//!
//! The crate is dependency-free by design: every recording operation is
//! allocation-free (array index + integer add), and the JSON emitters are
//! hand-rolled so snapshots are byte-stable across platforms and shard
//! counts. Time is passed in as plain `u64` nanoseconds so the crate does
//! not depend on the simulator's clock types.
//!
//! ## Determinism contract
//!
//! Metrics are registered with a [`registry::Scope`]:
//!
//! * [`Scope::Scan`](registry::Scope::Scan) metrics describe the scanned
//!   population (verdicts, RTTs, session lifetimes). They are defined to
//!   merge exactly: summing per-shard registries yields byte-identical
//!   canonical snapshots whether a scan ran on one thread or sixteen.
//! * [`Scope::Shard`](registry::Scope::Shard) metrics describe scheduling
//!   (pacing ticks, token-bucket waits, peak live sessions). They are
//!   still merged and reported, but excluded from the canonical snapshot
//!   because shard boundaries legitimately change them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod harvest;
pub mod json;
pub mod manifest;
pub mod monitor;
pub mod recorder;
pub mod registry;
pub mod sink;
pub mod trace;

pub use events::{EventLog, EventRecord, OutcomeKind, SessionEvent};
pub use harvest::IcmpHarvest;
pub use json::{parse_json, JsonError, JsonValue};
pub use manifest::{MetricDef, MetricKind};
pub use monitor::{BufferSink, ProgressMonitor, ProgressSample, StatusSink, StdoutSink};
pub use recorder::{FlightDump, FlightEntry, FlightRecorder, DEFAULT_RING_CAPACITY};
pub use registry::{
    CounterId, GaugeId, HistogramId, HistogramSnapshot, MetricsRegistry, Scope, Snapshot,
};
pub use sink::TelemetrySink;
pub use trace::{SpanRecord, SpanScope, Tracer};
