//! Per-session flight recorder: a black box for sessions that crash.
//!
//! For every in-flight target the recorder keeps a small bounded ring of
//! the most recent wire-level segments and state-machine transitions.
//! When the session concludes *cleanly* the ring is dropped — the happy
//! path leaves no residue. When it ends in an `ErrorKind` the ring is
//! frozen into a [`FlightDump`]: the last N things that happened to that
//! host, plus the lifecycle phase it died in, exported as one JSONL line
//! per casualty for offline triage (`iw-cli inspect`).
//!
//! Memory discipline: each ring is a fixed-capacity `VecDeque` that
//! evicts its oldest entry instead of growing, so a warm ring never
//! reallocates (asserted by tests). Rings for targets that fall silent
//! without any conclusion are expired by the scanner's periodic sweep.
//! Everything is keyed and ordered deterministically — dumps merge
//! across shards by `(conclusion time, address)`, which is
//! population-determined, so a sharded scan dumps the same casualties in
//! the same order as a single-threaded one.

use crate::events::SessionEvent;
use crate::json::{push_key, push_str_literal, push_u64_field};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write;

/// Default per-session ring capacity (entries).
pub const DEFAULT_RING_CAPACITY: usize = 32;

/// TCP flag bits as carried in [`FlightEntry::Wire::flags`] (the low bits
/// of the TCP flags word; matches the wire layout).
const WIRE_FLAGS: [(u16, char); 6] = [
    (0x002, 'S'),
    (0x010, 'A'),
    (0x001, 'F'),
    (0x004, 'R'),
    (0x008, 'P'),
    (0x020, 'U'),
];

/// One ring entry: either a state-machine transition or a wire segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEntry {
    /// A session lifecycle event.
    State {
        /// Virtual-time nanoseconds.
        at_nanos: u64,
        /// The transition.
        event: SessionEvent,
    },
    /// A TCP segment seen on the wire for this target.
    Wire {
        /// Virtual-time nanoseconds.
        at_nanos: u64,
        /// True = scanner → host, false = host → scanner.
        tx: bool,
        /// Raw TCP flag bits.
        flags: u16,
        /// Sequence number.
        seq: u32,
        /// Acknowledgment number.
        ack: u32,
        /// Payload length in bytes.
        payload_len: u32,
    },
}

impl FlightEntry {
    fn at_nanos(&self) -> u64 {
        match self {
            FlightEntry::State { at_nanos, .. } | FlightEntry::Wire { at_nanos, .. } => *at_nanos,
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        match self {
            FlightEntry::State { at_nanos, event } => {
                push_u64_field(out, "at_nanos", *at_nanos);
                out.push(',');
                push_key(out, "event");
                push_str_literal(out, event.name());
                let detail = event_detail(event);
                if !detail.is_empty() {
                    out.push(',');
                    push_key(out, "detail");
                    push_str_literal(out, &detail);
                }
            }
            FlightEntry::Wire {
                at_nanos,
                tx,
                flags,
                seq,
                ack,
                payload_len,
            } => {
                push_u64_field(out, "at_nanos", *at_nanos);
                out.push(',');
                push_key(out, "wire");
                push_str_literal(out, if *tx { "tx" } else { "rx" });
                out.push(',');
                push_key(out, "flags");
                push_str_literal(out, &flags_str(*flags));
                out.push(',');
                push_u64_field(out, "seq", u64::from(*seq));
                out.push(',');
                push_u64_field(out, "ack", u64::from(*ack));
                out.push(',');
                push_u64_field(out, "len", u64::from(*payload_len));
            }
        }
        out.push('}');
    }
}

/// Compact flag string, e.g. `"SA"` for SYN|ACK, `"R"` for RST.
fn flags_str(bits: u16) -> String {
    let mut s = String::new();
    for (bit, c) in WIRE_FLAGS {
        if bits & bit != 0 {
            s.push(c);
        }
    }
    s
}

/// The `k=v` argument tail of an event (empty for argument-free events).
fn event_detail(ev: &SessionEvent) -> String {
    let mut s = String::new();
    match ev {
        SessionEvent::ProbeStarted { probe, mss } => {
            let _ = write!(s, "probe={probe} mss={mss}");
        }
        SessionEvent::FollowUpStarted { probe } | SessionEvent::VerifyAckSent { probe } => {
            let _ = write!(s, "probe={probe}");
        }
        SessionEvent::RetransmitDetected {
            probe,
            bytes_in_flight,
        } => {
            let _ = write!(s, "probe={probe} bytes_in_flight={bytes_in_flight}");
        }
        SessionEvent::ProbeConcluded { probe, outcome } => {
            let _ = write!(s, "probe={probe} outcome={}", outcome.name());
        }
        SessionEvent::SessionFinished { outcome } => {
            let _ = write!(s, "outcome={}", outcome.name());
        }
        SessionEvent::SynRetried { attempt } => {
            let _ = write!(s, "attempt={attempt}");
        }
        SessionEvent::ProbeRetried { probe, attempt } => {
            let _ = write!(s, "probe={probe} attempt={attempt}");
        }
        _ => {}
    }
    s
}

/// The lifecycle phase a session is in after `ev` (used to name the
/// phase a dumped session died in).
fn phase_after(ev: &SessionEvent) -> &'static str {
    match ev {
        SessionEvent::SynSent | SessionEvent::SynRetried { .. } => "syn_wait",
        SessionEvent::SynAckValidated | SessionEvent::SessionStarted => "handshake",
        SessionEvent::ProbeStarted { .. }
        | SessionEvent::FollowUpStarted { .. }
        | SessionEvent::RetransmitDetected { .. }
        | SessionEvent::ProbeRetried { .. } => "collecting",
        SessionEvent::VerifyAckSent { .. } => "verifying",
        SessionEvent::ProbeConcluded { .. } => "probe_done",
        SessionEvent::SessionFinished { .. } => "finished",
        SessionEvent::Refused => "refused",
        SessionEvent::WatchdogForced | SessionEvent::SessionEvicted => "collecting",
        SessionEvent::IcmpUnreachable => "unreachable",
    }
}

/// One bounded ring of recent activity for a live target.
#[derive(Debug, Clone)]
struct Ring {
    entries: VecDeque<FlightEntry>,
    /// Entries displaced by the capacity bound.
    evicted: u64,
    /// Lifecycle phase after the most recent state event.
    phase: &'static str,
    /// Virtual time of the most recent entry (staleness expiry).
    last_at: u64,
}

/// A frozen ring: the black box of a session that ended in an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Virtual time the session concluded.
    pub at_nanos: u64,
    /// Target address.
    pub ip: u32,
    /// The `ErrorKind` name the session died with.
    pub error: &'static str,
    /// Lifecycle phase at death (from the last state transition).
    pub phase: &'static str,
    /// Ring entries displaced before the dump (older history lost).
    pub evicted: u64,
    /// The retained entries, oldest first.
    pub entries: Vec<FlightEntry>,
}

impl FlightDump {
    /// One JSONL line: `{"at_nanos":..,"ip":"..","error":"..","phase":"..",...}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        push_u64_field(&mut out, "at_nanos", self.at_nanos);
        out.push(',');
        push_key(&mut out, "ip");
        push_str_literal(&mut out, &ip_str(self.ip));
        out.push(',');
        push_key(&mut out, "error");
        push_str_literal(&mut out, self.error);
        out.push(',');
        push_key(&mut out, "phase");
        push_str_literal(&mut out, self.phase);
        out.push(',');
        push_u64_field(&mut out, "evicted", self.evicted);
        out.push(',');
        push_key(&mut out, "entries");
        out.push('[');
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

/// Dotted-quad rendering of an address.
fn ip_str(ip: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (ip >> 24) & 0xff,
        (ip >> 16) & 0xff,
        (ip >> 8) & 0xff,
        ip & 0xff
    )
}

/// The per-session flight recorder. See module docs.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    enabled: bool,
    capacity: usize,
    rings: BTreeMap<u32, Ring>,
    dumps: Vec<FlightDump>,
}

impl FlightRecorder {
    /// A recorder with the given per-session ring capacity (clamped ≥ 1).
    /// Disabled recorders never record or allocate.
    pub fn new(enabled: bool, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            enabled,
            capacity: capacity.max(1),
            rings: BTreeMap::new(),
            dumps: Vec::new(),
        }
    }

    /// Is recording on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a state-machine transition; creates the target's ring.
    /// `SessionFinished` marks death, not a phase: the ring keeps the
    /// phase the session died *in*, which is what a dump should name.
    #[inline]
    pub fn note_state(&mut self, ip: u32, at_nanos: u64, event: SessionEvent) {
        if !self.enabled {
            return;
        }
        let terminal = matches!(event, SessionEvent::SessionFinished { .. });
        let phase = phase_after(&event);
        let ring = self.ring_mut(ip);
        if !terminal {
            ring.phase = phase;
        }
        push_bounded(ring, FlightEntry::State { at_nanos, event });
    }

    /// Record a wire segment. No-op unless the target already has a ring
    /// (stray traffic for targets we never probed is not recorded).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn note_wire(
        &mut self,
        ip: u32,
        at_nanos: u64,
        tx: bool,
        flags: u16,
        seq: u32,
        ack: u32,
        payload_len: u32,
    ) {
        if !self.enabled {
            return;
        }
        if let Some(ring) = self.rings.get_mut(&ip) {
            push_bounded(
                ring,
                FlightEntry::Wire {
                    at_nanos,
                    tx,
                    flags,
                    seq,
                    ack,
                    payload_len,
                },
            );
        }
    }

    /// Conclude a target: `Some(error)` freezes the ring into a dump,
    /// `None` (clean verdict) drops it. Returns true if a dump was kept.
    pub fn conclude(&mut self, ip: u32, at_nanos: u64, error: Option<&'static str>) -> bool {
        if !self.enabled {
            return false;
        }
        let Some(ring) = self.rings.remove(&ip) else {
            return false;
        };
        let Some(error) = error else {
            return false;
        };
        self.dumps.push(FlightDump {
            at_nanos,
            ip,
            error,
            phase: ring.phase,
            evicted: ring.evicted,
            entries: ring.entries.into_iter().collect(),
        });
        true
    }

    /// Drop rings whose most recent entry predates `cutoff_nanos`, except
    /// targets `keep` vouches for (live sessions). Bounds memory when
    /// targets fall silent without ever concluding.
    pub fn expire_stale(&mut self, cutoff_nanos: u64, keep: impl Fn(u32) -> bool) {
        if !self.enabled {
            return;
        }
        self.rings
            .retain(|ip, ring| ring.last_at >= cutoff_nanos || keep(*ip));
    }

    /// Retained dumps, canonical `(time, address)` order after merge.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Rings currently live (diagnostics).
    pub fn live_rings(&self) -> usize {
        self.rings.len()
    }

    /// `(len, deque capacity, evicted)` of a target's ring, for tests
    /// asserting the no-reallocation guarantee.
    pub fn ring_stats(&self, ip: u32) -> Option<(usize, usize, u64)> {
        self.rings
            .get(&ip)
            .map(|r| (r.entries.len(), r.entries.capacity(), r.evicted))
    }

    /// True when no dumps were retained.
    pub fn is_empty(&self) -> bool {
        self.dumps.is_empty()
    }

    /// Merge another shard's recorder. Dump order is canonical:
    /// `(conclusion time, address)`, both population-determined.
    pub fn merge(&mut self, other: &FlightRecorder) {
        self.enabled |= other.enabled;
        self.capacity = self.capacity.max(other.capacity);
        self.dumps.extend(other.dumps.iter().cloned());
        for (ip, ring) in &other.rings {
            self.rings.insert(*ip, ring.clone());
        }
        self.dumps.sort_by_key(|d| (d.at_nanos, d.ip));
    }

    /// All dumps as JSONL (one line per dumped session, trailing newline
    /// when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for d in &self.dumps {
            out.push_str(&d.to_json());
            out.push('\n');
        }
        out
    }

    fn ring_mut(&mut self, ip: u32) -> &mut Ring {
        let capacity = self.capacity;
        self.rings.entry(ip).or_insert_with(|| Ring {
            entries: VecDeque::with_capacity(capacity),
            evicted: 0,
            phase: "created",
            last_at: 0,
        })
    }
}

/// Push with oldest-first eviction at the capacity bound; the deque
/// never grows past its initial allocation.
fn push_bounded(ring: &mut Ring, entry: FlightEntry) {
    if ring.entries.len() >= ring.entries.capacity() {
        ring.entries.pop_front();
        ring.evicted += 1;
    }
    ring.last_at = entry.at_nanos();
    ring.entries.push_back(entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::OutcomeKind;

    fn state(at: u64) -> SessionEvent {
        let _ = at;
        SessionEvent::ProbeStarted { probe: 0, mss: 64 }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = FlightRecorder::new(false, 8);
        r.note_state(1, 10, SessionEvent::SynSent);
        r.note_wire(1, 11, true, 0x002, 1, 0, 0);
        assert!(!r.conclude(1, 12, Some("collect_timeout")));
        assert!(r.is_empty());
        assert_eq!(r.live_rings(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_never_reallocates() {
        let mut r = FlightRecorder::new(true, 4);
        r.note_state(9, 0, SessionEvent::SynSent);
        let (_, warm_cap, _) = r.ring_stats(9).unwrap();
        for i in 1..1000u64 {
            r.note_wire(9, i, false, 0x010, i as u32, 0, 100);
        }
        let (len, cap, evicted) = r.ring_stats(9).unwrap();
        assert_eq!(len, warm_cap, "ring holds exactly its capacity");
        assert_eq!(cap, warm_cap, "no growth after warm-up");
        assert_eq!(evicted, 1000 - warm_cap as u64);
        // The retained entries are the most recent ones, oldest first.
        let ok = r.conclude(9, 1000, Some("collect_timeout"));
        assert!(ok);
        let dump = &r.dumps()[0];
        let first = dump.entries.first().unwrap();
        let last = dump.entries.last().unwrap();
        assert_eq!(last.at_nanos(), 999);
        assert_eq!(first.at_nanos(), 1000 - warm_cap as u64);
    }

    #[test]
    fn clean_conclusion_drops_the_ring() {
        let mut r = FlightRecorder::new(true, 8);
        r.note_state(5, 1, SessionEvent::SynSent);
        assert!(!r.conclude(5, 2, None));
        assert!(r.is_empty());
        assert_eq!(r.live_rings(), 0);
    }

    #[test]
    fn dump_names_the_failing_phase() {
        let mut r = FlightRecorder::new(true, 8);
        r.note_state(7, 1, SessionEvent::SynSent);
        r.note_state(7, 2, SessionEvent::SessionStarted);
        r.note_state(7, 3, state(3));
        assert!(r.conclude(7, 9, Some("collect_timeout")));
        let line = r.to_jsonl();
        assert!(line.contains("\"error\":\"collect_timeout\""), "{line}");
        assert!(line.contains("\"phase\":\"collecting\""), "{line}");
        assert!(line.contains("\"ip\":\"0.0.0.7\""), "{line}");
        assert!(line.ends_with('\n'));
    }

    #[test]
    fn merge_orders_dumps_deterministically() {
        let mk = |ip: u32, at: u64| {
            let mut r = FlightRecorder::new(true, 4);
            r.note_state(ip, at - 1, SessionEvent::SynSent);
            r.conclude(ip, at, Some("handshake_timeout"));
            r
        };
        let mut a = mk(2, 100);
        a.merge(&mk(1, 100));
        let mut b = mk(1, 100);
        b.merge(&mk(2, 100));
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.dumps()[0].ip, 1);
    }

    #[test]
    fn expire_stale_keeps_live_sessions() {
        let mut r = FlightRecorder::new(true, 4);
        r.note_state(1, 10, SessionEvent::SynSent);
        r.note_state(2, 10, SessionEvent::SynSent);
        r.expire_stale(50, |ip| ip == 2);
        assert!(r.ring_stats(1).is_none());
        assert!(r.ring_stats(2).is_some());
    }

    #[test]
    fn wire_entries_render_flags() {
        let mut r = FlightRecorder::new(true, 4);
        r.note_state(1, 1, SessionEvent::SynSent);
        r.note_wire(1, 2, false, 0x012, 7, 8, 0);
        r.conclude(1, 3, Some("malformed"));
        let line = r.to_jsonl();
        assert!(
            line.contains("\"wire\":\"rx\",\"flags\":\"SA\",\"seq\":7,\"ack\":8,\"len\":0"),
            "{line}"
        );
    }

    #[test]
    fn dump_records_probe_outcome_detail() {
        let mut r = FlightRecorder::new(true, 4);
        r.note_state(
            1,
            1,
            SessionEvent::ProbeConcluded {
                probe: 2,
                outcome: OutcomeKind::Error,
            },
        );
        r.conclude(1, 2, Some("inconsistent"));
        let line = r.to_jsonl();
        assert!(
            line.contains("\"detail\":\"probe=2 outcome=error\""),
            "{line}"
        );
    }
}
