//! The metrics manifest: the single source of truth for every metric the
//! scanner registers.
//!
//! Each metric the engine records is declared here exactly once as a
//! [`MetricDef`] — name, kind, and determinism [`Scope`] together. Code
//! registers through [`MetricsRegistry::register_counter`] (and friends)
//! with a `&manifest::CONST`, so a name or a scope can never drift between
//! call sites: renaming a metric, or moving it between the canonical
//! `Scan` scope and the scheduling-determined `Shard` scope, is a
//! one-line change here.
//!
//! `iw-lint`'s `metrics-manifest` rule parses this file and cross-checks
//! every registration and snapshot lookup in the workspace against it:
//! a literal name that is not declared here, a scope that disagrees with
//! the declaration, or a declared metric that nothing registers are all
//! lint errors. Keep each declaration in the
//! `pub const NAME: MetricDef = MetricDef::kind("…", Scope::…);` shape
//! (rustfmt line wrapping is fine) — the linter reads it textually.
//!
//! [`MetricsRegistry::register_counter`]: crate::registry::MetricsRegistry::register_counter

use crate::registry::Scope;

/// What kind of instrument a metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Last-value gauge (peak kept on merge).
    Gauge,
    /// Log₂-bucketed histogram.
    Histogram,
}

/// One declared metric: name, instrument kind, determinism scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Dotted snapshot key (`scan.…` / `shard.…`).
    pub name: &'static str,
    /// Instrument kind.
    pub kind: MetricKind,
    /// Determinism scope (see [`Scope`]).
    pub scope: Scope,
}

impl MetricDef {
    /// Declare a counter.
    pub const fn counter(name: &'static str, scope: Scope) -> MetricDef {
        MetricDef {
            name,
            kind: MetricKind::Counter,
            scope,
        }
    }

    /// Declare a gauge.
    pub const fn gauge(name: &'static str, scope: Scope) -> MetricDef {
        MetricDef {
            name,
            kind: MetricKind::Gauge,
            scope,
        }
    }

    /// Declare a histogram.
    pub const fn histogram(name: &'static str, scope: Scope) -> MetricDef {
        MetricDef {
            name,
            kind: MetricKind::Histogram,
            scope,
        }
    }
}

// ---------------------------------------------------------------------------
// Send path.

/// Targets admitted past filter + sampling and probed.
pub const SCAN_TARGETS_SENT: MetricDef = MetricDef::counter("scan.targets_sent", Scope::Scan);
/// SYN-ACKs that validated against the ISN cookie.
pub const SCAN_SYNACKS_VALIDATED: MetricDef =
    MetricDef::counter("scan.synacks_validated", Scope::Scan);
/// SYNs answered by RST (host up, port closed).
pub const SCAN_REFUSED: MetricDef = MetricDef::counter("scan.refused", Scope::Scan);
/// Stateful sessions created (one per responsive host).
pub const SCAN_SESSIONS_STARTED: MetricDef =
    MetricDef::counter("scan.sessions_started", Scope::Scan);

// ---------------------------------------------------------------------------
// Inference lifecycle.

/// First-retransmission detections (the "end of IW" signal).
pub const SCAN_RETRANSMITS_DETECTED: MetricDef =
    MetricDef::counter("scan.retransmits_detected", Scope::Scan);
/// 2×MSS exhaustion-verification ACKs sent.
pub const SCAN_VERIFY_ACKS_SENT: MetricDef =
    MetricDef::counter("scan.verify_acks_sent", Scope::Scan);

// Per-probe terminal outcomes.

/// Probes that concluded `Success`.
pub const SCAN_PROBES_SUCCESS: MetricDef = MetricDef::counter("scan.probes.success", Scope::Scan);
/// Probes that concluded `FewData`.
pub const SCAN_PROBES_FEW_DATA: MetricDef = MetricDef::counter("scan.probes.few_data", Scope::Scan);
/// Probes that concluded `Error`.
pub const SCAN_PROBES_ERROR: MetricDef = MetricDef::counter("scan.probes.error", Scope::Scan);
/// Probes that concluded `Unreachable`.
pub const SCAN_PROBES_UNREACHABLE: MetricDef =
    MetricDef::counter("scan.probes.unreachable", Scope::Scan);

// Per-session (primary-verdict) outcomes.

/// Sessions whose primary verdict was `Success`.
pub const SCAN_SESSIONS_SUCCESS: MetricDef =
    MetricDef::counter("scan.sessions.success", Scope::Scan);
/// Sessions whose primary verdict was `FewData`.
pub const SCAN_SESSIONS_FEW_DATA: MetricDef =
    MetricDef::counter("scan.sessions.few_data", Scope::Scan);
/// Sessions whose primary verdict was `Error`.
pub const SCAN_SESSIONS_ERROR: MetricDef = MetricDef::counter("scan.sessions.error", Scope::Scan);
/// Sessions whose primary verdict was `Unreachable`.
pub const SCAN_SESSIONS_UNREACHABLE: MetricDef =
    MetricDef::counter("scan.sessions.unreachable", Scope::Scan);

// Timing distributions.

/// SYN → SYN-ACK round-trip times.
pub const SCAN_RTT_NANOS: MetricDef = MetricDef::histogram("scan.rtt_nanos", Scope::Scan);
/// SYN-ACK → verdict session lifetimes.
pub const SCAN_SESSION_LIFETIME_NANOS: MetricDef =
    MetricDef::histogram("scan.session_lifetime_nanos", Scope::Scan);
/// Distinct payload bytes in flight at retransmit detection.
pub const SCAN_RETRANSMIT_BYTES_IN_FLIGHT: MetricDef =
    MetricDef::histogram("scan.retransmit_bytes_in_flight", Scope::Scan);

// ---------------------------------------------------------------------------
// Resilience layer (PR 2).

/// SYN retransmissions for silent targets.
pub const SCAN_SYN_RETRIES: MetricDef = MetricDef::counter("scan.syn_retries", Scope::Scan);
/// Probe connection retries on fresh source ports.
pub const SCAN_PROBES_RETRIED: MetricDef = MetricDef::counter("scan.probes.retried", Scope::Scan);
/// Sessions evicted by the `max_sessions` cap. Which session is oldest
/// depends on shard interleaving, so this is scheduling-determined and
/// MUST stay `Shard` despite the `scan.` name (kept for continuity).
pub const SCAN_SESSIONS_EVICTED: MetricDef =
    MetricDef::counter("scan.sessions.evicted", Scope::Shard);
/// Sessions force-concluded by the per-session watchdog.
pub const SCAN_SESSIONS_WATCHDOG_FORCED: MetricDef =
    MetricDef::counter("scan.sessions.watchdog_forced", Scope::Scan);
/// ICMP destination-unreachable fast-fails.
pub const SCAN_ICMP_UNREACHABLE: MetricDef =
    MetricDef::counter("scan.icmp_unreachable", Scope::Scan);

// Terminal `ProbeOutcome::Error` kinds, one counter per `ErrorKind`.

/// Errors of kind `MidConnectionReset`.
pub const SCAN_ERR_MID_CONNECTION_RESET: MetricDef =
    MetricDef::counter("scan.probes.error_kinds.mid_connection_reset", Scope::Scan);
/// Errors of kind `Malformed`.
pub const SCAN_ERR_MALFORMED: MetricDef =
    MetricDef::counter("scan.probes.error_kinds.malformed", Scope::Scan);
/// Errors of kind `Inconsistent`.
pub const SCAN_ERR_INCONSISTENT: MetricDef =
    MetricDef::counter("scan.probes.error_kinds.inconsistent", Scope::Scan);
/// Errors of kind `HandshakeTimeout`.
pub const SCAN_ERR_HANDSHAKE_TIMEOUT: MetricDef =
    MetricDef::counter("scan.probes.error_kinds.handshake_timeout", Scope::Scan);
/// Errors of kind `CollectTimeout`.
pub const SCAN_ERR_COLLECT_TIMEOUT: MetricDef =
    MetricDef::counter("scan.probes.error_kinds.collect_timeout", Scope::Scan);
/// Errors of kind `IcmpUnreachable`.
pub const SCAN_ERR_ICMP_UNREACHABLE: MetricDef =
    MetricDef::counter("scan.probes.error_kinds.icmp_unreachable", Scope::Scan);

// ---------------------------------------------------------------------------
// ICMP control-plane harvest (scan scope: which hosts send which ICMP is
// population-determined, so these merge exactly across shard counts).

/// Every ICMP message the scanner's control plane received.
pub const SCAN_ICMP_MESSAGES: MetricDef = MetricDef::counter("scan.icmp.messages", Scope::Scan);
/// Destination-unreachable, code 0 (network unreachable).
pub const SCAN_ICMP_UNREACHABLE_NET: MetricDef =
    MetricDef::counter("scan.icmp.unreachable_net", Scope::Scan);
/// Destination-unreachable, code 1 (host unreachable).
pub const SCAN_ICMP_UNREACHABLE_HOST: MetricDef =
    MetricDef::counter("scan.icmp.unreachable_host", Scope::Scan);
/// Destination-unreachable, code 3 (port unreachable).
pub const SCAN_ICMP_UNREACHABLE_PORT: MetricDef =
    MetricDef::counter("scan.icmp.unreachable_port", Scope::Scan);
/// Destination-unreachable, any other code (admin-prohibited and
/// friends).
pub const SCAN_ICMP_UNREACHABLE_OTHER: MetricDef =
    MetricDef::counter("scan.icmp.unreachable_other", Scope::Scan);
/// Fragmentation-needed messages (RFC 1191 path-MTU signal).
pub const SCAN_ICMP_FRAG_NEEDED: MetricDef =
    MetricDef::counter("scan.icmp.frag_needed", Scope::Scan);
/// Source-quench messages (type 4): the classic rate-limiting /
/// congestion back-pressure signature ("Hidden Treasures").
pub const SCAN_ICMP_SOURCE_QUENCH: MetricDef =
    MetricDef::counter("scan.icmp.source_quench", Scope::Scan);

// ---------------------------------------------------------------------------
// Stateless-first discovery (ZBanner-style hybrid mode). Which targets
// respond — and with what — is population-determined, so the counters
// are `Scan` scope and merge exactly across shard counts. The state
// peak is a scheduling fact (how much promoted state coexists depends
// on shard interleaving) and stays `Shard`, same continuity argument as
// `scan.sessions.evicted`.

/// Stateless discovery SYNs sent (first transmissions).
pub const SCAN_DISCOVERY_SYNS: MetricDef = MetricDef::counter("scan.discovery.syns", Scope::Scan);
/// Stateless discovery SYN retransmissions (attempt encoded in sport).
pub const SCAN_DISCOVERY_RETRIES: MetricDef =
    MetricDef::counter("scan.discovery.retries", Scope::Scan);
/// Discovery SYN-ACKs that validated against the ISN cookie.
pub const SCAN_DISCOVERY_VALIDATED: MetricDef =
    MetricDef::counter("scan.discovery.validated", Scope::Scan);
/// Responders promoted from discovery into a stateful IW session.
pub const SCAN_DISCOVERY_PROMOTED: MetricDef =
    MetricDef::counter("scan.discovery.promoted", Scope::Scan);
/// Valid SYN-ACKs for targets already discovered (blind-retry
/// duplicates); dropped without a second promotion.
pub const SCAN_DISCOVERY_DUPLICATES: MetricDef =
    MetricDef::counter("scan.discovery.duplicates", Scope::Scan);
/// Discovery SYN-ACKs whose ack failed cookie validation outright.
pub const SCAN_DISCOVERY_COOKIE_MISMATCH: MetricDef =
    MetricDef::counter("scan.discovery.cookie_mismatch", Scope::Scan);
/// Discovery SYN-ACKs acking the raw ISN (missing +1): broken
/// middlebox / simplistic-responder fingerprint.
pub const SCAN_DISCOVERY_RAW_ISN_ECHO: MetricDef =
    MetricDef::counter("scan.discovery.raw_isn_echo", Scope::Scan);
/// RSTs to a discovery flow whose ack failed cookie validation
/// (spoofed / backscatter; produces no verdict).
pub const SCAN_DISCOVERY_SPOOFED_RST: MetricDef =
    MetricDef::counter("scan.discovery.spoofed_rst", Scope::Scan);
/// Peak per-target scanner state (pending retries + RTT stamps +
/// promotion queue) while discovery mode is active — the memory-model
/// gate: bounded by responders, not in-flight targets.
pub const SCAN_DISCOVERY_STATE_PEAK: MetricDef =
    MetricDef::gauge("scan.discovery.state_peak", Scope::Shard);
/// RSTs on any verdict path dropped for failing cookie validation
/// (spoofed / backscatter refusals that would otherwise inflate
/// `scan.refused`).
pub const SCAN_RST_IGNORED: MetricDef = MetricDef::counter("scan.rst_ignored", Scope::Scan);

// ---------------------------------------------------------------------------
// Durable campaigns (checkpoint/resume). When a checkpoint fires is a
// per-shard scheduling fact (each shard crosses virtual-time boundaries
// on its own event stream), so these stay `Shard` despite the `scan.`
// name — same continuity argument as `scan.sessions.evicted`.

/// Periodic campaign checkpoints this shard captured.
pub const SCAN_CHECKPOINTS_TAKEN: MetricDef =
    MetricDef::counter("scan.checkpoint.taken", Scope::Shard);
/// Live sessions force-concluded by a graceful-shutdown drain.
pub const SCAN_CHECKPOINT_DRAIN_FORCED: MetricDef =
    MetricDef::counter("scan.checkpoint.drain_forced", Scope::Shard);

// ---------------------------------------------------------------------------
// Flight recorder and span tracing.

/// Flight-recorder dumps retained (sessions that ended in an error).
pub const SCAN_FLIGHT_DUMPS: MetricDef =
    MetricDef::counter("scan.flight_recorder.dumps", Scope::Scan);
/// Scan-scoped spans recorded (session phases; partition across shards).
pub const TRACE_SPANS_SCAN: MetricDef = MetricDef::counter("trace.spans.scan", Scope::Scan);
/// Shard-scoped spans recorded (event-loop hot path; includes spans
/// dropped by the retention cap).
pub const TRACE_SPANS_SHARD: MetricDef = MetricDef::counter("trace.spans.shard", Scope::Shard);
/// Virtual durations of retained shard-scoped spans.
pub const TRACE_SPAN_NANOS: MetricDef = MetricDef::histogram("trace.span_nanos", Scope::Shard);

// ---------------------------------------------------------------------------
// Scheduling (shard scope).

/// Pacing ticks taken.
pub const SHARD_PACE_TICKS: MetricDef = MetricDef::counter("shard.pace.ticks", Scope::Shard);
/// Token-bucket wait times when throttled.
pub const SHARD_PACE_TOKEN_WAIT_NANOS: MetricDef =
    MetricDef::histogram("shard.pace.token_wait_nanos", Scope::Shard);
/// Peak live sessions.
pub const SHARD_SESSIONS_LIVE_PEAK: MetricDef =
    MetricDef::gauge("shard.sessions.live_peak", Scope::Shard);
/// Targets a TX feeder thread produced for this shard's world
/// (`Topology::Threads`; zero when the scanner generates its own
/// targets). Folded in from the ring's terminal state at harvest.
pub const SHARD_TX_TARGETS: MetricDef = MetricDef::counter("shard.tx.targets", Scope::Shard);
/// Batches the TX feeder pushed into the bounded ring.
pub const SHARD_TX_BATCHES: MetricDef = MetricDef::counter("shard.tx.batches", Scope::Shard);

// ---------------------------------------------------------------------------
// Simulation kernel (shard scope: each shard drives its own event loop,
// so raw event/buffer counts depend on the shard split and stay out of
// the canonical cross-shard snapshot).

/// Events the timer-wheel queue dispatched over the run.
pub const SIM_QUEUE_EVENTS: MetricDef = MetricDef::counter("sim.queue.events", Scope::Shard);
/// Packets delivered to an endpoint (scanner-bound plus host-bound).
pub const SIM_QUEUE_PACKETS: MetricDef = MetricDef::counter("sim.queue.packets", Scope::Shard);
/// Fresh slabs the shared packet-buffer pool allocated.
pub const SIM_QUEUE_POOL_ALLOCATIONS: MetricDef =
    MetricDef::counter("sim.queue.pool_allocations", Scope::Shard);
/// Buffers served from the pool free list instead of the allocator.
pub const SIM_QUEUE_POOL_RECYCLED: MetricDef =
    MetricDef::counter("sim.queue.pool_recycled", Scope::Shard);
/// Pool buffers still checked out when the scan drained (leak tell-tale;
/// zero on a clean run).
pub const SIM_QUEUE_POOL_OUTSTANDING: MetricDef =
    MetricDef::gauge("sim.queue.pool_outstanding", Scope::Shard);

// ---------------------------------------------------------------------------
// Index blocks (array registration in the scanner).

/// Per-probe outcome counters indexed like `OutcomeKind` (success,
/// few-data, error, unreachable).
pub const PROBE_OUTCOME_COUNTERS: [&MetricDef; 4] = [
    &SCAN_PROBES_SUCCESS,
    &SCAN_PROBES_FEW_DATA,
    &SCAN_PROBES_ERROR,
    &SCAN_PROBES_UNREACHABLE,
];

/// Per-session outcome counters indexed like `OutcomeKind`.
pub const SESSION_OUTCOME_COUNTERS: [&MetricDef; 4] = [
    &SCAN_SESSIONS_SUCCESS,
    &SCAN_SESSIONS_FEW_DATA,
    &SCAN_SESSIONS_ERROR,
    &SCAN_SESSIONS_UNREACHABLE,
];

/// Error-kind counters indexed like `iw_core::ErrorKind::index()` (the
/// core crate asserts this correspondence in its tests).
pub const ERROR_KIND_COUNTERS: [&MetricDef; 6] = [
    &SCAN_ERR_MID_CONNECTION_RESET,
    &SCAN_ERR_MALFORMED,
    &SCAN_ERR_INCONSISTENT,
    &SCAN_ERR_HANDSHAKE_TIMEOUT,
    &SCAN_ERR_COLLECT_TIMEOUT,
    &SCAN_ERR_ICMP_UNREACHABLE,
];

/// Destination-unreachable subtype counters indexed like
/// `IcmpHarvest::unreachable_code_index` (net, host, port, other).
pub const ICMP_UNREACHABLE_CODE_COUNTERS: [&MetricDef; 4] = [
    &SCAN_ICMP_UNREACHABLE_NET,
    &SCAN_ICMP_UNREACHABLE_HOST,
    &SCAN_ICMP_UNREACHABLE_PORT,
    &SCAN_ICMP_UNREACHABLE_OTHER,
];

/// Every declared metric. Order matches declaration order above.
pub const ALL: [&MetricDef; 61] = [
    &SCAN_TARGETS_SENT,
    &SCAN_SYNACKS_VALIDATED,
    &SCAN_REFUSED,
    &SCAN_SESSIONS_STARTED,
    &SCAN_RETRANSMITS_DETECTED,
    &SCAN_VERIFY_ACKS_SENT,
    &SCAN_PROBES_SUCCESS,
    &SCAN_PROBES_FEW_DATA,
    &SCAN_PROBES_ERROR,
    &SCAN_PROBES_UNREACHABLE,
    &SCAN_SESSIONS_SUCCESS,
    &SCAN_SESSIONS_FEW_DATA,
    &SCAN_SESSIONS_ERROR,
    &SCAN_SESSIONS_UNREACHABLE,
    &SCAN_RTT_NANOS,
    &SCAN_SESSION_LIFETIME_NANOS,
    &SCAN_RETRANSMIT_BYTES_IN_FLIGHT,
    &SCAN_SYN_RETRIES,
    &SCAN_PROBES_RETRIED,
    &SCAN_SESSIONS_EVICTED,
    &SCAN_SESSIONS_WATCHDOG_FORCED,
    &SCAN_ICMP_UNREACHABLE,
    &SCAN_ERR_MID_CONNECTION_RESET,
    &SCAN_ERR_MALFORMED,
    &SCAN_ERR_INCONSISTENT,
    &SCAN_ERR_HANDSHAKE_TIMEOUT,
    &SCAN_ERR_COLLECT_TIMEOUT,
    &SCAN_ERR_ICMP_UNREACHABLE,
    &SCAN_ICMP_MESSAGES,
    &SCAN_ICMP_UNREACHABLE_NET,
    &SCAN_ICMP_UNREACHABLE_HOST,
    &SCAN_ICMP_UNREACHABLE_PORT,
    &SCAN_ICMP_UNREACHABLE_OTHER,
    &SCAN_ICMP_FRAG_NEEDED,
    &SCAN_ICMP_SOURCE_QUENCH,
    &SCAN_DISCOVERY_SYNS,
    &SCAN_DISCOVERY_RETRIES,
    &SCAN_DISCOVERY_VALIDATED,
    &SCAN_DISCOVERY_PROMOTED,
    &SCAN_DISCOVERY_DUPLICATES,
    &SCAN_DISCOVERY_COOKIE_MISMATCH,
    &SCAN_DISCOVERY_RAW_ISN_ECHO,
    &SCAN_DISCOVERY_SPOOFED_RST,
    &SCAN_DISCOVERY_STATE_PEAK,
    &SCAN_RST_IGNORED,
    &SCAN_CHECKPOINTS_TAKEN,
    &SCAN_CHECKPOINT_DRAIN_FORCED,
    &SCAN_FLIGHT_DUMPS,
    &TRACE_SPANS_SCAN,
    &TRACE_SPANS_SHARD,
    &TRACE_SPAN_NANOS,
    &SHARD_PACE_TICKS,
    &SHARD_PACE_TOKEN_WAIT_NANOS,
    &SHARD_SESSIONS_LIVE_PEAK,
    &SHARD_TX_TARGETS,
    &SHARD_TX_BATCHES,
    &SIM_QUEUE_EVENTS,
    &SIM_QUEUE_PACKETS,
    &SIM_QUEUE_POOL_ALLOCATIONS,
    &SIM_QUEUE_POOL_RECYCLED,
    &SIM_QUEUE_POOL_OUTSTANDING,
];

/// Look a metric up by snapshot name.
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    ALL.iter().copied().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for def in ALL {
            assert!(seen.insert(def.name), "duplicate metric {}", def.name);
            assert!(
                def.name.starts_with("scan.")
                    || def.name.starts_with("shard.")
                    || def.name.starts_with("sim.")
                    || def.name.starts_with("trace."),
                "{} lacks a scan./shard./sim./trace. prefix",
                def.name
            );
            assert!(
                def.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{} has invalid characters",
                def.name
            );
        }
    }

    #[test]
    fn lookup_finds_declared_metrics() {
        assert_eq!(lookup("scan.rtt_nanos"), Some(&SCAN_RTT_NANOS));
        assert_eq!(lookup("scan.sessions.evicted").unwrap().scope, Scope::Shard);
        assert_eq!(lookup("no.such.metric"), None);
    }

    #[test]
    fn index_blocks_are_subsets_of_all() {
        for def in PROBE_OUTCOME_COUNTERS
            .iter()
            .chain(SESSION_OUTCOME_COUNTERS.iter())
            .chain(ERROR_KIND_COUNTERS.iter())
            .chain(ICMP_UNREACHABLE_CODE_COUNTERS.iter())
        {
            assert!(lookup(def.name).is_some(), "{} not in ALL", def.name);
            assert_eq!(def.kind, MetricKind::Counter);
        }
    }

    #[test]
    fn eviction_stays_shard_scoped() {
        // The determinism contract: eviction order depends on shard
        // interleaving, so this metric must never enter the canonical
        // (Scan) snapshot. See DESIGN §8.
        assert_eq!(SCAN_SESSIONS_EVICTED.scope, Scope::Shard);
    }

    #[test]
    fn discovery_scopes_split_correctly() {
        // Response counters are population-determined (Scan); the state
        // peak depends on shard interleaving and stays Shard — the
        // memory gate reads it per shard, never from the canonical
        // snapshot.
        assert_eq!(SCAN_DISCOVERY_VALIDATED.scope, Scope::Scan);
        assert_eq!(SCAN_DISCOVERY_PROMOTED.scope, Scope::Scan);
        assert_eq!(SCAN_DISCOVERY_STATE_PEAK.scope, Scope::Shard);
        assert_eq!(SCAN_DISCOVERY_STATE_PEAK.kind, MetricKind::Gauge);
    }
}
