//! Virtual-time span tracing: the scan's flame graph.
//!
//! A [`Tracer`] collects [`SpanRecord`]s — named intervals of **virtual**
//! time (the simulator clock, never the wall clock) — and exports them as
//! Chrome trace-event JSON loadable in `chrome://tracing` or Perfetto.
//! Spans come in two determinism classes, mirroring the metric scopes in
//! [`crate::registry::Scope`]:
//!
//! * [`SpanScope::Scan`] — population-determined spans (session phases,
//!   handshakes, inference probes). Keyed by target address, these
//!   partition across ZMap shards exactly, and a target's timeline is
//!   translation-invariant (every event is an offset from its SYN), so
//!   the canonical export — which re-bases each track to its first
//!   event — is **byte-identical** whether the scan ran on one thread
//!   or many.
//! * [`SpanScope::Shard`] — scheduling-determined spans from the event
//!   loop hot path (timer-wheel advances, packet fan-out batches, pacing
//!   ticks). These depend on how the scan was sharded and are therefore
//!   kept out of the canonical export; [`Tracer::to_chrome_json_full`]
//!   includes them for single-shard deep dives.
//!
//! The tracer is ~zero-cost when disabled: every recording entry point
//! checks one `bool` and returns. Nesting needs no explicit stack —
//! Chrome "complete" (`ph:"X"`) events nest by timestamp containment on
//! the same track, and each target gets its own track (`tid` = address).

use crate::json::{push_key, push_str_literal, push_u64_field};
use std::collections::BTreeMap;

/// Determinism class of a span (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanScope {
    /// Population-determined: merges byte-identically across shard counts.
    Scan,
    /// Scheduling-determined: excluded from the canonical export.
    Shard,
}

/// One named interval of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Determinism class.
    pub scope: SpanScope,
    /// Start of the interval, nanoseconds of virtual time.
    pub start_nanos: u64,
    /// Length of the interval in nanoseconds (0 = instant event).
    pub dur_nanos: u64,
    /// Track key: the target address for session spans, 0 for
    /// scanner/simulator-global spans.
    pub key: u32,
    /// Span name (static so the hot path never allocates).
    pub name: &'static str,
    /// One free argument (probe index, batch size, grant count, ...).
    pub arg: u64,
}

impl SpanRecord {
    /// Sort key: virtual-time order with deterministic tie-breaks, scan
    /// spans ahead of shard spans.
    fn sort_key(&self) -> (SpanScope, u64, u32, &'static str, u64, u64) {
        (
            self.scope,
            self.start_nanos,
            self.key,
            self.name,
            self.dur_nanos,
            self.arg,
        )
    }
}

/// Upper bound on retained shard-scoped (hot-path) spans. The event loop
/// can advance the wheel millions of times in a large scan; past the cap
/// the tracer keeps counting but stops storing, so memory stays bounded.
pub const SHARD_SPAN_CAP: usize = 1 << 16;

/// Span collector and Chrome trace-event exporter. See module docs.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    enabled: bool,
    spans: Vec<SpanRecord>,
    /// Begin timestamps of spans opened but not yet closed, keyed by
    /// `(track key, slot)`. Ordered map: iteration order never leaks into
    /// output, but determinism is cheap to keep everywhere.
    open: BTreeMap<(u32, u8), u64>,
    /// Shard-scoped spans retained in `spans` (≤ [`SHARD_SPAN_CAP`]).
    shard_retained: usize,
    /// Shard-scoped spans recorded (including any past [`SHARD_SPAN_CAP`]).
    shard_total: u64,
    /// Shard-scoped spans dropped by the cap.
    shard_dropped: u64,
}

impl Tracer {
    /// A tracer; disabled tracers never record or allocate.
    pub fn new(enabled: bool) -> Tracer {
        Tracer {
            enabled,
            ..Tracer::default()
        }
    }

    /// Is recording on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a finished scan-scoped span.
    #[inline]
    pub fn record_scan(
        &mut self,
        start_nanos: u64,
        end_nanos: u64,
        key: u32,
        name: &'static str,
        arg: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.push(SpanRecord {
            scope: SpanScope::Scan,
            start_nanos,
            dur_nanos: end_nanos.saturating_sub(start_nanos),
            key,
            name,
            arg,
        });
    }

    /// Record a finished shard-scoped (hot-path) span. Counted always,
    /// stored only up to [`SHARD_SPAN_CAP`].
    #[inline]
    pub fn record_shard(
        &mut self,
        start_nanos: u64,
        end_nanos: u64,
        key: u32,
        name: &'static str,
        arg: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.shard_total += 1;
        if self.shard_retained >= SHARD_SPAN_CAP {
            self.shard_dropped += 1;
            return;
        }
        self.shard_retained += 1;
        self.spans.push(SpanRecord {
            scope: SpanScope::Shard,
            start_nanos,
            dur_nanos: end_nanos.saturating_sub(start_nanos),
            key,
            name,
            arg,
        });
    }

    /// Record an instant (zero-duration) shard-scoped event.
    #[inline]
    pub fn instant_shard(&mut self, at_nanos: u64, key: u32, name: &'static str, arg: u64) {
        self.record_shard(at_nanos, at_nanos, key, name, arg);
    }

    /// Open a nestable scan span on `(key, slot)` at `start_nanos`.
    /// Re-opening an open slot restarts it.
    #[inline]
    pub fn open(&mut self, key: u32, slot: u8, start_nanos: u64) {
        if !self.enabled {
            return;
        }
        self.open.insert((key, slot), start_nanos);
    }

    /// Close the scan span opened on `(key, slot)`; no-op if the slot was
    /// never opened (e.g. the tracer was enabled mid-flight).
    #[inline]
    pub fn close(&mut self, key: u32, slot: u8, end_nanos: u64, name: &'static str, arg: u64) {
        if !self.enabled {
            return;
        }
        if let Some(start) = self.open.remove(&(key, slot)) {
            self.record_scan(start, end_nanos, key, name, arg);
        }
    }

    /// Drop an open slot without recording (clean abandon).
    #[inline]
    pub fn discard(&mut self, key: u32, slot: u8) {
        if !self.enabled {
            return;
        }
        self.open.remove(&(key, slot));
    }

    /// All retained spans, canonical order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Retained scan-scoped spans.
    pub fn scan_spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.scope == SpanScope::Scan)
    }

    /// Retained shard-scoped spans.
    pub fn shard_spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(|s| s.scope == SpanScope::Shard)
    }

    /// Number of scan-scoped spans recorded.
    pub fn scan_span_count(&self) -> u64 {
        (self.spans.len() - self.shard_retained) as u64
    }

    /// Number of shard-scoped spans *retained* (≤ [`SHARD_SPAN_CAP`]).
    pub fn shard_span_count(&self) -> usize {
        self.shard_retained
    }

    /// Number of shard-scoped spans *recorded*, including capped ones.
    pub fn shard_span_total(&self) -> u64 {
        self.shard_total
    }

    /// Shard-scoped spans dropped by [`SHARD_SPAN_CAP`].
    pub fn shard_spans_dropped(&self) -> u64 {
        self.shard_dropped
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Merge another shard's spans and restore canonical order. Because
    /// scan spans partition across shards by target address, merging N
    /// shard tracers reproduces the single-shard span list exactly.
    pub fn merge(&mut self, other: &Tracer) {
        self.enabled |= other.enabled;
        self.spans.extend_from_slice(&other.spans);
        self.shard_retained += other.shard_retained;
        self.shard_total += other.shard_total;
        self.shard_dropped += other.shard_dropped;
        self.spans.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    }

    /// Canonical Chrome trace-event export: **scan-scoped spans only**,
    /// each track (target) re-based to its own first event. A target's
    /// session timeline is translation-invariant — every event is an
    /// offset from its SYN — while its absolute placement depends on
    /// which shard paced it, so re-basing makes the bytes identical
    /// across runs **and across shard counts**. Load in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn to_chrome_json(&self) -> String {
        self.chrome_json(false)
    }

    /// Full export including shard-scoped hot-path spans (`pid` 2). The
    /// shard section depends on thread count; diff-stable only for a
    /// fixed sharding.
    pub fn to_chrome_json_full(&self) -> String {
        self.chrome_json(true)
    }

    fn chrome_json(&self, include_shard: bool) -> String {
        let mut out = String::new();
        out.push('{');
        push_key(&mut out, "displayTimeUnit");
        out.push_str("\"ms\",");
        push_key(&mut out, "traceEvents");
        out.push('[');
        push_meta(&mut out, 1, "scan sessions");
        if include_shard {
            out.push(',');
            push_meta(&mut out, 2, "event-loop hot path");
        }
        let mut sorted: Vec<&SpanRecord> = self
            .spans
            .iter()
            .filter(|s| include_shard || s.scope == SpanScope::Scan)
            .collect();
        let mut base: BTreeMap<u32, u64> = BTreeMap::new();
        if include_shard {
            sorted.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        } else {
            // Canonical order is track-major: absolute order across
            // tracks is scheduling-determined, order *within* a track is
            // not. The earliest span per track becomes its time base.
            sorted.sort_by_key(|s| (s.key, s.start_nanos, s.name, s.dur_nanos, s.arg));
            for s in &sorted {
                base.entry(s.key)
                    .and_modify(|m| *m = (*m).min(s.start_nanos))
                    .or_insert(s.start_nanos);
            }
        }
        for s in sorted {
            out.push(',');
            out.push('{');
            push_key(&mut out, "name");
            push_str_literal(&mut out, s.name);
            out.push(',');
            push_key(&mut out, "cat");
            push_str_literal(
                &mut out,
                match s.scope {
                    SpanScope::Scan => "scan",
                    SpanScope::Shard => "shard",
                },
            );
            out.push(',');
            push_key(&mut out, "ph");
            out.push_str("\"X\",");
            push_key(&mut out, "ts");
            let rebase = base.get(&s.key).copied().unwrap_or(0);
            push_micros(&mut out, s.start_nanos - rebase);
            out.push(',');
            push_key(&mut out, "dur");
            push_micros(&mut out, s.dur_nanos);
            out.push(',');
            push_u64_field(
                &mut out,
                "pid",
                match s.scope {
                    SpanScope::Scan => 1,
                    SpanScope::Shard => 2,
                },
            );
            out.push(',');
            push_u64_field(&mut out, "tid", u64::from(s.key));
            out.push(',');
            push_key(&mut out, "args");
            out.push('{');
            push_u64_field(&mut out, "arg", s.arg);
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// A Chrome `process_name` metadata event.
fn push_meta(out: &mut String, pid: u64, name: &str) {
    out.push('{');
    push_key(out, "name");
    out.push_str("\"process_name\",");
    push_key(out, "ph");
    out.push_str("\"M\",");
    push_u64_field(out, "pid", pid);
    out.push(',');
    push_key(out, "args");
    out.push('{');
    push_key(out, "name");
    push_str_literal(out, name);
    out.push_str("}}");
}

/// Append `nanos` as microseconds with fixed three-digit nanosecond
/// fraction (`1234.567`). Integer arithmetic only: byte-stable.
fn push_micros(out: &mut String, nanos: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{}.{:03}", nanos / 1_000, nanos % 1_000);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(false);
        t.record_scan(0, 10, 1, "session", 0);
        t.record_shard(0, 10, 0, "pace.tick", 3);
        t.open(1, 0, 5);
        t.close(1, 0, 9, "probe", 0);
        assert!(t.is_empty());
        assert_eq!(t.shard_span_total(), 0);
    }

    #[test]
    fn open_close_records_the_interval() {
        let mut t = Tracer::new(true);
        t.open(7, 2, 1_000);
        t.close(7, 2, 4_500, "probe", 2);
        // Closing an unopened slot is a no-op.
        t.close(8, 0, 9_999, "probe", 0);
        assert_eq!(t.spans().len(), 1);
        let s = t.spans()[0];
        assert_eq!(
            (s.start_nanos, s.dur_nanos, s.key, s.name, s.arg),
            (1_000, 3_500, 7, "probe", 2)
        );
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = Tracer::new(true);
        a.record_scan(10, 20, 2, "session", 0);
        a.record_shard(0, 5, 0, "wheel", 1);
        let mut b = Tracer::new(true);
        b.record_scan(5, 9, 1, "session", 0);
        b.record_shard(6, 8, 0, "wheel", 1);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.spans(), ba.spans());
        assert_eq!(ab.to_chrome_json_full(), ba.to_chrome_json_full());
    }

    #[test]
    fn canonical_export_excludes_shard_spans() {
        let mut t = Tracer::new(true);
        t.record_scan(1_000, 2_000, 0x0a000001, "handshake", 0);
        t.record_scan(1_500, 1_800, 0x0a000001, "probe", 1);
        t.record_shard(0, 500, 0, "pace.tick", 9);
        let json = t.to_chrome_json();
        assert!(json.contains("\"handshake\""), "{json}");
        assert!(!json.contains("pace.tick"), "{json}");
        // The track is re-based to its first event: the handshake starts
        // at 0, the nested probe keeps its 500 ns offset.
        assert!(json.contains("\"ts\":0.000,\"dur\":1.000"), "{json}");
        assert!(json.contains("\"ts\":0.500,\"dur\":0.300"), "{json}");
        // Valid trace shape: object with a traceEvents array.
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // The full export keeps the hot path under its own pid.
        let full = t.to_chrome_json_full();
        assert!(full.contains("pace.tick"), "{full}");
        assert!(full.contains("\"pid\":2"), "{full}");
    }

    #[test]
    fn canonical_export_is_translation_invariant_per_track() {
        // The same session recorded at a different absolute time (as
        // happens when another shard paces the target later) exports
        // identically; the full export keeps absolute placement.
        let mut a = Tracer::new(true);
        a.record_scan(1_000, 3_000, 1, "session", 0);
        a.record_scan(1_200, 1_900, 1, "probe", 0);
        let mut b = Tracer::new(true);
        b.record_scan(501_000, 503_000, 1, "session", 0);
        b.record_scan(501_200, 501_900, 1, "probe", 0);
        assert_eq!(a.to_chrome_json(), b.to_chrome_json());
        assert_ne!(a.to_chrome_json_full(), b.to_chrome_json_full());
    }

    #[test]
    fn shard_span_cap_bounds_memory() {
        let mut t = Tracer::new(true);
        for i in 0..(SHARD_SPAN_CAP as u64 + 100) {
            t.record_shard(i, i + 1, 0, "wheel", 0);
        }
        assert_eq!(t.shard_span_count(), SHARD_SPAN_CAP);
        assert_eq!(t.shard_span_total(), SHARD_SPAN_CAP as u64 + 100);
        assert_eq!(t.shard_spans_dropped(), 100);
    }

    #[test]
    fn micros_formatting_is_fixed_width() {
        let mut s = String::new();
        push_micros(&mut s, 1);
        s.push(' ');
        push_micros(&mut s, 1_234_567);
        assert_eq!(s, "0.001 1234.567");
    }
}
