//! The ZMap-style progress monitor.
//!
//! The monitor turns a periodic [`ProgressSample`] (taken by the scanner on
//! a virtual-time timer) into a one-line status report: elapsed time, send
//! progress, achieved vs. configured pps, hit count and rate, live session
//! count, verdict mix and an ETA. Lines go to a pluggable [`StatusSink`] so
//! the CLI can print to stderr while tests capture into a buffer.

use std::fmt::Write;

/// Where status lines go.
pub trait StatusSink {
    /// Deliver one rendered status line.
    fn emit(&mut self, line: &str);
}

/// Prints each status line to stdout (the CLI's `--monitor` sink).
#[derive(Debug, Default)]
pub struct StdoutSink;

impl StatusSink for StdoutSink {
    fn emit(&mut self, line: &str) {
        println!("{line}");
    }
}

/// Collects status lines into a vector (for tests and for surfacing the
/// lines of a sharded run back through the driver).
#[derive(Debug, Default)]
pub struct BufferSink {
    /// The captured lines, in emission order.
    pub lines: Vec<String>,
}

impl StatusSink for BufferSink {
    fn emit(&mut self, line: &str) {
        self.lines.push(line.to_string());
    }
}

/// A point-in-time reading of scan progress, in scanner-native units.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgressSample {
    /// Virtual nanoseconds since scan start.
    pub elapsed_nanos: u64,
    /// SYNs sent so far.
    pub targets_sent: u64,
    /// Total targets this shard will send (estimate; 0 = unknown).
    pub targets_total: u64,
    /// Hosts that answered with a valid SYN-ACK.
    pub hits: u64,
    /// Sessions currently live.
    pub live_sessions: u64,
    /// Configured send rate (packets per second).
    pub configured_pps: u64,
    /// Sessions finished per terminal outcome:
    /// `[success, few_data, error, unreachable]`.
    pub verdicts: [u64; 4],
}

impl ProgressSample {
    /// Achieved send rate so far, in packets per second.
    pub fn achieved_pps(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            return 0.0;
        }
        self.targets_sent as f64 * 1e9 / self.elapsed_nanos as f64
    }

    /// Fraction of hits per target sent (0 when nothing sent yet).
    pub fn hit_rate(&self) -> f64 {
        if self.targets_sent == 0 {
            return 0.0;
        }
        self.hits as f64 / self.targets_sent as f64
    }
}

/// Renders periodic status lines from progress samples.
///
/// Driven entirely by the caller's (virtual) clock: `due` says whether the
/// next report time has been reached and `report` renders + emits a line.
#[derive(Debug)]
pub struct ProgressMonitor {
    interval_nanos: u64,
    next_at: u64,
    reports: u64,
}

impl ProgressMonitor {
    /// A monitor reporting every `interval_nanos` of virtual time.
    pub fn new(interval_nanos: u64) -> ProgressMonitor {
        ProgressMonitor {
            interval_nanos: interval_nanos.max(1),
            next_at: interval_nanos.max(1),
            reports: 0,
        }
    }

    /// The reporting interval in nanoseconds.
    pub fn interval_nanos(&self) -> u64 {
        self.interval_nanos
    }

    /// Whether a report is due at `elapsed_nanos`.
    pub fn due(&self, elapsed_nanos: u64) -> bool {
        elapsed_nanos >= self.next_at
    }

    /// Number of lines emitted so far.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Render a status line for `sample` and emit it to `sink`, then
    /// schedule the next report one interval later.
    pub fn report(&mut self, sample: &ProgressSample, sink: &mut dyn StatusSink) {
        let line = Self::format_line(sample);
        sink.emit(&line);
        self.reports += 1;
        // Skip intervals that have already passed (e.g. after a long idle
        // drain phase) instead of emitting a burst of stale lines.
        while self.next_at <= sample.elapsed_nanos {
            self.next_at += self.interval_nanos;
        }
    }

    /// Emit one last status line at scan completion, even mid-interval,
    /// so the final state (all verdicts settled, `live: 0`) is always
    /// reported. `error_kinds` carries `(name, count)` tallies; nonzero
    /// kinds are appended as an `; errors: name=count ...` suffix so an
    /// operator sees *why* sessions failed without opening the metrics
    /// file. Emits nothing if the very last periodic line already covered
    /// this sample's timestamp.
    pub fn final_report(
        &mut self,
        sample: &ProgressSample,
        error_kinds: &[(&'static str, u64)],
        sink: &mut dyn StatusSink,
    ) {
        // `next_at` trails the last reported timestamp by exactly one
        // interval, so this is "already reported at or after this time".
        if self.reports > 0 && sample.elapsed_nanos + self.interval_nanos <= self.next_at {
            return;
        }
        let mut line = Self::format_line(sample);
        let mut first = true;
        for (name, count) in error_kinds {
            if *count == 0 {
                continue;
            }
            if first {
                line.push_str("; errors:");
                first = false;
            }
            let _ = write!(line, " {name}={count}");
        }
        sink.emit(&line);
        self.reports += 1;
        while self.next_at <= sample.elapsed_nanos {
            self.next_at += self.interval_nanos;
        }
    }

    /// The ZMap-style status line, e.g.:
    ///
    /// `0:05 12.5% (1:30 left); send: 12500 pps: 2.5 Kp/s (cfg 2.5 Kp/s); hits: 230 (1.84%); live: 96; ok/few/err/unr: 180/20/10/0`
    pub fn format_line(s: &ProgressSample) -> String {
        let mut line = String::new();
        let _ = write!(line, "{}", fmt_clock(s.elapsed_nanos));
        if s.targets_total > 0 {
            let pct = 100.0 * s.targets_sent as f64 / s.targets_total as f64;
            let _ = write!(line, " {:.1}%", pct.min(100.0));
            let pps = s.achieved_pps();
            if pps > 0.0 && s.targets_sent < s.targets_total {
                let left = (s.targets_total - s.targets_sent) as f64 / pps;
                let _ = write!(line, " ({} left)", fmt_clock((left * 1e9) as u64));
            } else if s.targets_sent >= s.targets_total {
                line.push_str(" (sending done)");
            }
        }
        let _ = write!(
            line,
            "; send: {} pps: {} (cfg {}); hits: {} ({:.2}%); live: {}",
            s.targets_sent,
            fmt_pps(s.achieved_pps()),
            fmt_pps(s.configured_pps as f64),
            s.hits,
            100.0 * s.hit_rate(),
            s.live_sessions,
        );
        let _ = write!(
            line,
            "; ok/few/err/unr: {}/{}/{}/{}",
            s.verdicts[0], s.verdicts[1], s.verdicts[2], s.verdicts[3]
        );
        line
    }
}

/// `h:mm:ss` (hours omitted when zero) from nanoseconds.
fn fmt_clock(nanos: u64) -> String {
    let total_secs = nanos / 1_000_000_000;
    let (h, m, s) = (total_secs / 3600, (total_secs / 60) % 60, total_secs % 60);
    if h > 0 {
        format!("{h}:{m:02}:{s:02}")
    } else {
        format!("{m}:{s:02}")
    }
}

/// Humanized packets-per-second: `850 p/s`, `2.5 Kp/s`, `1.2 Mp/s`.
fn fmt_pps(pps: f64) -> String {
    if pps >= 1_000_000.0 {
        format!("{:.1} Mp/s", pps / 1_000_000.0)
    } else if pps >= 1_000.0 {
        format!("{:.1} Kp/s", pps / 1_000.0)
    } else {
        format!("{pps:.0} p/s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_and_pps_formatting() {
        assert_eq!(fmt_clock(0), "0:00");
        assert_eq!(fmt_clock(65 * 1_000_000_000), "1:05");
        assert_eq!(fmt_clock(3_661 * 1_000_000_000), "1:01:01");
        assert_eq!(fmt_pps(850.0), "850 p/s");
        assert_eq!(fmt_pps(2_500.0), "2.5 Kp/s");
        assert_eq!(fmt_pps(1_200_000.0), "1.2 Mp/s");
    }

    #[test]
    fn due_and_rescheduling() {
        let mut m = ProgressMonitor::new(1_000_000_000);
        let mut sink = BufferSink::default();
        assert!(!m.due(999_999_999));
        assert!(m.due(1_000_000_000));
        let sample = ProgressSample {
            elapsed_nanos: 1_000_000_000,
            ..ProgressSample::default()
        };
        m.report(&sample, &mut sink);
        assert!(!m.due(1_500_000_000));
        assert!(m.due(2_000_000_000));
        // A long stall skips missed intervals rather than bursting.
        let late = ProgressSample {
            elapsed_nanos: 10_500_000_000,
            ..ProgressSample::default()
        };
        m.report(&late, &mut sink);
        assert!(!m.due(10_900_000_000));
        assert!(m.due(11_000_000_000));
        assert_eq!(m.reports(), 2);
        assert_eq!(sink.lines.len(), 2);
    }

    #[test]
    fn status_line_shape() {
        let s = ProgressSample {
            elapsed_nanos: 5_000_000_000,
            targets_sent: 12_500,
            targets_total: 100_000,
            hits: 230,
            live_sessions: 96,
            configured_pps: 2_500,
            verdicts: [180, 20, 10, 0],
        };
        let line = ProgressMonitor::format_line(&s);
        assert_eq!(
            line,
            "0:05 12.5% (0:35 left); send: 12500 pps: 2.5 Kp/s (cfg 2.5 Kp/s); \
             hits: 230 (1.84%); live: 96; ok/few/err/unr: 180/20/10/0"
        );
    }

    #[test]
    fn final_report_flushes_mid_interval_with_error_tallies() {
        let mut m = ProgressMonitor::new(1_000_000_000);
        let mut sink = BufferSink::default();
        m.report(
            &ProgressSample {
                elapsed_nanos: 1_000_000_000,
                ..ProgressSample::default()
            },
            &mut sink,
        );
        // Scan ends 400 ms into the next interval: a periodic line is not
        // due, but the final flush still lands.
        let end = ProgressSample {
            elapsed_nanos: 1_400_000_000,
            targets_sent: 100,
            targets_total: 100,
            hits: 40,
            verdicts: [30, 5, 4, 1],
            ..ProgressSample::default()
        };
        assert!(!m.due(end.elapsed_nanos));
        m.final_report(
            &end,
            &[
                ("handshake_timeout", 3),
                ("malformed", 0),
                ("mid_connection_reset", 1),
            ],
            &mut sink,
        );
        assert_eq!(m.reports(), 2);
        let last = sink.lines.last().unwrap();
        assert!(last.contains("(sending done)"), "{last}");
        assert!(last.contains("ok/few/err/unr: 30/5/4/1"), "{last}");
        assert!(
            last.ends_with("; errors: handshake_timeout=3 mid_connection_reset=1"),
            "{last}"
        );
    }

    #[test]
    fn final_report_skips_duplicate_and_omits_empty_error_suffix() {
        let mut m = ProgressMonitor::new(1_000_000_000);
        let mut sink = BufferSink::default();
        let at_tick = ProgressSample {
            elapsed_nanos: 1_000_000_000,
            ..ProgressSample::default()
        };
        m.report(&at_tick, &mut sink);
        // Scan ends exactly at the last periodic report: nothing new to say.
        m.final_report(&at_tick, &[("malformed", 1)], &mut sink);
        assert_eq!(sink.lines.len(), 1);

        // A fresh monitor that never reported still flushes, and an
        // all-zero tally adds no errors suffix.
        let mut m2 = ProgressMonitor::new(1_000_000_000);
        let mut sink2 = BufferSink::default();
        m2.final_report(
            &ProgressSample {
                elapsed_nanos: 300_000_000,
                ..ProgressSample::default()
            },
            &[("malformed", 0)],
            &mut sink2,
        );
        assert_eq!(sink2.lines.len(), 1);
        assert!(!sink2.lines[0].contains("errors"), "{}", sink2.lines[0]);
    }

    #[test]
    fn status_line_when_done_and_when_total_unknown() {
        let done = ProgressSample {
            elapsed_nanos: 2_000_000_000,
            targets_sent: 100,
            targets_total: 100,
            ..ProgressSample::default()
        };
        assert!(ProgressMonitor::format_line(&done).contains("(sending done)"));
        let unknown = ProgressSample {
            elapsed_nanos: 2_000_000_000,
            targets_sent: 100,
            targets_total: 0,
            ..ProgressSample::default()
        };
        let line = ProgressMonitor::format_line(&unknown);
        assert!(line.starts_with("0:02; send: 100"), "{line}");
    }
}
