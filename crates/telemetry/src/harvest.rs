//! ICMP control-plane harvest: the scan's side-channel, kept.
//!
//! A large TCP scan provokes a steady drizzle of ICMP back-traffic —
//! destination-unreachable subtypes from routers and end hosts,
//! fragmentation-needed from path-MTU bottlenecks — that the original
//! tooling simply discarded after using it to fast-fail targets. The
//! harvest classifies and retains it: per-subtype tallies, per-source
//! message counts, and a crude rate-limiting signature (sources emitting
//! bursts of messages, the fingerprint of an ICMP-rate-limited router
//! speaking for many targets).
//!
//! Everything here is population-determined — which hosts send which
//! ICMP depends only on the target set — so harvests merge exactly
//! across shards and the rendered manifest section is byte-identical
//! for any shard count. Mirrored into the `scan.icmp.*` metric family.

use crate::json::{push_key, push_u64_field};
use std::collections::BTreeMap;

/// A source this chatty is treated as rate-limiting signature material.
pub const RATE_LIMIT_SIGNATURE_THRESHOLD: u64 = 8;

/// How many top talkers the manifest section lists.
const TOP_TALKERS: usize = 5;

/// How many rate-limited source addresses the manifest section lists
/// (the full count is always in `rate_limited_sources`).
const RATE_LIMITED_LISTED: usize = 16;

/// Classified, retained ICMP side-traffic. See module docs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IcmpHarvest {
    /// Every ICMP message seen by the scanner's control plane.
    pub messages: u64,
    /// Destination-unreachable, code 0 (network unreachable).
    pub unreachable_net: u64,
    /// Destination-unreachable, code 1 (host unreachable).
    pub unreachable_host: u64,
    /// Destination-unreachable, code 3 (port unreachable).
    pub unreachable_port: u64,
    /// Destination-unreachable, any other code.
    pub unreachable_other: u64,
    /// Fragmentation-needed (RFC 1191 path-MTU signal).
    pub frag_needed: u64,
    /// Echo replies (MTU-probe mode answers).
    pub echo_replies: u64,
    /// Source-quench messages (type 4): routers/hosts asking the sender
    /// to slow down — the classic rate-limiting signature.
    pub source_quench: u64,
    /// Anything else (echo requests, unknown types).
    pub other: u64,
    /// Messages per source address.
    per_source: BTreeMap<u32, u64>,
}

impl IcmpHarvest {
    /// Index of a destination-unreachable `code` into the four
    /// subtype counters: 0 = net, 1 = host, 2 = port, 3 = other.
    /// Shared with the `scan.icmp.unreachable_*` manifest block.
    pub fn unreachable_code_index(code: u8) -> usize {
        match code {
            0 => 0,
            1 => 1,
            3 => 2,
            _ => 3,
        }
    }

    /// Note a destination-unreachable from `src` with the given code.
    pub fn note_unreachable(&mut self, src: u32, code: u8) {
        match Self::unreachable_code_index(code) {
            0 => self.unreachable_net += 1,
            1 => self.unreachable_host += 1,
            2 => self.unreachable_port += 1,
            _ => self.unreachable_other += 1,
        }
        self.note_source(src);
    }

    /// Note a fragmentation-needed from `src`.
    pub fn note_frag_needed(&mut self, src: u32) {
        self.frag_needed += 1;
        self.note_source(src);
    }

    /// Note an echo reply from `src`.
    pub fn note_echo_reply(&mut self, src: u32) {
        self.echo_replies += 1;
        self.note_source(src);
    }

    /// Note a source-quench from `src`.
    pub fn note_source_quench(&mut self, src: u32) {
        self.source_quench += 1;
        self.note_source(src);
    }

    /// Note any other ICMP message from `src`.
    pub fn note_other(&mut self, src: u32) {
        self.other += 1;
        self.note_source(src);
    }

    fn note_source(&mut self, src: u32) {
        self.messages += 1;
        *self.per_source.entry(src).or_insert(0) += 1;
    }

    /// Distinct sources seen.
    pub fn sources(&self) -> usize {
        self.per_source.len()
    }

    /// Largest per-source message count.
    pub fn max_per_source(&self) -> u64 {
        self.per_source.values().copied().max().unwrap_or(0)
    }

    /// Sources at or past [`RATE_LIMIT_SIGNATURE_THRESHOLD`].
    pub fn rate_limited_sources(&self) -> u64 {
        self.per_source
            .values()
            .filter(|c| **c >= RATE_LIMIT_SIGNATURE_THRESHOLD)
            .count() as u64
    }

    /// Does `target` carry the rate-limiting signature? In the simulated
    /// internet ICMP carries no quoted datagram, so the message source
    /// *is* the target it speaks for.
    pub fn is_rate_limited(&self, target: u32) -> bool {
        self.per_source
            .get(&target)
            .is_some_and(|c| *c >= RATE_LIMIT_SIGNATURE_THRESHOLD)
    }

    /// Per-subtype share of all harvested messages, in basis points of
    /// 10 000 (integer arithmetic — byte-stable). Order: unreachable
    /// (all codes), frag-needed, echo-reply, source-quench, other.
    pub fn subtype_rates_per_10k(&self) -> [u64; 5] {
        if self.messages == 0 {
            return [0; 5];
        }
        let unreachable = self.unreachable_net
            + self.unreachable_host
            + self.unreachable_port
            + self.unreachable_other;
        [
            unreachable,
            self.frag_needed,
            self.echo_replies,
            self.source_quench,
            self.other,
        ]
        .map(|n| n * 10_000 / self.messages)
    }

    /// True when no ICMP was harvested.
    pub fn is_empty(&self) -> bool {
        self.messages == 0
    }

    /// Merge another shard's harvest (exact: everything is additive).
    pub fn merge(&mut self, other: &IcmpHarvest) {
        self.messages += other.messages;
        self.unreachable_net += other.unreachable_net;
        self.unreachable_host += other.unreachable_host;
        self.unreachable_port += other.unreachable_port;
        self.unreachable_other += other.unreachable_other;
        self.frag_needed += other.frag_needed;
        self.echo_replies += other.echo_replies;
        self.source_quench += other.source_quench;
        self.other += other.other;
        for (src, c) in &other.per_source {
            *self.per_source.entry(*src).or_insert(0) += c;
        }
    }

    /// The `icmp_harvest` section of the results manifest: subtype
    /// tallies, source statistics and the top talkers, byte-stable.
    pub fn section_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        push_u64_field(&mut out, "messages", self.messages);
        out.push(',');
        push_key(&mut out, "unreachable");
        out.push('{');
        push_u64_field(&mut out, "net", self.unreachable_net);
        out.push(',');
        push_u64_field(&mut out, "host", self.unreachable_host);
        out.push(',');
        push_u64_field(&mut out, "port", self.unreachable_port);
        out.push(',');
        push_u64_field(&mut out, "other", self.unreachable_other);
        out.push_str("},");
        push_u64_field(&mut out, "frag_needed", self.frag_needed);
        out.push(',');
        push_u64_field(&mut out, "echo_replies", self.echo_replies);
        out.push(',');
        push_u64_field(&mut out, "source_quench", self.source_quench);
        out.push(',');
        push_u64_field(&mut out, "other", self.other);
        out.push(',');
        push_u64_field(&mut out, "sources", self.sources() as u64);
        out.push(',');
        push_u64_field(&mut out, "max_per_source", self.max_per_source());
        out.push(',');
        push_u64_field(
            &mut out,
            "rate_limited_sources",
            self.rate_limited_sources(),
        );
        out.push(',');
        let rates = self.subtype_rates_per_10k();
        push_key(&mut out, "rates_per_10k");
        out.push('{');
        push_u64_field(&mut out, "unreachable", rates[0]);
        out.push(',');
        push_u64_field(&mut out, "frag_needed", rates[1]);
        out.push(',');
        push_u64_field(&mut out, "echo_replies", rates[2]);
        out.push(',');
        push_u64_field(&mut out, "source_quench", rates[3]);
        out.push(',');
        push_u64_field(&mut out, "other", rates[4]);
        out.push_str("},");
        push_key(&mut out, "rate_limited");
        out.push('[');
        let limited = self
            .per_source
            .iter()
            .filter(|(_, c)| **c >= RATE_LIMIT_SIGNATURE_THRESHOLD)
            .map(|(s, _)| *s);
        for (i, src) in limited.take(RATE_LIMITED_LISTED).enumerate() {
            use std::fmt::Write;
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}.{}.{}.{}\"",
                (src >> 24) & 0xff,
                (src >> 16) & 0xff,
                (src >> 8) & 0xff,
                src & 0xff
            );
        }
        out.push_str("],");
        push_key(&mut out, "top_talkers");
        out.push('[');
        let mut talkers: Vec<(u32, u64)> = self.per_source.iter().map(|(s, c)| (*s, *c)).collect();
        // Chattiest first; address ascending breaks ties deterministically.
        talkers.sort_by(|a, b| (b.1, a.0).cmp(&(a.1, b.0)));
        for (i, (src, count)) in talkers.iter().take(TOP_TALKERS).enumerate() {
            use std::fmt::Write;
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "[\"{}.{}.{}.{}\",{}]",
                (src >> 24) & 0xff,
                (src >> 16) & 0xff,
                (src >> 8) & 0xff,
                src & 0xff,
                count
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_unreachable_codes() {
        let mut h = IcmpHarvest::default();
        h.note_unreachable(1, 0);
        h.note_unreachable(1, 1);
        h.note_unreachable(2, 3);
        h.note_unreachable(2, 13); // admin-prohibited lands in "other"
        assert_eq!(
            (
                h.unreachable_net,
                h.unreachable_host,
                h.unreachable_port,
                h.unreachable_other
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(h.messages, 4);
        assert_eq!(h.sources(), 2);
    }

    #[test]
    fn source_quench_classification_and_rates() {
        let mut h = IcmpHarvest::default();
        for _ in 0..RATE_LIMIT_SIGNATURE_THRESHOLD {
            h.note_source_quench(0x0a00_0009);
        }
        h.note_unreachable(0x0a00_000a, 1);
        h.note_source_quench(0x0a00_000a);
        assert_eq!(h.source_quench, RATE_LIMIT_SIGNATURE_THRESHOLD + 1);
        assert_eq!(h.messages, RATE_LIMIT_SIGNATURE_THRESHOLD + 2);
        // Per-target flag: only the quench-flooded source qualifies.
        assert!(h.is_rate_limited(0x0a00_0009));
        assert!(!h.is_rate_limited(0x0a00_000a));
        assert!(!h.is_rate_limited(0x0a00_00ff));
        // Rates are integer basis points of 10k and sum to ≤ 10_000.
        let rates = h.subtype_rates_per_10k();
        assert_eq!(rates[0], 10_000 / 10); // 1 unreachable of 10 messages
        assert_eq!(rates[3], 9 * 10_000 / 10);
        assert!(rates.iter().sum::<u64>() <= 10_000);
        let json = h.section_json();
        assert!(json.contains("\"source_quench\":9"), "{json}");
        assert!(
            json.contains("\"rates_per_10k\":{\"unreachable\":1000,"),
            "{json}"
        );
        assert!(json.contains("\"rate_limited\":[\"10.0.0.9\"]"), "{json}");
    }

    #[test]
    fn rate_limit_signature_counts_chatty_sources() {
        let mut h = IcmpHarvest::default();
        for _ in 0..RATE_LIMIT_SIGNATURE_THRESHOLD {
            h.note_unreachable(9, 1);
        }
        h.note_unreachable(10, 1);
        assert_eq!(h.rate_limited_sources(), 1);
        assert_eq!(h.max_per_source(), RATE_LIMIT_SIGNATURE_THRESHOLD);
    }

    #[test]
    fn merge_is_exact_and_commutative() {
        let mut a = IcmpHarvest::default();
        a.note_unreachable(1, 0);
        a.note_frag_needed(2);
        let mut b = IcmpHarvest::default();
        b.note_unreachable(1, 3);
        b.note_echo_reply(3);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.section_json(), ba.section_json());
        assert_eq!(ab.messages, 4);
    }

    #[test]
    fn section_json_shape() {
        let mut h = IcmpHarvest::default();
        h.note_unreachable(0x0a000001, 1);
        h.note_unreachable(0x0a000001, 1);
        let json = h.section_json();
        assert!(
            json.starts_with("{\"messages\":2,\"unreachable\":{\"net\":0,\"host\":2,"),
            "{json}"
        );
        assert!(
            json.contains("\"top_talkers\":[[\"10.0.0.1\",2]]"),
            "{json}"
        );
    }
}
