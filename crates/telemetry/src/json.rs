//! A tiny deterministic JSON emitter.
//!
//! Snapshots must be byte-stable across shard counts and platforms, so we
//! hand-roll the (small, fixed-schema) JSON instead of pulling in a serde
//! stack: keys are emitted in sorted order by construction and numbers are
//! plain integers — no float formatting ambiguity anywhere.

use std::fmt::Write;

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":` to `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_str_literal(out, key);
    out.push(':');
}

/// Append a `"key":value` pair for an unsigned integer.
pub fn push_u64_field(out: &mut String, key: &str, value: u64) {
    push_key(out, key);
    let _ = write!(out, "{value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_literal(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn plain_fields() {
        let mut s = String::new();
        push_u64_field(&mut s, "count", 42);
        assert_eq!(s, "\"count\":42");
    }
}
