//! A tiny deterministic JSON emitter and the matching reader.
//!
//! Snapshots must be byte-stable across shard counts and platforms, so we
//! hand-roll the (small, fixed-schema) JSON instead of pulling in a serde
//! stack: keys are emitted in sorted order by construction and numbers are
//! plain integers — no float formatting ambiguity anywhere.
//!
//! [`parse_json`] is the inverse: a recursive-descent reader for exactly
//! the dialect the emitter produces (objects, arrays, strings with the
//! emitter's escapes, unsigned integers, booleans, null). Checkpoint
//! files are round-tripped through it, so a corrupted or truncated file
//! surfaces as a positioned [`JsonError`], never a panic. Object members
//! are kept as an ordered `Vec` of pairs — document order is part of the
//! canonical-bytes contract and hash-map iteration order must not leak
//! into anything rendered from a parsed value.

use std::fmt::Write;

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `"key":` to `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_str_literal(out, key);
    out.push(':');
}

/// Append a `"key":value` pair for an unsigned integer.
pub fn push_u64_field(out: &mut String, key: &str, value: u64) {
    push_key(out, key);
    let _ = write!(out, "{value}");
}

/// A parsed JSON value (the emitter's dialect; see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer — the only number shape the emitter produces.
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object as `(key, value)` pairs in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's array elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Where and why parsing failed. Byte offsets index the input text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What was expected or found.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        // A depth cap keeps adversarial inputs from overflowing the stack.
        if depth > 64 {
            return self.err("nesting deeper than 64 levels");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') if self.eat_keyword("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(JsonValue::Null),
            Some(c) => self.err(format!("unexpected byte `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return self.err("expected `,` or `}` in object"),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return self.err("expected `,` or `]` in array"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    if c < 0x20 {
                        return self.err("raw control byte in string");
                    }
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: take the full scalar from the source.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            at: self.pos,
                            message: "invalid UTF-8 in string".to_owned(),
                        })?;
                    match rest.chars().next() {
                        Some(c) => {
                            out.push(c);
                            self.pos += c.len_utf8();
                        }
                        None => return self.err("unterminated string"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return self.err("non-integer numbers are not part of the dialect");
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<u64>() {
            Ok(n) => Ok(JsonValue::Num(n)),
            Err(_) => self.err("integer does not fit in u64"),
        }
    }
}

/// Parse `text` as a single JSON value (see module docs for the dialect).
/// Trailing garbage after the value is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing bytes after the value");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_literal(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn plain_fields() {
        let mut s = String::new();
        push_u64_field(&mut s, "count", 42);
        assert_eq!(s, "\"count\":42");
    }

    #[test]
    fn parses_the_emitted_dialect() {
        let text = "{\"a\":1,\"b\":[true,false,null],\"c\":{\"d\":\"x\\n\\\"y\\u0001\"}}";
        let v = parse_json(text).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(1));
        let arr = v.get("b").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[2], JsonValue::Null);
        let d = v.get("c").and_then(|c| c.get("d")).unwrap();
        assert_eq!(d.as_str(), Some("x\n\"y\u{1}"));
    }

    #[test]
    fn round_trips_emitter_strings() {
        for s in ["plain", "q\"uote", "tab\tnl\n", "uni £ ↑", "\u{2}ctl"] {
            let mut emitted = String::new();
            push_str_literal(&mut emitted, s);
            assert_eq!(parse_json(&emitted).unwrap(), JsonValue::Str(s.to_owned()));
        }
    }

    #[test]
    fn rejects_malformed_without_panicking() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "\"unterminated",
            "1.5",
            "-3",
            "18446744073709551616", // u64::MAX + 1
            "{\"a\":1} trailing",
            "nul",
            "{\"bad\\escape\":1}",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn depth_cap_rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse_json(&ok).is_ok());
    }
}
