//! # iw-internet — a synthetic IPv4 Internet calibrated to IMC '17
//!
//! The paper scanned the real IPv4 space; this crate supplies its
//! stand-in: a deterministic population of simulated hosts whose
//! *configuration distributions* (initial windows, OS mix, service
//! deployment, content sizes, certificate chains, failure modes) are
//! calibrated to the numbers the paper published (Tables 1–3,
//! Figures 2–5). The scanner measures this population through real
//! packet exchanges — nothing here leaks ground truth to the scanner.
//!
//! Layout:
//!
//! * [`registry`] — a synthetic AS registry: network classes (cloud, CDN,
//!   access ISP, …), named exemplar ASes (EC2, Cloudflare, Akamai, Azure,
//!   GoDaddy, Comcast, Telmex, …) plus jittered filler ASes, each with an
//!   address block carved out of the scaled scan space;
//! * [`cohort`] — device cohorts inside each class (an IW policy + OS +
//!   HTTP/TLS behaviour template) and their sampling;
//! * [`certs`] — the censys-style certificate-chain length distribution
//!   behind Fig. 2;
//! * [`content`] — the small-page size distribution that produces
//!   Table 2's lower-bound histogram;
//! * [`population`] — the composed world: `ip → HostConfig` plus ground
//!   truth and metadata (ASN, rDNS, class) for evaluation only;
//! * [`alexa`] — the synthetic Alexa-style top list for Fig. 4.
//!
//! Everything is a pure function of `(seed, ip)` — hosts need no storage
//! and the same seed reproduces the same Internet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alexa;
pub mod certs;
pub mod cohort;
pub mod content;
pub mod population;
pub mod registry;
pub mod util;

pub use population::{GroundTruth, HostMeta, Population, PopulationConfig};
pub use registry::{AsSpec, NetClass, Registry};
