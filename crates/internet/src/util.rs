//! Deterministic hashing / sampling helpers.
//!
//! Host properties must be pure functions of `(seed, ip, purpose)` so the
//! population never needs to be materialized. SplitMix64 provides the
//! avalanche; a few helpers turn hashes into weighted choices.

/// SplitMix64 finalizer — a fast, well-distributed 64-bit mixer.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix several values into one hash.
pub fn mix(values: &[u64]) -> u64 {
    let mut acc = 0x51_7c_c1_b7_27_22_0a_95;
    for v in values {
        acc = splitmix64(acc ^ *v);
    }
    acc
}

/// A tiny deterministic RNG stream for one host attribute.
#[derive(Debug, Clone)]
pub struct HashStream {
    state: u64,
}

impl HashStream {
    /// Start a stream keyed by seed, ip and a purpose tag.
    pub fn new(seed: u64, ip: u32, purpose: u64) -> HashStream {
        HashStream {
            state: mix(&[seed, u64::from(ip), purpose]),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }

    /// Uniform float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in [lo, hi] inclusive.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// Pick an index by weight from `weights` (must be non-empty; weights
    /// need not be normalized).
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0, "weights must not all be zero");
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }
}

/// Sample from piecewise-uniform buckets `(lo, hi, weight)`; the value is
/// uniform inside the chosen bucket, `hi` exclusive.
pub fn bucket_sample(stream: &mut HashStream, buckets: &[(u32, u32, f64)]) -> u32 {
    let weights: Vec<f64> = buckets.iter().map(|b| b.2).collect();
    let idx = stream.weighted_index(&weights);
    let (lo, hi, _) = buckets[idx];
    stream.next_range(
        u64::from(lo),
        u64::from(hi.saturating_sub(1)).max(u64::from(lo)),
    ) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = HashStream::new(1, 2, 3);
        let mut b = HashStream::new(1, 2, 3);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = HashStream::new(1, 2, 4);
        assert_ne!(HashStream::new(1, 2, 3).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut s = HashStream::new(9, 9, 9);
        for _ in 0..1000 {
            let v = s.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_inclusive() {
        let mut s = HashStream::new(5, 5, 5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = s.next_range(3, 6);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut s = HashStream::new(1, 1, 1);
        let weights = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(s.weighted_index(&weights), 1);
        }
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[s.weighted_index(&weights)] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((0.70..0.80).contains(&frac), "got {frac}");
    }

    #[test]
    fn bucket_sample_stays_in_bounds() {
        let buckets = [(10u32, 20u32, 1.0), (100, 200, 1.0)];
        let mut s = HashStream::new(2, 2, 2);
        for _ in 0..1000 {
            let v = bucket_sample(&mut s, &buckets);
            assert!((10..20).contains(&v) || (100..200).contains(&v));
        }
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit changes roughly half the output bits.
        let a = splitmix64(0x1234);
        let b = splitmix64(0x1235);
        let diff = (a ^ b).count_ones();
        assert!((16..=48).contains(&diff), "poor avalanche: {diff}");
    }
}
