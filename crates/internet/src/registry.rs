//! The synthetic AS registry.
//!
//! Mirrors the structures the paper's §4.3 analysis keys on: autonomous
//! systems with names, network classes, address blocks, reverse-DNS
//! conventions and — crucially — class-specific cohort mixtures whose
//! aggregate reproduces the published IW distributions. Named exemplars
//! (EC2, Cloudflare, Akamai, Azure, GoDaddy, Comcast, Vodafone IT, Korea
//! Telecom, Telmex, a national backbone) anchor Table 3 and Figure 5;
//! jittered filler ASes populate the DBSCAN clusters around them.

use crate::cohort::{CohortSpec, HttpTemplate, OsKind, TlsTemplate};
use crate::util::HashStream;
use iw_hoststack::IwPolicy;

/// Network classes (the paper's informal taxonomy made explicit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetClass {
    /// Generic IW10 cloud/IaaS (EC2 and friends).
    Cloud,
    /// IW10 CDN (Cloudflare-like).
    Cdn,
    /// The IW4 CDN (Akamai-like; `GHost` server string).
    CdnAkamai,
    /// Azure-like cloud with an IW4-heavy mix.
    CloudAzure,
    /// GoDaddy-like mass hoster with the static-IW48 fleet.
    HosterGoDaddy,
    /// Generic shared hosting.
    Hosting,
    /// Residential/business access ISPs.
    Access,
    /// The Telmex-style modem fleet (4 kB byte-limited IWs, §4.2).
    AccessModems,
    /// University networks (IW2 legacy).
    University,
    /// National backbones / legacy enterprise.
    Backbone,
    /// Miscellaneous embedded devices with exotic IWs.
    Embedded,
}

impl NetClass {
    /// All classes, for iteration.
    pub const ALL: [NetClass; 11] = [
        NetClass::Cloud,
        NetClass::Cdn,
        NetClass::CdnAkamai,
        NetClass::CloudAzure,
        NetClass::HosterGoDaddy,
        NetClass::Hosting,
        NetClass::Access,
        NetClass::AccessModems,
        NetClass::University,
        NetClass::Backbone,
        NetClass::Embedded,
    ];

    /// Share of all responsive hosts this class should contribute.
    pub fn responsive_share(self) -> f64 {
        match self {
            // The paper classifies only 16% of HTTP IPs as access (§4.3);
            // server-side infrastructure dominates the responsive space.
            NetClass::Cloud => 0.26,
            NetClass::Cdn => 0.05,
            NetClass::CdnAkamai => 0.03,
            NetClass::CloudAzure => 0.03,
            NetClass::HosterGoDaddy => 0.02,
            NetClass::Hosting => 0.24,
            NetClass::Access => 0.18,
            NetClass::AccessModems => 0.012,
            NetClass::University => 0.035,
            NetClass::Backbone => 0.11,
            NetClass::Embedded => 0.008,
        }
    }

    /// Fraction of the class's address block that hosts a responsive
    /// machine (server farms are dense, access space is sparse).
    pub fn density(self) -> f64 {
        match self {
            NetClass::Cloud | NetClass::CloudAzure => 0.5,
            NetClass::Cdn | NetClass::CdnAkamai => 0.7,
            NetClass::HosterGoDaddy => 0.6,
            NetClass::Hosting => 0.4,
            NetClass::Access => 0.08,
            NetClass::AccessModems => 0.08,
            NetClass::University => 0.15,
            NetClass::Backbone => 0.10,
            NetClass::Embedded => 0.05,
        }
    }

    /// Number of filler ASes (beyond the named exemplar) per class.
    pub fn filler_as_count(self) -> u32 {
        match self {
            NetClass::Cloud => 24,
            NetClass::Cdn => 6,
            NetClass::CdnAkamai => 2,
            NetClass::CloudAzure => 3,
            NetClass::HosterGoDaddy => 2,
            NetClass::Hosting => 40,
            NetClass::Access => 60,
            NetClass::AccessModems => 2,
            NetClass::University => 14,
            NetClass::Backbone => 18,
            NetClass::Embedded => 6,
        }
    }

    /// The HTTP `Server:` header style for hosts in this class.
    pub fn server_header(self) -> &'static str {
        match self {
            NetClass::CdnAkamai => "GHost",
            NetClass::Cdn => "cloudflare",
            NetClass::CloudAzure | NetClass::HosterGoDaddy => "Microsoft-IIS/8.5",
            NetClass::AccessModems | NetClass::Embedded => "RomPager/4.07",
            _ => "nginx",
        }
    }

    /// The cohort mixture defining this class (weights relative).
    pub fn cohorts(self) -> &'static [CohortSpec] {
        use HttpTemplate as H;
        use IwPolicy as P;
        use OsKind as O;
        use TlsTemplate as T;
        macro_rules! c {
            ($tag:literal, $w:expr, $iw:expr, $os:expr, $http:expr, $tls:expr) => {
                CohortSpec {
                    tag: $tag,
                    weight: $w,
                    iw: $iw,
                    os: $os,
                    http: $http,
                    tls: $tls,
                }
            };
        }
        match self {
            NetClass::Cloud => &[
                c!(
                    "cloud-small",
                    0.47,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "cloud-large",
                    0.15,
                    P::Segments(10),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "cloud-redir",
                    0.12,
                    P::Segments(10),
                    O::Linux,
                    Some(H::RedirectSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "cloud-http-only",
                    0.08,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "cloud-tls-only",
                    0.05,
                    P::Segments(10),
                    O::Linux,
                    None,
                    Some(T::ServeChain)
                ),
                c!(
                    "cloud-echo",
                    0.04,
                    P::Segments(10),
                    O::Linux,
                    Some(H::ErrorEcho),
                    Some(T::ServeChain)
                ),
                c!(
                    "cloud-win",
                    0.02,
                    P::Segments(10),
                    O::Windows,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "cloud-iw4",
                    0.02,
                    P::Segments(4),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "cloud-mute",
                    0.015,
                    P::Segments(10),
                    O::Linux,
                    Some(H::MuteSite),
                    Some(T::MuteTls)
                ),
                c!(
                    "cloud-rst",
                    0.01,
                    P::Segments(10),
                    O::Linux,
                    Some(H::ResetSite),
                    Some(T::ResetTls)
                ),
                c!(
                    "cloud-sni",
                    0.025,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::AlertNoSni)
                ),
            ],
            NetClass::Cdn => &[
                c!(
                    "cdn-redir",
                    0.55,
                    P::Segments(10),
                    O::Linux,
                    Some(H::RedirectSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "cdn-large",
                    0.40,
                    P::Segments(10),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "cdn-small",
                    0.05,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
            ],
            NetClass::CdnAkamai => &[
                c!(
                    "akamai-noecho",
                    0.60,
                    P::Segments(4),
                    O::Linux,
                    Some(H::ErrorNoEcho),
                    Some(T::ServeChain)
                ),
                c!(
                    "akamai-small",
                    0.25,
                    P::Segments(4),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "akamai-tls",
                    0.15,
                    P::Segments(4),
                    O::Linux,
                    None,
                    Some(T::ServeChain)
                ),
            ],
            // Azure's HTTP successes come almost exclusively from hosts
            // serving real content (Windows small pages fit one 536 B
            // segment and always land in few-data), so the Large cohorts
            // carry Table 3's HTTP row: IW4 > IW10 > IW2.
            NetClass::CloudAzure => &[
                c!(
                    "azure-iw4-small",
                    0.25,
                    P::Segments(4),
                    O::Windows,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "azure-iw4-tls",
                    0.25,
                    P::Segments(4),
                    O::Windows,
                    None,
                    Some(T::ServeChain)
                ),
                c!(
                    "azure-iw4-http",
                    0.22,
                    P::Segments(4),
                    O::Windows,
                    Some(H::LargeSite),
                    None
                ),
                c!(
                    "azure-iw10-large",
                    0.15,
                    P::Segments(10),
                    O::Windows,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "azure-iw10-small",
                    0.05,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "azure-iw2-small",
                    0.05,
                    P::Segments(2),
                    O::Windows,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "azure-iw2-http",
                    0.03,
                    P::Segments(2),
                    O::Windows,
                    Some(H::LargeSite),
                    None
                ),
            ],
            NetClass::HosterGoDaddy => &[
                c!(
                    "gd-iw48-tls",
                    0.25,
                    P::Segments(48),
                    O::Linux,
                    None,
                    Some(T::ServeChain)
                ),
                c!(
                    "gd-iw48-park",
                    0.15,
                    P::Segments(48),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "gd-iw10-small",
                    0.33,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "gd-iw10-large",
                    0.17,
                    P::Segments(10),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "gd-iw4-small",
                    0.10,
                    P::Segments(4),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
            ],
            NetClass::Hosting => &[
                c!(
                    "host-iw10-small",
                    0.41,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "host-iw10-large",
                    0.10,
                    P::Segments(10),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "host-iw10-redir",
                    0.10,
                    P::Segments(10),
                    O::Linux,
                    Some(H::RedirectSite),
                    None
                ),
                c!(
                    "host-iw4-small",
                    0.10,
                    P::Segments(4),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "host-iw2-smallchain",
                    0.07,
                    P::Segments(2),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeSmallChain)
                ),
                c!(
                    "host-cipher-mismatch",
                    0.04,
                    P::Segments(10),
                    O::Windows,
                    Some(H::SmallSite),
                    Some(T::CipherMismatch)
                ),
                c!(
                    "host-sni-close",
                    0.06,
                    P::Segments(10),
                    O::Linux,
                    Some(H::MuteSite),
                    Some(T::CloseNoSni)
                ),
                c!(
                    "host-iw2-win",
                    0.03,
                    P::Segments(2),
                    O::Windows,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "host-echo-snialert",
                    0.04,
                    P::Segments(10),
                    O::Linux,
                    Some(H::ErrorEcho),
                    Some(T::AlertNoSni)
                ),
                c!(
                    "host-iw1-legacy",
                    0.03,
                    P::Segments(1),
                    O::Linux,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "host-rst",
                    0.02,
                    P::Segments(10),
                    O::Linux,
                    Some(H::ResetSite),
                    Some(T::ResetTls)
                ),
            ],
            NetClass::Access => &[
                c!(
                    "acc-router-iw2",
                    0.35,
                    P::Segments(2),
                    O::Embedded,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "acc-router-iw2-tls",
                    0.06,
                    P::Segments(2),
                    O::Embedded,
                    Some(H::SmallSite),
                    Some(T::ServeSmallChain)
                ),
                c!(
                    "acc-gw-iw4-tls",
                    0.14,
                    P::Segments(4),
                    O::Embedded,
                    None,
                    Some(T::ServeChain)
                ),
                c!(
                    "acc-gw-iw4-both",
                    0.10,
                    P::Segments(4),
                    O::Embedded,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "acc-iw4-http",
                    0.05,
                    P::Segments(4),
                    O::Linux,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "acc-cust-iw10",
                    0.13,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "acc-cust-iw10-both",
                    0.035,
                    P::Segments(10),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "acc-ancient-iw1-tls",
                    0.025,
                    P::Segments(1),
                    O::Embedded,
                    Some(H::SmallSite),
                    Some(T::ServeSmallChain)
                ),
                c!(
                    "acc-ancient-iw1",
                    0.02,
                    P::Segments(1),
                    O::Embedded,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "acc-odd-iw3",
                    0.032,
                    P::Segments(3),
                    O::Embedded,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "acc-win-iw2",
                    0.01,
                    P::Segments(2),
                    O::Windows,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "acc-mute",
                    0.02,
                    P::Segments(10),
                    O::Linux,
                    Some(H::MuteSite),
                    Some(T::MuteTls)
                ),
                c!(
                    "acc-rst",
                    0.015,
                    P::Segments(10),
                    O::Linux,
                    Some(H::ResetSite),
                    None
                ),
                c!(
                    "acc-iw64",
                    0.003,
                    P::Segments(64),
                    O::Embedded,
                    Some(H::LargeSite),
                    None
                ),
            ],
            NetClass::AccessModems => &[
                c!(
                    "modem-4k-login",
                    0.55,
                    P::Bytes(4096),
                    O::Embedded,
                    Some(H::LargeSite),
                    None
                ),
                c!(
                    "modem-4k-monitor",
                    0.25,
                    P::Bytes(4096),
                    O::Embedded,
                    Some(H::LargeSite),
                    None
                ),
                c!(
                    "modem-mtufill",
                    0.12,
                    P::MtuFill(1536),
                    O::Embedded,
                    Some(H::LargeSite),
                    None
                ),
                c!(
                    "modem-iw2",
                    0.08,
                    P::Segments(2),
                    O::Embedded,
                    Some(H::SmallSite),
                    None
                ),
            ],
            NetClass::University => &[
                c!(
                    "uni-iw2-small",
                    0.45,
                    P::Segments(2),
                    O::Linux,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "uni-iw2-large",
                    0.20,
                    P::Segments(2),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "uni-iw10",
                    0.20,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "uni-iw4-bsd",
                    0.15,
                    P::Segments(4),
                    O::Bsd,
                    Some(H::SmallSite),
                    Some(T::ServeSmallChain)
                ),
            ],
            NetClass::Backbone => &[
                c!(
                    "bb-iw1",
                    0.30,
                    P::Segments(1),
                    O::Embedded,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "bb-iw2",
                    0.30,
                    P::Segments(2),
                    O::Linux,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "bb-iw2-win",
                    0.07,
                    P::Segments(2),
                    O::Windows,
                    Some(H::SmallSite),
                    Some(T::ServeSmallChain)
                ),
                c!(
                    "bb-iw1-tls",
                    0.10,
                    P::Segments(1),
                    O::Linux,
                    None,
                    Some(T::ServeChain)
                ),
                c!(
                    "bb-iw4",
                    0.08,
                    P::Segments(4),
                    O::Linux,
                    Some(H::SmallSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "bb-iw10",
                    0.07,
                    P::Segments(10),
                    O::Linux,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "bb-iw5",
                    0.05,
                    P::Segments(5),
                    O::Embedded,
                    Some(H::SmallSite),
                    None
                ),
                c!(
                    "bb-iw6",
                    0.03,
                    P::Segments(6),
                    O::Embedded,
                    Some(H::SmallSite),
                    None
                ),
            ],
            NetClass::Embedded => &[
                c!(
                    "emb-iw25-tls",
                    0.15,
                    P::Segments(25),
                    O::Linux,
                    None,
                    Some(T::ServeChain)
                ),
                c!(
                    "emb-iw64",
                    0.15,
                    P::Segments(64),
                    O::Embedded,
                    Some(H::LargeSite),
                    None
                ),
                c!(
                    "emb-iw20",
                    0.10,
                    P::Segments(20),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "emb-iw30",
                    0.10,
                    P::Segments(30),
                    O::Linux,
                    Some(H::LargeSite),
                    None
                ),
                c!(
                    "emb-iw9",
                    0.10,
                    P::Segments(9),
                    O::Embedded,
                    Some(H::LargeSite),
                    None
                ),
                c!(
                    "emb-iw11",
                    0.10,
                    P::Segments(11),
                    O::Linux,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "emb-iw5",
                    0.10,
                    P::Segments(5),
                    O::Embedded,
                    Some(H::LargeSite),
                    None
                ),
                c!(
                    "emb-iw6",
                    0.10,
                    P::Segments(6),
                    O::Embedded,
                    Some(H::LargeSite),
                    Some(T::ServeChain)
                ),
                c!(
                    "emb-iw16",
                    0.05,
                    P::Segments(16),
                    O::Embedded,
                    Some(H::LargeSite),
                    None
                ),
                c!(
                    "emb-iw24",
                    0.05,
                    P::Segments(24),
                    O::Embedded,
                    Some(H::LargeSite),
                    None
                ),
            ],
        }
    }
}

/// Reverse-DNS naming convention per network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdnsStyle {
    /// No PTR record.
    None,
    /// Server-style, IP encoded: `ec2-1-2-3-4.compute.example`.
    ServerIpEncoded {
        /// Domain suffix.
        domain: String,
    },
    /// Access-style, IP encoded with an ISP keyword:
    /// `customer-1-2-3-4.dsl.isp.example`.
    AccessIpEncoded {
        /// Domain suffix.
        domain: String,
        /// Keyword ("customer", "dialin", "dsl", "cable", "pool").
        keyword: &'static str,
    },
    /// Static name, no IP.
    StaticHost {
        /// Domain suffix.
        domain: String,
    },
}

/// One autonomous system.
#[derive(Debug, Clone)]
pub struct AsSpec {
    /// AS number.
    pub asn: u32,
    /// Operator name.
    pub name: String,
    /// Network class.
    pub class: NetClass,
    /// First address of the block (scan-space coordinates).
    pub start: u32,
    /// Block length.
    pub len: u32,
    /// Responsive-host density inside the block.
    pub density: f64,
    /// Per-AS cohort-weight jitter seed (gives DBSCAN its spread).
    pub jitter: u64,
    /// Reverse-DNS convention.
    pub rdns: RdnsStyle,
    /// Domain used for redirects / SNI content.
    pub domain: String,
}

impl AsSpec {
    /// Whether `ip` (scan-space) falls into this AS.
    pub fn contains(&self, ip: u32) -> bool {
        ip >= self.start && (u64::from(ip)) < u64::from(self.start) + u64::from(self.len)
    }

    /// Jittered cohort weights for this AS (class weights × U[0.45, 1.75]):
    /// operators of the same class deploy similar but not identical device
    /// mixes — this spread is what gives Fig. 5's DBSCAN both clusters and
    /// noise points.
    pub fn cohort_weights(&self) -> Vec<f64> {
        let cohorts = self.class.cohorts();
        let mut s = HashStream::new(self.jitter, self.asn, 0xa5a5);
        cohorts
            .iter()
            .map(|c| c.weight * (0.45 + 1.3 * s.next_f64()))
            .collect()
    }

    /// Render the PTR record for a host, if the convention has one.
    pub fn rdns_for(&self, ip: u32) -> Option<String> {
        let o = ip.to_be_bytes();
        match &self.rdns {
            RdnsStyle::None => None,
            RdnsStyle::ServerIpEncoded { domain } => {
                Some(format!("srv-{}-{}-{}-{}.{domain}", o[0], o[1], o[2], o[3]))
            }
            RdnsStyle::AccessIpEncoded { domain, keyword } => Some(format!(
                "{keyword}-{}-{}-{}-{}.{domain}",
                o[0], o[1], o[2], o[3]
            )),
            RdnsStyle::StaticHost { domain } => Some(format!("host.{domain}")),
        }
    }
}

/// The full registry: every AS, blocks sorted by `start`.
#[derive(Debug, Clone)]
pub struct Registry {
    ases: Vec<AsSpec>,
    space_size: u32,
}

/// Named exemplars per class: (asn, name, domain, how many exemplars of
/// the class's block budget they take).
fn exemplars(class: NetClass) -> Vec<(u32, &'static str, &'static str)> {
    match class {
        NetClass::Cloud => vec![(16509, "Amazon EC2", "ec2.cloud-a.example")],
        NetClass::Cdn => vec![(13335, "Cloudflare", "cdn-c.example")],
        NetClass::CdnAkamai => vec![(20940, "Akamai", "akamai-edge.example")],
        NetClass::CloudAzure => vec![(8075, "Microsoft Azure", "azure.example")],
        NetClass::HosterGoDaddy => vec![(26496, "GoDaddy", "secureserver.example")],
        NetClass::Hosting => vec![(24940, "Hetzner-like Hosting", "hosted.example")],
        NetClass::Access => vec![
            (7922, "Comcast", "comcastlike.example"),
            (30722, "Vodafone IT", "vodafoneit.example"),
            (4766, "Korea Telecom", "koreatel.example"),
        ],
        NetClass::AccessModems => vec![(8151, "Telmex", "telmexlike.example")],
        NetClass::University => vec![(680, "National Research Net", "uni-net.example")],
        NetClass::Backbone => vec![(9121, "Nat. Int. Backbone", "natbackbone.example")],
        NetClass::Embedded => vec![(64512, "Device Cloud", "devices.example")],
    }
}

fn rdns_style_for(class: NetClass, domain: &str, jitter: u64, exemplar: bool) -> RdnsStyle {
    match class {
        // EC2 and Akamai famously encode IPs in PTR records
        // (ec2-1-2-3-4…, aNN-NN-NN-NN.deploy…); most other server
        // networks do not — the paper measures 38.6 % of HTTP IPs (and
        // 62.5 % of TLS IPs) with IP-encoding overall (§4.3).
        NetClass::Cloud if exemplar => RdnsStyle::ServerIpEncoded {
            domain: domain.to_string(),
        },
        NetClass::CdnAkamai => RdnsStyle::ServerIpEncoded {
            domain: domain.to_string(),
        },
        NetClass::Cdn | NetClass::CloudAzure => RdnsStyle::StaticHost {
            domain: domain.to_string(),
        },
        NetClass::Cloud | NetClass::HosterGoDaddy | NetClass::Hosting => match jitter % 10 {
            0..=2 => RdnsStyle::ServerIpEncoded {
                domain: domain.to_string(),
            },
            3..=6 => RdnsStyle::StaticHost {
                domain: domain.to_string(),
            },
            _ => RdnsStyle::None,
        },
        NetClass::Access | NetClass::AccessModems => {
            const KEYWORDS: [&str; 5] = ["customer", "dialin", "dsl", "cable", "pool"];
            RdnsStyle::AccessIpEncoded {
                domain: domain.to_string(),
                keyword: KEYWORDS[(jitter % 5) as usize],
            }
        }
        NetClass::University => RdnsStyle::StaticHost {
            domain: domain.to_string(),
        },
        NetClass::Backbone | NetClass::Embedded => {
            if jitter.is_multiple_of(2) {
                RdnsStyle::None
            } else {
                RdnsStyle::StaticHost {
                    domain: domain.to_string(),
                }
            }
        }
    }
}

impl Registry {
    /// Build the registry for a scan space of `space_size` addresses.
    ///
    /// Roughly `target_responsive` hosts are distributed over the classes
    /// by [`NetClass::responsive_share`]; block sizes follow from each
    /// class's density. The remaining space is unrouted.
    pub fn build(space_size: u32, target_responsive: u32, seed: u64) -> Registry {
        let mut ases = Vec::new();
        let mut cursor: u64 = 1024; // skip a small reserved region
        let mut next_filler_asn = 100_000u32;

        for class in NetClass::ALL {
            let class_hosts = NetClass::responsive_share(class) * f64::from(target_responsive);
            let density = class.density();
            let class_block = (class_hosts / density).ceil() as u64;
            let ex = exemplars(class);
            let fillers = class.filler_as_count();
            let total_units = ex.len() as u64 * 4 + u64::from(fillers); // exemplars 4× a filler
            let unit = (class_block / total_units.max(1)).max(16);

            for (asn, name, domain) in &ex {
                let len = (unit * 4).min(u64::from(u32::MAX)) as u32;
                let jitter = crate::util::mix(&[seed, u64::from(*asn)]);
                ases.push(AsSpec {
                    asn: *asn,
                    name: (*name).to_string(),
                    class,
                    start: cursor as u32,
                    len,
                    density,
                    jitter,
                    rdns: rdns_style_for(class, domain, jitter, true),
                    domain: (*domain).to_string(),
                });
                cursor += u64::from(len);
            }
            for i in 0..fillers {
                let asn = next_filler_asn;
                next_filler_asn += 1;
                let jitter = crate::util::mix(&[seed, u64::from(asn)]);
                // Filler sizes vary ×[0.5, 1.5] for realism.
                let scale = 0.5 + (jitter % 1000) as f64 / 1000.0;
                let len = ((unit as f64 * scale) as u64).max(16) as u32;
                let domain = format!("{}-{i:03}.example", class_slug(class));
                ases.push(AsSpec {
                    asn,
                    name: format!("{} {i:03}", class_name(class)),
                    class,
                    start: cursor as u32,
                    len,
                    density,
                    jitter,
                    rdns: rdns_style_for(class, &domain, jitter, false),
                    domain,
                });
                cursor += u64::from(len);
            }
        }
        assert!(
            cursor < u64::from(space_size),
            "scan space {space_size} too small for the target population \
             (need at least {cursor} addresses)"
        );
        Registry { ases, space_size }
    }

    /// All ASes, ordered by block start.
    pub fn ases(&self) -> &[AsSpec] {
        &self.ases
    }

    /// The scan-space size the registry was built for.
    pub fn space_size(&self) -> u32 {
        self.space_size
    }

    /// Total routed (allocated) addresses.
    pub fn routed_addresses(&self) -> u64 {
        self.ases.iter().map(|a| u64::from(a.len)).sum()
    }

    /// Find the AS containing `ip`, if any (binary search).
    pub fn as_of(&self, ip: u32) -> Option<&AsSpec> {
        let idx = self.ases.partition_point(|a| a.start <= ip);
        if idx == 0 {
            return None;
        }
        let candidate = &self.ases[idx - 1];
        candidate.contains(ip).then_some(candidate)
    }

    /// Look up an AS by number.
    pub fn by_asn(&self, asn: u32) -> Option<&AsSpec> {
        self.ases.iter().find(|a| a.asn == asn)
    }
}

fn class_slug(class: NetClass) -> &'static str {
    match class {
        NetClass::Cloud => "cloud",
        NetClass::Cdn => "cdn",
        NetClass::CdnAkamai => "akam",
        NetClass::CloudAzure => "azure",
        NetClass::HosterGoDaddy => "gd",
        NetClass::Hosting => "hosting",
        NetClass::Access => "isp",
        NetClass::AccessModems => "modems",
        NetClass::University => "uni",
        NetClass::Backbone => "backbone",
        NetClass::Embedded => "devices",
    }
}

fn class_name(class: NetClass) -> &'static str {
    match class {
        NetClass::Cloud => "Cloud Provider",
        NetClass::Cdn => "CDN",
        NetClass::CdnAkamai => "Edge CDN",
        NetClass::CloudAzure => "Enterprise Cloud",
        NetClass::HosterGoDaddy => "Mass Hoster",
        NetClass::Hosting => "Hosting",
        NetClass::Access => "Access ISP",
        NetClass::AccessModems => "Modem Fleet",
        NetClass::University => "University",
        NetClass::Backbone => "Backbone",
        NetClass::Embedded => "Device Network",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> Registry {
        Registry::build(1 << 22, 60_000, 7)
    }

    #[test]
    fn blocks_are_disjoint_and_sorted() {
        let reg = registry();
        let ases = reg.ases();
        assert!(ases.len() > 150, "need many ASes for DBSCAN");
        for w in ases.windows(2) {
            assert!(
                u64::from(w[0].start) + u64::from(w[0].len) <= u64::from(w[1].start),
                "blocks overlap"
            );
        }
    }

    #[test]
    fn as_lookup_matches_contains() {
        let reg = registry();
        for a in reg.ases() {
            assert_eq!(reg.as_of(a.start).unwrap().asn, a.asn);
            assert_eq!(reg.as_of(a.start + a.len - 1).unwrap().asn, a.asn);
        }
        // Before first block and after the last: unrouted.
        assert!(reg.as_of(0).is_none());
        assert!(reg.as_of(reg.space_size() - 1).is_none());
    }

    #[test]
    fn exemplars_present() {
        let reg = registry();
        for asn in [16509, 13335, 20940, 8075, 26496, 7922, 8151] {
            assert!(reg.by_asn(asn).is_some(), "missing exemplar AS{asn}");
        }
        assert_eq!(reg.by_asn(20940).unwrap().class, NetClass::CdnAkamai);
    }

    #[test]
    fn cohort_weights_sum_to_one_ish() {
        for class in NetClass::ALL {
            let total: f64 = class.cohorts().iter().map(|c| c.weight).sum();
            assert!(
                (0.98..=1.02).contains(&total),
                "{class:?} weights sum to {total}"
            );
        }
    }

    #[test]
    fn jitter_varies_weights_across_ases() {
        let reg = registry();
        let access: Vec<_> = reg
            .ases()
            .iter()
            .filter(|a| a.class == NetClass::Access)
            .take(2)
            .collect();
        assert_ne!(access[0].cohort_weights(), access[1].cohort_weights());
    }

    #[test]
    fn rdns_conventions() {
        let reg = registry();
        let comcast = reg.by_asn(7922).unwrap();
        let name = comcast.rdns_for(comcast.start).unwrap();
        assert!(
            ["customer", "dialin", "dsl", "cable", "pool"]
                .iter()
                .any(|k| name.starts_with(k)),
            "{name}"
        );
        let ec2 = reg.by_asn(16509).unwrap();
        assert!(ec2.rdns_for(ec2.start).unwrap().starts_with("srv-"));
    }

    #[test]
    fn server_ptr_styles_are_mixed() {
        // §4.3 calibration: EC2/Akamai encode IPs; filler clouds and
        // hosting are a mix, so the global IP-encoding share can sit
        // near the paper's 38.6% rather than ~100%.
        let reg = registry();
        let ec2 = reg.by_asn(16509).unwrap();
        assert!(matches!(ec2.rdns, RdnsStyle::ServerIpEncoded { .. }));
        let akamai = reg.by_asn(20940).unwrap();
        assert!(matches!(akamai.rdns, RdnsStyle::ServerIpEncoded { .. }));
        let mut styles = std::collections::HashSet::new();
        for a in reg
            .ases()
            .iter()
            .filter(|a| matches!(a.class, NetClass::Hosting | NetClass::Cloud))
        {
            styles.insert(match &a.rdns {
                RdnsStyle::ServerIpEncoded { .. } => "enc",
                RdnsStyle::StaticHost { .. } => "static",
                RdnsStyle::None => "none",
                RdnsStyle::AccessIpEncoded { .. } => "access",
            });
        }
        assert!(
            styles.contains("enc") && styles.contains("static") && styles.contains("none"),
            "hosting/cloud PTR styles must be mixed: {styles:?}"
        );
    }

    #[test]
    fn deterministic_build() {
        let a = Registry::build(1 << 22, 60_000, 7);
        let b = Registry::build(1 << 22, 60_000, 7);
        assert_eq!(a.ases().len(), b.ases().len());
        for (x, y) in a.ases().iter().zip(b.ases()) {
            assert_eq!(x.asn, y.asn);
            assert_eq!(x.start, y.start);
            assert_eq!(x.jitter, y.jitter);
        }
    }

    #[test]
    fn space_too_small_panics() {
        let result = std::panic::catch_unwind(|| Registry::build(1 << 10, 60_000, 7));
        assert!(result.is_err());
    }

    #[test]
    fn routed_fraction_reasonable() {
        let reg = registry();
        let frac = reg.routed_addresses() as f64 / f64::from(reg.space_size());
        assert!(
            (0.05..0.80).contains(&frac),
            "routed fraction {frac} out of band"
        );
    }
}
