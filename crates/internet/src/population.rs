//! The composed synthetic Internet: `ip → host`, plus evaluation-only
//! metadata and ground truth.
//!
//! The scanner side never touches this module's ground-truth accessors —
//! they exist so the experiment harness can compare *measured* IW
//! distributions against the *configured* ones (the §3.5 validation).

use crate::cohort::CohortSpec;
use crate::registry::{AsSpec, NetClass, Registry};
use crate::util::HashStream;
use iw_hoststack::{Host, HostConfig, IwPolicy};
use iw_netsim::{Duration, Endpoint, HostFactory, LinkConfig};
use iw_wire::ipv4::Ipv4Addr;
use std::sync::Arc;

/// Population parameters.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Master seed: same seed ⇒ identical Internet.
    pub seed: u64,
    /// Scan-space size (the "IPv4 space" of the scaled world).
    pub space_size: u32,
    /// Approximate number of responsive hosts to lay out.
    pub target_responsive: u32,
    /// Multiplier on per-link loss probabilities (0 = lossless world,
    /// 1 = calibrated defaults; used by the §3.5 loss experiments).
    pub loss_scale: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            seed: 0x1a2b_3c4d,
            space_size: 1 << 22,
            target_responsive: 60_000,
            loss_scale: 1.0,
        }
    }
}

impl PopulationConfig {
    /// A small population for unit/integration tests.
    pub fn tiny(seed: u64) -> PopulationConfig {
        PopulationConfig {
            seed,
            space_size: 1 << 17,
            target_responsive: 2_000,
            loss_scale: 0.0,
        }
    }
}

/// Ground truth for one host (evaluation only).
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// The configured IW policy.
    pub iw: IwPolicy,
    /// Cohort tag.
    pub cohort: &'static str,
    /// AS number.
    pub asn: u32,
    /// Network class.
    pub class: NetClass,
    /// HTTP service deployed.
    pub http: bool,
    /// TLS service deployed.
    pub tls: bool,
}

/// Evaluation metadata for one host.
#[derive(Debug, Clone)]
pub struct HostMeta {
    /// AS number.
    pub asn: u32,
    /// AS operator name.
    pub as_name: String,
    /// Network class.
    pub class: NetClass,
    /// PTR record, if the network sets one.
    pub rdns: Option<String>,
    /// Canonical web domain for this host (vhost / SNI name).
    pub domain: String,
}

mod purpose {
    pub const DENSITY: u64 = 0x01;
    pub const COHORT: u64 = 0x02;
    pub const LINK: u64 = 0x03;
    pub const MTU: u64 = 0x04;
    pub const DOMAIN: u64 = 0x05;
}

/// The synthetic Internet.
#[derive(Debug, Clone)]
pub struct Population {
    config: PopulationConfig,
    registry: Registry,
}

impl Population {
    /// Build the population (cheap: only the registry is materialized).
    pub fn new(config: PopulationConfig) -> Population {
        let registry = Registry::build(config.space_size, config.target_responsive, config.seed);
        Population { config, registry }
    }

    /// The registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The config.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Scan-space size.
    pub fn space_size(&self) -> u32 {
        self.config.space_size
    }

    /// The AS and cohort behind `ip`, if a responsive host lives there.
    pub fn cohort_at(&self, ip: u32) -> Option<(&AsSpec, &'static CohortSpec)> {
        let spec = self.registry.as_of(ip)?;
        let mut density = HashStream::new(self.config.seed, ip, purpose::DENSITY);
        if density.next_f64() >= spec.density {
            return None;
        }
        let weights = spec.cohort_weights();
        let mut pick = HashStream::new(self.config.seed, ip, purpose::COHORT);
        let idx = pick.weighted_index(&weights);
        Some((spec, &spec.class.cohorts()[idx]))
    }

    /// Whether a responsive host lives at `ip`.
    pub fn responsive(&self, ip: u32) -> bool {
        self.cohort_at(ip).is_some()
    }

    /// The canonical web domain of the host at `ip` (used for vhost
    /// redirect targets and as the Alexa/SNI name).
    pub fn canonical_domain(&self, ip: u32) -> Option<String> {
        let (spec, _) = self.cohort_at(ip)?;
        let mut s = HashStream::new(self.config.seed, ip, purpose::DOMAIN);
        Some(format!(
            "site-{:06x}.{}",
            s.next_u64() & 0xff_ffff,
            spec.domain
        ))
    }

    /// Path MTU towards `ip` (footnote-1 model: 80 % of paths carry
    /// 1500 B, 19 % 1400 B, 1 % 1280 B ⇒ 99 % support MSS 1336 and
    /// 80 % support MSS 1436).
    pub fn path_mtu(&self, ip: u32) -> u32 {
        let mut s = HashStream::new(self.config.seed, ip, purpose::MTU);
        let r = s.next_f64();
        if r < 0.80 {
            1500
        } else if r < 0.99 {
            1400
        } else {
            1280
        }
    }

    /// The full host configuration at `ip`.
    pub fn host_config(&self, ip: u32) -> Option<HostConfig> {
        let (spec, cohort) = self.cohort_at(ip)?;
        let domain = self.canonical_domain(ip)?;
        Some(cohort.host_config(
            self.config.seed,
            ip,
            spec.class.server_header(),
            &domain,
            self.path_mtu(ip),
        ))
    }

    /// Ground truth (evaluation only).
    pub fn ground_truth(&self, ip: u32) -> Option<GroundTruth> {
        let (spec, cohort) = self.cohort_at(ip)?;
        Some(GroundTruth {
            iw: cohort.iw,
            cohort: cohort.tag,
            asn: spec.asn,
            class: spec.class,
            http: cohort.http.is_some(),
            tls: cohort.tls.is_some(),
        })
    }

    /// Evaluation metadata.
    pub fn meta(&self, ip: u32) -> Option<HostMeta> {
        let (spec, _) = self.cohort_at(ip)?;
        let domain = self.canonical_domain(ip)?;
        Some(HostMeta {
            asn: spec.asn,
            as_name: spec.name.clone(),
            class: spec.class,
            rdns: spec.rdns_for(ip),
            domain,
        })
    }

    /// The link towards `ip`: latency/jitter/loss by network class,
    /// deterministic per address.
    pub fn link_config(&self, ip: u32) -> LinkConfig {
        let class = self
            .registry
            .as_of(ip)
            .map(|a| a.class)
            .unwrap_or(NetClass::Backbone);
        let mut s = HashStream::new(self.config.seed, ip, purpose::LINK);
        let (lat_lo, lat_hi, loss) = match class {
            NetClass::Cloud
            | NetClass::Cdn
            | NetClass::CdnAkamai
            | NetClass::CloudAzure
            | NetClass::HosterGoDaddy
            | NetClass::Hosting => (5u64, 60u64, 0.002),
            NetClass::University => (10, 80, 0.003),
            NetClass::Access | NetClass::Backbone => (30, 180, 0.010),
            NetClass::AccessModems | NetClass::Embedded => (60, 250, 0.020),
        };
        LinkConfig {
            latency: Duration::from_millis(s.next_range(lat_lo, lat_hi)),
            jitter: Duration::from_millis(s.next_range(1, 8)),
            loss: loss * self.config.loss_scale,
            ..LinkConfig::default()
        }
    }

    /// Count responsive hosts by brute force (tests / small spaces only).
    pub fn census(&self) -> u64 {
        (0..self.space_size())
            .filter(|ip| self.responsive(*ip))
            .count() as u64
    }
}

/// `HostFactory` adapter for `iw-netsim`: spawns a [`Host`] with its link
/// when the scanner first touches an address.
#[derive(Clone)]
pub struct PopulationFactory {
    population: Arc<Population>,
}

impl PopulationFactory {
    /// Wrap a shared population.
    pub fn new(population: Arc<Population>) -> PopulationFactory {
        PopulationFactory { population }
    }

    /// The underlying population.
    pub fn population(&self) -> &Arc<Population> {
        &self.population
    }
}

impl HostFactory for PopulationFactory {
    fn create(&mut self, ip: u32) -> Option<(Box<dyn Endpoint>, LinkConfig)> {
        let config = self.population.host_config(ip)?;
        let host = Host::new(Ipv4Addr::from_u32(ip), config, self.population.config.seed);
        Some((Box::new(host), self.population.link_config(ip)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Population {
        Population::new(PopulationConfig::tiny(11))
    }

    #[test]
    fn census_near_target() {
        let p = pop();
        let n = p.census();
        let target = f64::from(p.config().target_responsive);
        assert!(
            (target * 0.8..target * 1.25).contains(&(n as f64)),
            "census {n} vs target {target}"
        );
    }

    #[test]
    fn determinism() {
        let a = pop();
        let b = pop();
        for ip in (0..a.space_size()).step_by(97) {
            assert_eq!(a.host_config(ip), b.host_config(ip));
        }
    }

    #[test]
    fn ground_truth_consistent_with_config() {
        let p = pop();
        let mut checked = 0;
        for ip in 0..p.space_size() {
            if let Some(gt) = p.ground_truth(ip) {
                let cfg = p.host_config(ip).unwrap();
                assert_eq!(cfg.iw, gt.iw);
                assert_eq!(cfg.http.is_some(), gt.http);
                assert_eq!(cfg.tls.is_some(), gt.tls);
                checked += 1;
                if checked > 500 {
                    break;
                }
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn iw_mix_is_plausible() {
        let p = pop();
        let mut iw10 = 0u32;
        let mut total = 0u32;
        for ip in 0..p.space_size() {
            if let Some(gt) = p.ground_truth(ip) {
                total += 1;
                if gt.iw == IwPolicy::Segments(10) {
                    iw10 += 1;
                }
            }
        }
        let frac = f64::from(iw10) / f64::from(total);
        assert!(
            (0.35..0.75).contains(&frac),
            "IW10 host share {frac} out of calibration band"
        );
    }

    #[test]
    fn path_mtu_distribution() {
        let p = pop();
        let mut counts = std::collections::HashMap::new();
        for ip in 0..50_000u32 {
            *counts.entry(p.path_mtu(ip)).or_insert(0u32) += 1;
        }
        let frac_1500 = f64::from(counts[&1500]) / 50_000.0;
        assert!((0.78..0.82).contains(&frac_1500), "{frac_1500}");
        let ge_1376 = f64::from(counts[&1500] + counts.get(&1400).copied().unwrap_or(0)) / 50_000.0;
        assert!(ge_1376 > 0.985, "99% must support MSS 1336 ({ge_1376})");
    }

    #[test]
    fn factory_spawns_hosts_only_where_responsive() {
        let p = Arc::new(pop());
        let mut factory = PopulationFactory::new(p.clone());
        let mut spawned = 0;
        let mut empty = 0;
        for ip in 0..p.space_size() {
            if p.responsive(ip) {
                if spawned < 20 {
                    assert!(factory.create(ip).is_some());
                    spawned += 1;
                }
            } else if empty < 20 {
                assert!(factory.create(ip).is_none());
                empty += 1;
            }
            if spawned >= 20 && empty >= 20 {
                break;
            }
        }
        assert_eq!((spawned, empty), (20, 20));
    }

    #[test]
    fn loss_scale_zero_means_lossless() {
        let p = pop();
        for ip in (0..p.space_size()).step_by(1009) {
            assert_eq!(p.link_config(ip).loss, 0.0);
        }
        let lossy = Population::new(PopulationConfig {
            loss_scale: 1.0,
            ..PopulationConfig::tiny(11)
        });
        let any_loss = (0..lossy.space_size())
            .step_by(1009)
            .any(|ip| lossy.link_config(ip).loss > 0.0);
        assert!(any_loss);
    }

    #[test]
    fn domains_are_per_host_and_stable() {
        let p = pop();
        let ip = (0..p.space_size()).find(|ip| p.responsive(*ip)).unwrap();
        assert_eq!(p.canonical_domain(ip), p.canonical_domain(ip));
        let other = (ip + 1..p.space_size())
            .find(|ip| p.responsive(*ip))
            .unwrap();
        assert_ne!(p.canonical_domain(ip), p.canonical_domain(other));
    }
}
