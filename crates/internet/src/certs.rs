//! Certificate-chain length model (the censys.io stand-in behind Fig. 2).
//!
//! Calibrated against the statistics the paper reports for 36.5 M hosts:
//! mean 2186 B, minimum 36 B, maximum 65 kB, ≥640 B for >86 % of hosts,
//! ≥2176 B (= 34 segments of 64 B) for ≈50 %. Our piecewise-uniform fit
//! lands at mean ≈2213 B, P(<640) = 0.14, P(<2176) = 0.50.

use crate::util::{bucket_sample, HashStream};

/// The calibrated piecewise-uniform buckets `(lo, hi_exclusive, weight)`.
pub const CHAIN_BUCKETS: [(u32, u32, f64); 10] = [
    (36, 128, 0.040),
    (128, 384, 0.050),
    (384, 640, 0.050),
    (640, 1280, 0.160),
    (1280, 2176, 0.200),
    (2176, 2700, 0.290),
    (2700, 3300, 0.125),
    (3300, 4800, 0.057),
    (5600, 12000, 0.024),
    (14000, 60000, 0.004),
];

/// Draw a total chain length for one host.
pub fn chain_len(stream: &mut HashStream) -> u32 {
    bucket_sample(stream, &CHAIN_BUCKETS)
}

/// Split a total chain length into individual certificate lengths
/// (leaf + up to three intermediates), the way real chains decompose.
/// The pieces sum exactly to `total`.
pub fn split_chain(stream: &mut HashStream, total: u32) -> Vec<u32> {
    if total < 600 {
        return vec![total]; // bare self-signed leaf
    }
    let n = match total {
        0..=1500 => 1 + (stream.next_u64() % 2) as u32,
        1501..=3500 => 2 + (stream.next_u64() % 2) as u32,
        _ => 3 + (stream.next_u64() % 2) as u32,
    };
    let mut remaining = total;
    let mut parts = Vec::with_capacity(n as usize);
    for i in 0..n {
        let left = n - i;
        if left == 1 {
            parts.push(remaining);
            break;
        }
        // Leaf certificates tend to be the largest; keep each piece at
        // least 200 B and leave 200 B per remaining piece.
        let max_here = remaining.saturating_sub(200 * (left - 1)).max(200);
        let min_here = (remaining / (2 * left)).max(200).min(max_here);
        let take = stream.next_range(u64::from(min_here), u64::from(max_here)) as u32;
        parts.push(take);
        remaining -= take;
    }
    parts
}

/// A censys-like dataset: `n` sampled chain lengths (for Fig. 2's CCDF).
pub fn censys_sample(seed: u64, n: usize) -> Vec<u32> {
    (0..n)
        .map(|i| {
            let mut s = HashStream::new(seed, i as u32, 0xce4515);
            chain_len(&mut s)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_match_paper() {
        let sample = censys_sample(42, 200_000);
        let n = sample.len() as f64;
        let mean = sample.iter().map(|v| f64::from(*v)).sum::<f64>() / n;
        assert!(
            (2000.0..2500.0).contains(&mean),
            "mean {mean} should be near the paper's 2186"
        );
        let ge640 = sample.iter().filter(|v| **v >= 640).count() as f64 / n;
        assert!(
            (0.84..0.89).contains(&ge640),
            "P(>=640) {ge640} vs paper's >86%"
        );
        let ge2176 = sample.iter().filter(|v| **v >= 2176).count() as f64 / n;
        assert!(
            (0.47..0.53).contains(&ge2176),
            "P(>=2176) {ge2176} vs paper's ~50%"
        );
        let min = *sample.iter().min().unwrap();
        let max = *sample.iter().max().unwrap();
        assert!(min >= 36, "paper min 36, got {min}");
        assert!(max < 65_536, "paper max 65k, got {max}");
        assert!(max > 14_000, "tail must reach into the tens of kB");
    }

    #[test]
    fn split_sums_to_total() {
        let mut s = HashStream::new(7, 7, 7);
        for total in [36u32, 600, 1200, 2186, 3500, 8000, 59_999] {
            let parts = split_chain(&mut s, total);
            assert_eq!(parts.iter().sum::<u32>(), total, "total {total}");
            assert!(!parts.is_empty() && parts.len() <= 4);
            assert!(parts.iter().all(|p| *p > 0));
        }
    }

    #[test]
    fn small_chain_single_cert() {
        let mut s = HashStream::new(1, 1, 1);
        assert_eq!(split_chain(&mut s, 36), vec![36]);
    }

    #[test]
    fn deterministic_sampling() {
        assert_eq!(censys_sample(5, 100), censys_sample(5, 100));
        assert_ne!(censys_sample(5, 100), censys_sample(6, 100));
    }
}
