//! Device cohorts: the unit of population calibration.
//!
//! A cohort is "a kind of host": an IW policy, an OS personality, and an
//! HTTP/TLS behaviour template. Network classes (see [`crate::registry`])
//! are weighted mixtures of cohorts; every concrete host samples its
//! configuration deterministically from its cohort's templates.

use crate::certs;
use crate::content;
use crate::util::HashStream;
use iw_hoststack::{
    HostConfig, HttpBehavior, HttpConfig, IwPolicy, OsProfile, TlsBehavior, TlsConfig,
};
use iw_wire::tls::CipherSuite;

/// OS personality selector (maps onto [`OsProfile`] constructors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsKind {
    /// Modern Linux (MSS floor 64).
    Linux,
    /// Windows (MSS fallback 536).
    Windows,
    /// Embedded/router firmware.
    Embedded,
    /// BSD family.
    Bsd,
}

impl OsKind {
    /// Materialize the TCP personality.
    pub fn profile(self) -> OsProfile {
        match self {
            OsKind::Linux => OsProfile::linux(),
            OsKind::Windows => OsProfile::windows(),
            OsKind::Embedded => OsProfile::embedded(),
            OsKind::Bsd => OsProfile::bsd(),
        }
    }
}

/// HTTP behaviour templates (§3.2 response taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpTemplate {
    /// A large root page — always fills the IW.
    LargeSite,
    /// `301` to a canonical vhost which serves a large page; the probe
    /// succeeds only by following the redirect.
    RedirectSite,
    /// A small root page drawn from the Table 2 size model.
    SmallSite,
    /// 404-for-everything with URI echo — the long-URI bloat succeeds.
    ErrorEcho,
    /// 404 without URI echo (Akamai-after-the-change): stays small.
    ErrorNoEcho,
    /// Accepts and never answers.
    MuteSite,
    /// FIN without a byte.
    SilentSite,
    /// RST upon request.
    ResetSite,
}

/// TLS behaviour templates (§3.3 response taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlsTemplate {
    /// Serve a censys-calibrated chain (OCSP/ECDHE mix sampled).
    ServeChain,
    /// Serve a deliberately tiny chain (50–560 B, static RSA, no OCSP) —
    /// the emergent IW2…IW9 rows of Table 2.
    ServeSmallChain,
    /// Fatal `unrecognized_name` without SNI; serves with SNI.
    AlertNoSni,
    /// Silent FIN without SNI; serves with SNI (Table 2's TLS NoData).
    CloseNoSni,
    /// No cipher overlap ever: `handshake_failure`.
    CipherMismatch,
    /// Accepts the ClientHello and never answers.
    MuteTls,
    /// RST upon the ClientHello.
    ResetTls,
}

/// One cohort row in a class mixture.
#[derive(Debug, Clone, Copy)]
pub struct CohortSpec {
    /// Stable identifier (used in ground truth and ablation reports).
    pub tag: &'static str,
    /// Mixture weight inside the class (relative, not normalized).
    pub weight: f64,
    /// Initial-window policy.
    pub iw: IwPolicy,
    /// TCP personality.
    pub os: OsKind,
    /// HTTP service template, if port 80 is open.
    pub http: Option<HttpTemplate>,
    /// TLS service template, if port 443 is open.
    pub tls: Option<TlsTemplate>,
}

/// Purpose tags for per-attribute hash streams.
mod purpose {
    pub const HTTP_SIZE: u64 = 0x11;
    pub const TLS_CHAIN: u64 = 0x22;
    pub const REDIRECT: u64 = 0x33;
}

/// Build the HTTP service config for a host of this cohort.
fn http_config(
    template: HttpTemplate,
    seed: u64,
    ip: u32,
    server_header: &str,
    canonical_domain: &str,
    vhost_iw: Vec<(String, IwPolicy)>,
) -> HttpConfig {
    let mut s = HashStream::new(seed, ip, purpose::HTTP_SIZE);
    let behavior = match template {
        HttpTemplate::LargeSite => HttpBehavior::Direct {
            root_size: content::body_for_total(content::large_page_total(&mut s)),
            echo_404: true,
        },
        HttpTemplate::RedirectSite => {
            let mut r = HashStream::new(seed, ip, purpose::REDIRECT);
            HttpBehavior::Redirect {
                host: format!("www.{}", canonical_domain),
                path: format!("/index-{}.html", r.next_range(1, 9999)),
                target_size: content::large_page_total(&mut s),
            }
        }
        // Small sites do NOT echo URIs into their 404s — if they did, the
        // bloat retry would rescue them and Table 1's ~48% few-data bucket
        // (and all of Table 2) would vanish.
        HttpTemplate::SmallSite => HttpBehavior::Direct {
            root_size: content::body_for_total(content::small_page_total(&mut s)),
            echo_404: false,
        },
        HttpTemplate::ErrorEcho => HttpBehavior::NotFound {
            base_size: s.next_range(250, 600) as u32,
            echo_uri: true,
        },
        HttpTemplate::ErrorNoEcho => HttpBehavior::NotFound {
            base_size: content::body_for_total(content::small_page_total(&mut s)),
            echo_uri: false,
        },
        HttpTemplate::MuteSite => HttpBehavior::Mute,
        HttpTemplate::SilentSite => HttpBehavior::SilentClose,
        HttpTemplate::ResetSite => HttpBehavior::Reset,
    };
    HttpConfig {
        behavior,
        server_header: server_header.to_string(),
        vhost_iw,
    }
}

/// Build the TLS service config for a host of this cohort.
fn tls_config(
    template: TlsTemplate,
    seed: u64,
    ip: u32,
    sni_iw: Vec<(String, IwPolicy)>,
) -> TlsConfig {
    let mut s = HashStream::new(seed, ip, purpose::TLS_CHAIN);
    match template {
        TlsTemplate::ServeChain | TlsTemplate::AlertNoSni | TlsTemplate::CloseNoSni => {
            let total = certs::chain_len(&mut s);
            let cert_lens = certs::split_chain(&mut s, total);
            // 70 % ECDHE (adds a ServerKeyExchange), 30 % static RSA;
            // 40 % staple OCSP when asked.
            let cipher = if s.next_f64() < 0.7 {
                CipherSuite::ECDHE_RSA_AES128_GCM
            } else {
                CipherSuite::RSA_AES128_CBC
            };
            let ocsp_len = if s.next_f64() < 0.4 {
                Some(s.next_range(300, 600) as u32)
            } else {
                None
            };
            let behavior = match template {
                TlsTemplate::ServeChain => TlsBehavior::Serve,
                TlsTemplate::AlertNoSni => TlsBehavior::AlertWithoutSni,
                TlsTemplate::CloseNoSni => TlsBehavior::CloseWithoutSni,
                // The outer match arm only covers the three TLS templates.
                _ => unreachable!(), // iw-lint: allow(panic-budget)
            };
            TlsConfig {
                behavior,
                cipher,
                cert_lens,
                ocsp_len,
                sni_iw,
            }
        }
        TlsTemplate::ServeSmallChain => TlsConfig {
            behavior: TlsBehavior::Serve,
            cipher: CipherSuite::RSA_AES128_CBC,
            cert_lens: vec![s.next_range(50, 560) as u32],
            ocsp_len: None,
            sni_iw,
        },
        TlsTemplate::CipherMismatch => TlsConfig {
            behavior: TlsBehavior::CipherMismatch,
            cipher: CipherSuite(0xfef0),
            cert_lens: vec![600],
            ocsp_len: None,
            sni_iw: Vec::new(),
        },
        TlsTemplate::MuteTls => TlsConfig {
            behavior: TlsBehavior::Mute,
            cipher: CipherSuite::RSA_AES128_CBC,
            cert_lens: vec![600],
            ocsp_len: None,
            sni_iw: Vec::new(),
        },
        TlsTemplate::ResetTls => TlsConfig {
            behavior: TlsBehavior::Reset,
            cipher: CipherSuite::RSA_AES128_CBC,
            cert_lens: vec![600],
            ocsp_len: None,
            sni_iw: Vec::new(),
        },
    }
}

impl CohortSpec {
    /// Per-service IW overrides for cohorts that do Akamai-style
    /// per-customer configuration (§4.3: "we used our scanner to
    /// manually probe few Akamai HTTP hosted sites and found different
    /// IW configurations (e.g., IW 16 and 32)"). Keyed to named
    /// properties of the host's canonical domain — only a scan with a
    /// curated host list can see them.
    pub fn service_iw_overrides(&self, canonical_domain: &str) -> Vec<(String, IwPolicy)> {
        if self.tag.starts_with("akamai") {
            vec![
                (format!("www.{canonical_domain}"), IwPolicy::Segments(16)),
                (format!("media.{canonical_domain}"), IwPolicy::Segments(32)),
            ]
        } else {
            Vec::new()
        }
    }

    /// Materialize a concrete host configuration for `ip`.
    pub fn host_config(
        &self,
        seed: u64,
        ip: u32,
        server_header: &str,
        canonical_domain: &str,
        path_mtu: u32,
    ) -> HostConfig {
        let overrides = self.service_iw_overrides(canonical_domain);
        HostConfig {
            os: self.os.profile(),
            iw: self.iw,
            http: self.http.map(|t| {
                http_config(
                    t,
                    seed,
                    ip,
                    server_header,
                    canonical_domain,
                    overrides.clone(),
                )
            }),
            tls: self.tls.map(|t| tls_config(t, seed, ip, overrides.clone())),
            path_mtu,
            icmp: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(http: Option<HttpTemplate>, tls: Option<TlsTemplate>) -> CohortSpec {
        CohortSpec {
            tag: "test",
            weight: 1.0,
            iw: IwPolicy::Segments(10),
            os: OsKind::Linux,
            http,
            tls,
        }
    }

    #[test]
    fn deterministic_configs() {
        let s = spec(Some(HttpTemplate::SmallSite), Some(TlsTemplate::ServeChain));
        let a = s.host_config(1, 42, "nginx", "example.org", 1500);
        let b = s.host_config(1, 42, "nginx", "example.org", 1500);
        assert_eq!(a, b);
        let c = s.host_config(1, 43, "nginx", "example.org", 1500);
        assert_ne!(a, c, "different IPs draw different sizes");
    }

    #[test]
    fn small_site_sizes_stay_small() {
        let s = spec(Some(HttpTemplate::SmallSite), None);
        for ip in 0..500 {
            let cfg = s.host_config(7, ip, "nginx", "d", 1500);
            match cfg.http.unwrap().behavior {
                HttpBehavior::Direct {
                    root_size,
                    echo_404,
                } => {
                    assert!(root_size < 704);
                    assert!(!echo_404);
                }
                other => panic!("unexpected behavior {other:?}"),
            }
        }
    }

    #[test]
    fn redirect_has_canonical_host() {
        let s = spec(Some(HttpTemplate::RedirectSite), None);
        let cfg = s.host_config(7, 9, "Apache", "great-site.example", 1500);
        match cfg.http.unwrap().behavior {
            HttpBehavior::Redirect {
                host,
                path,
                target_size,
            } => {
                assert_eq!(host, "www.great-site.example");
                assert!(path.starts_with("/index-"));
                assert!(target_size >= 8000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn small_chain_is_static_rsa_without_ocsp() {
        let s = spec(None, Some(TlsTemplate::ServeSmallChain));
        let cfg = s.host_config(7, 11, "x", "d", 1500).tls.unwrap();
        assert_eq!(cfg.cipher, CipherSuite::RSA_AES128_CBC);
        assert_eq!(cfg.ocsp_len, None);
        assert!(cfg.chain_len() < 600);
        assert_eq!(cfg.behavior, TlsBehavior::Serve);
    }

    #[test]
    fn serve_chain_matches_censys_stats_roughly() {
        let s = spec(None, Some(TlsTemplate::ServeChain));
        let mut ge640 = 0;
        let n = 3000;
        for ip in 0..n {
            let cfg = s.host_config(3, ip, "x", "d", 1500).tls.unwrap();
            if cfg.chain_len() >= 640 {
                ge640 += 1;
            }
        }
        let frac = f64::from(ge640) / f64::from(n);
        assert!((0.80..0.92).contains(&frac), "{frac}");
    }

    #[test]
    fn echo_and_noecho_templates() {
        let s = spec(Some(HttpTemplate::ErrorEcho), None);
        match s
            .host_config(1, 1, "GHost", "d", 1500)
            .http
            .unwrap()
            .behavior
        {
            HttpBehavior::NotFound { echo_uri, .. } => assert!(echo_uri),
            other => panic!("{other:?}"),
        }
        let s = spec(Some(HttpTemplate::ErrorNoEcho), None);
        match s
            .host_config(1, 1, "GHost", "d", 1500)
            .http
            .unwrap()
            .behavior
        {
            HttpBehavior::NotFound { echo_uri, .. } => assert!(!echo_uri),
            other => panic!("{other:?}"),
        }
    }
}
