//! HTTP content-size models.
//!
//! The shape of Table 2 (the lower-bound histogram for hosts that ran out
//! of data) is driven almost entirely by the distribution of *small* HTTP
//! response sizes on IW10 hosts: the striking 45 % peak at "IW 7" is the
//! classic default 404/301/index page of 448–511 bytes measured against a
//! 64 B MSS. We model total response sizes (headers + body) in 64 B
//! buckets whose weights renormalize the paper's Table 2 rows IW1…IW10.

use crate::util::{bucket_sample, HashStream};

/// Bytes our simulated servers spend on a 200-response head with a
/// three-digit body length and the common `nginx` Server header —
/// measured against `ResponseBuilder`'s exact output by a unit test.
pub const HEADER_OVERHEAD: u32 = 80;

/// Total-response-size buckets for "small page" hosts, `(lo, hi, weight)`
/// with `lo = 64·k`, so that `floor(total / 64) = k` reproduces Table 2's
/// HTTP conditional distribution (rows IW1…IW10 renormalized).
/// Note: the paper's IW1 row (16.5 %) is fed from TWO directions — tiny
/// pages on any host, and *single-segment* responses on Windows hosts
/// (their 536 B MSS floor turns any sub-536 B page into one segment, so
/// the observed-max-segment divisor yields 1). The bucket-1 weight here
/// is therefore lower than the row it feeds.
pub const SMALL_PAGE_BUCKETS: [(u32, u32, f64); 10] = [
    (64, 128, 9.0),   // IW1 row (plus the Windows single-segment effect)
    (128, 192, 8.0),  // IW2
    (192, 256, 8.1),  // IW3
    (256, 320, 3.3),  // IW4
    (320, 384, 4.0),  // IW5
    (384, 448, 2.2),  // IW6
    (448, 512, 60.1), // IW7 — the default-error-page peak
    (512, 576, 3.0),  // IW8
    (576, 640, 1.2),  // IW9
    (640, 704, 1.0),  // IW10 (exact-fill and just-past-fill cases)
];

/// Draw a small total response size (headers + body).
pub fn small_page_total(stream: &mut HashStream) -> u32 {
    bucket_sample(stream, &SMALL_PAGE_BUCKETS)
}

/// Convert a target total size into the body size our HTTP server should
/// be configured with.
pub fn body_for_total(total: u32) -> u32 {
    total.saturating_sub(HEADER_OVERHEAD)
}

/// Draw a large page size — always comfortably beyond any standard IW at
/// MSS ≤ 536 (so IW48·64 = 3072 B and even IW10·536 = 5360 B fill).
pub fn large_page_total(stream: &mut HashStream) -> u32 {
    bucket_sample(
        stream,
        &[
            (8_000, 20_000, 0.45),
            (20_000, 60_000, 0.35),
            (60_000, 200_000, 0.20),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| {
                let mut s = HashStream::new(3, i as u32, 0x5a11);
                small_page_total(&mut s)
            })
            .collect()
    }

    #[test]
    fn iw7_bucket_dominates() {
        let sizes = sample(50_000);
        let n = sizes.len() as f64;
        let k7 = sizes.iter().filter(|s| (448..512).contains(*s)).count() as f64 / n;
        assert!((0.55..0.65).contains(&k7), "IW7 share {k7}");
        let k1 = sizes.iter().filter(|s| (64..128).contains(*s)).count() as f64 / n;
        assert!((0.07..0.11).contains(&k1), "IW1 share {k1}");
    }

    #[test]
    fn small_pages_below_iw10_mostly() {
        let sizes = sample(10_000);
        assert!(sizes.iter().all(|s| (64..704).contains(s)));
    }

    #[test]
    fn body_subtracts_overhead() {
        assert_eq!(body_for_total(480), 400);
        assert_eq!(body_for_total(50), 0);
    }

    #[test]
    fn header_overhead_matches_real_server_output() {
        // A 200 with Content-Type + Server: nginx and a 3-digit body.
        let resp = iw_wire::http::ResponseBuilder::new(200, "OK")
            .header("Server", "nginx")
            .header("Content-Type", "text/html")
            .body(vec![0x41; 400])
            .build();
        assert_eq!(resp.len() as u32 - 400, HEADER_OVERHEAD);
    }

    #[test]
    fn large_pages_fill_every_standard_iw() {
        for i in 0..5000 {
            let mut s = HashStream::new(4, i, 0xb16);
            let total = large_page_total(&mut s);
            assert!(total >= 8_000, "IW48 @ MSS64 needs 3072 B, got {total}");
        }
    }
}
