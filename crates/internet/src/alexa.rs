//! A synthetic Alexa-style popularity list (Fig. 4's scan target).
//!
//! Popular sites are not a uniform sample of the IPv4 space: they sit on
//! CDN/cloud infrastructure, serve real content (so the probes succeed
//! more often) and their operators chase performance (IW10 dominance).
//! We reproduce that by sampling responsive hosts with class- and
//! cohort-dependent acceptance weights.

use crate::population::Population;
use crate::registry::NetClass;
use crate::util::HashStream;

/// One ranked entry.
#[derive(Debug, Clone)]
pub struct AlexaEntry {
    /// 1-based popularity rank.
    pub rank: u32,
    /// The site's domain — gives the scanner a Host header / SNI name,
    /// which is exactly the prior knowledge the full-IPv4 scan lacks.
    pub domain: String,
    /// The site's address in scan space.
    pub ip: u32,
}

/// Acceptance weight for a host class when sampling "popular" sites.
fn class_weight(class: NetClass) -> f64 {
    match class {
        NetClass::Cdn => 1.0,
        NetClass::Cloud => 0.9,
        NetClass::CdnAkamai => 0.9,
        NetClass::CloudAzure => 0.8,
        NetClass::Hosting => 0.55,
        NetClass::HosterGoDaddy => 0.45,
        NetClass::University => 0.10,
        NetClass::Backbone => 0.03,
        NetClass::Access | NetClass::AccessModems | NetClass::Embedded => 0.015,
    }
}

/// Popular sites serve actual content; cohorts that answer with real
/// pages are far more likely to appear in a top list.
fn cohort_weight(tag: &str) -> f64 {
    if tag.contains("large") || tag.contains("redir") || tag.contains("cdn") {
        1.0
    } else if tag.contains("mute") || tag.contains("rst") {
        0.02
    } else if tag.contains("small") || tag.contains("noecho") {
        0.45
    } else {
        0.3
    }
}

/// Build a ranked list of `n` distinct popular sites.
///
/// Deterministic in `(population seed, salt)`. Ranks are not uniform:
/// the very top of real top-lists is even more CDN/cloud-heavy than the
/// tail, which is why the paper observes that "only IW10 is more
/// pronounced for higher ranked HTTP hosts" (§4.1). We reproduce that
/// by sorting accepted sites by a popularity score that favours
/// content-serving infrastructure.
///
/// Panics if the population is too small to supply `n` distinct hosts.
pub fn build(population: &Population, n: usize, salt: u64) -> Vec<AlexaEntry> {
    let space = u64::from(population.space_size());
    let mut accepted: Vec<(u32, String, f64)> = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut stream = HashStream::new(population.config().seed, 0xa1e3u32, salt);
    let mut attempts: u64 = 0;
    let max_attempts = space * 64;
    while accepted.len() < n {
        attempts += 1;
        assert!(
            attempts < max_attempts,
            "population too small for an Alexa list of {n}"
        );
        let ip = (stream.next_u64() % space) as u32;
        if seen.contains(&ip) {
            continue;
        }
        let Some(gt) = population.ground_truth(ip) else {
            continue;
        };
        let w = class_weight(gt.class) * cohort_weight(gt.cohort);
        if stream.next_f64() < w {
            seen.insert(ip);
            // Ground truth exists for this ip, so it is responsive and
            // has a canonical domain.
            let Some(domain) = population.canonical_domain(ip) else {
                continue;
            };
            // Popularity score: compressed infrastructure weight ×
            // noise, so ranks correlate with (but are not determined
            // by) the class — a gradient, not a hard stratification.
            let score = w.powf(0.3) * stream.next_f64();
            accepted.push((ip, domain, score));
        }
    }
    accepted.sort_by(|a, b| b.2.total_cmp(&a.2));
    accepted
        .into_iter()
        .enumerate()
        .map(|(i, (ip, domain, _))| AlexaEntry {
            rank: i as u32 + 1,
            domain,
            ip,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use iw_hoststack::IwPolicy;

    fn population() -> Population {
        Population::new(PopulationConfig::tiny(21))
    }

    #[test]
    fn list_is_deterministic_and_distinct() {
        let p = population();
        let a = build(&p, 300, 1);
        let b = build(&p, 300, 1);
        assert_eq!(a.len(), 300);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ip, y.ip);
            assert_eq!(x.domain, y.domain);
        }
        let distinct: std::collections::HashSet<_> = a.iter().map(|e| e.ip).collect();
        assert_eq!(distinct.len(), 300);
        assert_eq!(a[0].rank, 1);
        assert_eq!(a[299].rank, 300);
    }

    #[test]
    fn popular_sites_skew_iw10() {
        let p = population();
        let list = build(&p, 500, 2);
        let iw10 = list
            .iter()
            .filter(|e| p.ground_truth(e.ip).unwrap().iw == IwPolicy::Segments(10))
            .count() as f64
            / 500.0;
        assert!(
            iw10 > 0.6,
            "Alexa population must be IW10-heavy, got {iw10}"
        );
    }

    #[test]
    fn access_networks_are_rare_in_top_list() {
        let p = population();
        let list = build(&p, 500, 3);
        let access = list
            .iter()
            .filter(|e| {
                matches!(
                    p.ground_truth(e.ip).unwrap().class,
                    NetClass::Access | NetClass::AccessModems
                )
            })
            .count() as f64
            / 500.0;
        assert!(access < 0.12, "access share {access}");
    }

    #[test]
    fn top_ranks_skew_to_content_infrastructure() {
        let p = population();
        let list = build(&p, 400, 7);
        let iw10_share = |entries: &[AlexaEntry]| {
            entries
                .iter()
                .filter(|e| p.ground_truth(e.ip).unwrap().iw == IwPolicy::Segments(10))
                .count() as f64
                / entries.len() as f64
        };
        let top = iw10_share(&list[..100]);
        let bottom = iw10_share(&list[300..]);
        assert!(
            top >= bottom - 0.05,
            "top-100 IW10 share {top} should not trail the tail {bottom}"
        );
    }

    #[test]
    fn domains_match_population() {
        let p = population();
        for e in build(&p, 50, 4) {
            assert_eq!(p.canonical_domain(e.ip).unwrap(), e.domain);
        }
    }
}
