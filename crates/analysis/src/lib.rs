//! # iw-analysis — from raw scan records to the paper's tables & figures
//!
//! Everything §4 does with the measurement data:
//!
//! * [`histogram`] — IW distributions (Fig. 3/4 series, dominant-IW
//!   filtering at the paper's 0.1 % threshold);
//! * [`tables`] — Table 1 (scan overview), Table 2 (lower bounds for
//!   few-data hosts), Table 3 (per-service distributions);
//! * [`classify`] — service classification from public signals only:
//!   provider IP ranges (the ip-ranges.json analogue) and reverse-DNS
//!   keyword/ISP-domain matching (the paper's access-network heuristic);
//! * [`sampling`] — the "1 % is enough" subsampling study (Fig. 3);
//! * [`dbscan`] — DBSCAN over per-AS IW feature vectors (Fig. 5);
//! * [`ccdf`] — complementary CDFs (Fig. 2);
//! * [`figures`] — plain-text renderings of every figure's data series;
//! * [`export`] — CSV writers for external plotting tools;
//! * [`compare`] — the paper's published numbers plus shape checks used
//!   by EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ccdf;
pub mod classify;
pub mod compare;
pub mod dbscan;
pub mod export;
pub mod figures;
pub mod histogram;
pub mod sampling;
pub mod tables;

pub use histogram::IwHistogram;
