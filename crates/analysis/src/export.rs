//! CSV export of figure data series — for regenerating the paper's
//! plots with external tooling (gnuplot, matplotlib, pgfplots).
//!
//! Columns are stable and documented per function; all output is plain
//! ASCII with a header row.

use crate::ccdf::Ccdf;
use crate::dbscan::ClusterSummary;
use crate::histogram::IwHistogram;
use crate::sampling::BarStats;
use std::io::{self, Write};

/// Fig. 2 series: `bytes,ccdf` at each distinct sample value (plus 0).
pub fn ccdf_csv<W: Write>(ccdf: &Ccdf, points: &[u32], mut w: W) -> io::Result<()> {
    writeln!(w, "bytes,ccdf")?;
    for x in points {
        writeln!(w, "{x},{:.6}", ccdf.at(*x))?;
    }
    Ok(())
}

/// Fig. 3/4 series: `iw,count,fraction`.
pub fn histogram_csv<W: Write>(hist: &IwHistogram, mut w: W) -> io::Result<()> {
    writeln!(w, "iw,count,fraction")?;
    for (iw, count) in hist.entries() {
        writeln!(w, "{iw},{count},{:.6}", hist.fraction(iw))?;
    }
    Ok(())
}

/// Fig. 3 sampling panel: `iw,mean,q99,min,max` per bar.
pub fn sampling_csv<W: Write>(stats: &[BarStats], mut w: W) -> io::Result<()> {
    writeln!(w, "iw,mean,q99,min,max")?;
    for b in stats {
        writeln!(
            w,
            "{},{:.6},{:.6},{:.6},{:.6}",
            b.iw, b.mean, b.q99, b.min, b.max
        )?;
    }
    Ok(())
}

/// Fig. 5 clusters: `cluster,ases,hosts,iw1,iw2,iw4,iw10,other`.
pub fn clusters_csv<W: Write>(clusters: &[ClusterSummary], mut w: W) -> io::Result<()> {
    writeln!(w, "cluster,ases,hosts,iw1,iw2,iw4,iw10,other")?;
    for c in clusters {
        writeln!(
            w,
            "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
            c.id,
            c.members.len(),
            c.hosts,
            c.centroid[0],
            c.centroid[1],
            c.centroid[2],
            c.centroid[3],
            c.centroid[4]
        )?;
    }
    Ok(())
}

/// Write any of the above into a file, creating parent directories.
pub fn to_file(
    path: &std::path::Path,
    f: impl FnOnce(&mut Vec<u8>) -> io::Result<()>,
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut buf = Vec::new();
    f(&mut buf)?;
    std::fs::write(path, buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccdf_csv_shape() {
        let ccdf = Ccdf::new(vec![10, 20, 30, 40]);
        let mut out = Vec::new();
        ccdf_csv(&ccdf, &[0, 25, 50], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "bytes,ccdf");
        assert_eq!(lines[1], "0,1.000000");
        assert_eq!(lines[2], "25,0.500000");
        assert_eq!(lines[3], "50,0.000000");
    }

    #[test]
    fn histogram_csv_shape() {
        let hist = IwHistogram::from_estimates([10, 10, 2, 4]);
        let mut out = Vec::new();
        histogram_csv(&hist, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("iw,count,fraction\n"));
        assert!(text.contains("10,2,0.500000"));
        assert!(text.contains("2,1,0.250000"));
    }

    #[test]
    fn sampling_csv_shape() {
        let stats = vec![BarStats {
            iw: 10,
            mean: 0.45,
            q99: 0.5,
            min: 0.4,
            max: 0.5,
        }];
        let mut out = Vec::new();
        sampling_csv(&stats, &mut out).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("10,0.450000,0.500000,0.400000,0.500000"));
    }

    #[test]
    fn clusters_csv_shape() {
        let clusters = vec![ClusterSummary {
            id: 0,
            members: vec![1, 2, 3],
            hosts: 300,
            centroid: [0.0, 0.1, 0.2, 0.7, 0.0],
        }];
        let mut out = Vec::new();
        clusters_csv(&clusters, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("0,3,300,0.0000,0.1000,0.2000,0.7000,0.0000"));
    }

    #[test]
    fn to_file_creates_dirs() {
        let dir = std::env::temp_dir().join("iw-analysis-export-test/nested");
        let path = dir.join("h.csv");
        let hist = IwHistogram::from_estimates([1, 2]);
        to_file(&path, |buf| histogram_csv(&hist, buf)).unwrap();
        assert!(std::fs::read_to_string(&path)
            .unwrap()
            .starts_with("iw,count,fraction"));
        let _ = std::fs::remove_dir_all(dir.parent().unwrap());
    }
}
