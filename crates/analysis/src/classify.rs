//! Service classification (§4.3 / Table 3).
//!
//! The paper classifies content networks "by service-provider IP ranges
//! (e.g. ip-ranges.json) or the GHost HTTP server string in case of
//! Akamai", and access networks from reverse DNS: hosts that encode
//! their IP in the PTR record, minus server networks, filtered by an ISP
//! domain list and a keyword list ("customer", "dialin", …).
//!
//! We use exactly those public signals. The provider "published ranges"
//! are the exemplar AS blocks (the synthetic analogue of
//! ip-ranges.json); ground-truth cohorts are never consulted.

use iw_internet::population::Population;
use iw_internet::registry::NetClass;

/// Service categories of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Service {
    /// Akamai (GHost / published ranges).
    Akamai,
    /// Amazon EC2 (published ranges).
    Ec2,
    /// Cloudflare (published ranges).
    Cloudflare,
    /// Microsoft Azure (published ranges).
    Azure,
    /// Access networks (reverse-DNS heuristic).
    AccessNetwork,
    /// Everything else.
    Other,
}

/// The keyword list for access classification (paper §4.3).
pub const ACCESS_KEYWORDS: [&str; 5] = ["customer", "dialin", "dsl", "cable", "pool"];

/// Published provider ranges: `(service, start, end_exclusive)`.
#[derive(Debug, Clone)]
pub struct ProviderRanges {
    ranges: Vec<(Service, u32, u64)>,
}

impl ProviderRanges {
    /// Extract the published ranges of the big providers from the
    /// registry — the stand-in for ip-ranges.json and friends. Only the
    /// *named* exemplar ASes publish ranges, like in reality.
    pub fn from_population(population: &Population) -> ProviderRanges {
        let mut ranges = Vec::new();
        for a in population.registry().ases() {
            let service = match (a.asn, a.class) {
                (20940, _) => Service::Akamai,
                (16509, _) => Service::Ec2,
                (13335, _) => Service::Cloudflare,
                (8075, _) => Service::Azure,
                _ => continue,
            };
            ranges.push((service, a.start, u64::from(a.start) + u64::from(a.len)));
        }
        ProviderRanges { ranges }
    }

    /// Classify by published IP range.
    pub fn lookup(&self, ip: u32) -> Option<Service> {
        self.ranges
            .iter()
            .find(|(_, s, e)| u64::from(ip) >= u64::from(*s) && u64::from(ip) < *e)
            .map(|(svc, _, _)| *svc)
    }
}

/// Whether a PTR record encodes the host's IP (the paper's 38.6 % /
/// 62.5 % statistic) — we look for all four octets in order.
pub fn rdns_encodes_ip(rdns: &str, ip: u32) -> bool {
    let o = ip.to_be_bytes();
    let needle = format!("{}-{}-{}-{}", o[0], o[1], o[2], o[3]);
    rdns.contains(&needle)
}

/// Whether a PTR record matches the access heuristic: IP-encoded AND an
/// ISP keyword (server networks like EC2 also encode IPs; the keyword
/// list separates them, as the paper's ISP-domain list does).
pub fn rdns_is_access(rdns: &str, ip: u32) -> bool {
    rdns_encodes_ip(rdns, ip) && ACCESS_KEYWORDS.iter().any(|k| rdns.contains(k))
}

/// Full classifier: ranges first, then reverse DNS.
pub struct Classifier {
    ranges: ProviderRanges,
}

impl Classifier {
    /// Build from the population's public registry data.
    pub fn new(population: &Population) -> Classifier {
        Classifier {
            ranges: ProviderRanges::from_population(population),
        }
    }

    /// Classify one host given its address and (public) PTR record.
    pub fn classify(&self, ip: u32, rdns: Option<&str>) -> Service {
        if let Some(svc) = self.ranges.lookup(ip) {
            return svc;
        }
        if let Some(name) = rdns {
            if rdns_is_access(name, ip) {
                return Service::AccessNetwork;
            }
        }
        Service::Other
    }
}

/// Ground-truth-free sanity: the classifier agrees with the population's
/// class for exemplar networks (used by tests and EXPERIMENTS.md).
pub fn classification_accuracy(population: &Population, sample: u32) -> f64 {
    let classifier = Classifier::new(population);
    let mut agree = 0u32;
    let mut total = 0u32;
    for ip in 0..population.space_size() {
        let Some(meta) = population.meta(ip) else {
            continue;
        };
        let predicted = classifier.classify(ip, meta.rdns.as_deref());
        let actual = match (meta.asn, meta.class) {
            (20940, _) => Service::Akamai,
            (16509, _) => Service::Ec2,
            (13335, _) => Service::Cloudflare,
            (8075, _) => Service::Azure,
            (_, NetClass::Access | NetClass::AccessModems) => Service::AccessNetwork,
            _ => Service::Other,
        };
        if predicted == actual {
            agree += 1;
        }
        total += 1;
        if total >= sample {
            break;
        }
    }
    f64::from(agree) / f64::from(total.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_internet::PopulationConfig;

    fn pop() -> Population {
        Population::new(PopulationConfig::tiny(5))
    }

    #[test]
    fn provider_ranges_hit_exemplars() {
        let p = pop();
        let ranges = ProviderRanges::from_population(&p);
        let akamai = p.registry().by_asn(20940).unwrap();
        assert_eq!(ranges.lookup(akamai.start), Some(Service::Akamai));
        let ec2 = p.registry().by_asn(16509).unwrap();
        assert_eq!(ranges.lookup(ec2.start + 5), Some(Service::Ec2));
        assert_eq!(ranges.lookup(0), None, "unrouted space is unclassified");
    }

    #[test]
    fn rdns_ip_encoding() {
        let ip = u32::from_be_bytes([81, 12, 3, 4]);
        assert!(rdns_encodes_ip("customer-81-12-3-4.dsl.isp.example", ip));
        assert!(!rdns_encodes_ip("host.static.example", ip));
        assert!(rdns_is_access("customer-81-12-3-4.x.example", ip));
        assert!(
            !rdns_is_access("srv-81-12-3-4.ec2.example", ip),
            "server networks encode IPs but lack ISP keywords"
        );
    }

    #[test]
    fn classifier_identifies_access_hosts() {
        let p = pop();
        let classifier = Classifier::new(&p);
        let mut access_found = 0;
        for ip in 0..p.space_size() {
            if let Some(meta) = p.meta(ip) {
                if matches!(meta.class, NetClass::Access | NetClass::AccessModems)
                    && classifier.classify(ip, meta.rdns.as_deref()) == Service::AccessNetwork
                {
                    access_found += 1;
                    if access_found > 20 {
                        break;
                    }
                }
            }
        }
        assert!(access_found > 20);
    }

    #[test]
    fn overall_accuracy_high() {
        let acc = classification_accuracy(&pop(), 2000);
        assert!(acc > 0.9, "classification accuracy {acc}");
    }
}
