//! The paper's published numbers and shape checks.
//!
//! EXPERIMENTS.md reports "paper vs measured" for every artifact; the
//! constants here are the paper side, and the `check_*` functions encode
//! the *shape* properties that must hold for the reproduction to count
//! (who wins, by roughly what factor, where crossovers fall) — absolute
//! host counts are scaled and not compared.

use crate::classify::Service;
use crate::histogram::IwHistogram;
use crate::tables::{Table1, Table2, Table3};

/// Paper Table 1: (reachable millions, success %, few-data %, error %).
pub const PAPER_TABLE1_HTTP: (f64, f64, f64, f64) = (48.3, 50.8, 47.6, 1.6);
/// Paper Table 1, TLS row.
pub const PAPER_TABLE1_TLS: (f64, f64, f64, f64) = (42.6, 85.6, 13.3, 1.1);

/// Paper Table 2 rows: `[NoData, IW1..IW10]` in percent.
pub const PAPER_TABLE2_HTTP: [f64; 11] = [4.8, 16.5, 7.1, 7.2, 2.9, 3.6, 2.0, 45.0, 2.7, 1.1, 0.9];
/// Paper Table 2, TLS row.
pub const PAPER_TABLE2_TLS: [f64; 11] = [17.8, 56.3, 5.6, 0.7, 1.9, 2.8, 2.4, 2.4, 3.4, 0.4, 0.8];

/// Paper Table 3: per-service `[IW1, IW2, IW4, IW10]` percents.
/// `None` = the paper prints "–" (Akamai HTTP).
pub const PAPER_TABLE3_HTTP: [(Service, Option<[f64; 4]>); 5] = [
    (Service::Akamai, None),
    (Service::Ec2, Some([0.0, 1.8, 3.4, 94.7])),
    (Service::Cloudflare, Some([0.0, 0.0, 0.0, 100.0])),
    (Service::Azure, Some([0.0, 7.8, 54.9, 37.1])),
    (Service::AccessNetwork, Some([3.5, 50.2, 20.8, 21.7])),
];
/// Paper Table 3, TLS half.
pub const PAPER_TABLE3_TLS: [(Service, Option<[f64; 4]>); 5] = [
    (Service::Akamai, Some([0.0, 0.0, 100.0, 0.0])),
    (Service::Ec2, Some([0.2, 1.3, 2.6, 95.8])),
    (Service::Cloudflare, Some([0.0, 0.0, 0.0, 100.0])),
    (Service::Azure, Some([0.1, 4.1, 73.3, 21.9])),
    (Service::AccessNetwork, Some([4.5, 17.6, 67.1, 10.4])),
];

/// Fig. 2 reference statistics: mean 2186 B, ≥640 B at 86 %, ≥2176 B at
/// 50 % of 36.5 M hosts.
pub const PAPER_FIG2: (f64, f64, f64) = (2186.0, 0.86, 0.50);

/// A single shape-check outcome.
#[derive(Debug, Clone)]
pub struct Check {
    /// What was checked.
    pub name: String,
    /// Whether the shape holds.
    pub pass: bool,
    /// Human-readable detail (paper vs measured).
    pub detail: String,
}

impl Check {
    fn new(name: &str, pass: bool, detail: String) -> Check {
        Check {
            name: name.to_string(),
            pass,
            detail,
        }
    }
}

/// Table 1 shape: TLS succeeds far more often than HTTP; HTTP's few-data
/// share is near half; errors are marginal for both.
pub fn check_table1(table: &Table1) -> Vec<Check> {
    let mut out = Vec::new();
    let http = &table.rows[0];
    let tls = &table.rows[1];
    out.push(Check::new(
        "T1: TLS success > HTTP success by ≥20 points",
        tls.2 - http.2 >= 20.0,
        format!("paper 85.6 vs 50.8; measured {:.1} vs {:.1}", tls.2, http.2),
    ));
    out.push(Check::new(
        "T1: HTTP few-data near half (30–60%)",
        (30.0..=60.0).contains(&http.3),
        format!("paper 47.6; measured {:.1}", http.3),
    ));
    out.push(Check::new(
        "T1: TLS few-data well below HTTP's",
        tls.3 < http.3 / 2.0,
        format!("paper 13.3 vs 47.6; measured {:.1} vs {:.1}", tls.3, http.3),
    ));
    out.push(Check::new(
        "T1: errors marginal (<5%) on both",
        http.4 < 5.0 && tls.4 < 5.0,
        format!("measured {:.1} / {:.1}", http.4, tls.4),
    ));
    out
}

/// Table 2 shape: HTTP peaks at IW7 (the default-error-page bucket); TLS
/// is dominated by IW1 (alerts) with a large NoData share.
pub fn check_table2(http: &Table2, tls: &Table2) -> Vec<Check> {
    let http_peak = http
        .iw
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i + 1)
        .unwrap_or(0);
    let tls_peak = tls
        .iw
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i + 1)
        .unwrap_or(0);
    vec![
        Check::new(
            "T2: HTTP lower bounds peak at IW7",
            http_peak == 7,
            format!("paper peak IW7 (45.0%); measured peak IW{http_peak}"),
        ),
        Check::new(
            "T2: HTTP IW7 share dominant (>25%)",
            http.iw[6] > 25.0,
            format!("paper 45.0; measured {:.1}", http.iw[6]),
        ),
        Check::new(
            "T2: TLS lower bounds peak at IW1 (alert-sized answers)",
            tls_peak == 1 && tls.iw[0] > 30.0,
            format!("paper 56.3; measured {:.1} at peak IW{tls_peak}", tls.iw[0]),
        ),
        Check::new(
            "T2: TLS NoData share ≫ HTTP NoData share",
            tls.no_data > http.no_data * 2.0,
            format!(
                "paper 17.8 vs 4.8; measured {:.1} vs {:.1}",
                tls.no_data, http.no_data
            ),
        ),
    ]
}

/// Table 3 shape: the per-service signatures.
pub fn check_table3(http: &Table3, tls: &Table3) -> Vec<Check> {
    let get = |t: &Table3, svc: Service| t.row(svc).map(|(_, p, n)| (*p, *n));
    let mut out = Vec::new();
    if let Some((p, n)) = get(tls, Service::Akamai) {
        out.push(Check::new(
            "T3: Akamai TLS is ~pure IW4",
            n > 0 && p[2] > 90.0,
            format!("paper 100.0; measured {:.1} (n={n})", p[2]),
        ));
    }
    for (label, table) in [("HTTP", http), ("TLS", tls)] {
        if let Some((p, n)) = get(table, Service::Cloudflare) {
            out.push(Check::new(
                &format!("T3: Cloudflare {label} is ~pure IW10"),
                n > 0 && p[3] > 95.0,
                format!("paper 100.0; measured {:.1} (n={n})", p[3]),
            ));
        }
        if let Some((p, n)) = get(table, Service::Ec2) {
            out.push(Check::new(
                &format!("T3: EC2 {label} dominated by IW10"),
                n > 0 && p[3] > 80.0,
                format!("paper ~95; measured {:.1} (n={n})", p[3]),
            ));
        }
        if let Some((p, n)) = get(table, Service::Azure) {
            out.push(Check::new(
                &format!("T3: Azure {label} IW4 beats IW10"),
                n > 0 && p[2] > p[3],
                format!(
                    "paper 54.9/73.3 vs 37.1/21.9; measured {:.1} vs {:.1}",
                    p[2], p[3]
                ),
            ));
        }
    }
    if let Some((p, n)) = get(http, Service::AccessNetwork) {
        out.push(Check::new(
            "T3: Access HTTP dominated by IW2",
            n > 0 && p[1] > p[0] && p[1] > p[2] && p[1] > p[3],
            format!("paper 50.2; measured IW2={:.1} (n={n})", p[1]),
        ));
    }
    if let Some((p, n)) = get(tls, Service::AccessNetwork) {
        out.push(Check::new(
            "T3: Access TLS dominated by IW4",
            n > 0 && p[2] > p[1] && p[2] > p[3],
            format!("paper 67.1; measured IW4={:.1} (n={n})", p[2]),
        ));
    }
    out
}

/// Fig. 3 shape: IW {1,2,4,10} dominate both protocols (>90 % of
/// successful hosts); TLS has relatively more IW4 than HTTP; IW10 is the
/// single biggest bar on both.
pub fn check_fig3(http: &IwHistogram, tls: &IwHistogram) -> Vec<Check> {
    let dominated = |h: &IwHistogram| {
        [1u32, 2, 4, 10]
            .iter()
            .map(|iw| h.fraction(*iw))
            .sum::<f64>()
    };
    vec![
        Check::new(
            "F3: IW {1,2,4,10} cover >90% (HTTP)",
            dominated(http) > 0.90,
            format!("paper >97%; measured {:.1}%", dominated(http) * 100.0),
        ),
        Check::new(
            "F3: IW {1,2,4,10} cover >90% (TLS)",
            dominated(tls) > 0.90,
            format!("paper >97%; measured {:.1}%", dominated(tls) * 100.0),
        ),
        Check::new(
            "F3: TLS IW4 share exceeds HTTP IW4 share",
            tls.fraction(4) > http.fraction(4),
            format!(
                "measured TLS {:.1}% vs HTTP {:.1}%",
                tls.fraction(4) * 100.0,
                http.fraction(4) * 100.0
            ),
        ),
        Check::new(
            "F3: IW10 is the modal IW on both",
            [1u32, 2, 4]
                .iter()
                .all(|iw| http.fraction(10) > http.fraction(*iw))
                && [1u32, 2, 4]
                    .iter()
                    .all(|iw| tls.fraction(10) > tls.fraction(*iw)),
            format!(
                "measured HTTP IW10 {:.1}%, TLS IW10 {:.1}%",
                http.fraction(10) * 100.0,
                tls.fraction(10) * 100.0
            ),
        ),
    ]
}

/// Fig. 4 shape: the popular population is IW10-heavy (>70 % both
/// protocols) — far above the full-space share.
pub fn check_fig4(
    alexa_http: &IwHistogram,
    alexa_tls: &IwHistogram,
    full_http: &IwHistogram,
) -> Vec<Check> {
    vec![
        Check::new(
            "F4: Alexa HTTP IW10 >70%",
            alexa_http.fraction(10) > 0.70,
            format!(
                "paper ~85%; measured {:.1}%",
                alexa_http.fraction(10) * 100.0
            ),
        ),
        Check::new(
            "F4: Alexa TLS IW10 >70%",
            alexa_tls.fraction(10) > 0.70,
            format!(
                "paper ~80%; measured {:.1}%",
                alexa_tls.fraction(10) * 100.0
            ),
        ),
        Check::new(
            "F4: popularity shifts IW10 up vs full space",
            alexa_http.fraction(10) > full_http.fraction(10) + 0.15,
            format!(
                "measured Alexa {:.1}% vs full {:.1}%",
                alexa_http.fraction(10) * 100.0,
                full_http.fraction(10) * 100.0
            ),
        ),
    ]
}

/// Render a check list as a pass/fail table.
pub fn render_checks(checks: &[Check]) -> String {
    let mut out = String::new();
    for c in checks {
        out.push_str(&format!(
            "[{}] {} — {}\n",
            if c.pass { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_self_consistent() {
        // Table 2 rows should sum close to 100 (tails omitted in paper).
        let sum_http: f64 = PAPER_TABLE2_HTTP.iter().sum();
        assert!((90.0..=101.0).contains(&sum_http), "{sum_http}");
        let sum_tls: f64 = PAPER_TABLE2_TLS.iter().sum();
        assert!((90.0..=101.0).contains(&sum_tls), "{sum_tls}");
    }

    #[test]
    fn fig3_checks_on_synthetic_histograms() {
        let mut http = IwHistogram::new();
        let mut tls = IwHistogram::new();
        for (iw, n_http, n_tls) in [(1u32, 12, 10), (2, 22, 15), (4, 12, 28), (10, 46, 40)] {
            for _ in 0..n_http {
                http.add(iw);
            }
            for _ in 0..n_tls {
                tls.add(iw);
            }
        }
        let checks = check_fig3(&http, &tls);
        assert!(checks.iter().all(|c| c.pass), "{}", render_checks(&checks));
    }

    #[test]
    fn fig3_checks_fail_on_flat_distribution() {
        let flat = IwHistogram::from_estimates([1, 2, 4, 10, 20, 30, 40, 50]);
        let checks = check_fig3(&flat, &flat);
        assert!(checks.iter().any(|c| !c.pass));
    }

    #[test]
    fn render_marks_pass_fail() {
        let checks = vec![
            Check::new("a", true, "x".into()),
            Check::new("b", false, "y".into()),
        ];
        let r = render_checks(&checks);
        assert!(r.contains("[PASS] a"));
        assert!(r.contains("[FAIL] b"));
    }
}
