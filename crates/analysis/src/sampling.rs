//! The "scanning 1 % is enough" study (§4.1, Fig. 3).
//!
//! Two flavours, as in the paper:
//! * subsample the set of *successfully probed* hosts post-hoc at
//!   50 / 30 / 10 / 1 % and compare IW distributions;
//! * repeated independent 1 %-of-address-space samples (the paper takes
//!   30) with the mean and 99 %-quantile per IW bar.

use crate::histogram::IwHistogram;
use iw_core::HostResult;
use iw_internet::util::mix;

/// Deterministically subsample results at `fraction` using `salt`.
pub fn subsample(results: &[HostResult], fraction: f64, salt: u64) -> Vec<&HostResult> {
    results
        .iter()
        .filter(|r| {
            let h = mix(&[salt, u64::from(r.ip)]);
            ((h >> 11) as f64 / (1u64 << 53) as f64) < fraction
        })
        .collect()
}

/// IW histogram of a subsample.
pub fn subsample_histogram(results: &[HostResult], fraction: f64, salt: u64) -> IwHistogram {
    IwHistogram::from_estimates(
        subsample(results, fraction, salt)
            .into_iter()
            .filter_map(|r| r.iw_estimate()),
    )
}

/// Per-IW statistics across repeated samples.
#[derive(Debug, Clone)]
pub struct BarStats {
    /// The IW value.
    pub iw: u32,
    /// Mean fraction across samples.
    pub mean: f64,
    /// 99 %-quantile of the fraction across samples.
    pub q99: f64,
    /// Min/max fractions observed.
    pub min: f64,
    /// Max fraction observed.
    pub max: f64,
}

/// Take `n` independent samples at `fraction` and compute per-IW bar
/// statistics over the union of observed IWs (paper: 30 × 1 %).
pub fn repeated_sample_stats(
    results: &[HostResult],
    fraction: f64,
    n: u32,
    base_salt: u64,
) -> Vec<BarStats> {
    let histograms: Vec<IwHistogram> = (0..n)
        .map(|i| subsample_histogram(results, fraction, mix(&[base_salt, u64::from(i)])))
        .collect();
    let mut iws: Vec<u32> = histograms
        .iter()
        .flat_map(|h| h.entries().map(|(iw, _)| iw))
        .collect();
    iws.sort_unstable();
    iws.dedup();
    iws.into_iter()
        .map(|iw| {
            let mut fractions: Vec<f64> = histograms.iter().map(|h| h.fraction(iw)).collect();
            fractions.sort_by(|a, b| a.total_cmp(b));
            let mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
            let q_idx =
                (((fractions.len() as f64) * 0.99).ceil() as usize).clamp(1, fractions.len()) - 1;
            BarStats {
                iw,
                mean,
                q99: fractions[q_idx],
                min: fractions[0],
                max: fractions[fractions.len() - 1],
            }
        })
        .collect()
}

/// Maximum L1 distance between the full distribution and each of `n`
/// subsamples — the headline stability number.
pub fn stability(results: &[HostResult], fraction: f64, n: u32, base_salt: u64) -> f64 {
    let full = IwHistogram::from_results(results);
    (0..n)
        .map(|i| {
            let h = subsample_histogram(results, fraction, mix(&[base_salt, u64::from(i)]));
            full.l1_distance(&h)
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_core::{HostVerdict, MssVerdict, Protocol};

    fn result(ip: u32, iw: u32) -> HostResult {
        HostResult {
            ip,
            protocol: Protocol::Http,
            runs: vec![],
            verdicts: vec![(64, MssVerdict::Success(iw))],
            host_verdict: HostVerdict::SegmentBased(iw),
        }
    }

    fn world(n: u32) -> Vec<HostResult> {
        // 50% IW10, 25% IW2, 15% IW4, 10% IW1 — deterministic layout.
        (0..n)
            .map(|i| {
                let iw = match i % 20 {
                    0..=9 => 10,
                    10..=14 => 2,
                    15..=17 => 4,
                    _ => 1,
                };
                result(i, iw)
            })
            .collect()
    }

    #[test]
    fn subsample_fraction_is_respected() {
        let results = world(20_000);
        let sub = subsample(&results, 0.1, 7);
        let frac = sub.len() as f64 / results.len() as f64;
        assert!((0.09..0.11).contains(&frac), "{frac}");
    }

    #[test]
    fn subsample_deterministic_per_salt() {
        let results = world(1000);
        let a = subsample(&results, 0.5, 1).len();
        let b = subsample(&results, 0.5, 1).len();
        assert_eq!(a, b);
        let ips_a: Vec<u32> = subsample(&results, 0.5, 1).iter().map(|r| r.ip).collect();
        let ips_b: Vec<u32> = subsample(&results, 0.5, 2).iter().map(|r| r.ip).collect();
        assert_ne!(ips_a, ips_b);
    }

    #[test]
    fn small_samples_match_full_distribution() {
        // 1% of 50k ≈ 500 hosts per sample: expected L1 noise across four
        // bars is ~4·sqrt(p(1-p)/500) ≈ 0.07; allow 2× headroom. (The
        // paper's 1% of 24M hosts is far tighter.)
        let results = world(50_000);
        let dist = stability(&results, 0.01, 10, 42);
        assert!(dist < 0.14, "1% samples should be stable, L1 max {dist}");
        // Larger samples must be tighter than small ones on average.
        let dist30 = stability(&results, 0.3, 10, 42);
        assert!(dist30 < dist, "30% ({dist30}) vs 1% ({dist})");
    }

    #[test]
    fn bar_stats_bracket_truth() {
        let results = world(50_000);
        let stats = repeated_sample_stats(&results, 0.01, 30, 9);
        let iw10 = stats.iter().find(|b| b.iw == 10).expect("IW10 bar");
        assert!((iw10.mean - 0.5).abs() < 0.03, "mean {}", iw10.mean);
        assert!(iw10.min <= iw10.mean && iw10.mean <= iw10.max);
        assert!(iw10.q99 >= iw10.mean * 0.9);
        let iw1 = stats.iter().find(|b| b.iw == 1).expect("IW1 bar");
        assert!((iw1.mean - 0.1).abs() < 0.02, "mean {}", iw1.mean);
    }
}
