//! Data series and plain-text renderings for the paper's figures.

use crate::ccdf::Ccdf;
use crate::dbscan::ClusterSummary;
use crate::histogram::IwHistogram;
use crate::sampling::BarStats;

/// Figure 2: CCDF of certificate chain lengths, annotated with the byte
/// thresholds `IW · MSS` the paper overlays.
pub struct Fig2 {
    /// The CCDF.
    pub ccdf: Ccdf,
}

/// The threshold series the paper overlays: (label, bytes).
pub fn fig2_thresholds() -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for iw in [1u32, 2, 4, 10] {
        out.push((format!("MSS 64, IW {iw}"), 64 * iw));
    }
    for iw in [1u32, 2, 4] {
        out.push((format!("MSS 1336, IW {iw}"), 1336 * iw));
    }
    out
}

impl Fig2 {
    /// Build from chain-length samples.
    pub fn new(samples: Vec<u32>) -> Fig2 {
        Fig2 {
            ccdf: Ccdf::new(samples),
        }
    }

    /// Render: stats line + coverage at each threshold.
    pub fn render(&self) -> String {
        let mut out = format!(
            "certificate chains: n={} mean={:.0}B min={}B max={}B\n",
            self.ccdf.len(),
            self.ccdf.mean(),
            self.ccdf.min(),
            self.ccdf.max()
        );
        out.push_str("threshold              bytes   P(chain >= bytes)\n");
        for (label, bytes) in fig2_thresholds() {
            out.push_str(&format!(
                "{label:<22} {bytes:>5}   {:.3}\n",
                self.ccdf.at(bytes)
            ));
        }
        out
    }
}

/// Render an IW histogram as a labelled bar chart (Figs. 3 & 4).
pub fn render_iw_bars(label: &str, hist: &IwHistogram, threshold: f64, log_counts: bool) -> String {
    let mut out = format!("{label} (n={})\n", hist.total());
    for (iw, frac) in hist.dominant(threshold) {
        let count = hist.count(iw);
        let bar_len = if log_counts {
            // Fig. 4 uses a log scale: bar length ∝ log10(count).
            ((count.max(1) as f64).log10() * 8.0) as usize
        } else {
            (frac * 100.0) as usize
        };
        let bar: String = std::iter::repeat_n('#', bar_len.min(70)).collect();
        out.push_str(&format!(
            "IW{iw:<3} {:>6.2}% {count:>9}  {bar}\n",
            frac * 100.0
        ));
    }
    out
}

/// Render the Fig. 3 sampling panel: full vs subsample fractions plus the
/// 30×1 % mean/q99 bars.
pub fn render_sampling_panel(
    full: &IwHistogram,
    subsamples: &[(String, IwHistogram)],
    one_percent_stats: &[BarStats],
) -> String {
    let mut iws: Vec<u32> = full.dominant(0.001).iter().map(|(iw, _)| *iw).collect();
    iws.sort_unstable();
    let mut out = String::from("IW    full%");
    for (label, _) in subsamples {
        out.push_str(&format!(" {label:>6}"));
    }
    out.push_str("   1%mean  1%q99\n");
    for iw in iws {
        out.push_str(&format!("{iw:<5} {:>5.2}", full.fraction(iw) * 100.0));
        for (_, h) in subsamples {
            out.push_str(&format!(" {:>6.2}", h.fraction(iw) * 100.0));
        }
        let stats = one_percent_stats.iter().find(|b| b.iw == iw);
        match stats {
            Some(b) => out.push_str(&format!(
                "   {:>6.2} {:>6.2}\n",
                b.mean * 100.0,
                b.q99 * 100.0
            )),
            None => out.push_str("        -      -\n"),
        }
    }
    out
}

/// Render Fig. 5: cluster summaries + named-AS bars.
pub fn render_fig5(
    clusters: &[ClusterSummary],
    named: &[(String, [f64; 5])],
    total_hosts: u64,
) -> String {
    let mut out = String::from("DBSCAN clusters (features: IW1/IW2/IW4/IW10/other)\n");
    let clustered: u64 = clusters.iter().map(|c| c.hosts).sum();
    out.push_str(&format!(
        "clustered hosts: {} of {} ({:.0}%)\n",
        clustered,
        total_hosts,
        clustered as f64 / total_hosts.max(1) as f64 * 100.0
    ));
    for c in clusters {
        out.push_str(&format!(
            "cluster {}: {} ASes, {} hosts, centroid [{:.2} {:.2} {:.2} {:.2} {:.2}]\n",
            c.id,
            c.members.len(),
            c.hosts,
            c.centroid[0],
            c.centroid[1],
            c.centroid[2],
            c.centroid[3],
            c.centroid[4]
        ));
    }
    out.push_str("\nrepresentative ASes (IW1/IW2/IW4/IW10/other):\n");
    for (name, f) in named {
        out.push_str(&format!(
            "{name:<22} [{:.2} {:.2} {:.2} {:.2} {:.2}]\n",
            f[0], f[1], f[2], f[3], f[4]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_match_paper_legend() {
        let t = fig2_thresholds();
        assert_eq!(t.len(), 7);
        assert!(t.contains(&("MSS 64, IW 10".to_string(), 640)));
        assert!(t.contains(&("MSS 1336, IW 4".to_string(), 5344)));
    }

    #[test]
    fn fig2_render_contains_stats() {
        let f = Fig2::new(vec![36, 640, 2186, 65000]);
        let r = f.render();
        assert!(r.contains("n=4"));
        assert!(r.contains("MSS 64, IW 1"));
    }

    #[test]
    fn bars_render() {
        let h = IwHistogram::from_estimates([10, 10, 10, 2]);
        let linear = render_iw_bars("HTTP", &h, 0.001, false);
        assert!(linear.contains("IW10"));
        assert!(linear.contains("75.00%"));
        let log = render_iw_bars("Alexa", &h, 0.001, true);
        assert!(log.contains("IW2"));
    }

    #[test]
    fn sampling_panel_renders_all_columns() {
        let full = IwHistogram::from_estimates([1, 2, 10, 10, 10, 10]);
        let sub = vec![("50%".to_string(), IwHistogram::from_estimates([10, 2]))];
        let stats = vec![BarStats {
            iw: 10,
            mean: 0.66,
            q99: 0.7,
            min: 0.6,
            max: 0.7,
        }];
        let panel = render_sampling_panel(&full, &sub, &stats);
        assert!(panel.contains("full%"));
        assert!(panel.contains("50%"));
        assert!(panel.contains("66.00"));
    }
}
