//! IW distributions.

use iw_core::HostResult;
use std::collections::BTreeMap;

/// A histogram of successful IW estimates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IwHistogram {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl IwHistogram {
    /// Empty histogram.
    pub fn new() -> IwHistogram {
        IwHistogram::default()
    }

    /// Build from scan results (successful MSS-64 estimates only, as the
    /// paper reports).
    pub fn from_results(results: &[HostResult]) -> IwHistogram {
        let mut h = IwHistogram::new();
        for r in results {
            if let Some(iw) = r.iw_estimate() {
                h.add(iw);
            }
        }
        h
    }

    /// Build from an iterator of raw estimates.
    pub fn from_estimates(estimates: impl IntoIterator<Item = u32>) -> IwHistogram {
        let mut h = IwHistogram::new();
        for e in estimates {
            h.add(e);
        }
        h
    }

    /// Record one estimate.
    pub fn add(&mut self, iw: u32) {
        *self.counts.entry(iw).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of estimates.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count for one IW.
    pub fn count(&self, iw: u32) -> u64 {
        self.counts.get(&iw).copied().unwrap_or(0)
    }

    /// Fraction (0..1) for one IW.
    pub fn fraction(&self, iw: u32) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(iw) as f64 / self.total as f64
        }
    }

    /// All `(iw, count)` pairs, ascending by IW.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }

    /// IWs used by at least `threshold` (fraction) of hosts — the
    /// paper's Fig. 3 uses 0.001 (0.1 %).
    pub fn dominant(&self, threshold: f64) -> Vec<(u32, f64)> {
        self.entries()
            .filter_map(|(iw, c)| {
                let f = c as f64 / self.total.max(1) as f64;
                (f >= threshold).then_some((iw, f))
            })
            .collect()
    }

    /// L1 distance between two histograms' fraction vectors (over the
    /// union of supports) — the sampling-stability metric.
    pub fn l1_distance(&self, other: &IwHistogram) -> f64 {
        let keys: std::collections::BTreeSet<u32> = self
            .counts
            .keys()
            .chain(other.counts.keys())
            .copied()
            .collect();
        keys.into_iter()
            .map(|k| (self.fraction(k) - other.fraction(k)).abs())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_and_fractions() {
        let h = IwHistogram::from_estimates([10, 10, 10, 2, 4]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(10), 3);
        assert!((h.fraction(10) - 0.6).abs() < 1e-12);
        assert_eq!(h.count(7), 0);
        assert_eq!(h.fraction(7), 0.0);
    }

    #[test]
    fn dominant_filter() {
        let mut h = IwHistogram::new();
        for _ in 0..999 {
            h.add(10);
        }
        h.add(48);
        let dom = h.dominant(0.01);
        assert_eq!(dom.len(), 1);
        assert_eq!(dom[0].0, 10);
        let all = h.dominant(0.0005);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn l1_distance_properties() {
        let a = IwHistogram::from_estimates([1, 2, 10, 10]);
        let b = IwHistogram::from_estimates([1, 2, 10, 10]);
        assert!(a.l1_distance(&b) < 1e-12);
        let c = IwHistogram::from_estimates([4, 4, 4, 4]);
        assert!((a.l1_distance(&c) - 2.0).abs() < 1e-12, "disjoint = 2.0");
        assert!((a.l1_distance(&c) - c.l1_distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let h = IwHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction(10), 0.0);
        assert!(h.dominant(0.001).is_empty());
    }
}
