//! Builders and plain-text renderers for the paper's three tables.

use crate::classify::{Classifier, Service};
use crate::histogram::IwHistogram;
use iw_core::{HostResult, MssVerdict, ScanSummary};
use iw_internet::population::Population;
// Keyed by `Service` (Ord): deterministic iteration keeps the rendered
// tables byte-stable (iw-lint: no-unordered-iteration).
use std::collections::BTreeMap;

/// Table 1: scan data-set overview.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows: `(label, reachable, success %, few-data %, error %)`.
    pub rows: Vec<(String, u64, f64, f64, f64)>,
}

impl Table1 {
    /// Build from per-protocol summaries.
    pub fn new(rows: &[(&str, &ScanSummary)]) -> Table1 {
        Table1 {
            rows: rows
                .iter()
                .map(|(label, s)| {
                    let (su, fd, er) = s.rates();
                    (label.to_string(), s.reachable, su, fd, er)
                })
                .collect(),
        }
    }

    /// Render like the paper's Table 1.
    pub fn render(&self) -> String {
        let mut out = String::from("Scan   Reachable    Success   Few Data   Error\n");
        for (label, reach, su, fd, er) in &self.rows {
            out.push_str(&format!(
                "{label:<6} {reach:>9}   {su:>6.1}%   {fd:>7.1}%   {er:>4.1}%\n"
            ));
        }
        out
    }
}

/// Table 2: lower-bound IW distribution of few-data hosts.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Fraction (of the few-data set) with zero bytes.
    pub no_data: f64,
    /// Fractions for lower bounds 1..=10.
    pub iw: [f64; 10],
    /// Fraction with lower bound above 10.
    pub above_10: f64,
    /// Size of the few-data set.
    pub total: u64,
}

impl Table2 {
    /// Build from one protocol's results.
    pub fn new(results: &[HostResult]) -> Table2 {
        let mut counts = [0u64; 12]; // 0 = NoData, 1..=10, 11 = >10
        let mut total = 0u64;
        for r in results {
            if let Some(MssVerdict::FewData(lb)) = r.primary_verdict() {
                total += 1;
                let idx = match lb {
                    0 => 0,
                    1..=10 => lb as usize,
                    _ => 11,
                };
                counts[idx] += 1;
            }
        }
        let frac = |c: u64| c as f64 / total.max(1) as f64 * 100.0;
        let mut iw = [0.0; 10];
        for (i, slot) in iw.iter_mut().enumerate() {
            *slot = frac(counts[i + 1]);
        }
        Table2 {
            no_data: frac(counts[0]),
            iw,
            above_10: frac(counts[11]),
            total,
        }
    }

    /// Render like the paper's Table 2.
    pub fn render(&self, label: &str) -> String {
        let mut out = format!("{label:<5} NoData ");
        for i in 1..=10 {
            out.push_str(&format!("IW{i:<4}"));
        }
        out.push('\n');
        out.push_str(&format!("{:<5} {:>5.1}% ", "", self.no_data));
        for v in self.iw {
            out.push_str(&format!("{v:>4.1}% "));
        }
        out.push('\n');
        out
    }
}

/// Table 3: per-service IW distribution.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Rows: `(service, [IW1 %, IW2 %, IW4 %, IW10 %], hosts)`.
    pub rows: Vec<(Service, [f64; 4], u64)>,
}

/// The services reported in the paper's Table 3, in row order.
pub const TABLE3_SERVICES: [Service; 5] = [
    Service::Akamai,
    Service::Ec2,
    Service::Cloudflare,
    Service::Azure,
    Service::AccessNetwork,
];

impl Table3 {
    /// Build from one protocol's results using public classification
    /// signals (ranges + reverse DNS looked up from the population).
    pub fn new(results: &[HostResult], population: &Population) -> Table3 {
        let classifier = Classifier::new(population);
        let mut hists: BTreeMap<Service, IwHistogram> = BTreeMap::new();
        for r in results {
            let Some(iw) = r.iw_estimate() else { continue };
            let rdns = population.meta(r.ip).and_then(|m| m.rdns);
            let service = classifier.classify(r.ip, rdns.as_deref());
            hists.entry(service).or_default().add(iw);
        }
        let rows = TABLE3_SERVICES
            .iter()
            .map(|svc| {
                let h = hists.remove(svc).unwrap_or_default();
                let pct = |iw: u32| h.fraction(iw) * 100.0;
                (*svc, [pct(1), pct(2), pct(4), pct(10)], h.total())
            })
            .collect();
        Table3 { rows }
    }

    /// Render like the paper's Table 3 (one protocol's half).
    pub fn render(&self) -> String {
        let mut out = String::from("Service        IW1     IW2     IW4     IW10    (hosts)\n");
        for (svc, pct, hosts) in &self.rows {
            let name = match svc {
                Service::Akamai => "Akamai",
                Service::Ec2 => "EC2",
                Service::Cloudflare => "Cloudflare",
                Service::Azure => "Azure",
                Service::AccessNetwork => "Access NW",
                Service::Other => "Other",
            };
            if *hosts == 0 {
                out.push_str(&format!(
                    "{name:<12}     –       –       –       –      (0)\n"
                ));
            } else {
                out.push_str(&format!(
                    "{name:<12} {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}   ({hosts})\n",
                    pct[0], pct[1], pct[2], pct[3]
                ));
            }
        }
        out
    }

    /// Row accessor by service.
    pub fn row(&self, svc: Service) -> Option<&(Service, [f64; 4], u64)> {
        self.rows.iter().find(|(s, _, _)| *s == svc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_core::{HostVerdict, Protocol};

    fn result(ip: u32, verdict: MssVerdict) -> HostResult {
        HostResult {
            ip,
            protocol: Protocol::Http,
            runs: vec![],
            verdicts: vec![(64, verdict)],
            host_verdict: HostVerdict::Unclassified,
        }
    }

    #[test]
    fn table1_formats_rates() {
        let s = ScanSummary {
            targets: 1_000,
            reachable: 483,
            success: 245,
            few_data: 230,
            error: 8,
            refused: 2,
            ..ScanSummary::default()
        };
        let t = Table1::new(&[("HTTP", &s)]);
        let rendered = t.render();
        assert!(rendered.contains("HTTP"));
        assert!(rendered.contains("483"));
        assert!(rendered.contains("50.7%"), "{rendered}");
    }

    #[test]
    fn table2_distribution() {
        let mut results = Vec::new();
        for i in 0..10 {
            results.push(result(i, MssVerdict::FewData(7)));
        }
        results.push(result(100, MssVerdict::FewData(0)));
        results.push(result(101, MssVerdict::FewData(1)));
        results.push(result(102, MssVerdict::FewData(34)));
        results.push(result(103, MssVerdict::Success(10))); // ignored
        let t = Table2::new(&results);
        assert_eq!(t.total, 13);
        assert!((t.iw[6] - 10.0 / 13.0 * 100.0).abs() < 1e-9);
        assert!((t.no_data - 100.0 / 13.0).abs() < 1e-9);
        assert!((t.above_10 - 100.0 / 13.0).abs() < 1e-9);
        let rendered = t.render("HTTP");
        assert!(rendered.contains("NoData"));
    }

    #[test]
    fn table2_empty_is_all_zero() {
        let t = Table2::new(&[]);
        assert_eq!(t.total, 0);
        assert_eq!(t.no_data, 0.0);
    }
}
