//! Complementary CDFs (Fig. 2's y-axis).

/// A CCDF over `u32` samples: P(X ≥ x).
#[derive(Debug, Clone)]
pub struct Ccdf {
    sorted: Vec<u32>,
}

impl Ccdf {
    /// Build from samples.
    pub fn new(mut samples: Vec<u32>) -> Ccdf {
        samples.sort_unstable();
        Ccdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≥ x).
    pub fn at(&self, x: u32) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// Evaluate at several thresholds.
    pub fn series(&self, xs: &[u32]) -> Vec<(u32, f64)> {
        xs.iter().map(|x| (*x, self.at(*x))).collect()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.iter().map(|v| f64::from(*v)).sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> u32 {
        self.sorted.first().copied().unwrap_or(0)
    }

    /// Maximum sample.
    pub fn max(&self) -> u32 {
        self.sorted.last().copied().unwrap_or(0)
    }

    /// The q-quantile (0..=1) by nearest-rank.
    pub fn quantile(&self, q: f64) -> u32 {
        if self.sorted.is_empty() {
            return 0;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len()) - 1;
        self.sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ccdf() {
        let c = Ccdf::new(vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert!((c.at(1) - 1.0).abs() < 1e-12, "everything >= min");
        assert!((c.at(6) - 0.5).abs() < 1e-12);
        assert!((c.at(11) - 0.0).abs() < 1e-12);
        assert_eq!(c.len(), 10);
    }

    #[test]
    fn ties_counted_correctly() {
        let c = Ccdf::new(vec![5, 5, 5, 10]);
        assert!((c.at(5) - 1.0).abs() < 1e-12);
        assert!((c.at(6) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stats() {
        let c = Ccdf::new(vec![2, 4, 6, 8]);
        assert!((c.mean() - 5.0).abs() < 1e-12);
        assert_eq!(c.min(), 2);
        assert_eq!(c.max(), 8);
        assert_eq!(c.quantile(0.5), 4);
        assert_eq!(c.quantile(1.0), 8);
    }

    #[test]
    fn empty() {
        let c = Ccdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.at(0), 0.0);
        assert_eq!(c.quantile(0.5), 0);
    }

    #[test]
    fn series_matches_at() {
        let c = Ccdf::new((0..100).collect());
        for (x, p) in c.series(&[0, 50, 99, 100]) {
            assert!((p - c.at(x)).abs() < 1e-12);
        }
    }
}
