//! DBSCAN clustering of per-AS IW distributions (Fig. 5).
//!
//! The paper clusters ASes "with similar IW distributions using DBSCAN
//! (wrt. IW 1, 2, 4, 10 and other)". Feature vectors are the five
//! fractions; distance is Euclidean.

/// A point with an attached payload (the AS number).
#[derive(Debug, Clone)]
pub struct AsPoint {
    /// AS number.
    pub asn: u32,
    /// Number of measured hosts behind the feature vector (weights the
    /// "clusters representing a fraction of all IPs" statistic).
    pub hosts: u64,
    /// Fractions of IW 1, 2, 4, 10, other — sums to 1 for non-empty ASes.
    pub features: [f64; 5],
}

impl AsPoint {
    /// Build a feature vector from per-AS IW counts.
    pub fn from_counts(asn: u32, counts: &[(u32, u64)]) -> AsPoint {
        let total: u64 = counts.iter().map(|(_, c)| c).sum();
        let mut features = [0.0f64; 5];
        for (iw, c) in counts {
            let f = *c as f64 / total.max(1) as f64;
            match iw {
                1 => features[0] += f,
                2 => features[1] += f,
                4 => features[2] += f,
                10 => features[3] += f,
                _ => features[4] += f,
            }
        }
        AsPoint {
            asn,
            hosts: total,
            features,
        }
    }
}

fn dist(a: &[f64; 5], b: &[f64; 5]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Cluster labels: `Some(id)` or `None` for noise.
pub type Labels = Vec<Option<usize>>;

/// Plain DBSCAN (no spatial index — AS counts are in the hundreds).
pub fn dbscan(points: &[AsPoint], eps: f64, min_pts: usize) -> Labels {
    let n = points.len();
    let mut labels: Labels = vec![None; n];
    let mut visited = vec![false; n];
    let mut cluster = 0usize;

    let neighbors = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|j| dist(&points[i].features, &points[*j].features) <= eps)
            .collect()
    };

    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let nbrs = neighbors(i);
        if nbrs.len() < min_pts {
            continue; // noise (may be claimed by a cluster later)
        }
        // Start a new cluster and expand.
        let id = cluster;
        cluster += 1;
        labels[i] = Some(id);
        let mut queue: Vec<usize> = nbrs;
        while let Some(j) = queue.pop() {
            if labels[j].is_none() {
                labels[j] = Some(id);
            }
            if visited[j] {
                continue;
            }
            visited[j] = true;
            let jn = neighbors(j);
            if jn.len() >= min_pts {
                queue.extend(jn);
            }
        }
    }
    labels
}

/// Summary of one cluster.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Cluster id.
    pub id: usize,
    /// Member AS numbers.
    pub members: Vec<u32>,
    /// Total hosts across members.
    pub hosts: u64,
    /// Host-weighted mean feature vector.
    pub centroid: [f64; 5],
}

/// Summarize DBSCAN output.
pub fn summarize(points: &[AsPoint], labels: &Labels) -> Vec<ClusterSummary> {
    let max_id = labels.iter().flatten().max().copied();
    let Some(max_id) = max_id else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for id in 0..=max_id {
        let member_idx: Vec<usize> = (0..points.len())
            .filter(|i| labels[*i] == Some(id))
            .collect();
        let hosts: u64 = member_idx.iter().map(|i| points[*i].hosts).sum();
        let mut centroid = [0.0f64; 5];
        for i in &member_idx {
            for (k, c) in centroid.iter_mut().enumerate() {
                *c += points[*i].features[k] * points[*i].hosts as f64;
            }
        }
        for c in centroid.iter_mut() {
            *c /= hosts.max(1) as f64;
        }
        out.push(ClusterSummary {
            id,
            members: member_idx.iter().map(|i| points[*i].asn).collect(),
            hosts,
            centroid,
        });
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.hosts));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(asn: u32, f: [f64; 5]) -> AsPoint {
        AsPoint {
            asn,
            hosts: 100,
            features: f,
        }
    }

    #[test]
    fn two_well_separated_clusters() {
        let mut points = Vec::new();
        // IW10-dominant group.
        for i in 0..10 {
            points.push(pt(i, [0.0, 0.05, 0.0, 0.95, 0.0]));
        }
        // IW2-dominant group.
        for i in 10..20 {
            points.push(pt(i, [0.05, 0.9, 0.05, 0.0, 0.0]));
        }
        // A lone outlier.
        points.push(pt(99, [0.0, 0.0, 0.0, 0.0, 1.0]));
        let labels = dbscan(&points, 0.2, 4);
        let summaries = summarize(&points, &labels);
        assert_eq!(summaries.len(), 2);
        assert!(labels[20].is_none(), "outlier is noise");
        // Members of the same group share a label.
        assert!(labels[..10].iter().all(|l| *l == labels[0]));
        assert!(labels[10..20].iter().all(|l| *l == labels[10]));
        assert_ne!(labels[0], labels[10]);
    }

    #[test]
    fn feature_vector_construction() {
        let p = AsPoint::from_counts(7, &[(1, 10), (2, 20), (4, 30), (10, 30), (48, 10)]);
        assert_eq!(p.hosts, 100);
        assert!((p.features[0] - 0.1).abs() < 1e-12);
        assert!((p.features[1] - 0.2).abs() < 1e-12);
        assert!((p.features[2] - 0.3).abs() < 1e-12);
        assert!((p.features[3] - 0.3).abs() < 1e-12);
        assert!((p.features[4] - 0.1).abs() < 1e-12, "48 counts as other");
        assert!((p.features.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_pts_controls_noise() {
        let points: Vec<AsPoint> = (0..3).map(|i| pt(i, [1.0, 0.0, 0.0, 0.0, 0.0])).collect();
        let strict = dbscan(&points, 0.1, 5);
        assert!(strict.iter().all(Option::is_none));
        let lenient = dbscan(&points, 0.1, 2);
        assert!(lenient.iter().all(Option::is_some));
    }

    #[test]
    fn empty_input() {
        let labels = dbscan(&[], 0.5, 3);
        assert!(labels.is_empty());
        assert!(summarize(&[], &labels).is_empty());
    }

    #[test]
    fn centroid_weighted_by_hosts() {
        let mut a = pt(1, [1.0, 0.0, 0.0, 0.0, 0.0]);
        a.hosts = 300;
        let mut b = pt(2, [0.0, 1.0, 0.0, 0.0, 0.0]);
        b.hosts = 100;
        let points = vec![a, b];
        // Force one cluster with a huge eps.
        let labels = dbscan(&points, 10.0, 1);
        let s = summarize(&points, &labels);
        assert_eq!(s.len(), 1);
        assert!((s[0].centroid[0] - 0.75).abs() < 1e-12);
        assert!((s[0].centroid[1] - 0.25).abs() < 1e-12);
        assert_eq!(s[0].hosts, 400);
    }
}
