//! Property tests on the analysis layer: statistics stay consistent
//! under permutation, merging and subsetting.

use iw_analysis::ccdf::Ccdf;
use iw_analysis::dbscan::{dbscan, summarize, AsPoint};
use iw_analysis::histogram::IwHistogram;
use iw_analysis::sampling::subsample;
use iw_analysis::tables::Table2;
use iw_core::{HostResult, HostVerdict, MssVerdict, Protocol};
use proptest::prelude::*;

fn result(ip: u32, verdict: MssVerdict) -> HostResult {
    HostResult {
        ip,
        protocol: Protocol::Http,
        runs: vec![],
        verdicts: vec![(64, verdict)],
        host_verdict: HostVerdict::Unclassified,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CCDF is monotone non-increasing and bounded in [0, 1].
    #[test]
    fn ccdf_monotone(samples in proptest::collection::vec(0u32..100_000, 1..500)) {
        let ccdf = Ccdf::new(samples);
        let mut prev = 1.0f64;
        for x in (0..100_000).step_by(997) {
            let p = ccdf.at(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p <= prev + 1e-12, "CCDF increased at {x}");
            prev = p;
        }
        prop_assert!((ccdf.at(0) - 1.0).abs() < 1e-12, "P(X >= 0) = 1");
    }

    /// Quantiles are ordered and bracket the extremes.
    #[test]
    fn ccdf_quantiles_ordered(samples in proptest::collection::vec(0u32..10_000, 1..300)) {
        let ccdf = Ccdf::new(samples);
        let q25 = ccdf.quantile(0.25);
        let q50 = ccdf.quantile(0.5);
        let q99 = ccdf.quantile(0.99);
        prop_assert!(ccdf.min() <= q25 && q25 <= q50 && q50 <= q99 && q99 <= ccdf.max());
    }

    /// Histogram fractions sum to 1 and the L1 metric is a semimetric.
    #[test]
    fn histogram_l1_semimetric(
        a in proptest::collection::vec(1u32..30, 1..200),
        b in proptest::collection::vec(1u32..30, 1..200),
        c in proptest::collection::vec(1u32..30, 1..200),
    ) {
        let ha = IwHistogram::from_estimates(a);
        let hb = IwHistogram::from_estimates(b);
        let hc = IwHistogram::from_estimates(c);
        let total: f64 = ha.entries().map(|(iw, _)| ha.fraction(iw)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(ha.l1_distance(&ha) < 1e-12);
        prop_assert!((ha.l1_distance(&hb) - hb.l1_distance(&ha)).abs() < 1e-12);
        prop_assert!(ha.l1_distance(&hb) <= 2.0 + 1e-12);
        // Triangle inequality for the L1 distance on distributions.
        prop_assert!(
            ha.l1_distance(&hc) <= ha.l1_distance(&hb) + hb.l1_distance(&hc) + 1e-9
        );
    }

    /// Table 2 percentages are non-negative and sum to ≤ 100 (+ NoData
    /// + above-10 completes the partition).
    #[test]
    fn table2_partitions(bounds in proptest::collection::vec(0u32..40, 0..300)) {
        let results: Vec<HostResult> = bounds
            .iter()
            .enumerate()
            .map(|(i, lb)| result(i as u32, MssVerdict::FewData(*lb)))
            .collect();
        let t = Table2::new(&results);
        let sum: f64 = t.no_data + t.iw.iter().sum::<f64>() + t.above_10;
        if !bounds.is_empty() {
            prop_assert!((sum - 100.0).abs() < 1e-6, "partition sums to {sum}");
        }
        prop_assert!(t.no_data >= 0.0 && t.above_10 >= 0.0);
        prop_assert_eq!(t.total, bounds.len() as u64);
    }

    /// Subsampling is a strict subset and respects the fraction ±5σ.
    #[test]
    fn subsample_subset_and_fraction(
        n in 100u32..3000,
        fraction in 0.05f64..0.95,
        salt in any::<u64>(),
    ) {
        let results: Vec<HostResult> = (0..n)
            .map(|i| result(i, MssVerdict::Success(10)))
            .collect();
        let sub = subsample(&results, fraction, salt);
        prop_assert!(sub.len() <= results.len());
        let expected = f64::from(n) * fraction;
        let sigma = (f64::from(n) * fraction * (1.0 - fraction)).sqrt();
        prop_assert!(
            (sub.len() as f64 - expected).abs() < 5.0 * sigma + 1.0,
            "sample {} vs expected {expected}",
            sub.len()
        );
        // Subset property: every sampled ip exists in the base.
        for r in &sub {
            prop_assert!(r.ip < n);
        }
    }

    /// DBSCAN labels are within range and every cluster meets min_pts
    /// when counted with its border points' cores; noise stays noise.
    #[test]
    fn dbscan_label_sanity(
        features in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 5..60),
        eps in 0.05f64..0.5,
        min_pts in 2usize..6,
    ) {
        let points: Vec<AsPoint> = features
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                let rest = (1.0 - a - b).max(0.0);
                AsPoint {
                    asn: i as u32,
                    hosts: 10,
                    features: [*a, *b, rest, 0.0, 0.0],
                }
            })
            .collect();
        let labels = dbscan(&points, eps, min_pts);
        prop_assert_eq!(labels.len(), points.len());
        let summaries = summarize(&points, &labels);
        for s in &summaries {
            prop_assert!(!s.members.is_empty());
            // Host-weighted centroid fractions stay in [0, 1].
            for c in s.centroid {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&c));
            }
        }
        // Cluster ids are dense 0..k.
        let max_label = labels.iter().flatten().max().copied();
        if let Some(max) = max_label {
            for id in 0..=max {
                prop_assert!(labels.contains(&Some(id)), "gap at {id}");
            }
        }
    }
}
