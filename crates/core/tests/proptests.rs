//! Property tests on the scanner's core invariants.

use iw_core::blacklist::CidrSet;
use iw_core::cookie::CookieKey;
use iw_core::inference::{ConnConfig, InferenceConn, RawOutcome};
use iw_core::permutation::Permutation;
use iw_core::rate::TokenBucket;
use iw_core::results::ProbeOutcome;
use iw_core::session::{classify_host, vote};
use iw_core::{HostVerdict, MssVerdict};
use iw_netsim::{Duration, Instant};
use iw_wire::ipv4::{Cidr, Ipv4Addr};
use iw_wire::tcp::{self, Flags, TcpOption};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The permutation visits every address exactly once, for any size.
    #[test]
    fn permutation_is_a_bijection(size in 1u64..5000, seed in any::<u64>()) {
        let perm = Permutation::new(size, seed);
        let mut seen = vec![false; size as usize];
        let mut count = 0u64;
        for addr in perm.iter() {
            prop_assert!(addr < size);
            prop_assert!(!seen[addr as usize], "revisited {addr}");
            seen[addr as usize] = true;
            count += 1;
        }
        prop_assert_eq!(count, size);
    }

    /// Shards partition the space for any shard count.
    #[test]
    fn shards_partition(size in 1u64..3000, seed in any::<u64>(), shards in 1u32..9) {
        let perm = Permutation::new(size, seed);
        let mut seen = vec![false; size as usize];
        let mut total = 0u64;
        for i in 0..shards {
            for addr in perm.shard(i, shards) {
                prop_assert!(!seen[addr as usize]);
                seen[addr as usize] = true;
                total += 1;
            }
        }
        prop_assert_eq!(total, size);
    }

    /// Cookies validate if and only if ack = isn + 1.
    #[test]
    fn cookie_validation_exact(seed in any::<u64>(), ip in any::<u32>(),
                               sport in any::<u16>(), delta in any::<u32>()) {
        let key = CookieKey::new(seed);
        let isn = key.isn(ip, sport, 80);
        let ack = isn.wrapping_add(delta);
        prop_assert_eq!(key.validate(ip, sport, 80, ack), delta == 1);
    }

    /// The estimator never overestimates: whatever subset of an IW-`n`
    /// flight arrives (in any order), a Success verdict reports ≤ n.
    #[test]
    fn inference_never_overestimates(
        n in 1u32..32,
        order in proptest::collection::vec(any::<u16>(), 1..32),
        release_more in any::<bool>(),
    ) {
        let src = Ipv4Addr::new(198, 18, 0, 1);
        let cfg = ConnConfig::new(
            Ipv4Addr::new(10, 0, 0, 1), src, 40000, 80, 64, 1000,
            b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        );
        let (mut conn, _) = InferenceConn::new(cfg, Instant::ZERO);
        let synack = tcp::Repr {
            src_port: 80, dst_port: 40000, seq: 5000, ack: 1001,
            flags: Flags::SYN | Flags::ACK, window: 65535,
            options: vec![TcpOption::Mss(64)], payload: vec![],
        };
        conn.on_segment(&synack, Instant::ZERO);
        let seg = |idx: u32| tcp::Repr {
            src_port: 80, dst_port: 40000,
            seq: 5001 + idx * 64, ack: 1019,
            flags: Flags::ACK, window: 65535, options: vec![],
            payload: vec![0xaa; 64],
        };
        // Deliver an arbitrary (sub)sequence of the flight's n segments.
        let mut result = None;
        for o in &order {
            let idx = u32::from(*o) % n;
            let out = conn.on_segment(&seg(idx), Instant::ZERO + Duration::from_millis(1));
            if let Some(r) = out.result {
                result = Some(r);
                break;
            }
        }
        if result.is_none() {
            // Force the retransmission signal, then optionally release.
            let out = conn.on_segment(&seg(0), Instant::ZERO + Duration::from_secs(1));
            result = out.result;
            if result.is_none() {
                if release_more {
                    let out = conn.on_segment(&seg(n), Instant::ZERO + Duration::from_secs(1));
                    result = out.result;
                }
                if result.is_none() {
                    let out = conn.on_timer(Instant::ZERO + Duration::from_secs(20));
                    result = out.result;
                }
            }
        }
        let result = result.expect("connection concluded");
        match result.outcome {
            RawOutcome::Success { segments, .. } => prop_assert!(segments <= n),
            RawOutcome::FewData { lower_bound, .. } => prop_assert!(lower_bound <= n),
            _ => {}
        }
    }

    /// Vote invariants: a Success verdict equals the maximum estimate,
    /// and is held by ≥2 probes (when 3+ probes ran); order-independent.
    #[test]
    fn vote_invariants(estimates in proptest::collection::vec(1u32..20, 3..6)) {
        let outcomes: Vec<ProbeOutcome> = estimates.iter().map(|s| ProbeOutcome::Success {
            segments: *s, bytes: s * 64, max_seg: 64,
            loss_suspected: false, reordered: false, redirected: false,
        }).collect();
        let verdict = vote(&outcomes);
        let max = *estimates.iter().max().expect("non-empty");
        let max_count = estimates.iter().filter(|s| **s == max).count();
        match verdict {
            MssVerdict::Success(v) => {
                prop_assert_eq!(v, max, "success must be the maximum");
                prop_assert!(max_count >= 2);
            }
            MssVerdict::Error => prop_assert!(max_count < 2),
            other => prop_assert!(false, "unexpected verdict {:?}", other),
        }
        // Permutation invariance.
        let mut reversed = outcomes.clone();
        reversed.reverse();
        prop_assert_eq!(vote(&reversed), verdict);
    }

    /// Cross-MSS classification is sound for generated policies.
    #[test]
    fn classification_props(a in 1u32..100, halves in any::<bool>()) {
        let b = if halves { (a / 2).max(1) } else { a };
        let v = vec![(64u16, MssVerdict::Success(a)), (128u16, MssVerdict::Success(b))];
        match classify_host(&v) {
            HostVerdict::SegmentBased(s) => prop_assert_eq!(s, a),
            HostVerdict::ByteBased(bytes) => {
                prop_assert_eq!(bytes, a * 64);
                prop_assert_eq!(a, 2 * b);
            }
            HostVerdict::OtherScaling { at_64, at_128 } => {
                prop_assert_eq!(at_64, a);
                prop_assert_eq!(at_128, b);
                prop_assert!(a != b && a != 2 * b);
            }
            HostVerdict::Unclassified => prop_assert!(false, "both succeeded"),
        }
    }

    /// The token bucket never grants more than rate × time + burst.
    #[test]
    fn token_bucket_rate_bound(
        rate in 100u64..100_000,
        burst in 1u64..1000,
        ticks in proptest::collection::vec(1u64..50, 1..100),
    ) {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(rate, burst, t0);
        let mut now = t0;
        let mut granted = 0u64;
        for tick_ms in &ticks {
            now += Duration::from_millis(*tick_ms);
            granted += bucket.take(now, u64::MAX);
        }
        let elapsed = (now - t0).as_secs_f64();
        let bound = (rate as f64 * elapsed).ceil() as u64 + burst + 1;
        prop_assert!(granted <= bound, "granted {granted} > bound {bound}");
    }

    /// CidrSet membership matches the naive per-prefix check.
    #[test]
    fn cidr_set_equivalence(
        prefixes in proptest::collection::vec((any::<u32>(), 8u8..=32), 1..8),
        probes in proptest::collection::vec(any::<u32>(), 32),
    ) {
        let cidrs: Vec<Cidr> = prefixes.iter()
            .map(|(ip, len)| Cidr::new(Ipv4Addr::from_u32(*ip), *len))
            .collect();
        let set = CidrSet::from_cidrs(&cidrs);
        for ip in probes {
            let naive = cidrs.iter().any(|c| c.contains(Ipv4Addr::from_u32(ip)));
            prop_assert_eq!(set.contains(ip), naive, "ip {}", ip);
        }
    }
}
