//! Gates for the sharded TX/RX topology: cursor seek-after-merge over
//! the cyclic-group partitions, byte-identity of the threaded engine
//! against the single-threaded reference, and checkpoint-trail
//! equivalence of the fed single-shard pipeline.

use iw_core::permutation::Permutation;
use iw_core::{Protocol, RunControl, ScanConfig, ScanRunner, Topology};
use iw_internet::{Population, PopulationConfig};
use iw_netsim::Duration;
use std::sync::Arc;

fn population() -> Arc<Population> {
    Arc::new(Population::new(PopulationConfig {
        seed: 0xA11CE,
        space_size: 1 << 13,
        target_responsive: 200,
        loss_scale: 0.0,
    }))
}

fn study_config(pop: &Population, seed: u64) -> ScanConfig {
    let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), seed);
    config.rate_pps = 4_000_000;
    config
}

/// Deterministic stand-in for a property test (the container builds
/// without proptest): every (shard count, seed, shard, split point)
/// case must resume from a mid-cycle cursor onto the exact tail the
/// uninterrupted walk would have produced.
#[test]
fn seek_resumes_every_shard_exactly_where_it_stopped() {
    let size = 1 << 12;
    for count in [1u32, 3, 8] {
        for seed in [7u64, 0x1307_2017, 9_999_999_999] {
            let perm = Permutation::new(size, seed);
            for index in 0..count {
                let full: Vec<u64> = perm.shard(index, count).collect();
                for eighths in [0usize, 1, 4, 7, 8] {
                    let split = full.len() * eighths / 8;
                    let mut head = perm.shard(index, count);
                    let mut walked: Vec<u64> = (&mut head).take(split).collect();
                    let (next, produced) = head.cursor();
                    let mut resumed = perm.shard(index, count);
                    assert!(
                        resumed.seek(next, produced),
                        "cursor ({next}, {produced}) rejected for shard {index}/{count}"
                    );
                    walked.extend(resumed);
                    assert_eq!(
                        walked, full,
                        "shard {index}/{count} seed {seed} split {split}"
                    );
                }
            }
        }
    }
}

/// The merge story behind campaign resume: interrupt every shard at a
/// different point, seek fresh iterators to the recorded cursors, and
/// the union of prefixes and resumed tails must cover the space exactly
/// once — no address lost or probed twice.
#[test]
fn merged_resume_covers_the_space_exactly_once() {
    let size = 1 << 12;
    for count in [1u32, 3, 8] {
        let perm = Permutation::new(size, 0x1307);
        let mut merged: Vec<u64> = Vec::new();
        for index in 0..count {
            let mut head = perm.shard(index, count);
            // A different interruption point per shard, as a real kill
            // would leave behind.
            let split = (7 * (index as usize + 1)) % 40;
            merged.extend((&mut head).take(split));
            let (next, produced) = head.cursor();
            let mut resumed = perm.shard(index, count);
            assert!(resumed.seek(next, produced));
            merged.extend(resumed);
        }
        merged.sort_unstable();
        let want: Vec<u64> = (0..size).collect();
        assert_eq!(merged, want, "{count} shards");
    }
}

/// The tentpole gate in miniature: really-concurrent topologies produce
/// the same bytes as the single-threaded reference — per-host results,
/// summary, and the canonical metrics snapshot.
#[test]
fn thread_topologies_match_the_single_threaded_reference() {
    let pop = population();
    let mut config = study_config(&pop, 7);
    config.telemetry.record_events = true;
    let single = ScanRunner::new(&pop).config(config.clone()).run();
    assert!(!single.results.is_empty());
    for topology in [
        Topology::Threads {
            senders: 1,
            receivers: 1,
        },
        Topology::Threads {
            senders: 3,
            receivers: 2,
        },
        Topology::Threads {
            senders: 4,
            receivers: 4,
        },
    ] {
        let out = ScanRunner::new(&pop)
            .config(config.clone())
            .topology(topology)
            .run();
        assert_eq!(
            single.telemetry.metrics.to_canonical_json(),
            out.telemetry.metrics.to_canonical_json(),
            "{topology:?}"
        );
        assert_eq!(
            format!("{:?}", single.results),
            format!("{:?}", out.results),
            "{topology:?}"
        );
        assert_eq!(
            format!("{:?}", single.summary),
            format!("{:?}", out.summary),
            "{topology:?}"
        );
        assert_eq!(single.duration, out.duration, "{topology:?}");
    }
}

/// A fed world's checkpoints must be byte-identical to the
/// self-generating path: the ring hands each world the same cursors its
/// own generator would have produced, so a campaign checkpointed under
/// one topology can resume under the other.
#[test]
fn fed_pipeline_checkpoints_match_the_self_generating_path() {
    let pop = population();
    let config = study_config(&pop, 11);
    let control = RunControl {
        checkpoint_every: Some(Duration::from_secs(5)),
        ..RunControl::default()
    };
    let direct = ScanRunner::new(&pop)
        .config(config.clone())
        .control(control.clone())
        .run();
    let fed = ScanRunner::new(&pop)
        .config(config)
        .topology(Topology::Threads {
            senders: 1,
            receivers: 1,
        })
        .control(control)
        .run();
    assert!(!direct.checkpoints.is_empty());
    assert_eq!(direct.checkpoints.len(), fed.checkpoints.len());
    for (a, b) in direct.checkpoints.iter().zip(&fed.checkpoints) {
        assert_eq!(a.canonical_json(), b.canonical_json());
    }
}
