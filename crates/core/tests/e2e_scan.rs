//! End-to-end scans of small synthetic populations: the scanner must
//! recover configured initial windows through real packet exchanges.

use iw_core::{HostVerdict, Protocol, ScanConfig, ScanRunner, Topology};
use iw_hoststack::IwPolicy;
use iw_internet::{Population, PopulationConfig};
use std::sync::Arc;

fn tiny_population(seed: u64) -> Arc<Population> {
    Arc::new(Population::new(PopulationConfig {
        seed,
        space_size: 1 << 15,
        target_responsive: 600,
        loss_scale: 0.0,
    }))
}

fn scan(pop: &Arc<Population>, protocol: Protocol, seed: u64) -> iw_core::ScanOutput {
    let mut config = ScanConfig::study(protocol, pop.space_size(), seed);
    config.rate_pps = 2_000_000; // compress virtual time for tests
    ScanRunner::new(pop).config(config).run()
}

#[test]
fn http_scan_recovers_ground_truth_iws() {
    let pop = tiny_population(0xabc);
    let out = scan(&pop, Protocol::Http, 0xabc);
    assert!(
        out.summary.reachable > 100,
        "reachable {}",
        out.summary.reachable
    );
    let mut correct = 0u32;
    let mut wrong = 0u32;
    for r in &out.results {
        let gt = pop.ground_truth(r.ip).expect("scanned host exists");
        if let Some(est) = r.iw_estimate() {
            let expected = gt.iw.initial_segments(effective_mss(&pop, r.ip, 64));
            if est == expected {
                correct += 1;
            } else {
                wrong += 1;
                assert!(
                    wrong < 5,
                    "ip {} est {est} expected {expected} (policy {:?}, cohort {})",
                    r.ip,
                    gt.iw,
                    gt.cohort
                );
            }
        }
    }
    assert!(
        correct > 50,
        "expected many exact recoveries, got {correct}"
    );
    assert_eq!(wrong, 0, "lossless world must recover IWs exactly");
}

fn effective_mss(pop: &Arc<Population>, ip: u32, announced: u16) -> u32 {
    pop.host_config(ip)
        .expect("host exists")
        .os
        .effective_mss(Some(announced))
}

#[test]
fn tls_scan_recovers_ground_truth_iws() {
    let pop = tiny_population(0xdef);
    let out = scan(&pop, Protocol::Tls, 0xdef);
    assert!(out.summary.reachable > 50);
    let (success, few, err) = out.summary.rates();
    assert!(success > 50.0, "TLS success rate {success}");
    assert!(few < 45.0, "TLS few-data rate {few}");
    assert!(err < 20.0, "TLS error rate {err}");
    for r in &out.results {
        if let Some(est) = r.iw_estimate() {
            let gt = pop.ground_truth(r.ip).unwrap();
            let expected = gt.iw.initial_segments(effective_mss(&pop, r.ip, 64));
            assert_eq!(est, expected, "ip {} cohort {}", r.ip, gt.cohort);
        }
    }
}

#[test]
fn byte_based_hosts_are_detected() {
    let pop = tiny_population(0x777);
    let out = scan(&pop, Protocol::Http, 0x777);
    let mut byte_based = Vec::new();
    for r in &out.results {
        if let HostVerdict::ByteBased(bytes) = r.host_verdict {
            byte_based.push((r.ip, bytes));
        }
    }
    // The modem fleet is 1.5% of hosts; some must show up and be 4096 or
    // 1536 bytes exactly.
    assert!(
        !byte_based.is_empty(),
        "no byte-limited hosts found among {} results",
        out.results.len()
    );
    for (ip, bytes) in &byte_based {
        let gt = pop.ground_truth(*ip).unwrap();
        match gt.iw {
            IwPolicy::Bytes(b) => assert_eq!(*bytes, b, "ip {ip}"),
            IwPolicy::MtuFill(b) => assert_eq!(*bytes, b, "ip {ip}"),
            other => panic!("segment-policy host {ip} misdetected as byte-based ({other:?})"),
        }
    }
}

#[test]
fn segment_based_hosts_report_same_iw_at_both_mss() {
    let pop = tiny_population(0x31415);
    let out = scan(&pop, Protocol::Http, 0x31415);
    let mut seg_checked = 0;
    for r in &out.results {
        if let HostVerdict::SegmentBased(iw) = r.host_verdict {
            let gt = pop.ground_truth(r.ip).unwrap();
            if let IwPolicy::Segments(n) = gt.iw {
                assert_eq!(iw, n, "ip {}", r.ip);
                seg_checked += 1;
            }
        }
    }
    assert!(seg_checked > 20, "checked only {seg_checked}");
}

#[test]
fn sharded_scan_equals_single_thread() {
    let pop = tiny_population(0x51);
    let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), 0x51);
    config.rate_pps = 2_000_000;
    let single = ScanRunner::new(&pop).config(config.clone()).run();
    let sharded = ScanRunner::new(&pop)
        .config(config)
        .topology(Topology::threads(4))
        .run();
    assert_eq!(single.results.len(), sharded.results.len());
    for (a, b) in single.results.iter().zip(&sharded.results) {
        assert_eq!(a.ip, b.ip);
        assert_eq!(a.verdicts, b.verdicts);
        assert_eq!(a.host_verdict, b.host_verdict);
    }
    assert_eq!(single.summary.success, sharded.summary.success);
}

#[test]
fn determinism_same_seed_same_results() {
    let pop = tiny_population(0x99);
    let a = scan(&pop, Protocol::Http, 0x99);
    let b = scan(&pop, Protocol::Http, 0x99);
    assert_eq!(a.results.len(), b.results.len());
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.ip, y.ip);
        assert_eq!(x.verdicts, y.verdicts);
    }
    assert_eq!(a.duration, b.duration);
}

#[test]
fn port_scan_finds_open_ports() {
    let pop = tiny_population(0x42);
    let out = scan(&pop, Protocol::PortScan, 0x42);
    assert!(!out.open_ports.is_empty());
    for ip in &out.open_ports {
        let gt = pop.ground_truth(*ip).expect("open port implies host");
        assert!(gt.http, "port 80 open implies HTTP service, ip {ip}");
    }
    // Every HTTP host that exists must be found (lossless world).
    let http_hosts = (0..pop.space_size())
        .filter(|ip| pop.ground_truth(*ip).is_some_and(|g| g.http))
        .count();
    assert_eq!(out.open_ports.len(), http_hosts);
}

#[test]
fn icmp_mtu_scan_matches_population_model() {
    let pop = tiny_population(0x88);
    let out = scan(&pop, Protocol::IcmpMtu, 0x88);
    assert!(!out.mtu_results.is_empty());
    for r in &out.mtu_results {
        assert_eq!(r.mtu, pop.path_mtu(r.ip), "ip {}", r.ip);
    }
}

#[test]
fn sampling_one_percent_yields_similar_distribution() {
    let pop = Arc::new(Population::new(PopulationConfig {
        seed: 0x1234,
        space_size: 1 << 18,
        target_responsive: 6_000,
        loss_scale: 0.0,
    }));
    let full = scan(&pop, Protocol::Http, 0x1234);
    let mut sampled_cfg = ScanConfig::study(Protocol::Http, pop.space_size(), 0x1234);
    sampled_cfg.rate_pps = 2_000_000;
    sampled_cfg.sample_fraction = 0.25; // 25% of a small world ≈ paper's 1% of IPv4
    let sampled = ScanRunner::new(&pop).config(sampled_cfg).run();

    let dist = |out: &iw_core::ScanOutput| {
        let mut hist = std::collections::HashMap::new();
        let mut n = 0u64;
        for r in &out.results {
            if let Some(iw) = r.iw_estimate() {
                *hist.entry(iw).or_insert(0u64) += 1;
                n += 1;
            }
        }
        (hist, n)
    };
    let (fh, fn_) = dist(&full);
    let (sh, sn) = dist(&sampled);
    assert!(sn > 200, "sample too small: {sn}");
    for iw in [1u32, 2, 4, 10] {
        let f = *fh.get(&iw).unwrap_or(&0) as f64 / fn_ as f64;
        let s = *sh.get(&iw).unwrap_or(&0) as f64 / sn as f64;
        assert!((f - s).abs() < 0.06, "IW{iw}: full {f:.3} vs sample {s:.3}");
    }
}
