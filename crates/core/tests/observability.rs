//! The observability layer exercised through full simulated scans: span
//! tracing (Chrome-trace export determinism), the per-session flight
//! recorder (black-box dumps for failed sessions), the streaming
//! telemetry sink (delta consistency) and the ICMP harvest.

use iw_core::telemetry::Snapshot;
use iw_core::{HostResult, Protocol, ScanConfig, ScanRunner, Scanner, Topology};
use iw_hoststack::{ChaosHost, ChaosMode, Host, HostConfig, IwPolicy};
use iw_internet::{Population, PopulationConfig};
use iw_netsim::{Duration, Endpoint, LinkConfig, Sim, SimConfig};
use iw_wire::ipv4::Ipv4Addr;
use std::sync::Arc;

fn population(seed: u64, space: u32, responsive: u32) -> Arc<Population> {
    Arc::new(Population::new(PopulationConfig {
        seed,
        space_size: space,
        target_responsive: responsive,
        loss_scale: 0.0,
    }))
}

fn web_host(ip: u32, seed: u64) -> Box<dyn Endpoint> {
    let mut config = HostConfig::simple_web(60_000);
    config.iw = IwPolicy::Segments([2, 3, 4, 10][ip as usize % 4]);
    Box::new(Host::new(Ipv4Addr::from_u32(ip), config, seed))
}

/// Run a scan against a custom host factory with the flight recorder
/// on; returns results, the metrics snapshot and the recorder.
fn run_with_factory<F>(
    config: ScanConfig,
    factory: F,
) -> (
    Vec<HostResult>,
    Snapshot,
    iw_core::telemetry::FlightRecorder,
)
where
    F: FnMut(u32) -> Option<(Box<dyn Endpoint>, LinkConfig)>,
{
    let seed = config.seed;
    let scanner = Scanner::new(config);
    let mut sim = Sim::new(
        scanner,
        factory,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    sim.kick_scanner(|s, now, fx| s.start(now, fx));
    sim.run_to_completion();
    let scanner = sim.scanner_mut();
    let mut results = scanner.results().to_vec();
    results.sort_by_key(|r| r.ip);
    let snapshot = scanner.metrics_snapshot();
    let recorder = scanner.take_flight_recorder();
    (results, snapshot, recorder)
}

// ---------------------------------------------------------------------
// Span tracing: the canonical Chrome-trace export is deterministic.
// ---------------------------------------------------------------------

#[test]
fn trace_export_is_byte_identical_across_runs_and_shard_counts() {
    // A rate low enough that pacing spreads targets across many ticks:
    // absolute send times then genuinely differ between shard layouts,
    // so this exercises the per-track re-basing, not a degenerate
    // everything-in-one-batch schedule.
    let pop = population(0x7ace, 1 << 16, 800);
    let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), 0x7ace);
    config.rate_pps = 400_000;
    config.telemetry.record_spans = true;
    let single = ScanRunner::new(&pop).config(config.clone()).run();
    let again = ScanRunner::new(&pop).config(config.clone()).run();
    let sharded = ScanRunner::new(&pop)
        .config(config)
        .topology(Topology::threads(4))
        .run();

    let json = single.telemetry.tracer.to_chrome_json();
    assert_eq!(
        json,
        again.telemetry.tracer.to_chrome_json(),
        "same config, same bytes"
    );
    assert_eq!(
        json,
        sharded.telemetry.tracer.to_chrome_json(),
        "canonical trace must not depend on the shard count"
    );

    // The export is a loadable Chrome trace: one JSON object with a
    // traceEvents array of complete ("X") events.
    assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"ph\":\"X\""), "complete events present");
    for name in ["\"handshake\"", "\"session\"", "\"probe\""] {
        assert!(json.contains(name), "span kind {name} missing");
    }
    // Every reachable host contributed a session span and the trace
    // counters were folded into the metrics.
    let spans = single.telemetry.tracer.scan_span_count();
    assert!(
        spans >= single.summary.reachable,
        "{spans} spans < {} sessions",
        single.summary.reachable
    );
    assert_eq!(
        single.telemetry.metrics.counter("trace.spans.scan"),
        spans,
        "scan span counter matches the tracer"
    );
    // The duration histogram covers scan spans plus the retained
    // hot-path spans from the sim's own profiler.
    assert!(
        single
            .telemetry
            .metrics
            .histogram("trace.span_nanos")
            .unwrap()
            .count
            >= spans,
        "every span duration observed"
    );
}

// ---------------------------------------------------------------------
// Flight recorder: failed sessions dump, clean sessions stay silent.
// ---------------------------------------------------------------------

#[test]
fn synack_blackhole_produces_flight_dumps_naming_the_phase() {
    // Hosts that complete the handshake and then go silent: every
    // session dies in the collect phase, and each death must leave a
    // black-box dump naming the phase it was in.
    let space = 64u32;
    let mut config = ScanConfig::study(Protocol::Http, space, 0xb1ac);
    config.rate_pps = 2_000_000;
    config.telemetry.flight_recorder = true;
    let (results, metrics, recorder) = run_with_factory(config, |ip| {
        Some((
            Box::new(ChaosHost::new(
                Ipv4Addr::from_u32(ip),
                ChaosMode::SynAckBlackhole,
                0xb1ac,
            )) as Box<dyn Endpoint>,
            LinkConfig::testbed(),
        ))
    });
    assert_eq!(results.len(), space as usize);
    assert_eq!(
        recorder.dumps().len(),
        space as usize,
        "every blackholed session must dump"
    );
    assert_eq!(recorder.live_rings(), 0, "no ring survives the scan");
    for dump in recorder.dumps() {
        assert_eq!(
            dump.phase, "probe_done",
            "last pre-terminal phase: {dump:?}"
        );
        assert_eq!(dump.error, "no_data", "{dump:?}");
        assert!(!dump.entries.is_empty(), "wire history retained");
    }
    let jsonl = recorder.to_jsonl();
    assert_eq!(jsonl.lines().count(), space as usize);
    assert!(jsonl.contains("\"phase\":\"probe_done\""), "{jsonl}");
    assert_eq!(
        metrics.counter("scan.flight_recorder.dumps"),
        u64::from(space),
        "dump counter tracks the recorder"
    );
}

#[test]
fn silent_space_with_retries_dumps_handshake_timeouts() {
    // Nothing answers: with SYN retries on, exhausting the retry budget
    // is a diagnosable failure and must dump from the SYN-wait phase.
    let space = 32u32;
    let mut config = ScanConfig::study(Protocol::Http, space, 0x51e7);
    config.rate_pps = 2_000_000;
    config.resilience.syn_retries = 1;
    config.telemetry.flight_recorder = true;
    let (_, metrics, recorder) = run_with_factory(config, |_| None);
    assert_eq!(recorder.dumps().len(), space as usize);
    for dump in recorder.dumps() {
        assert_eq!(dump.error, "handshake_timeout", "{dump:?}");
        assert_eq!(dump.phase, "syn_wait", "{dump:?}");
        // One ring entry per SYN: the state transition plus each wire tx.
        assert!(dump.entries.len() >= 2, "{dump:?}");
    }
    assert_eq!(
        metrics.counter("scan.flight_recorder.dumps"),
        u64::from(space)
    );
}

#[test]
fn clean_scans_leave_no_flight_dumps() {
    // Every session concludes with a clean verdict: the recorder must
    // drop every ring and dump nothing.
    let mut config = ScanConfig::study(Protocol::Http, 64, 0xc1ea);
    config.rate_pps = 2_000_000;
    config.telemetry.flight_recorder = true;
    let (results, metrics, recorder) = run_with_factory(config, |ip| {
        Some((web_host(ip, 0xc1ea), LinkConfig::testbed()))
    });
    assert!(!results.is_empty());
    assert!(
        recorder.dumps().is_empty(),
        "clean verdicts must not dump: {:?}",
        recorder.dumps().first()
    );
    assert_eq!(recorder.live_rings(), 0);
    assert_eq!(metrics.counter("scan.flight_recorder.dumps"), 0);
}

// ---------------------------------------------------------------------
// Streaming sink: deltas sum to the final totals.
// ---------------------------------------------------------------------

#[test]
fn stream_deltas_sum_to_final_counters() {
    let pop = population(0x57e4, 1 << 14, 400);
    let mut config = ScanConfig::study(Protocol::Http, pop.space_size(), 0x57e4);
    config.rate_pps = 400_000;
    config.telemetry.stream = Some(Duration::from_secs(1));
    let out = ScanRunner::new(&pop).config(config).run();
    let jsonl = out.telemetry.stream.to_jsonl();
    assert!(!jsonl.is_empty());

    // Sum the per-snapshot deltas of a counter across all stream lines;
    // the final flush makes the sum equal the merged total.
    let sum_deltas = |key: &str| -> u64 {
        let pat = format!("\"{key}\":");
        jsonl
            .lines()
            .filter(|l| l.contains("\"type\":\"snapshot\""))
            .filter_map(|l| {
                let start = l.find(&pat)? + pat.len();
                let rest = &l[start..];
                let end = rest.find([',', '}']).unwrap_or(rest.len());
                rest[..end].parse::<u64>().ok()
            })
            .sum()
    };
    for key in ["scan.targets_sent", "scan.sessions_started"] {
        assert_eq!(
            sum_deltas(key),
            out.telemetry.metrics.counter(key),
            "stream deltas for {key} must sum to the final counter"
        );
    }
    // One result line per concluded target, in deterministic order.
    let result_lines = jsonl
        .lines()
        .filter(|l| l.contains("\"type\":\"result\""))
        .count() as u64;
    assert!(
        result_lines >= out.summary.reachable,
        "{result_lines} result lines < {} reachable",
        out.summary.reachable
    );
    // Streaming must not perturb the scan itself.
    let mut quiet = ScanConfig::study(Protocol::Http, pop.space_size(), 0x57e4);
    quiet.rate_pps = 400_000;
    let base = ScanRunner::new(&pop).config(quiet).run();
    assert_eq!(format!("{:?}", base.results), format!("{:?}", out.results));
}
