//! Fault-injection matrix: the resilience layer exercised against
//! simulated network pathologies — Bernoulli loss, scripted tail loss,
//! duplication + jitter reordering, ICMP-unreachable cohorts, SYN-ACK
//! floods and mid-connection resets — with retries on and off.
//!
//! Every scenario is deterministic per seed: identical configurations
//! must produce byte-identical results and canonical metrics.

use iw_core::telemetry::Snapshot;
use iw_core::testbed::{probe_host, TestbedSpec};
use iw_core::{
    summarize, ErrorKind, HostResult, MssVerdict, Protocol, ResilienceConfig, ScanConfig, Scanner,
};
use iw_hoststack::{ChaosHost, ChaosMode, Host, HostConfig, IwPolicy};
use iw_netsim::{Duration, Endpoint, LinkConfig, Sim, SimConfig};
use iw_wire::ipv4::Ipv4Addr;

/// Ground-truth IW assignment: a deterministic mix of common policies.
fn iw_for(ip: u32) -> u32 {
    [2, 3, 4, 10][ip as usize % 4]
}

fn web_host(ip: u32, seed: u64) -> Box<dyn Endpoint> {
    let mut config = HostConfig::simple_web(60_000);
    config.iw = IwPolicy::Segments(iw_for(ip));
    Box::new(Host::new(Ipv4Addr::from_u32(ip), config, seed))
}

fn scan_config(space: u32, seed: u64) -> ScanConfig {
    let mut config = ScanConfig::study(Protocol::Http, space, seed);
    config.rate_pps = 2_000_000; // compress virtual time
    config
}

/// Run a scan against a custom host factory; returns sorted results and
/// the metrics snapshot.
fn run_matrix<F>(config: ScanConfig, factory: F) -> (Vec<HostResult>, Snapshot, u64, u64)
where
    F: FnMut(u32) -> Option<(Box<dyn Endpoint>, LinkConfig)>,
{
    let seed = config.seed;
    let scanner = Scanner::new(config);
    let mut sim = Sim::new(
        scanner,
        factory,
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    sim.kick_scanner(|s, now, fx| s.start(now, fx));
    sim.run_to_completion();
    let scanner = sim.scanner_mut();
    assert_eq!(scanner.live_sessions(), 0, "sessions must drain");
    let mut results = scanner.results().to_vec();
    results.sort_by_key(|r| r.ip);
    let snapshot = scanner.metrics_snapshot();
    let (sent, refused) = (scanner.targets_sent(), scanner.refused());
    (results, snapshot, sent, refused)
}

/// Fraction of results whose primary verdict matches the ground truth.
fn accuracy(results: &[HostResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    let correct = results
        .iter()
        .filter(|r| r.primary_verdict() == Some(MssVerdict::Success(iw_for(r.ip))))
        .count();
    correct as f64 / results.len() as f64
}

// ---------------------------------------------------------------------
// Determinism: the whole matrix point is reproducibility per seed.
// ---------------------------------------------------------------------

#[test]
fn identical_seeds_give_byte_identical_outcomes() {
    let run = || {
        let mut config = scan_config(128, 0xfa07);
        config.resilience = ResilienceConfig::hardened();
        run_matrix(config, |ip| {
            Some((web_host(ip, 0xfa07), LinkConfig::default().with_loss(0.02)))
        })
    };
    let (r1, m1, sent1, refused1) = run();
    let (r2, m2, sent2, refused2) = run();
    assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    assert_eq!(m1.to_canonical_json(), m2.to_canonical_json());
    let s1 = summarize(&r1, sent1, refused1);
    let s2 = summarize(&r2, sent2, refused2);
    assert_eq!(format!("{s1:?}"), format!("{s2:?}"));
}

// ---------------------------------------------------------------------
// Bernoulli loss × retries on/off.
// ---------------------------------------------------------------------

#[test]
fn bernoulli_loss_with_retries_meets_accuracy_floor() {
    let space = 300;
    let lossy = |seed: u64| {
        move |ip: u32| Some((web_host(ip, seed), LinkConfig::default().with_loss(0.02)))
    };

    let mut with_retries = scan_config(space, 0x10_55);
    with_retries.resilience = ResilienceConfig::hardened();
    let (on_results, on_metrics, ..) = run_matrix(with_retries, lossy(0x10_55));

    let without_retries = scan_config(space, 0x10_55);
    let (off_results, ..) = run_matrix(without_retries, lossy(0x10_55));

    // Retries only add discovery chances: every host found without them
    // is found with them (per-link loss draws are identical up to the
    // first divergence, which is the retry itself).
    assert!(
        on_results.len() >= off_results.len(),
        "retries lost hosts: {} < {}",
        on_results.len(),
        off_results.len()
    );
    // The §4 design goal under 2 % loss: ≥95 % of responding hosts
    // classified correctly when retries are enabled.
    let acc = accuracy(&on_results);
    assert!(acc >= 0.95, "accuracy {acc:.3} below 0.95 at 2% loss");
    // With SYN retries every target is eventually discovered here: the
    // chance of three straight SYN/SYN-ACK losses at 2 % is negligible
    // and the seed is fixed.
    assert_eq!(on_results.len(), space as usize);
    assert!(on_metrics.counter("scan.syn_retries") > 0);
}

// ---------------------------------------------------------------------
// Scripted tail loss: the vote must never inflate the verdict.
// ---------------------------------------------------------------------

#[test]
fn tail_loss_never_inflates_the_verdict() {
    for iw in [2u32, 4, 10] {
        for seed in [1u64, 2, 3] {
            let mut host = HostConfig::simple_web(60_000);
            host.iw = IwPolicy::Segments(iw);
            let mut spec = TestbedSpec::new(host, Protocol::Http);
            spec.seed = seed;
            // Reverse index 0 is the SYN-ACK; the first data flight is
            // 1..=iw, so index `iw` is the last IW segment — exact tail
            // loss on probe 0.
            spec.link = LinkConfig::testbed().with_reverse_drop(u64::from(iw));
            let (result, _) = probe_host(&spec);
            let result = result.expect("host answered");
            for (_, verdict) in &result.verdicts {
                if let MssVerdict::Success(s) = verdict {
                    assert!(
                        *s <= iw,
                        "tail loss inflated IW {iw} to {s} (seed {seed}): {:?}",
                        result.runs
                    );
                }
            }
            // The 2-of-3-maximum vote absorbs the single degraded probe.
            assert_eq!(
                result.primary_verdict(),
                Some(MssVerdict::Success(iw)),
                "vote failed to rescue IW {iw} (seed {seed}): {:?}",
                result.runs
            );
        }
    }
}

// ---------------------------------------------------------------------
// Duplication + jitter reordering: graceful degradation.
// ---------------------------------------------------------------------

#[test]
fn duplication_and_jitter_degrade_gracefully() {
    let space = 128;
    let mut config = scan_config(space, 0xd0b);
    config.resilience = ResilienceConfig::hardened();
    let link = LinkConfig {
        jitter: Duration::from_millis(3),
        dup: 0.02,
        ..LinkConfig::default()
    };
    let (results, ..) = run_matrix(config, |ip| Some((web_host(ip, 0xd0b), link.clone())));
    // Every host is discovered and every session concludes; reordering
    // may degrade individual probes but must not wedge or crash the scan.
    assert_eq!(results.len(), space as usize);
    let acc = accuracy(&results);
    assert!(acc >= 0.80, "accuracy {acc:.3} collapsed under dup+jitter");
}

// ---------------------------------------------------------------------
// ICMP-unreachable cohort: fast-fail instead of timing out.
// ---------------------------------------------------------------------

#[test]
fn unreachable_cohort_fast_fails_pending_targets() {
    let space = 128u32;
    let unreachable = |ip: u32| ip.is_multiple_of(4); // 25 % cohort
    let mut config = scan_config(space, 0x1c3);
    config.resilience = ResilienceConfig::hardened();
    let (results, metrics, ..) = run_matrix(config, |ip| {
        let host: Box<dyn Endpoint> = if unreachable(ip) {
            Box::new(ChaosHost::new(
                Ipv4Addr::from_u32(ip),
                ChaosMode::IcmpUnreachable { code: 1 },
                0x1c3,
            ))
        } else {
            web_host(ip, 0x1c3)
        };
        Some((host, LinkConfig::testbed()))
    });
    let cohort = (0..space).filter(|ip| unreachable(*ip)).count() as u64;
    // Every unreachable target is fast-failed exactly once…
    assert_eq!(metrics.counter("scan.icmp_unreachable"), cohort);
    // …so no SYN-retry budget is wasted on it (and the responsive hosts
    // answer before their first retry fires).
    assert_eq!(metrics.counter("scan.syn_retries"), 0);
    // The responsive cohort is measured perfectly on clean links.
    assert_eq!(results.len(), (space as usize) - cohort as usize);
    let acc = accuracy(&results);
    assert!((acc - 1.0).abs() < f64::EPSILON, "accuracy {acc}");
}

#[test]
fn source_quench_cohort_is_classified_not_fast_failed() {
    let space = 64u32;
    let quenched = |ip: u32| ip.is_multiple_of(4); // 25 % cohort
    let mut config = scan_config(space, 0x5c);
    config.resilience = ResilienceConfig::hardened();
    let seed = config.seed;
    let scanner = Scanner::new(config);
    let mut sim = Sim::new(
        scanner,
        |ip| {
            let host: Box<dyn Endpoint> = if quenched(ip) {
                // A rate-limiting router speaking for a silent target:
                // every SYN draws a burst of quenches, never a SYN-ACK.
                Box::new(ChaosHost::new(
                    Ipv4Addr::from_u32(ip),
                    ChaosMode::SourceQuench { burst: 3 },
                    0x5c,
                ))
            } else {
                web_host(ip, 0x5c)
            };
            Some((host, LinkConfig::testbed()))
        },
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    sim.kick_scanner(|s, now, fx| s.start(now, fx));
    sim.run_to_completion();
    let scanner = sim.scanner_mut();
    let metrics = scanner.metrics_snapshot();
    let harvest = scanner.take_icmp_harvest();
    let cohort = (0..space).filter(|ip| quenched(*ip)).count() as u64;
    // 3 SYNs (initial + 2 retries) × burst 3 = 9 quenches per target.
    assert_eq!(metrics.counter("scan.icmp.source_quench"), cohort * 9);
    // Source quench is advisory (RFC 6633 deprecates reacting to it):
    // the scanner classifies, it must NOT fast-fail the target…
    assert_eq!(metrics.counter("scan.icmp_unreachable"), 0);
    // …so the quenched cohort burns its full SYN-retry budget.
    assert_eq!(metrics.counter("scan.syn_retries"), cohort * 2);
    // Nine messages per source crosses the rate-limiting signature
    // threshold: every cohort member is flagged, nobody else is.
    for ip in 0..space {
        assert_eq!(harvest.is_rate_limited(ip), quenched(ip), "ip {ip}");
    }
    assert_eq!(harvest.rate_limited_sources(), cohort);
    // Every harvested message was a quench.
    assert_eq!(harvest.subtype_rates_per_10k(), [0, 0, 0, 10_000, 0]);
    // The responsive cohort is still measured perfectly.
    let mut results = scanner.results().to_vec();
    results.sort_by_key(|r| r.ip);
    assert_eq!(results.len(), (space as usize) - cohort as usize);
    let acc = accuracy(&results);
    assert!((acc - 1.0).abs() < f64::EPSILON, "accuracy {acc}");
}

#[test]
fn mid_session_icmp_concludes_live_sessions() {
    let space = 32u32;
    let mut config = scan_config(space, 0x1c4);
    config.resilience = ResilienceConfig::hardened();
    let (results, metrics, sent, refused) = run_matrix(config, |ip| {
        Some((
            Box::new(ChaosHost::new(
                Ipv4Addr::from_u32(ip),
                ChaosMode::SynAckThenIcmp {
                    after: Duration::from_millis(50),
                    code: 1,
                },
                0x1c4,
            )) as Box<dyn Endpoint>,
            LinkConfig::testbed(),
        ))
    });
    // Every session was force-concluded by the ICMP error — without
    // waiting out the 10 s collect timeout per probe.
    assert_eq!(results.len(), space as usize);
    assert_eq!(metrics.counter("scan.icmp_unreachable"), u64::from(space));
    let summary = summarize(&results, sent, refused);
    assert_eq!(
        summary.error_kinds.get(ErrorKind::IcmpUnreachable),
        u64::from(space) * 6,
        "all six probe slots recorded the ICMP failure: {summary:?}"
    );
    assert_eq!(
        metrics.counter("scan.probes.error_kinds.icmp_unreachable"),
        u64::from(space) * 6
    );
}

// ---------------------------------------------------------------------
// SYN-ACK flood: the session cap must bound memory and evict oldest.
// ---------------------------------------------------------------------

#[test]
fn synack_flood_is_bounded_by_session_cap() {
    let space = 400u32;
    let cap = 64usize;
    let mut config = scan_config(space, 0xf100d);
    config.resilience.max_sessions = cap;
    let (results, metrics, ..) = run_matrix(config, |ip| {
        Some((
            Box::new(ChaosHost::new(
                Ipv4Addr::from_u32(ip),
                ChaosMode::SynAckBlackhole,
                0xf100d,
            )) as Box<dyn Endpoint>,
            LinkConfig::testbed(),
        ))
    });
    // Every flooder produced a record (evicted or starved out), the live
    // set never exceeded the cap, and evictions actually happened.
    assert_eq!(results.len(), space as usize);
    let peak = metrics
        .gauges
        .get("shard.sessions.live_peak")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(peak <= cap as u64, "live peak {peak} exceeded cap {cap}");
    assert!(
        metrics.counter("scan.sessions.evicted") > 0,
        "flood must trigger evictions"
    );
}

// ---------------------------------------------------------------------
// Mid-connection RSTs: retried, then classified.
// ---------------------------------------------------------------------

#[test]
fn rst_injection_is_retried_and_classified() {
    let space = 64u32;
    let mut config = scan_config(space, 0x27);
    config.resilience = ResilienceConfig::hardened();
    let (results, metrics, sent, refused) = run_matrix(config, |ip| {
        Some((
            Box::new(ChaosHost::new(
                Ipv4Addr::from_u32(ip),
                ChaosMode::SynAckThenRst {
                    after: Duration::from_millis(50),
                },
                0x27,
            )) as Box<dyn Endpoint>,
            LinkConfig::testbed(),
        ))
    });
    assert_eq!(results.len(), space as usize);
    // Each probe burns its full retry budget (every connection is reset),
    // and the recorded failure is the reset, not a generic error.
    assert_eq!(
        metrics.counter("scan.probes.retried"),
        u64::from(space) * 6 * 2
    );
    let summary = summarize(&results, sent, refused);
    assert_eq!(
        summary.error_kinds.get(ErrorKind::MidConnectionReset),
        u64::from(space) * 6,
        "{summary:?}"
    );
}

// ---------------------------------------------------------------------
// Satellite: the syn_ts RTT map must stay bounded over silent space.
// ---------------------------------------------------------------------

#[test]
fn rtt_map_is_bounded_after_scanning_silent_space() {
    for retries in [0u32, 2] {
        let mut config = scan_config(1 << 10, 0x51137);
        config.telemetry.record_rtt = true;
        config.resilience.syn_retries = retries;
        let seed = config.seed;
        let scanner = Scanner::new(config);
        // The whole space is unrouted: every SYN vanishes.
        let factory = |_ip: u32| None;
        let mut sim = Sim::new(
            scanner,
            factory,
            SimConfig {
                seed,
                ..SimConfig::default()
            },
        );
        sim.kick_scanner(|s, now, fx| s.start(now, fx));
        sim.run_to_completion();
        let scanner = sim.scanner_mut();
        assert_eq!(scanner.targets_sent(), 1 << 10);
        assert_eq!(
            scanner.rtt_pending(),
            0,
            "syn_ts leaked with syn_retries={retries}"
        );
    }
}

// ---------------------------------------------------------------------
// Cookie-gating: spoofed RSTs must never mint refusal verdicts.
// ---------------------------------------------------------------------

#[test]
fn spoofed_rsts_mint_no_refusal_verdicts() {
    // Regression for the headline bug: the PortScan (and pre-session
    // TCP) RST paths counted *any* RST to our source port as "refused"
    // without validating the cookie echo, so off-path backscatter could
    // mint refusal verdicts for hosts that never answered.
    for protocol in [Protocol::PortScan, Protocol::Http] {
        let space = 64u32;
        let spoofer = |ip: u32| ip.is_multiple_of(2);
        let mut config = ScanConfig::study(protocol, space, 0x5f00);
        config.rate_pps = 2_000_000;
        let (results, metrics, _sent, refused) = run_matrix(config, |ip| {
            let host: Box<dyn Endpoint> = if spoofer(ip) {
                Box::new(ChaosHost::new(
                    Ipv4Addr::from_u32(ip),
                    ChaosMode::SpoofedRst,
                    0x5f00,
                ))
            } else {
                web_host(ip, 0x5f00)
            };
            Some((host, LinkConfig::testbed()))
        });
        let cohort = (0..space).filter(|ip| spoofer(*ip)).count() as u64;
        assert_eq!(refused, 0, "{protocol:?}: spoofed RSTs minted refusals");
        assert_eq!(metrics.counter("scan.refused"), 0, "{protocol:?}");
        // One SYN per spoofer (no retries configured), each answered by
        // one cookie-less RST, each dropped and counted.
        assert_eq!(metrics.counter("scan.rst_ignored"), cohort, "{protocol:?}");
        // The honest cohort is unaffected.
        match protocol {
            Protocol::PortScan => assert!(results.is_empty()),
            _ => {
                assert_eq!(results.len(), (space - cohort as u32) as usize);
                let acc = accuracy(&results);
                assert!((acc - 1.0).abs() < f64::EPSILON, "accuracy {acc}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Stateless-first discovery: verdict identity, adversarial cohorts,
// promotion back-pressure, and the O(responders) memory gate.
// ---------------------------------------------------------------------

fn stateless_config(space: u32, seed: u64) -> ScanConfig {
    let mut config = scan_config(space, seed);
    config.stateless_first = true;
    config
}

#[test]
fn stateless_first_matches_stateful_verdicts_byte_for_byte() {
    let space = 128u32;
    let seed = 0x57a7;
    let factory = |ip: u32| Some((web_host(ip, seed), LinkConfig::testbed()));
    let (stateful, ..) = run_matrix(scan_config(space, seed), factory);
    let (stateless, metrics, _sent, refused) = run_matrix(stateless_config(space, seed), factory);
    // Discovery changes how responders are found, never what is
    // measured: per-host results must be byte-identical.
    assert_eq!(format!("{stateful:?}"), format!("{stateless:?}"));
    assert_eq!(refused, 0);
    assert_eq!(metrics.counter("scan.discovery.syns"), u64::from(space));
    assert_eq!(
        metrics.counter("scan.discovery.validated"),
        u64::from(space)
    );
    assert_eq!(metrics.counter("scan.discovery.promoted"), u64::from(space));
    assert_eq!(metrics.counter("scan.discovery.cookie_mismatch"), 0);
    assert_eq!(metrics.counter("scan.discovery.spoofed_rst"), 0);
}

/// The adversarial discovery world: four interleaved cohorts — honest
/// web hosts, SYN-ACKs acking the raw ISN, SYN-ACKs acking garbage, and
/// cookie-less RSTs. Shared by the 1-shard and 4-shard tests.
fn adversarial_factory(seed: u64) -> impl FnMut(u32) -> Option<(Box<dyn Endpoint>, LinkConfig)> {
    move |ip: u32| {
        let host: Box<dyn Endpoint> = match ip % 4 {
            0 => web_host(ip, seed),
            1 => Box::new(ChaosHost::new(
                Ipv4Addr::from_u32(ip),
                ChaosMode::SynAckWrongAck { delta: 0 },
                seed,
            )),
            2 => Box::new(ChaosHost::new(
                Ipv4Addr::from_u32(ip),
                ChaosMode::SynAckWrongAck { delta: 2 },
                seed,
            )),
            _ => Box::new(ChaosHost::new(
                Ipv4Addr::from_u32(ip),
                ChaosMode::SpoofedRst,
                seed,
            )),
        };
        Some((host, LinkConfig::testbed()))
    }
}

/// Assert the adversarial-world invariants on merged (or 1-shard)
/// outputs: only the honest cohort earns verdicts, every rejection is
/// counted by taxonomy, and nothing inflates `refused`.
fn check_adversarial(
    space: u32,
    results: &[HostResult],
    metrics: &Snapshot,
    refused: u64,
    label: &str,
) {
    let cohort = u64::from(space / 4);
    // Only the honest quarter is measured — and perfectly.
    assert_eq!(results.len(), cohort as usize, "{label}");
    assert!(results.iter().all(|r| r.ip % 4 == 0), "{label}");
    let acc = accuracy(results);
    assert!((acc - 1.0).abs() < f64::EPSILON, "{label}: accuracy {acc}");
    // No refusal verdicts from cookie-less RSTs.
    assert_eq!(refused, 0, "{label}: spoofed RSTs minted refusals");
    // Hardened = 2 discovery retries; every adversarial host answers
    // every attempt, the honest cohort answers before its first retry.
    assert_eq!(
        metrics.counter("scan.discovery.syns"),
        u64::from(space),
        "{label}"
    );
    assert_eq!(
        metrics.counter("scan.discovery.retries"),
        cohort * 3 * 2,
        "{label}"
    );
    assert_eq!(
        metrics.counter("scan.discovery.raw_isn_echo"),
        cohort * 3,
        "{label}"
    );
    assert_eq!(
        metrics.counter("scan.discovery.cookie_mismatch"),
        cohort * 3,
        "{label}"
    );
    assert_eq!(
        metrics.counter("scan.discovery.spoofed_rst"),
        cohort * 3,
        "{label}"
    );
    assert_eq!(
        metrics.counter("scan.discovery.validated"),
        cohort,
        "{label}"
    );
    assert_eq!(
        metrics.counter("scan.discovery.promoted"),
        cohort,
        "{label}"
    );
}

#[test]
fn stateless_adversarial_cohorts_inflate_no_verdicts() {
    let space = 128u32;
    let seed = 0xad7e;
    let mut config = stateless_config(space, seed);
    config.resilience = ResilienceConfig::hardened();
    let (results, metrics, _sent, refused) = run_matrix(config, adversarial_factory(seed));
    check_adversarial(space, &results, &metrics, refused, "1 shard");
}

#[test]
fn stateless_adversarial_cohorts_merge_identically_at_four_shards() {
    let space = 128u32;
    let seed = 0xad7e;
    let mut merged_results: Vec<HostResult> = Vec::new();
    let mut merged_metrics: Option<Snapshot> = None;
    let mut refused_total = 0u64;
    for shard in 0..4u32 {
        let mut config = stateless_config(space, seed);
        config.resilience = ResilienceConfig::hardened();
        config.shard = (shard, 4);
        let (results, metrics, _sent, refused) = run_matrix(config, adversarial_factory(seed));
        merged_results.extend(results);
        refused_total += refused;
        match &mut merged_metrics {
            Some(m) => m.merge(&metrics),
            None => merged_metrics = Some(metrics),
        }
    }
    merged_results.sort_by_key(|r| r.ip);
    let metrics = merged_metrics.unwrap();
    check_adversarial(space, &merged_results, &metrics, refused_total, "4 shards");
    // And the merged results are byte-identical to the 1-shard run.
    let mut config = stateless_config(space, seed);
    config.resilience = ResilienceConfig::hardened();
    let (single, ..) = run_matrix(config, adversarial_factory(seed));
    assert_eq!(format!("{single:?}"), format!("{merged_results:?}"));
}

#[test]
fn replayed_synacks_promote_exactly_once() {
    let space = 64u32;
    let seed = 0x4e91;
    let mut config = stateless_config(space, seed);
    config.resilience = ResilienceConfig::hardened();
    let (results, metrics, ..) = run_matrix(config, |ip| {
        Some((
            Box::new(ChaosHost::new(
                Ipv4Addr::from_u32(ip),
                ChaosMode::SynAckReplayed {
                    after: Duration::from_millis(20),
                },
                seed,
            )) as Box<dyn Endpoint>,
            LinkConfig::testbed(),
        ))
    });
    // Every host validated once and was promoted once; the stale replay
    // of the discovery SYN-ACK is recognized and dropped.
    assert_eq!(
        metrics.counter("scan.discovery.validated"),
        u64::from(space)
    );
    assert_eq!(metrics.counter("scan.discovery.promoted"), u64::from(space));
    assert_eq!(
        metrics.counter("scan.discovery.duplicates"),
        u64::from(space)
    );
    // No verdict inflation: one record per host, none claiming success
    // (the replayer never sends data).
    assert_eq!(results.len(), space as usize);
    for w in results.windows(2) {
        assert_ne!(w[0].ip, w[1].ip, "duplicate verdict for {}", w[0].ip);
    }
    assert!(results
        .iter()
        .all(|r| !matches!(r.primary_verdict(), Some(MssVerdict::Success(_)))));
}

#[test]
fn stateless_promotion_waits_out_session_cap_pressure() {
    let space = 256u32;
    let cap = 16usize;
    let seed = 0xcab0;
    let mut config = stateless_config(space, seed);
    config.resilience.max_sessions = cap;
    let (results, metrics, _sent, refused) = run_matrix(config, |ip| {
        Some((web_host(ip, seed), LinkConfig::testbed()))
    });
    // Unlike classic mode (which evicts the oldest session under
    // admission pressure), promotion *waits*: the queue buffers
    // responders and concluded sessions pull the next one in. Nobody is
    // evicted, nobody is lost, and the live set respects the cap.
    assert_eq!(results.len(), space as usize);
    let acc = accuracy(&results);
    assert!((acc - 1.0).abs() < f64::EPSILON, "accuracy {acc}");
    assert_eq!(refused, 0);
    assert_eq!(metrics.counter("scan.sessions.evicted"), 0);
    assert_eq!(metrics.counter("scan.discovery.promoted"), u64::from(space));
    let peak = metrics
        .gauges
        .get("shard.sessions.live_peak")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(peak <= cap as u64, "live peak {peak} exceeded cap {cap}");
    // The queued-state footprint is bounded by the responder count.
    let state_peak = metrics
        .gauges
        .get("scan.discovery.state_peak")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(state_peak <= u64::from(space), "state peak {state_peak}");
    assert!(state_peak > 0, "state peak gauge never sampled");
}

// ---------------------------------------------------------------------
// The memory-model gate: over a large, mostly-silent space the
// stateless front-end holds per-target state only for promoted
// responders — never for the in-flight population.
// ---------------------------------------------------------------------

#[test]
fn stateless_discovery_state_is_bounded_by_responders() {
    use iw_core::{ScanRunner, Topology};
    use iw_internet::{Population, PopulationConfig};
    use std::sync::Arc;

    let space = 1u32 << 17; // 131 072 targets, ~1.5 % responsive
    let pop = Arc::new(Population::new(PopulationConfig {
        seed: 0x1b1b,
        space_size: space,
        target_responsive: 2000,
        loss_scale: 0.0,
    }));
    let run = |stateless: bool| {
        let mut config = ScanConfig::study(Protocol::Http, space, 0x1b1b);
        config.rate_pps = 4_000_000;
        config.resilience = ResilienceConfig::hardened();
        config.telemetry.record_rtt = true;
        config.stateless_first = stateless;
        ScanRunner::new(&pop)
            .config(config)
            .topology(Topology::threads(1))
            .run()
    };
    let stateful = run(false);
    let stateless = run(true);
    // Same responders, byte-identical verdicts. (Wire-history artifacts
    // like per-probe `reordered` flags legitimately differ: the extra
    // discovery handshake shifts each link's jitter draws. What the scan
    // *measures* must not.)
    let responders = stateful.results.len() as u64;
    assert!(responders > 0);
    let verdicts = |results: &[HostResult]| {
        results
            .iter()
            .map(|r| format!("{} {:?} {:?}", r.ip, r.verdicts, r.host_verdict))
            .collect::<Vec<_>>()
    };
    assert_eq!(verdicts(&stateful.results), verdicts(&stateless.results));
    // The per-target footprint (queued promotions plus in-flight
    // promoted handshakes, which is what carries the pending-retry and
    // RTT-stamp maps) peaked at the promoted-responder count — not
    // anywhere near the 131 072 targets the stateful front-end tracks.
    let state_peak = stateless
        .telemetry
        .metrics
        .gauges
        .get("scan.discovery.state_peak")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(state_peak > 0, "state-peak gauge never sampled");
    assert!(
        state_peak <= responders,
        "state peak {state_peak} exceeds responder count {responders}"
    );
    assert!(
        state_peak < u64::from(space) / 32,
        "state peak {state_peak} scales with the population, not responders"
    );
}

// ---------------------------------------------------------------------
// Satellite: Karn's rule — retransmitted handshakes contribute no RTT
// samples, so backoff periods never pollute the percentiles.
// ---------------------------------------------------------------------

#[test]
fn karn_rule_drops_retransmit_rtt_samples() {
    let space = 256u32;
    let mut config = scan_config(space, 0x6a51);
    config.resilience = ResilienceConfig::hardened();
    config.telemetry.record_rtt = true;
    let (results, metrics, ..) = run_matrix(config, |ip| {
        Some((web_host(ip, 0x6a51), LinkConfig::default().with_loss(0.05)))
    });
    assert!(!results.is_empty());
    // Losses actually forced SYN retransmissions…
    assert!(metrics.counter("scan.syn_retries") > 0);
    let rtt = metrics
        .histograms
        .get("scan.rtt_nanos")
        .expect("rtt histogram recorded");
    assert!(rtt.count > 0, "no clean handshakes sampled");
    // …yet no sample contains a backoff period: a SYN-ACK after a
    // retransmission is ambiguous (it may answer either transmission)
    // and its sample is dropped rather than attributed to the wire.
    let backoff = Duration::from_secs(1).as_nanos();
    assert!(
        rtt.max < backoff,
        "rtt max {} contains a backoff period (≥ {backoff})",
        rtt.max
    );
}

// ---------------------------------------------------------------------
// Satellite: the eviction-order queue must stay bounded by live
// sessions, not total sessions started.
// ---------------------------------------------------------------------

#[test]
fn eviction_queue_is_bounded_over_long_campaigns() {
    let space = 1u32 << 10;
    let mut config = scan_config(space, 0xe71c);
    config.resilience.max_sessions = 32;
    let seed = config.seed;
    let scanner = Scanner::new(config);
    let mut sim = Sim::new(
        scanner,
        |ip| Some((web_host(ip, 0xe71c), LinkConfig::testbed())),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    sim.kick_scanner(|s, now, fx| s.start(now, fx));
    sim.run_to_completion();
    let scanner = sim.scanner_mut();
    assert_eq!(scanner.live_sessions(), 0);
    assert_eq!(scanner.results().len(), space as usize);
    // Normally-concluded sessions leave stale deque entries behind; the
    // lazy compaction keeps the queue O(live), so after the drain it
    // holds at most the compaction slack — not the 1024 sessions that
    // ever existed.
    assert!(
        scanner.eviction_queue_len() <= 16,
        "eviction queue leaked: {} entries after {} sessions",
        scanner.eviction_queue_len(),
        space
    );
}

// ---------------------------------------------------------------------
// Baseline invariance: resilience off changes nothing on a clean run.
// ---------------------------------------------------------------------

#[test]
fn default_resilience_is_inert_on_clean_links() {
    let space = 64;
    let run = |resilience: ResilienceConfig| {
        let mut config = scan_config(space, 0xc1ea);
        config.resilience = resilience;
        run_matrix(config, |ip| {
            Some((web_host(ip, 0xc1ea), LinkConfig::testbed()))
        })
    };
    let (base, base_m, ..) = run(ResilienceConfig::default());
    let (hard, hard_m, ..) = run(ResilienceConfig::hardened());
    // On a clean network the hardened profile never has to act, so both
    // runs measure identically.
    assert_eq!(format!("{base:?}"), format!("{hard:?}"));
    assert_eq!(base_m.counter("scan.syn_retries"), 0);
    assert_eq!(hard_m.counter("scan.syn_retries"), 0);
    assert_eq!(hard_m.counter("scan.probes.retried"), 0);
    assert_eq!(hard_m.counter("scan.sessions.evicted"), 0);
    assert!((accuracy(&base) - 1.0).abs() < f64::EPSILON);
}
