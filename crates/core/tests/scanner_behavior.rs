//! Focused tests of the scan engine's receive-path discipline: cookie
//! gating, duplicate handling, late packets, list targets and filters —
//! the details that keep an Internet-facing scanner from being confused
//! by backscatter.

use iw_core::blacklist::{CidrSet, ScanFilter};
use iw_core::cookie::CookieKey;
use iw_core::{Protocol, ScanConfig, Scanner, TargetSpec};
use iw_netsim::{Effects, Endpoint, Instant};
use iw_wire::ipv4::{Cidr, Ipv4Addr};
use iw_wire::tcp::{self, Flags, TcpOption};
use iw_wire::{ipv4, IpProtocol};

const SCANNER_IP: Ipv4Addr = Ipv4Addr::new(198, 18, 0, 1);

/// Drive the pacing timer until the scanner has emitted its SYNs (the
/// token bucket starts empty at t=0, so the first tick sends nothing).
fn kick_until_sent(scanner: &mut Scanner) -> Vec<iw_wire::pool::Packet> {
    let mut sent = Vec::new();
    let mut now = Instant::ZERO;
    let mut fx = Effects::default();
    scanner.start(now, &mut fx);
    sent.extend(fx.tx);
    for _ in 0..20 {
        now += iw_netsim::Duration::from_millis(5);
        let mut fx = Effects::default();
        scanner.on_timer(u64::MAX, now, &mut fx);
        sent.extend(fx.tx);
    }
    sent
}

fn config(protocol: Protocol) -> ScanConfig {
    let mut c = ScanConfig::study(protocol, 1 << 10, 99);
    c.rate_pps = 1_000_000;
    c
}

fn datagram_from(src: u32, seg: &tcp::Repr) -> Vec<u8> {
    let src = Ipv4Addr::from_u32(src);
    let l4 = seg.emit(src, SCANNER_IP);
    ipv4::build_datagram(
        &ipv4::Repr {
            src_addr: src,
            dst_addr: SCANNER_IP,
            protocol: IpProtocol::Tcp,
            payload_len: l4.len(),
            ttl: 64,
        },
        1,
        &l4,
    )
}

fn syn_ack(src: u32, cookie: &CookieKey, sport: u16, dport: u16) -> tcp::Repr {
    tcp::Repr {
        src_port: dport,
        dst_port: sport,
        seq: 77_000,
        ack: cookie.isn(src, sport, dport).wrapping_add(1),
        flags: Flags::SYN | Flags::ACK,
        window: 65535,
        options: vec![TcpOption::Mss(64)],
        payload: vec![],
    }
}

#[test]
fn syn_ack_with_bad_cookie_allocates_no_state() {
    let mut scanner = Scanner::new(config(Protocol::Http));
    let mut fx = Effects::default();
    // Backscatter: a SYN-ACK whose ack fails the cookie check.
    let bogus = tcp::Repr {
        src_port: 80,
        dst_port: 40000,
        seq: 1,
        ack: 0xdead_beef,
        flags: Flags::SYN | Flags::ACK,
        window: 65535,
        options: vec![],
        payload: vec![],
    };
    scanner.on_packet(&datagram_from(5, &bogus), Instant::ZERO, &mut fx);
    assert_eq!(scanner.live_sessions(), 0, "no state for invalid cookies");
    assert!(fx.tx.is_empty(), "and no reply");
}

#[test]
fn valid_syn_ack_creates_session_and_sends_request() {
    let cookie = CookieKey::new(99);
    let mut scanner = Scanner::new(config(Protocol::Http));
    let mut fx = Effects::default();
    scanner.on_packet(
        &datagram_from(5, &syn_ack(5, &cookie, 40000, 80)),
        Instant::ZERO,
        &mut fx,
    );
    assert_eq!(scanner.live_sessions(), 1);
    assert_eq!(fx.tx.len(), 1, "ACK+request in one packet");
    let ip = ipv4::Packet::new_checked(&fx.tx[0][..]).unwrap();
    let seg = tcp::Packet::new_checked(ip.payload()).unwrap();
    let repr = tcp::Repr::parse(&seg, ip.src_addr(), ip.dst_addr()).unwrap();
    assert!(repr.flags.contains(Flags::ACK));
    assert!(!repr.payload.is_empty(), "request payload present");
    assert_eq!(repr.ack, 77_001);
}

#[test]
fn duplicate_syn_ack_is_idempotent() {
    let cookie = CookieKey::new(99);
    let mut scanner = Scanner::new(config(Protocol::Http));
    let pkt = datagram_from(5, &syn_ack(5, &cookie, 40000, 80));
    let mut fx1 = Effects::default();
    scanner.on_packet(&pkt, Instant::ZERO, &mut fx1);
    let mut fx2 = Effects::default();
    scanner.on_packet(&pkt, Instant::ZERO, &mut fx2);
    assert_eq!(scanner.live_sessions(), 1, "one session per host");
    assert!(
        fx2.tx.is_empty(),
        "a duplicate SYN-ACK must not replay the request"
    );
}

#[test]
fn corrupted_checksum_packets_are_dropped() {
    let cookie = CookieKey::new(99);
    let mut scanner = Scanner::new(config(Protocol::Http));
    let mut pkt = datagram_from(5, &syn_ack(5, &cookie, 40000, 80));
    let last = pkt.len() - 1;
    pkt[last] ^= 0xff; // corrupt the TCP checksum
    let mut fx = Effects::default();
    scanner.on_packet(&pkt, Instant::ZERO, &mut fx);
    assert_eq!(scanner.live_sessions(), 0);
}

#[test]
fn packets_to_other_destinations_ignored() {
    let cookie = CookieKey::new(99);
    let mut scanner = Scanner::new(config(Protocol::Http));
    // Right segment, wrong destination IP.
    let src = Ipv4Addr::from_u32(5);
    let seg = syn_ack(5, &cookie, 40000, 80);
    let l4 = seg.emit(src, Ipv4Addr::new(203, 0, 113, 200));
    let pkt = ipv4::build_datagram(
        &ipv4::Repr {
            src_addr: src,
            dst_addr: Ipv4Addr::new(203, 0, 113, 200),
            protocol: IpProtocol::Tcp,
            payload_len: l4.len(),
            ttl: 64,
        },
        1,
        &l4,
    );
    let mut fx = Effects::default();
    scanner.on_packet(&pkt, Instant::ZERO, &mut fx);
    assert_eq!(scanner.live_sessions(), 0);
}

#[test]
fn rst_to_syn_counts_refused() {
    let cookie = CookieKey::new(99);
    let mut scanner = Scanner::new(config(Protocol::Http));
    let rst = tcp::Repr::bare(
        80,
        40000,
        0,
        cookie.isn(9, 40000, 80).wrapping_add(1),
        Flags::RST | Flags::ACK,
        0,
    );
    let mut fx = Effects::default();
    scanner.on_packet(&datagram_from(9, &rst), Instant::ZERO, &mut fx);
    assert_eq!(scanner.refused(), 1);
    assert_eq!(scanner.live_sessions(), 0);
}

#[test]
fn port_scan_mode_records_and_rsts() {
    let cookie = CookieKey::new(99);
    let mut scanner = Scanner::new(config(Protocol::PortScan));
    let mut fx = Effects::default();
    scanner.on_packet(
        &datagram_from(12, &syn_ack(12, &cookie, 40000, 80)),
        Instant::ZERO,
        &mut fx,
    );
    assert_eq!(scanner.open_ports(), &[12]);
    assert_eq!(scanner.live_sessions(), 0, "port scan keeps no sessions");
    assert_eq!(fx.tx.len(), 1);
    let ip = ipv4::Packet::new_checked(&fx.tx[0][..]).unwrap();
    let seg = tcp::Packet::new_checked(ip.payload()).unwrap();
    assert!(seg.flags().contains(Flags::RST));
}

#[test]
fn port_scan_open_ports_deduplicated_at_harvest() {
    use iw_core::ScanRunner;
    use iw_internet::{Population, PopulationConfig};
    use std::sync::Arc;

    // A lossy world: when the scanner's RST is dropped, the host's TCB
    // sits in SYN-RCVD and retransmits its SYN-ACK, and the stateless
    // cookie check happily validates the duplicate. Each validation
    // pushes the host onto the raw open-ports list, so harvest() must
    // dedup, not just sort.
    let pop = Arc::new(Population::new(PopulationConfig {
        seed: 0x5151,
        space_size: 1 << 14,
        target_responsive: 400,
        loss_scale: 3.0,
    }));
    let mut cfg = ScanConfig::study(Protocol::PortScan, pop.space_size(), 0x5151);
    cfg.rate_pps = 2_000_000;
    let out = ScanRunner::new(&pop).config(cfg).run();

    assert!(!out.open_ports.is_empty());
    assert!(
        out.open_ports.windows(2).all(|w| w[0] < w[1]),
        "open_ports must be sorted and free of duplicates"
    );
    // The regression is only meaningful if duplicates actually arrived:
    // more SYN-ACKs validated than distinct open hosts reported.
    let validated = out.telemetry.metrics.counter("scan.synacks_validated");
    assert!(
        validated > out.open_ports.len() as u64,
        "expected duplicate SYN-ACKs to exercise the dedup \
         (validated {validated}, open {})",
        out.open_ports.len()
    );
}

#[test]
fn pace_timer_backs_off_at_low_rates() {
    use iw_core::ScanRunner;
    use iw_internet::{Population, PopulationConfig};
    use std::sync::Arc;

    // At 50 pps a token arrives every 20 ms, so a scanner that re-arms a
    // fixed 5 ms pacing tick spends three wake-ups out of four recording
    // a zero grant. With the re-arm stretched to the bucket's own
    // `next_available`, tick counts collapse to ~one per packet while the
    // scan still probes every target.
    let space = 1u32 << 13;
    let pop = Arc::new(Population::new(PopulationConfig {
        seed: 0xbac0,
        space_size: space,
        target_responsive: 150,
        loss_scale: 0.0,
    }));
    let mut cfg = ScanConfig::study(Protocol::Http, space, 0xbac0);
    cfg.rate_pps = 50;
    let out = ScanRunner::new(&pop).config(cfg).run();

    let sent = out.telemetry.metrics.counter("scan.targets_sent");
    assert_eq!(sent, space as u64, "back-off must not change targets_sent");

    let ticks = out.telemetry.metrics.counter("shard.pace.ticks");
    let fixed_cadence = out.duration.as_nanos() / 5_000_000; // one tick per 5 ms
    assert!(
        ticks < fixed_cadence / 2,
        "pace ticks did not drop: {ticks} ticks vs {fixed_cadence} at a fixed 5 ms cadence"
    );
    // Each wake-up should find its token waiting: ~one tick per packet,
    // plus the warm-up ticks before the bucket first fills.
    assert!(
        ticks <= sent + 16,
        "expected ~one pace tick per packet, got {ticks} for {sent} packets"
    );
}

#[test]
fn pacing_respects_blacklist_and_whitelist() {
    let mut cfg = config(Protocol::Http);
    cfg.targets = TargetSpec::FullSpace { size: 1 << 10 };
    cfg.filter = ScanFilter {
        whitelist: CidrSet::from_cidrs(&[Cidr::new(Ipv4Addr::from_u32(0), 23)]), // 0..512
        blacklist: CidrSet::from_cidrs(&[Cidr::new(Ipv4Addr::from_u32(0), 24)]), // 0..256
    };
    let mut scanner = Scanner::new(cfg);
    let mut fx = Effects::default();
    let mut now = Instant::ZERO;
    scanner.start(now, &mut fx);
    let mut sent: Vec<u32> = Vec::new();
    let mut collect = |fx: &Effects| {
        for pkt in &fx.tx {
            let ip = ipv4::Packet::new_checked(&pkt[..]).unwrap();
            sent.push(ip.dst_addr().to_u32());
        }
    };
    collect(&fx);
    for _ in 0..200 {
        now += iw_netsim::Duration::from_millis(5);
        let mut fx = Effects::default();
        scanner.on_timer(u64::MAX, now, &mut fx);
        collect(&fx);
    }
    assert_eq!(
        sent.len(),
        256,
        "whitelist minus blacklist = addresses 256..512"
    );
    assert!(sent.iter().all(|ip| (256..512).contains(ip)));
}

#[test]
fn list_targets_carry_domains_into_requests() {
    let mut cfg = config(Protocol::Http);
    cfg.targets = TargetSpec::List(vec![(42, Some("www.named-site.example".into()))]);
    let mut scanner = Scanner::new(cfg);
    let fx = kick_until_sent(&mut scanner);
    assert_eq!(fx.len(), 1, "one SYN for the single target");

    // Answer it and check the Host header of the request.
    let cookie = CookieKey::new(99);
    let mut fx2 = Effects::default();
    scanner.on_packet(
        &datagram_from(42, &syn_ack(42, &cookie, 40000, 80)),
        Instant::ZERO,
        &mut fx2,
    );
    let ip = ipv4::Packet::new_checked(&fx2.tx[0][..]).unwrap();
    let seg = tcp::Packet::new_checked(ip.payload()).unwrap();
    let request = String::from_utf8_lossy(seg.payload()).into_owned();
    assert!(
        request.contains("Host: www.named-site.example"),
        "{request}"
    );
}

#[test]
fn tls_scan_sends_client_hello_with_sni_from_list() {
    let mut cfg = config(Protocol::Tls);
    cfg.targets = TargetSpec::List(vec![(42, Some("tls-site.example".into()))]);
    let mut scanner = Scanner::new(cfg);
    kick_until_sent(&mut scanner);
    let cookie = CookieKey::new(99);
    let mut fx2 = Effects::default();
    scanner.on_packet(
        &datagram_from(42, &syn_ack(42, &cookie, 40000, 443)),
        Instant::ZERO,
        &mut fx2,
    );
    let ip = ipv4::Packet::new_checked(&fx2.tx[0][..]).unwrap();
    let seg = tcp::Packet::new_checked(ip.payload()).unwrap();
    let (records, _) = iw_wire::tls::record::parse_stream(seg.payload()).unwrap();
    let hello = iw_wire::tls::handshake::ClientHello::parse(records[0].payload).unwrap();
    assert_eq!(hello.server_name(), Some("tls-site.example"));
    assert_eq!(hello.cipher_suites.len(), 40);
}

#[test]
fn non_tcp_garbage_never_panics_the_scanner() {
    let mut scanner = Scanner::new(config(Protocol::Http));
    let mut fx = Effects::default();
    for junk in [vec![], vec![0u8; 3], vec![0xff; 64], {
        // Valid IPv4, unknown protocol.
        ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: Ipv4Addr::from_u32(1),
                dst_addr: SCANNER_IP,
                protocol: IpProtocol::Unknown(132),
                payload_len: 4,
                ttl: 64,
            },
            1,
            &[1, 2, 3, 4],
        )
    }] {
        scanner.on_packet(&junk, Instant::ZERO, &mut fx);
    }
    assert_eq!(scanner.live_sessions(), 0);
}
