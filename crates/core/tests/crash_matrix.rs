//! Crash-fault injection matrix: durable campaigns must survive a
//! `kill -9` at arbitrary event boundaries. Each scenario kills a run
//! mid-flight via [`RunControl::kill_after_events`], resumes from the
//! checkpoint the kill left behind, and demands the resumed campaign
//! produce results, canonical metrics, streaming telemetry and the
//! periodic-checkpoint trail **byte-identical** to an uninterrupted run.
//!
//! Also here: the checkpoint file format's round-trip/corruption
//! properties and the graceful-shutdown drain path.

use iw_core::{
    CampaignCheckpoint, ConfigDigest, ErrorKind, Protocol, ResilienceConfig, RunControl,
    RunDisposition, ScanConfig, ScanOutput, ScanRunner, ShardCheckpoint, Topology,
    CHECKPOINT_VERSION,
};
use iw_internet::{Population, PopulationConfig};
use iw_netsim::Duration;
use std::sync::Arc;

/// A small world with a mix of responsive and silent space, so kill
/// points land both mid-handshake (pending SYN retries) and
/// mid-inference (live sessions).
fn small_world(seed: u64) -> Arc<Population> {
    Arc::new(Population::new(PopulationConfig {
        seed,
        space_size: 1 << 14,
        target_responsive: 150,
        loss_scale: 0.0,
    }))
}

/// The campaign configuration under test: hardened resilience (so the
/// pending-retry table is live state) and streaming telemetry (so sink
/// offsets are part of the byte-identity contract).
fn durable_config(space: u32, seed: u64) -> ScanConfig {
    let mut config = ScanConfig::study(Protocol::Http, space, seed);
    config.rate_pps = 2_000_000; // compress virtual time
    config.resilience = ResilienceConfig::hardened();
    config.telemetry.stream = Some(Duration::from_millis(100));
    config
}

fn checkpoint_cadence() -> Duration {
    Duration::from_millis(250)
}

fn run(pop: &Arc<Population>, config: &ScanConfig, shards: u32, control: RunControl) -> ScanOutput {
    ScanRunner::new(pop)
        .config(config.clone())
        .topology(Topology::threads(shards))
        .control(control)
        .run()
}

/// Everything the acceptance bar says must be byte-identical between an
/// uninterrupted and a killed-then-resumed campaign.
fn fingerprint(out: &ScanOutput) -> (String, String, String, String) {
    let trail: String = out
        .checkpoints
        .iter()
        .map(ShardCheckpoint::canonical_json)
        .collect::<Vec<_>>()
        .join("\n");
    (
        format!("{:?}", out.results),
        out.telemetry.metrics.to_canonical_json(),
        out.telemetry.stream.to_jsonl(),
        trail,
    )
}

/// The latest capture per shard — for a killed run, the kill-point
/// snapshot each shard persisted on its way down.
fn latest_per_shard(out: &ScanOutput, shards: u32) -> Vec<ShardCheckpoint> {
    (0..shards)
        .map(|s| {
            out.checkpoints
                .iter()
                .rfind(|c| c.shard == s)
                .cloned()
                .expect("killed shard persisted a capture")
        })
        .collect()
}

/// Assemble the campaign file a CLI crash would have left on disk, and
/// round-trip it through the canonical serializer to prove the resumed
/// run works from parsed bytes, not in-memory state.
fn campaign_file(config: &ScanConfig, shards: Vec<ShardCheckpoint>) -> CampaignCheckpoint {
    let threads = shards.len() as u32;
    let campaign = CampaignCheckpoint {
        version: CHECKPOINT_VERSION,
        threads,
        checkpoint_every_nanos: checkpoint_cadence().as_nanos(),
        config: ConfigDigest::from_config(config),
        extra: vec![("command".to_string(), "scan".to_string())],
        shards,
    };
    CampaignCheckpoint::parse(&campaign.to_canonical_json()).expect("self-serialized file parses")
}

/// Kill at each event count, resume, and demand byte-identity with the
/// uninterrupted baseline. Returns the kill captures for phase checks.
fn kill_resume_matrix(
    pop: &Arc<Population>,
    config: &ScanConfig,
    shards: u32,
    kill_points: &[u64],
) -> Vec<ShardCheckpoint> {
    let every = checkpoint_cadence();
    let baseline = run(
        pop,
        config,
        shards,
        RunControl {
            checkpoint_every: Some(every),
            ..RunControl::default()
        },
    );
    assert_eq!(baseline.disposition, RunDisposition::Completed);
    let want = fingerprint(&baseline);

    let mut captures = Vec::new();
    for &k in kill_points {
        let killed = run(
            pop,
            config,
            shards,
            RunControl {
                kill_after_events: k,
                checkpoint_every: Some(every),
                ..RunControl::default()
            },
        );
        assert_eq!(
            killed.disposition,
            RunDisposition::Killed { events: k },
            "kill at {k}"
        );
        let kill_caps = latest_per_shard(&killed, shards);
        for c in &kill_caps {
            assert_eq!(c.events, k, "shard {} kill capture", c.shard);
        }
        let file = campaign_file(config, kill_caps.clone());
        captures.extend(kill_caps);

        let resumed = run(
            pop,
            config,
            shards,
            RunControl {
                checkpoint_every: Some(every),
                resume: Some(Arc::new(file)),
                ..RunControl::default()
            },
        );
        assert_eq!(
            resumed.disposition,
            RunDisposition::Completed,
            "resume from kill at {k}"
        );
        let got = fingerprint(&resumed);
        assert_eq!(got.0, want.0, "results diverged resuming from event {k}");
        assert_eq!(got.1, want.1, "metrics diverged resuming from event {k}");
        assert_eq!(got.2, want.2, "stream diverged resuming from event {k}");
        assert_eq!(
            got.3, want.3,
            "checkpoint trail diverged resuming from event {k}"
        );
    }
    captures
}

// ---------------------------------------------------------------------
// The matrix itself: ≥5 kill points single-threaded, 3 more at 4 shards.
// ---------------------------------------------------------------------

#[test]
fn kill_resume_matrix_single_thread() {
    let pop = small_world(0xc4a5);
    let config = durable_config(pop.space_size(), 0xc4a5);
    // Size the kill points off the campaign's own event count.
    let probe = run(&pop, &config, 1, RunControl::default());
    let total = probe
        .checkpoints
        .last()
        .expect("final capture always recorded")
        .events;
    assert!(total > 512, "world too small to exercise kill points");
    let kill_points = [64, total / 6, total / 3, total / 2, (total * 4) / 5];
    let captures = kill_resume_matrix(&pop, &config, 1, &kill_points);
    // The matrix must have sampled both interesting phases: a kill with
    // SYN-retry targets pending (mid-handshake) and one with live
    // stateful sessions (mid-inference).
    assert!(
        captures.iter().any(|c| !c.pending.is_empty()),
        "no kill point landed mid-handshake: {captures:?}"
    );
    assert!(
        captures.iter().any(|c| !c.sessions.is_empty()),
        "no kill point landed mid-inference: {captures:?}"
    );
}

#[test]
fn kill_resume_matrix_four_threads() {
    let pop = small_world(0x4f0u64);
    let config = durable_config(pop.space_size(), 0x4f0);
    let probe = run(&pop, &config, 4, RunControl::default());
    // Shards finish at different event counts; kill points must land
    // inside every shard's run.
    let shortest = latest_per_shard(&probe, 4)
        .iter()
        .map(|c| c.events)
        .min()
        .expect("four final captures");
    assert!(shortest > 256, "shards too short: {shortest}");
    let kill_points = [96, shortest / 3, shortest / 2];
    let captures = kill_resume_matrix(&pop, &config, 4, &kill_points);
    assert!(captures.iter().any(|c| !c.pending.is_empty()));
    assert!(captures.iter().any(|c| !c.sessions.is_empty()));
}

#[test]
fn kill_resume_matrix_stateless_first() {
    // Stateless-first discovery adds the promotion queue to shard state:
    // killing while responders wait behind a tight session cap and
    // resuming must replay the queue (FIFO order and all) byte-exactly.
    let pop = small_world(0x51f5);
    let mut config = durable_config(pop.space_size(), 0x51f5);
    config.stateless_first = true;
    config.resilience.max_sessions = 4; // force promotions to queue up
    let probe = run(&pop, &config, 1, RunControl::default());
    let total = probe
        .checkpoints
        .last()
        .expect("final capture always recorded")
        .events;
    assert!(total > 512, "world too small to exercise kill points");
    let kill_points = [total / 6, total / 3, total / 2, (total * 4) / 5];
    let captures = kill_resume_matrix(&pop, &config, 1, &kill_points);
    // At least one kill landed with responders queued behind the cap —
    // the new state the checkpoint must carry.
    assert!(
        captures.iter().any(|c| !c.promotions.is_empty()),
        "no kill point landed with a live promotion queue: {captures:?}"
    );
    assert!(captures.iter().any(|c| !c.sessions.is_empty()));
}

// ---------------------------------------------------------------------
// Resume validation: stale or foreign state must fail closed.
// ---------------------------------------------------------------------

#[test]
fn resume_rejects_tampered_shard_state() {
    let pop = small_world(0x7a3);
    let config = durable_config(pop.space_size(), 0x7a3);
    let killed = run(
        &pop,
        &config,
        1,
        RunControl {
            kill_after_events: 400,
            ..RunControl::default()
        },
    );
    let mut caps = latest_per_shard(&killed, 1);
    // A single off-by-one in recorded progress must be caught by the
    // replay barrier, not silently absorbed.
    caps[0].targets_sent += 1;
    let resumed = run(
        &pop,
        &config,
        1,
        RunControl {
            resume: Some(Arc::new(campaign_file(&config, caps))),
            ..RunControl::default()
        },
    );
    match resumed.disposition {
        RunDisposition::Diverged { detail } => {
            assert!(detail.contains("does not match"), "{detail}");
        }
        other => panic!("tampered checkpoint accepted: {other:?}"),
    }
    assert!(resumed.results.is_empty(), "diverged run must not report");
}

#[test]
fn resume_rejects_config_and_shard_mismatch() {
    let pop = small_world(0x9b1);
    let config = durable_config(pop.space_size(), 0x9b1);
    let killed = run(
        &pop,
        &config,
        1,
        RunControl {
            kill_after_events: 300,
            ..RunControl::default()
        },
    );
    let file = campaign_file(&config, latest_per_shard(&killed, 1));

    // Different seed → different campaign; refused before replay starts,
    // with the offending field named.
    let mut other_seed = config.clone();
    other_seed.seed = 0x9b2;
    let resumed = run(
        &pop,
        &other_seed,
        1,
        RunControl {
            resume: Some(Arc::new(file.clone())),
            ..RunControl::default()
        },
    );
    match resumed.disposition {
        RunDisposition::Diverged { detail } => assert!(detail.contains("seed"), "{detail}"),
        other => panic!("foreign-config resume accepted: {other:?}"),
    }

    // Different shard count → cursors would never line up.
    let resumed = run(
        &pop,
        &config,
        4,
        RunControl {
            resume: Some(Arc::new(file)),
            ..RunControl::default()
        },
    );
    match resumed.disposition {
        RunDisposition::Diverged { detail } => assert!(detail.contains("shard"), "{detail}"),
        other => panic!("shard-mismatch resume accepted: {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Graceful shutdown: drain, checkpoint, distinct disposition.
// ---------------------------------------------------------------------

#[test]
fn graceful_abort_drains_and_checkpoints() {
    let pop = small_world(0xab07);
    let config = durable_config(pop.space_size(), 0xab07);
    let out = run(
        &pop,
        &config,
        1,
        RunControl {
            abort_at: Some(Duration::from_millis(50)),
            checkpoint_every: Some(checkpoint_cadence()),
            ..RunControl::default()
        },
    );
    assert_eq!(out.disposition, RunDisposition::Aborted);
    // The drain force-concluded real in-flight work…
    let forced = out
        .telemetry
        .metrics
        .counter("scan.checkpoint.drain_forced");
    assert!(forced > 0, "abort at 50ms should catch live work");
    assert!(
        out.summary.error_kinds.get(ErrorKind::CollectTimeout) > 0,
        "drained sessions record their truncation: {:?}",
        out.summary
    );
    // …and the final capture shows a fully wound-down shard.
    let last = out.checkpoints.last().expect("final capture");
    assert!(last.exhausted, "drain stops target generation");
    assert!(last.sessions.is_empty(), "no session survives the drain");
    assert!(last.pending.is_empty(), "no retry survives the drain");
    assert_eq!(last.results_recorded, out.results.len() as u64);
}

// ---------------------------------------------------------------------
// File-format properties: round-trip byte-identity, clean rejection.
// ---------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_shard(rng: &mut u64, index: u32) -> ShardCheckpoint {
    let mut pending: Vec<(u32, u32)> = (0..(splitmix(rng) % 8))
        .map(|_| (splitmix(rng) as u32 % 4096, splitmix(rng) as u32 % 3))
        .collect();
    pending.sort_unstable();
    pending.dedup_by_key(|(ip, _)| *ip);
    let mut sessions: Vec<u32> = (0..(splitmix(rng) % 8))
        .map(|_| splitmix(rng) as u32 % 4096)
        .collect();
    sessions.sort_unstable();
    sessions.dedup();
    let counters: Vec<(String, u64)> = (0..(splitmix(rng) % 6))
        .map(|i| (format!("scan.fuzz.counter_{i:02}"), splitmix(rng)))
        .collect();
    // Promotion order is FIFO state, so the fuzz keeps it unsorted.
    let promotions: Vec<u32> = (0..(splitmix(rng) % 5))
        .map(|_| splitmix(rng) as u32 % 4096)
        .collect();
    ShardCheckpoint {
        shard: index,
        events: splitmix(rng),
        at_nanos: splitmix(rng),
        cursor_next: splitmix(rng),
        cursor_produced: splitmix(rng),
        exhausted: splitmix(rng).is_multiple_of(2),
        targets_sent: splitmix(rng),
        pending,
        sessions,
        promotions,
        results_recorded: splitmix(rng),
        stream_records: splitmix(rng),
        counters,
    }
}

fn random_campaign(rng: &mut u64) -> CampaignCheckpoint {
    let threads = 1 + (splitmix(rng) % 4) as u32;
    let mut config = durable_config(1 << 12, splitmix(rng));
    config.rate_pps = 1 + splitmix(rng) % 10_000_000;
    config.resilience.syn_retries = (splitmix(rng) % 4) as u32;
    CampaignCheckpoint {
        version: CHECKPOINT_VERSION,
        threads,
        checkpoint_every_nanos: splitmix(rng),
        config: ConfigDigest::from_config(&config),
        // Keys needing JSON escaping must survive the round trip too.
        extra: vec![
            ("command".to_string(), "scan".to_string()),
            (
                "note \"quoted\"".to_string(),
                format!("v\\{}", splitmix(rng) % 100),
            ),
        ],
        shards: (0..threads).map(|i| random_shard(rng, i)).collect(),
    }
}

#[test]
fn checkpoint_roundtrip_property() {
    let mut rng = 0x1e57_c4e5_u64;
    for case in 0..100 {
        let campaign = random_campaign(&mut rng);
        let bytes = campaign.to_canonical_json();
        let parsed = CampaignCheckpoint::parse(&bytes)
            .unwrap_or_else(|e| panic!("case {case}: rejected own bytes: {e}\n{bytes}"));
        assert_eq!(parsed, campaign, "case {case}: lossy round trip");
        assert_eq!(
            parsed.to_canonical_json(),
            bytes,
            "case {case}: re-serialization not byte-identical"
        );
    }
}

#[test]
fn corrupt_checkpoint_files_rejected_without_panic() {
    let mut rng = 0xdead_f11e_u64;
    let bytes = random_campaign(&mut rng).to_canonical_json();
    // Random truncations (always inside the JSON body) must error.
    for _ in 0..64 {
        let cut = (splitmix(&mut rng) as usize) % (bytes.len() - 1);
        assert!(
            CampaignCheckpoint::parse(&bytes[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
    // Random single-byte garbling must never panic (it may still parse
    // if it lands inside a digit or string, which is fine — the replay
    // barrier catches semantic corruption).
    for _ in 0..64 {
        let pos = (splitmix(&mut rng) as usize) % bytes.len();
        let mut garbled = bytes.clone().into_bytes();
        garbled[pos] = garbled[pos].wrapping_add(1 + (splitmix(&mut rng) as u8 % 120));
        if let Ok(text) = String::from_utf8(garbled) {
            let _ = CampaignCheckpoint::parse(&text);
        }
    }
    // An unknown future version is refused by name, not misread.
    let future = bytes.replace("\"version\":1", "\"version\":999");
    assert!(matches!(
        CampaignCheckpoint::parse(&future),
        Err(iw_core::CheckpointError::UnknownVersion(999))
    ));
}
