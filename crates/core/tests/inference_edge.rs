//! Edge cases of the inference machine's sequence bookkeeping that the
//! happy-path tests don't reach: partial overlaps, duplicate deliveries,
//! zero-window hosts, and very large flights.

use iw_core::inference::{ConnConfig, ConnOutput, InferenceConn, RawOutcome};
use iw_netsim::{Duration, Instant};
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp::{self, Flags, TcpOption};

const SRC: Ipv4Addr = Ipv4Addr::new(198, 18, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

fn establish() -> InferenceConn {
    let cfg = ConnConfig::new(
        DST,
        SRC,
        40000,
        80,
        64,
        1000,
        b"GET / HTTP/1.1\r\n\r\n".to_vec(),
    );
    let (mut conn, _) = InferenceConn::new(cfg, Instant::ZERO);
    let synack = tcp::Repr {
        src_port: 80,
        dst_port: 40000,
        seq: 5000,
        ack: 1001,
        flags: Flags::SYN | Flags::ACK,
        window: 65535,
        options: vec![TcpOption::Mss(64)],
        payload: vec![],
    };
    conn.on_segment(&synack, Instant::ZERO);
    conn
}

fn data(offset: u32, len: usize) -> tcp::Repr {
    tcp::Repr {
        src_port: 80,
        dst_port: 40000,
        seq: 5001 + offset,
        ack: 1019,
        flags: Flags::ACK,
        window: 65535,
        options: vec![],
        payload: vec![0xbb; len],
    }
}

fn finish_with_retransmit(conn: &mut InferenceConn, n_new: u32) -> ConnOutput {
    let t = Instant::ZERO + Duration::from_secs(1);
    let out = conn.on_segment(&data(0, 64), t);
    if out.result.is_some() {
        return out;
    }
    conn.on_segment(&data(n_new * 64, 64), t)
}

#[test]
fn partially_overlapping_segment_is_not_a_retransmission() {
    // A segment covering [32, 96) after [0, 64) brings NEW bytes (64..96)
    // — it must extend the count, not end the measurement. (Servers
    // rarely emit this; middleboxes resegmenting can.)
    let mut conn = establish();
    conn.on_segment(&data(0, 64), Instant::ZERO);
    let out = conn.on_segment(&data(32, 64), Instant::ZERO);
    assert!(
        out.result.is_none(),
        "overlap with new bytes is not the end"
    );
    // Now a full retransmission of the first segment ends it.
    let out = finish_with_retransmit(&mut conn, 2);
    match out.result.expect("concluded").outcome {
        RawOutcome::Success { bytes, .. } => assert_eq!(bytes, 96, "distinct bytes"),
        RawOutcome::FewData { bytes, .. } => assert_eq!(bytes, 96),
        other => panic!("{other:?}"),
    }
}

#[test]
fn exact_duplicate_of_any_covered_segment_ends_collection() {
    // Not only the first segment: any fully covered range re-arriving is
    // a retransmission signal (the first unacked segment IS segment 0,
    // but a middle duplicate also proves the sender wrapped around).
    let mut conn = establish();
    for i in 0..5u32 {
        conn.on_segment(&data(i * 64, 64), Instant::ZERO);
    }
    let out = conn.on_segment(&data(2 * 64, 64), Instant::ZERO + Duration::from_secs(1));
    // Verification ACK goes out; connection is in Verifying.
    assert!(out.result.is_none());
    assert_eq!(out.tx.len(), 1);
    assert_eq!(out.tx[0].window, 128);
}

#[test]
fn huge_flight_counts_exactly() {
    // IW 64 at MSS 64 (the HTTP side peak): 64 segments, 4096 bytes.
    let mut conn = establish();
    for i in 0..64u32 {
        conn.on_segment(&data(i * 64, 64), Instant::ZERO);
    }
    let out = finish_with_retransmit(&mut conn, 64);
    match out.result.expect("done").outcome {
        RawOutcome::Success {
            segments, bytes, ..
        } => {
            assert_eq!(segments, 64);
            assert_eq!(bytes, 4096);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn variable_segment_sizes_use_observed_maximum() {
    // A host mixing 64 B and a final 40 B runt: divisor is 64.
    let mut conn = establish();
    for i in 0..6u32 {
        conn.on_segment(&data(i * 64, 64), Instant::ZERO);
    }
    conn.on_segment(&data(6 * 64, 40), Instant::ZERO);
    let t = Instant::ZERO + Duration::from_secs(1);
    conn.on_segment(&data(0, 64), t);
    let out = conn.on_segment(&data(7 * 64, 64), t);
    match out.result.expect("done").outcome {
        RawOutcome::Success {
            segments,
            bytes,
            max_seg,
            ..
        } => {
            assert_eq!(max_seg, 64);
            assert_eq!(bytes, 6 * 64 + 40);
            assert_eq!(segments, (6 * 64 + 40) / 64);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn data_before_request_ack_is_still_counted() {
    // Pathological but possible: data arriving out of order relative to
    // the handshake conclusion. The machine keys on sequence numbers
    // relative to the server ISS, not arrival order.
    let mut conn = establish();
    conn.on_segment(&data(64, 64), Instant::ZERO); // second segment first
    conn.on_segment(&data(0, 64), Instant::ZERO);
    let out = finish_with_retransmit(&mut conn, 2);
    match out.result.expect("done").outcome {
        RawOutcome::Success {
            bytes, reordered, ..
        } => {
            assert_eq!(bytes, 128);
            assert!(reordered);
        }
        RawOutcome::FewData { bytes, .. } => assert_eq!(bytes, 128),
        other => panic!("{other:?}"),
    }
}

#[test]
fn absurd_sequence_numbers_are_ignored() {
    // A segment 2^25 bytes ahead of the ISS is corruption/attack, not
    // data; it must not poison the range set or the response buffer.
    let mut conn = establish();
    conn.on_segment(&data(0, 64), Instant::ZERO);
    let mut crazy = data(0, 64);
    crazy.seq = 5001u32.wrapping_add(1 << 26);
    let out = conn.on_segment(&crazy, Instant::ZERO);
    assert!(out.result.is_none());
    let out = finish_with_retransmit(&mut conn, 1);
    match out.result.expect("done").outcome {
        RawOutcome::Success { bytes, .. } => assert_eq!(bytes, 64),
        RawOutcome::FewData { bytes, .. } => assert_eq!(bytes, 64),
        other => panic!("{other:?}"),
    }
}

#[test]
fn fin_only_host_yields_nodata_with_fin_flag() {
    let mut conn = establish();
    let fin = tcp::Repr::bare(80, 40000, 5001, 1019, Flags::FIN | Flags::ACK, 65535);
    conn.on_segment(&fin, Instant::ZERO);
    // The FIN retransmits (nothing was ACKed), still no payload.
    let out = conn.on_timer(Instant::ZERO + Duration::from_secs(20));
    match out.result.expect("done").outcome {
        RawOutcome::FewData {
            lower_bound,
            bytes,
            fin_seen,
            ..
        } => {
            assert_eq!((lower_bound, bytes), (0, 0));
            assert!(fin_seen);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn second_result_is_never_produced() {
    let mut conn = establish();
    conn.on_segment(&data(0, 64), Instant::ZERO);
    let t = Instant::ZERO + Duration::from_secs(1);
    conn.on_segment(&data(0, 64), t);
    let out = conn.on_segment(&data(64, 64), t);
    assert!(out.result.is_some());
    assert!(conn.is_done());
    // Everything after the conclusion is inert.
    let late = conn.on_segment(&data(128, 64), t);
    assert!(late.result.is_none());
    assert!(late.tx.is_empty());
    let late = conn.on_timer(t + Duration::from_secs(10));
    assert!(late.result.is_none());
}
