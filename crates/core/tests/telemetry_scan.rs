//! Scan-level telemetry: the metrics snapshot, the session event log and
//! the progress monitor, exercised through full simulated scans.
//!
//! The load-bearing property is the determinism contract: scan-scoped
//! metrics and event-log summaries must be byte-identical between a
//! sharded run and a single-thread run of the same scan.

use iw_core::telemetry::OutcomeKind;
use iw_core::{MonitorSink, MonitorSpec, Protocol, ScanConfig, ScanRunner, Topology};
use iw_internet::{Population, PopulationConfig};
use iw_netsim::Duration;
use std::sync::Arc;

fn population(seed: u64, space: u32, responsive: u32) -> Arc<Population> {
    Arc::new(Population::new(PopulationConfig {
        seed,
        space_size: space,
        target_responsive: responsive,
        loss_scale: 0.0,
    }))
}

fn telemetry_config(space: u32, seed: u64) -> ScanConfig {
    let mut config = ScanConfig::study(Protocol::Http, space, seed);
    config.rate_pps = 2_000_000; // compress virtual time for tests
    config.telemetry.record_events = true;
    config.telemetry.record_rtt = true;
    config
}

#[test]
fn sharded_snapshot_is_byte_identical_to_single_thread() {
    let pop = population(0x1307, 1 << 15, 600);
    let config = telemetry_config(pop.space_size(), 0x1307);
    let single = ScanRunner::new(&pop).config(config.clone()).run();
    let sharded = ScanRunner::new(&pop)
        .config(config)
        .topology(Topology::threads(4))
        .run();

    // The canonical (scan-scoped) snapshot merges exactly: same counters,
    // same histogram buckets, same JSON bytes.
    assert_eq!(
        single.telemetry.metrics.to_canonical_json(),
        sharded.telemetry.metrics.to_canonical_json(),
        "scan-scoped metrics must not depend on the shard count"
    );
    // The event-log summary (counts per variant and per verdict) is
    // likewise shard-independent.
    assert_eq!(
        single.telemetry.events.summary_json(),
        sharded.telemetry.events.summary_json()
    );
    // Sanity: the scan actually produced telemetry to compare.
    let m = &single.telemetry.metrics;
    assert!(m.counter("scan.targets_sent") > 10_000);
    assert!(m.counter("scan.sessions_started") > 100);
    assert!(m.histogram("scan.rtt_nanos").unwrap().count > 100);
    assert!(m.histogram("scan.session_lifetime_nanos").unwrap().count > 100);
}

#[test]
fn summarize_matches_event_log_terminal_counts() {
    let pop = population(0xbeef, 1 << 14, 300);
    let config = telemetry_config(pop.space_size(), 0xbeef);
    let out = ScanRunner::new(&pop).config(config).run();

    let terminal = out.telemetry.events.terminal_counts();
    let count = |k: OutcomeKind| terminal.get(&k).copied().unwrap_or(0);
    // summarize() buckets Unreachable (and verdict-less) sessions under
    // "error"; the event log keeps them distinct.
    assert_eq!(out.summary.success, count(OutcomeKind::Success));
    assert_eq!(out.summary.few_data, count(OutcomeKind::FewData));
    assert_eq!(
        out.summary.error,
        count(OutcomeKind::Error) + count(OutcomeKind::Unreachable)
    );
    // Every reachable host finished exactly one session.
    assert_eq!(
        out.summary.reachable,
        terminal.values().sum::<u64>(),
        "one SessionFinished per host record"
    );
    // The per-verdict session counters agree with the event log.
    let m = &out.telemetry.metrics;
    assert_eq!(
        m.counter("scan.sessions.success"),
        count(OutcomeKind::Success)
    );
    assert_eq!(
        m.counter("scan.sessions.few_data"),
        count(OutcomeKind::FewData)
    );
    assert_eq!(m.counter("scan.sessions.error"), count(OutcomeKind::Error));
    assert_eq!(
        m.counter("scan.sessions.unreachable"),
        count(OutcomeKind::Unreachable)
    );
    // And the flat counters agree with the summary.
    assert_eq!(m.counter("scan.targets_sent"), out.summary.targets);
    assert_eq!(m.counter("scan.refused"), out.summary.refused);
    assert_eq!(m.counter("scan.sessions_started"), out.summary.reachable);
}

#[test]
fn event_log_records_exact_session_lifecycles() {
    let pop = population(0xcafe, 1 << 13, 150);
    let config = telemetry_config(pop.space_size(), 0xcafe);
    let out = ScanRunner::new(&pop).config(config).run();

    // Pick a host that concluded successfully and replay its lifecycle.
    let success_ip = out
        .results
        .iter()
        .find(|r| r.iw_estimate().is_some())
        .expect("some host succeeded")
        .ip;
    let events = out.telemetry.events.for_ip(success_ip);
    let names: Vec<&str> = events.iter().map(|r| r.event.name()).collect();
    assert_eq!(names[0], "syn_sent", "{names:?}");
    assert_eq!(names[1], "syn_ack_validated", "{names:?}");
    assert_eq!(names[2], "session_started", "{names:?}");
    assert_eq!(names[3], "probe_started", "{names:?}");
    assert_eq!(*names.last().unwrap(), "session_finished", "{names:?}");
    // The study config runs six probes: six conclusions, and the probe
    // chain is recorded in order.
    let concluded = names.iter().filter(|n| **n == "probe_concluded").count();
    assert_eq!(concluded, 6, "{names:?}");
    let started = names.iter().filter(|n| **n == "probe_started").count();
    assert_eq!(started, 6, "{names:?}");
    // Timestamps never go backwards within a host's lifecycle.
    assert!(events.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
    // A successful inference observed at least one retransmission per
    // concluded probe (that is what ends the collection phase).
    let retransmits = names
        .iter()
        .filter(|n| **n == "retransmit_detected")
        .count();
    assert!(retransmits >= 1, "{names:?}");
}

#[test]
fn monitor_emits_periodic_status_lines() {
    let pop = population(0xfeed, 1 << 14, 300);
    let mut config = telemetry_config(pop.space_size(), 0xfeed);
    config.telemetry.monitor = Some(MonitorSpec {
        interval: Duration::from_millis(5),
        sink: MonitorSink::Capture,
    });
    let out = ScanRunner::new(&pop).config(config).run();

    let lines = &out.telemetry.status_lines;
    assert!(lines.len() >= 2, "expected several reports: {lines:?}");
    // Lines carry the ZMap-style send/hits/live segments.
    for line in lines {
        assert!(line.contains("send:"), "{line}");
        assert!(line.contains("hits:"), "{line}");
        assert!(line.contains("ok/few/err/unr:"), "{line}");
    }
    // Progress is monotone: sent counts never decrease across reports.
    let sent_counts: Vec<u64> = lines
        .iter()
        .map(|l| {
            let after = l.split("send: ").nth(1).unwrap();
            after.split_whitespace().next().unwrap().parse().unwrap()
        })
        .collect();
    assert!(
        sent_counts.windows(2).all(|w| w[0] <= w[1]),
        "{sent_counts:?}"
    );
    // The final report has seen every target out the door.
    assert_eq!(*sent_counts.last().unwrap(), out.summary.targets);
}

#[test]
fn config_record_trace_captures_the_scan() {
    let pop = population(0xace, 1 << 13, 80);
    let mut config = telemetry_config(pop.space_size(), 0xace);
    config.record_trace = true;
    let out = ScanRunner::new(&pop).config(config.clone()).run();
    assert!(!out.trace.is_empty());
    let rendered = out.trace.render_tcp();
    assert!(rendered.contains("SYN"), "trace renders the exchange");
    // Off by default: the same scan without the flag records nothing.
    config.record_trace = false;
    let quiet = ScanRunner::new(&pop).config(config).run();
    assert!(quiet.trace.is_empty());
}
