//! The IW-inference connection state machine (§3.1, Figure 1).
//!
//! One instance drives one scanner-side TCP connection:
//!
//! 1. **SYN** with a tiny MSS (default 64 B) and a large window — the IW,
//!    not flow control, must limit the first flight.
//! 2. On SYN-ACK: **ACK + request** in one packet (the probe payload —
//!    an HTTP GET or a TLS ClientHello).
//! 3. **Never acknowledge data.** Track received sequence ranges; when a
//!    segment arrives whose bytes were all seen before, the server's RTO
//!    has fired and retransmitted its first unacknowledged segment: the
//!    initial window is over. Estimate `IW = ⌊distinct bytes / max
//!    observed segment⌋` (the observed maximum matters because stacks
//!    like Windows clamp our 64 B up to 536 B, §3.1).
//! 4. **Verify exhaustion**: acknowledge everything with a window of
//!    2·MSS. A host that was IW-limited releases new segments; a host
//!    that was out of data stays silent or FINs (§3.1/3.2).
//!
//! Sequence holes mark suspected loss; a FIN anywhere marks "out of
//! data" (with `Connection: close`, §3.2's signal). SACK is deliberately
//! never offered so server-side tail-loss probes stay disabled.

use crate::results::ErrorKind;
use iw_netsim::{Duration, Instant};
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp::{self, Flags, TcpOption};

/// Static parameters of one inference connection.
#[derive(Debug, Clone)]
pub struct ConnConfig {
    /// Target address.
    pub target: Ipv4Addr,
    /// Scanner source address.
    pub source: Ipv4Addr,
    /// Scanner source port.
    pub src_port: u16,
    /// Target port (80/443).
    pub dst_port: u16,
    /// MSS to advertise (64 or 128 in the study).
    pub mss: u16,
    /// Our ISN (the stateless validation cookie).
    pub isn: u32,
    /// Request payload to send once established. Empty = port-scan mode:
    /// report `Open` on SYN-ACK and RST immediately.
    pub request: Vec<u8>,
    /// Give up on the SYN after this long.
    pub syn_timeout: Duration,
    /// Give up waiting for the retransmission signal after this long.
    pub collect_timeout: Duration,
    /// How long to wait for post-ACK data in the verification phase.
    pub verify_timeout: Duration,
    /// Whether to run the exhaustion check at all (ablation knob): when
    /// off, any retransmission immediately becomes a "success" — which
    /// silently misclassifies hosts that simply ran out of data.
    pub verify_exhaustion: bool,
}

impl ConnConfig {
    /// Study defaults (timeouts sized to cover one RTO backoff at the
    /// slowest simulated stacks: 3 s initial RTO doubles once within 8s).
    pub fn new(
        target: Ipv4Addr,
        source: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        mss: u16,
        isn: u32,
        request: Vec<u8>,
    ) -> ConnConfig {
        ConnConfig {
            target,
            source,
            src_port,
            dst_port,
            mss,
            isn,
            request,
            syn_timeout: Duration::from_secs(4),
            collect_timeout: Duration::from_secs(10),
            verify_timeout: Duration::from_secs(3),
            verify_exhaustion: true,
        }
    }
}

/// Raw result of one connection (before probe-level interpretation).
#[derive(Debug, Clone, PartialEq)]
pub enum RawOutcome {
    /// IW filled and exhaustion verified.
    Success {
        /// ⌊bytes / max_seg⌋.
        segments: u32,
        /// Distinct payload bytes at retransmission time.
        bytes: u32,
        /// Largest observed segment.
        max_seg: u32,
        /// Unfilled sequence hole at decision time.
        loss_suspected: bool,
        /// Out-of-order arrivals seen.
        reordered: bool,
    },
    /// Out of data before the IW (or unverifiable).
    FewData {
        /// max(1, ⌊bytes/max_seg⌋) when bytes > 0, else 0.
        lower_bound: u32,
        /// Distinct payload bytes.
        bytes: u32,
        /// Largest observed segment.
        max_seg: u32,
        /// FIN observed.
        fin_seen: bool,
    },
    /// Port open (port-scan mode only).
    Open,
    /// Post-handshake failure.
    Error(ErrorKind),
    /// No handshake.
    Unreachable,
}

/// A finished connection: outcome + the reassembled in-order response
/// prefix (the probe layer parses HTTP heads / TLS alerts out of it).
#[derive(Debug, Clone)]
pub struct ConnResult {
    /// The raw outcome.
    pub outcome: RawOutcome,
    /// In-order response bytes from offset 0 (bounded).
    pub response: Vec<u8>,
}

/// Telemetry note: a state transition worth reporting upward. The session
/// layer stamps these with host/time/probe context and forwards them to
/// the scan event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnNote {
    /// The first retransmission was observed: the IW is on the table.
    RetransmitDetected {
        /// Distinct payload bytes in flight at the moment of detection.
        bytes_in_flight: u32,
    },
    /// The 2×MSS verification ACK went out.
    VerifyAckSent,
}

/// Effects of feeding one event into the machine.
#[derive(Debug, Default)]
pub struct ConnOutput {
    /// Segments to transmit.
    pub tx: Vec<tcp::Repr>,
    /// Absolute deadline to be woken at (stale wakes are no-ops).
    pub deadline: Option<Instant>,
    /// Present exactly once, when the connection concludes.
    pub result: Option<ConnResult>,
    /// Lifecycle transitions for the event log.
    pub notes: Vec<ConnNote>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SynSent,
    Collecting,
    Verifying,
    Done,
}

/// Cap on buffered in-order response bytes (enough for any HTTP head or
/// TLS alert we need to inspect).
const RESPONSE_CAP: usize = 8192;

/// The inference machine for one connection.
#[derive(Debug)]
pub struct InferenceConn {
    cfg: ConnConfig,
    phase: Phase,
    /// Server's ISS (+1 = first payload byte), set on SYN-ACK.
    data_base: u32,
    /// Received payload ranges, as [start, end) offsets, sorted, merged.
    ranges: Vec<(u32, u32)>,
    /// Reassembled in-order prefix.
    response: Vec<u8>,
    /// Stashed out-of-order fragments (offset → bytes), bounded.
    stash: Vec<(u32, Vec<u8>)>,
    max_seg: u32,
    fin_seen: bool,
    reordered: bool,
    /// Bytes/segments frozen at retransmission-detection time.
    frozen_bytes: u32,
    frozen_loss: bool,
    deadline: Option<Instant>,
}

impl InferenceConn {
    /// Create the machine and the SYN to transmit.
    pub fn new(cfg: ConnConfig, now: Instant) -> (InferenceConn, ConnOutput) {
        let syn = tcp::Repr {
            src_port: cfg.src_port,
            dst_port: cfg.dst_port,
            seq: cfg.isn,
            ack: 0,
            flags: Flags::SYN,
            window: 65535,
            // A tiny MSS and *no* SACK-permitted (tail-loss probes off).
            options: vec![TcpOption::Mss(cfg.mss)],
            payload: Vec::new(),
        };
        let deadline = now + cfg.syn_timeout;
        let conn = InferenceConn {
            cfg,
            phase: Phase::SynSent,
            data_base: 0,
            ranges: Vec::new(),
            response: Vec::new(),
            stash: Vec::new(),
            max_seg: 0,
            fin_seen: false,
            reordered: false,
            frozen_bytes: 0,
            frozen_loss: false,
            deadline: Some(deadline),
        };
        (
            conn,
            ConnOutput {
                tx: vec![syn],
                deadline: Some(deadline),
                ..ConnOutput::default()
            },
        )
    }

    /// Whether the connection has concluded.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    fn total_bytes(&self) -> u32 {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    fn has_hole(&self) -> bool {
        self.ranges.len() > 1 || self.ranges.first().is_some_and(|(s, _)| *s != 0)
    }

    fn highest_end(&self) -> u32 {
        self.ranges.last().map_or(0, |(_, e)| *e)
    }

    /// Merge [start, end) into the range set; returns true if every byte
    /// was already present (i.e. this segment is a retransmission).
    fn merge_range(&mut self, start: u32, end: u32) -> bool {
        debug_assert!(start < end);
        if self.ranges.iter().any(|(s, e)| *s <= start && end <= *e) {
            return true;
        }
        // Fast paths for segments at or past the frontier — the
        // overwhelmingly common in-order arrivals. Neither opens the
        // reordering case (that needs `end` at or below the frontier),
        // and both leave the set sorted and coalesced, so the general
        // sort-and-merge below is reserved for hole-filling stragglers.
        match self.ranges.last().copied() {
            None => {
                self.ranges.push((start, end));
                return false;
            }
            Some((ls, le)) => {
                if start > le {
                    // Creates a hole past the frontier.
                    self.ranges.push((start, end));
                    return false;
                }
                if start >= ls && end > le {
                    // Extends the final range in place.
                    if let Some(last) = self.ranges.last_mut() {
                        last.1 = end;
                    }
                    return false;
                }
            }
        }
        // Out-of-order if it doesn't extend the current frontier.
        if start > self.highest_end() {
            // creates a hole
        } else if start < self.highest_end() && end <= self.highest_end() {
            // fills (part of) an earlier hole → reordering happened
            self.reordered = true;
        }
        self.ranges.push((start, end));
        self.ranges.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.ranges.len());
        for (s, e) in self.ranges.drain(..) {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        self.ranges = merged;
        false
    }

    fn buffer_payload(&mut self, offset: u32, data: &[u8]) {
        let off = offset as usize;
        if off == self.response.len() {
            let room = RESPONSE_CAP.saturating_sub(self.response.len());
            self.response
                .extend_from_slice(&data[..data.len().min(room)]);
            // Drain any stashed fragments that now connect.
            loop {
                let next = self
                    .stash
                    .iter()
                    .position(|(o, _)| *o as usize <= self.response.len());
                let Some(idx) = next else { break };
                let (o, frag) = self.stash.swap_remove(idx);
                let skip = self.response.len() - o as usize;
                if skip < frag.len() {
                    let room = RESPONSE_CAP.saturating_sub(self.response.len());
                    let slice = &frag[skip..];
                    self.response
                        .extend_from_slice(&slice[..slice.len().min(room)]);
                }
            }
        } else if off > self.response.len() && off < RESPONSE_CAP && self.stash.len() < 64 {
            self.stash.push((offset, data.to_vec()));
        }
    }

    fn finish(&mut self, outcome: RawOutcome) -> ConnOutput {
        self.phase = Phase::Done;
        self.deadline = None;
        let mut out = ConnOutput::default();
        // End the exchange abortively, like the scanner does (Fig. 1) —
        // unless there is no connection to reset (no handshake completed)
        // or the path itself is dead (ICMP unreachable).
        if !matches!(
            outcome,
            RawOutcome::Unreachable
                | RawOutcome::Error(ErrorKind::HandshakeTimeout)
                | RawOutcome::Error(ErrorKind::IcmpUnreachable)
        ) {
            out.tx.push(tcp::Repr::bare(
                self.cfg.src_port,
                self.cfg.dst_port,
                self.cfg.isn.wrapping_add(1 + self.cfg.request.len() as u32),
                0,
                Flags::RST,
                0,
            ));
        }
        out.result = Some(ConnResult {
            outcome,
            response: std::mem::take(&mut self.response),
        });
        out
    }

    fn few_data_outcome(&self) -> RawOutcome {
        let bytes = self.total_bytes();
        let lower_bound = if bytes == 0 || self.max_seg == 0 {
            0
        } else {
            (bytes / self.max_seg).max(1)
        };
        RawOutcome::FewData {
            lower_bound,
            bytes,
            max_seg: self.max_seg,
            fin_seen: self.fin_seen,
        }
    }

    /// Feed an inbound segment.
    pub fn on_segment(&mut self, seg: &tcp::Repr, now: Instant) -> ConnOutput {
        match self.phase {
            Phase::Done => ConnOutput::default(),
            Phase::SynSent => self.on_segment_synsent(seg, now),
            Phase::Collecting => self.on_segment_collecting(seg, now),
            Phase::Verifying => self.on_segment_verifying(seg),
        }
    }

    fn on_segment_synsent(&mut self, seg: &tcp::Repr, now: Instant) -> ConnOutput {
        if seg.flags.contains(Flags::RST) {
            return self.finish(RawOutcome::Unreachable);
        }
        if !seg.flags.contains(Flags::SYN) || !seg.flags.contains(Flags::ACK) {
            return ConnOutput::default();
        }
        if seg.ack != self.cfg.isn.wrapping_add(1) {
            // Fails the stateless cookie check — not ours.
            return ConnOutput::default();
        }
        self.data_base = seg.seq.wrapping_add(1);

        if self.cfg.request.is_empty() {
            // Port-scan mode: report and abort.
            return self.finish(RawOutcome::Open);
        }

        self.phase = Phase::Collecting;
        let deadline = now + self.cfg.collect_timeout;
        self.deadline = Some(deadline);
        let request = tcp::Repr {
            src_port: self.cfg.src_port,
            dst_port: self.cfg.dst_port,
            seq: self.cfg.isn.wrapping_add(1),
            ack: self.data_base,
            flags: Flags::ACK | Flags::PSH,
            window: 65535,
            options: Vec::new(),
            payload: self.cfg.request.clone(),
        };
        ConnOutput {
            tx: vec![request],
            deadline: Some(deadline),
            ..ConnOutput::default()
        }
    }

    fn on_segment_collecting(&mut self, seg: &tcp::Repr, now: Instant) -> ConnOutput {
        if seg.flags.contains(Flags::RST) {
            return self.finish(RawOutcome::Error(ErrorKind::MidConnectionReset));
        }
        if seg.flags.contains(Flags::FIN) {
            self.fin_seen = true;
        }
        if seg.payload.is_empty() {
            // Pure ACK / bare FIN: no sequence accounting needed — but a
            // bare FIN with everything received means the host is done.
            return ConnOutput {
                deadline: self.deadline,
                ..ConnOutput::default()
            };
        }
        let offset = seg.seq.wrapping_sub(self.data_base);
        if offset > (1 << 24) {
            // Absurd offset (pre-handshake seq or corruption): ignore.
            return ConnOutput {
                deadline: self.deadline,
                ..ConnOutput::default()
            };
        }
        let end = offset + seg.payload.len() as u32;
        self.max_seg = self.max_seg.max(seg.payload.len() as u32);
        let is_retransmission = self.merge_range(offset, end);
        if !is_retransmission {
            self.buffer_payload(offset, &seg.payload);
        }

        if !is_retransmission {
            return ConnOutput {
                deadline: self.deadline,
                ..ConnOutput::default()
            };
        }

        // Retransmission: the initial window is on the table.
        let retransmit_note = ConnNote::RetransmitDetected {
            bytes_in_flight: self.total_bytes(),
        };
        if self.fin_seen {
            // The host closed inside its initial flight: out of data.
            let mut out = self.finish(self.few_data_outcome());
            out.notes.push(retransmit_note);
            return out;
        }
        if !self.cfg.verify_exhaustion {
            // Ablation mode: trust the count without the 2·MSS-window
            // ACK check (this is what misclassifies out-of-data hosts).
            let max_seg = self.max_seg.max(1);
            let outcome = RawOutcome::Success {
                segments: (self.total_bytes() / max_seg).max(1),
                bytes: self.total_bytes(),
                max_seg: self.max_seg,
                loss_suspected: self.has_hole(),
                reordered: self.reordered,
            };
            let mut out = self.finish(outcome);
            out.notes.push(retransmit_note);
            return out;
        }
        // Freeze the estimate and verify exhaustion: ACK everything with
        // a two-segment window (§3.1).
        self.frozen_bytes = self.total_bytes();
        self.frozen_loss = self.has_hole();
        self.phase = Phase::Verifying;
        let deadline = now + self.cfg.verify_timeout;
        self.deadline = Some(deadline);
        let ack = tcp::Repr::bare(
            self.cfg.src_port,
            self.cfg.dst_port,
            self.cfg.isn.wrapping_add(1 + self.cfg.request.len() as u32),
            self.data_base.wrapping_add(self.highest_end()),
            Flags::ACK,
            (2 * self.max_seg).min(65535) as u16,
        );
        ConnOutput {
            tx: vec![ack],
            deadline: Some(deadline),
            notes: vec![retransmit_note, ConnNote::VerifyAckSent],
            ..ConnOutput::default()
        }
    }

    fn on_segment_verifying(&mut self, seg: &tcp::Repr) -> ConnOutput {
        if seg.flags.contains(Flags::RST) {
            // We already have the data; treat like silence.
            return self.finish(self.few_data_outcome());
        }
        // Check for new data BEFORE interpreting a FIN: a host draining
        // its last bytes FINs on the same segment, and new data proves
        // the IW was genuinely filled.
        if !seg.payload.is_empty() {
            let offset = seg.seq.wrapping_sub(self.data_base);
            let end = offset + seg.payload.len() as u32;
            if end > self.highest_end() {
                // New data released by our ACK: the IW was truly filled.
                let max_seg = self.max_seg.max(1);
                let outcome = RawOutcome::Success {
                    segments: (self.frozen_bytes / max_seg).max(1),
                    bytes: self.frozen_bytes,
                    max_seg: self.max_seg,
                    loss_suspected: self.frozen_loss,
                    reordered: self.reordered,
                };
                return self.finish(outcome);
            }
        }
        if seg.flags.contains(Flags::FIN) {
            self.fin_seen = true;
            return self.finish(self.few_data_outcome());
        }
        ConnOutput {
            deadline: self.deadline,
            ..ConnOutput::default()
        }
    }

    /// Timer wake-up; stale wakes are ignored.
    pub fn on_timer(&mut self, now: Instant) -> ConnOutput {
        let Some(deadline) = self.deadline else {
            return ConnOutput::default();
        };
        if now < deadline {
            return ConnOutput {
                deadline: Some(deadline),
                ..ConnOutput::default()
            };
        }
        match self.phase {
            // A timed-out SYN here is an in-session handshake failure: the
            // stateless scanner only builds this machine after a validated
            // SYN-ACK, so the host completed a handshake moments ago and
            // has now stopped. (A true silent target never reaches a
            // session; RST-to-SYN still maps to Unreachable.)
            Phase::SynSent => self.finish(RawOutcome::Error(ErrorKind::HandshakeTimeout)),
            Phase::Collecting => {
                // No retransmission signal within the window. Whatever we
                // got is a lower bound (zero bytes = the NoData row).
                self.finish(self.few_data_outcome())
            }
            Phase::Verifying => self.finish(self.few_data_outcome()),
            Phase::Done => ConnOutput::default(),
        }
    }

    /// Abort the connection with an error outcome (resilience layer:
    /// watchdog deadline, concurrency-cap eviction, ICMP unreachable).
    /// Returns the terminal [`ConnOutput`]; a no-op when already done.
    pub fn fail(&mut self, kind: ErrorKind) -> ConnOutput {
        if self.phase == Phase::Done {
            return ConnOutput::default();
        }
        if self.phase == Phase::SynSent {
            // No connection exists yet: conclude silently, no RST.
            self.phase = Phase::Done;
            self.deadline = None;
            return ConnOutput {
                result: Some(ConnResult {
                    outcome: RawOutcome::Error(kind),
                    response: std::mem::take(&mut self.response),
                }),
                ..ConnOutput::default()
            };
        }
        self.finish(RawOutcome::Error(kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

    fn cfg() -> ConnConfig {
        ConnConfig::new(
            DST,
            SRC,
            40000,
            80,
            64,
            7000,
            b"GET / HTTP/1.1\r\n\r\n".to_vec(),
        )
    }

    fn conn() -> (InferenceConn, ConnOutput) {
        InferenceConn::new(cfg(), Instant::ZERO)
    }

    fn syn_ack() -> tcp::Repr {
        tcp::Repr {
            src_port: 80,
            dst_port: 40000,
            seq: 50_000,
            ack: 7001,
            flags: Flags::SYN | Flags::ACK,
            window: 65535,
            options: vec![TcpOption::Mss(64)],
            payload: vec![],
        }
    }

    fn data(offset: u32, len: usize, fin: bool) -> tcp::Repr {
        let mut flags = Flags::ACK;
        if fin {
            flags |= Flags::FIN;
        }
        tcp::Repr {
            src_port: 80,
            dst_port: 40000,
            seq: 50_001 + offset,
            ack: 7001 + 18,
            flags,
            window: 65535,
            options: vec![],
            payload: vec![0xaa; len],
        }
    }

    fn establish() -> (InferenceConn, Instant) {
        let (mut c, out) = conn();
        assert_eq!(out.tx.len(), 1);
        assert!(out.tx[0].flags.contains(Flags::SYN));
        assert_eq!(out.tx[0].mss(), Some(64));
        assert!(!out.tx[0].sack_permitted(), "SACK must stay off");
        let now = Instant::ZERO + Duration::from_millis(20);
        let out = c.on_segment(&syn_ack(), now);
        assert_eq!(out.tx.len(), 1, "ACK+request in one packet");
        assert!(!out.tx[0].payload.is_empty());
        assert_eq!(out.tx[0].ack, 50_001);
        (c, now)
    }

    #[test]
    fn clean_iw10_success() {
        let (mut c, now) = establish();
        // Ten in-order segments.
        for i in 0..10u32 {
            let out = c.on_segment(&data(i * 64, 64, false), now);
            assert!(out.result.is_none());
            assert!(out.tx.is_empty(), "never ACK during collection");
        }
        // Server RTO: first segment again.
        let out = c.on_segment(&data(0, 64, false), now + Duration::from_secs(1));
        assert!(out.result.is_none());
        assert_eq!(out.tx.len(), 1, "verification ACK");
        let ack = &out.tx[0];
        assert_eq!(ack.ack, 50_001 + 640);
        assert_eq!(ack.window, 128, "2×MSS window");
        // New data released → success.
        let out = c.on_segment(&data(640, 64, false), now + Duration::from_secs(1));
        let result = out.result.expect("done");
        match result.outcome {
            RawOutcome::Success {
                segments,
                bytes,
                max_seg,
                loss_suspected,
                reordered,
            } => {
                assert_eq!(segments, 10);
                assert_eq!(bytes, 640);
                assert_eq!(max_seg, 64);
                assert!(!loss_suspected);
                assert!(!reordered);
            }
            other => panic!("{other:?}"),
        }
        // Connection torn down with RST.
        assert!(out.tx.iter().any(|s| s.flags.contains(Flags::RST)));
    }

    #[test]
    fn few_data_with_fin_in_flight() {
        let (mut c, now) = establish();
        for i in 0..3u32 {
            c.on_segment(&data(i * 64, 64, false), now);
        }
        c.on_segment(&data(192, 30, true), now); // 222 bytes total + FIN
        let out = c.on_segment(&data(0, 64, false), now + Duration::from_secs(1));
        match out.result.expect("done").outcome {
            RawOutcome::FewData {
                lower_bound,
                bytes,
                fin_seen,
                ..
            } => {
                assert_eq!(bytes, 222);
                assert_eq!(lower_bound, 3);
                assert!(fin_seen);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn verification_silence_is_few_data() {
        let (mut c, now) = establish();
        for i in 0..5u32 {
            c.on_segment(&data(i * 64, 64, false), now);
        }
        let out = c.on_segment(&data(0, 64, false), now + Duration::from_secs(1));
        let deadline = out.deadline.unwrap();
        let out = c.on_timer(deadline);
        match out.result.expect("done").outcome {
            RawOutcome::FewData {
                lower_bound, bytes, ..
            } => {
                assert_eq!(bytes, 320);
                assert_eq!(lower_bound, 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mute_host_times_out_as_nodata() {
        let (mut c, now) = establish();
        let deadline = now + cfg().collect_timeout;
        let out = c.on_timer(deadline);
        match out.result.expect("done").outcome {
            RawOutcome::FewData {
                lower_bound,
                bytes,
                fin_seen,
                ..
            } => {
                assert_eq!((lower_bound, bytes), (0, 0));
                assert!(!fin_seen);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn windows_536_divisor() {
        let (mut c, now) = establish();
        // Server ignored our 64 and sends 536-byte segments (IW4).
        for i in 0..4u32 {
            c.on_segment(&data(i * 536, 536, false), now);
        }
        c.on_segment(&data(0, 536, false), now + Duration::from_secs(3));
        let out = c.on_segment(&data(4 * 536, 536, false), now + Duration::from_secs(3));
        match out.result.expect("done").outcome {
            RawOutcome::Success {
                segments, max_seg, ..
            } => {
                assert_eq!(max_seg, 536);
                assert_eq!(segments, 4, "observed-MSS divisor (§3.1)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reordering_is_detected_and_tolerated() {
        let (mut c, now) = establish();
        // Segments 0,2,1,3 — reordered but complete.
        for i in [0u32, 2, 1, 3] {
            c.on_segment(&data(i * 64, 64, false), now);
        }
        c.on_segment(&data(0, 64, false), now + Duration::from_secs(1));
        let out = c.on_segment(&data(256, 64, false), now + Duration::from_secs(1));
        match out.result.expect("done").outcome {
            RawOutcome::Success {
                segments,
                reordered,
                loss_suspected,
                ..
            } => {
                assert_eq!(segments, 4);
                assert!(reordered);
                assert!(!loss_suspected);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mid_flight_loss_flagged() {
        let (mut c, now) = establish();
        // Segment 1 lost: 0,2,3 received.
        for i in [0u32, 2, 3] {
            c.on_segment(&data(i * 64, 64, false), now);
        }
        c.on_segment(&data(0, 64, false), now + Duration::from_secs(1));
        let out = c.on_segment(&data(256, 64, false), now + Duration::from_secs(1));
        match out.result.expect("done").outcome {
            RawOutcome::Success {
                segments,
                bytes,
                loss_suspected,
                ..
            } => {
                assert_eq!(bytes, 192, "distinct bytes only");
                assert_eq!(segments, 3, "underestimate, flagged");
                assert!(loss_suspected);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tail_loss_underestimates_silently() {
        // The §3.5 phenomenon: the last segment of the flight is lost —
        // nothing marks the estimate as wrong (multi-probe voting is the
        // only defence).
        let (mut c, now) = establish();
        for i in 0..9u32 {
            c.on_segment(&data(i * 64, 64, false), now);
        }
        // Segment 9 lost; retransmission of 0 arrives.
        c.on_segment(&data(0, 64, false), now + Duration::from_secs(1));
        let out = c.on_segment(&data(640, 64, false), now + Duration::from_secs(1));
        match out.result.expect("done").outcome {
            RawOutcome::Success {
                segments,
                loss_suspected,
                ..
            } => {
                assert_eq!(segments, 9, "one too low");
                assert!(!loss_suspected, "tail loss is undetectable");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn telemetry_notes_mark_retransmit_and_verify() {
        let (mut c, now) = establish();
        for i in 0..5u32 {
            let out = c.on_segment(&data(i * 64, 64, false), now);
            assert!(out.notes.is_empty(), "no notes during collection");
        }
        let out = c.on_segment(&data(0, 64, false), now + Duration::from_secs(1));
        assert_eq!(
            out.notes,
            vec![
                ConnNote::RetransmitDetected {
                    bytes_in_flight: 320
                },
                ConnNote::VerifyAckSent
            ]
        );
    }

    #[test]
    fn rst_to_syn_is_unreachable() {
        let (mut c, _) = conn();
        let rst = tcp::Repr::bare(80, 40000, 0, 7001, Flags::RST | Flags::ACK, 0);
        let out = c.on_segment(&rst, Instant::ZERO + Duration::from_millis(5));
        assert_eq!(out.result.unwrap().outcome, RawOutcome::Unreachable);
        assert!(out.tx.is_empty(), "never answer a RST");
    }

    #[test]
    fn syn_timeout_is_handshake_timeout() {
        let (mut c, out) = conn();
        let out = c.on_timer(out.deadline.unwrap());
        assert_eq!(
            out.result.unwrap().outcome,
            RawOutcome::Error(ErrorKind::HandshakeTimeout)
        );
        assert!(out.tx.is_empty(), "no RST for a connection that never was");
    }

    #[test]
    fn fail_aborts_collecting_with_rst() {
        let (mut c, now) = establish();
        c.on_segment(&data(0, 64, false), now);
        let out = c.fail(ErrorKind::CollectTimeout);
        assert_eq!(
            out.result.unwrap().outcome,
            RawOutcome::Error(ErrorKind::CollectTimeout)
        );
        assert!(out.tx.iter().any(|s| s.flags.contains(Flags::RST)));
        assert!(c.is_done());
        // Failing again is a no-op.
        assert!(c.fail(ErrorKind::CollectTimeout).result.is_none());
    }

    #[test]
    fn fail_in_synsent_is_silent() {
        let (mut c, _) = conn();
        let out = c.fail(ErrorKind::IcmpUnreachable);
        assert_eq!(
            out.result.unwrap().outcome,
            RawOutcome::Error(ErrorKind::IcmpUnreachable)
        );
        assert!(out.tx.is_empty(), "nothing to reset before the handshake");
    }

    #[test]
    fn mid_conn_rst_is_error() {
        let (mut c, now) = establish();
        c.on_segment(&data(0, 64, false), now);
        let rst = tcp::Repr::bare(80, 40000, 50_066, 0, Flags::RST, 0);
        let out = c.on_segment(&rst, now);
        assert_eq!(
            out.result.unwrap().outcome,
            RawOutcome::Error(ErrorKind::MidConnectionReset)
        );
    }

    #[test]
    fn wrong_cookie_ignored() {
        let (mut c, _) = conn();
        let mut bad = syn_ack();
        bad.ack = 9999;
        let out = c.on_segment(&bad, Instant::ZERO);
        assert!(out.result.is_none());
        assert!(out.tx.is_empty());
        assert!(!c.is_done());
    }

    #[test]
    fn port_scan_mode() {
        let mut c = cfg();
        c.request.clear();
        let (mut conn, _) = InferenceConn::new(c, Instant::ZERO);
        let out = conn.on_segment(&syn_ack(), Instant::ZERO);
        assert_eq!(out.result.unwrap().outcome, RawOutcome::Open);
        assert!(out.tx.iter().any(|s| s.flags.contains(Flags::RST)));
    }

    #[test]
    fn response_reassembly_handles_reordering() {
        let (mut c, now) = establish();
        let mk = |offset: u32, body: &[u8]| tcp::Repr {
            src_port: 80,
            dst_port: 40000,
            seq: 50_001 + offset,
            ack: 7019,
            flags: Flags::ACK,
            window: 65535,
            options: vec![],
            payload: body.to_vec(),
        };
        c.on_segment(&mk(5, b"WORLD"), now);
        c.on_segment(&mk(0, b"HELLO"), now);
        // Force conclusion via timeout.
        let out = c.on_timer(now + cfg().collect_timeout);
        let result = out.result.unwrap();
        assert_eq!(result.response, b"HELLOWORLD");
    }

    #[test]
    fn alert_sized_response_is_lower_bound_one() {
        let (mut c, now) = establish();
        c.on_segment(&data(0, 7, true), now); // 7-byte TLS alert + FIN
        let out = c.on_segment(&data(0, 7, true), now + Duration::from_secs(1));
        match out.result.expect("done").outcome {
            RawOutcome::FewData {
                lower_bound,
                bytes,
                fin_seen,
                ..
            } => {
                assert_eq!((lower_bound, bytes), (1, 7));
                assert!(fin_seen);
            }
            other => panic!("{other:?}"),
        }
    }
}
