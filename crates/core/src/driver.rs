//! Glue: run a scanner against a synthetic population, on the calling
//! thread or split across real sender/receiver threads
//! ([`Topology::Threads`]): ZMap-style cycle-striding shards, each a
//! TX feeder generating targets over a bounded ring into an
//! independently deterministic scan world, merged by shard index
//! afterwards — so results stay byte-identical at every thread count.

use crate::checkpoint::{CampaignCheckpoint, ConfigDigest, RunDisposition, ShardCheckpoint};
use crate::results::{HostResult, MssVerdict, MtuResult, ProbeOutcome, Protocol, ScanSummary};
use crate::ring::{self, FeedReceiver};
use crate::scanner::{ScanConfig, Scanner};
use crate::txrx;
use iw_internet::population::{Population, PopulationFactory};
use iw_netsim::sim::SimStats;
use iw_netsim::{Duration, Sim, SimConfig, Trace};
use iw_telemetry::{EventLog, FlightRecorder, IcmpHarvest, Snapshot, TelemetrySink, Tracer};
use std::sync::Arc;

/// Everything a scan produces.
#[derive(Debug, Clone)]
pub struct ScanOutput {
    /// Per-host measurement records (sorted by address).
    pub results: Vec<HostResult>,
    /// Port-scan mode: open ports.
    pub open_ports: Vec<u32>,
    /// ICMP mode: discovered path MTUs.
    pub mtu_results: Vec<MtuResult>,
    /// Table 1 aggregates.
    pub summary: ScanSummary,
    /// Simulator packet/event counters.
    pub sim_stats: SimStats,
    /// Virtual time the scan took (§3.4's metric).
    pub duration: Duration,
    /// Metrics, events and monitor output.
    pub telemetry: ScanTelemetry,
    /// Recorded wire traffic (empty unless `record_trace`).
    pub trace: Trace,
    /// Checkpoint captures (periodic, kill-point and final), sorted by
    /// `(shard, events)`.
    pub checkpoints: Vec<ShardCheckpoint>,
    /// How the run ended (kill/abort/divergence poison completion).
    pub disposition: RunDisposition,
}

/// Durable-campaign controls: crash injection, periodic checkpoint
/// capture, graceful abort and resume validation. The default is a plain
/// uninterrupted run.
#[derive(Clone, Default)]
pub struct RunControl {
    /// Stop each shard's event loop after this many events (0 = off).
    /// This is the crash-injection hook: the loop breaks *between*
    /// events, exactly as a `kill -9` between two event handlers would.
    pub kill_after_events: u64,
    /// Capture a checkpoint each time virtual time crosses a multiple of
    /// this interval. A resumed run must inherit the interval from the
    /// checkpoint so its captures land on identical boundaries.
    pub checkpoint_every: Option<Duration>,
    /// Graceful-shutdown deadline: past this virtual time the scanner
    /// drains in-flight work and the run ends as [`RunDisposition::Aborted`].
    pub abort_at: Option<Duration>,
    /// A prior campaign checkpoint to resume: the run replays from event
    /// zero and validates its state against the recorded barrier.
    pub resume: Option<Arc<CampaignCheckpoint>>,
    /// Invoked on every capture as it happens (the CLI persists the
    /// assembled campaign file from here; called on shard threads).
    pub on_checkpoint: Option<CheckpointSink>,
}

/// Checkpoint-capture callback: `(shard index, capture)`.
pub type CheckpointSink = Arc<dyn Fn(u32, &ShardCheckpoint) + Send + Sync>;

/// The observability products of a scan, merged across shards.
#[derive(Debug, Clone, Default)]
pub struct ScanTelemetry {
    /// Merged metrics snapshot (scan scope merges exactly; see
    /// [`Snapshot::to_canonical_json`]).
    pub metrics: Snapshot,
    /// Merged session event log (empty unless `telemetry.record_events`).
    pub events: EventLog,
    /// Captured progress-monitor lines (empty unless a capture monitor ran).
    pub status_lines: Vec<String>,
    /// Merged span tracer (empty unless `telemetry.record_spans`).
    pub tracer: Tracer,
    /// Flight-recorder dumps for failed sessions (empty unless
    /// `telemetry.flight_recorder`).
    pub flight: FlightRecorder,
    /// Streaming JSONL telemetry (empty unless `telemetry.stream`).
    pub stream: TelemetrySink,
    /// ICMP control-plane harvest (always collected; cheap).
    pub icmp: IcmpHarvest,
}

/// How a scan maps onto OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Everything on the calling thread (the default): the scanner
    /// generates its own targets while pacing. The configured
    /// `ScanConfig::shard` tuple is honored as-is, so a caller can
    /// still drive one sub-shard by hand.
    #[default]
    Single,
    /// The ZMap-style split on real threads: `senders` TX feeder
    /// threads walk disjoint cyclic-group partitions of the target
    /// space and push admitted targets over bounded rings into fed
    /// shard worlds; `receivers` worker threads drive those worlds
    /// (pacing at `rate_pps / senders` each, probing, inferring) and
    /// the per-world outputs merge deterministically by shard index.
    /// Zero values are clamped to one; more receivers than senders are
    /// capped at the sender count.
    Threads {
        /// TX feeder threads = shard count (the unit checkpoints and
        /// byte-identity are phrased in).
        senders: u32,
        /// Receiver workers sharing the shard worlds.
        receivers: u32,
    },
}

impl Topology {
    /// The symmetric shorthand: `n` senders feeding `n` receivers.
    /// `n <= 1` is [`Topology::Single`] — one shard needs no ring (use
    /// `Topology::Threads { senders: 1, .. }` explicitly to force the
    /// fed path, e.g. for identity testing).
    pub fn threads(n: u32) -> Topology {
        if n <= 1 {
            Topology::Single
        } else {
            Topology::Threads {
                senders: n,
                receivers: n,
            }
        }
    }

    /// Sender-shard count this topology partitions the space into.
    pub(crate) fn senders(self) -> u32 {
        match self {
            Topology::Single => 1,
            Topology::Threads { senders, .. } => senders.max(1),
        }
    }
}

/// The one way to run a scan: configure, pick a topology, go.
///
/// ```no_run
/// # use iw_core::prelude::*;
/// # use iw_core::Protocol;
/// # use iw_internet::Population;
/// # use std::sync::Arc;
/// # let population: Arc<Population> = unimplemented!();
/// let output = ScanRunner::new(&population)
///     .config(ScanConfig::study(Protocol::Http, population.space_size(), 7))
///     .topology(Topology::Threads { senders: 4, receivers: 2 })
///     .run();
/// ```
///
/// This builder is the entire entry surface — the free functions
/// (`run_scan`, `run_scan_sharded`) it once shimmed are gone. The
/// default configuration is the paper's HTTP study over the
/// population's full space with seed 0, on [`Topology::Single`].
pub struct ScanRunner {
    population: Arc<Population>,
    config: ScanConfig,
    topology: Topology,
    control: RunControl,
}

impl ScanRunner {
    /// A runner with the study defaults for `population`.
    pub fn new(population: &Arc<Population>) -> ScanRunner {
        ScanRunner {
            config: ScanConfig::study(Protocol::Http, population.space_size(), 0),
            population: population.clone(),
            topology: Topology::Single,
            control: RunControl::default(),
        }
    }

    /// Replace the scan configuration wholesale.
    pub fn config(mut self, config: ScanConfig) -> ScanRunner {
        self.config = config;
        self
    }

    /// Choose how the scan maps onto threads (default
    /// [`Topology::Single`]).
    pub fn topology(mut self, topology: Topology) -> ScanRunner {
        self.topology = topology;
        self
    }

    /// Install durable-campaign controls (checkpointing, crash injection,
    /// graceful abort, resume).
    pub fn control(mut self, control: RunControl) -> ScanRunner {
        self.control = control;
        self
    }

    /// Run to completion and merge.
    pub fn run(self) -> ScanOutput {
        // Resume pre-flight: the checkpoint must describe this very
        // campaign, or the replay would diverge by construction. Fail
        // before any replay work starts, with the offending field named.
        if let Some(ckpt) = &self.control.resume {
            let digest = ConfigDigest::from_config(&self.config);
            if let Some(detail) = ckpt.config.first_mismatch(&digest) {
                return diverged_output(detail);
            }
            // Receiver workers are pure scheduling — any count replays
            // the same per-shard event streams — but the sender count is
            // the partition the checkpoint cursors are phrased in.
            let senders = self.topology.senders();
            if ckpt.threads != senders {
                return diverged_output(format!(
                    "checkpoint was taken with {} sender shard(s), this run has {}",
                    ckpt.threads, senders
                ));
            }
        }
        match self.topology {
            Topology::Single => run_single(&self.population, self.config, &self.control),
            Topology::Threads { senders, receivers } => run_scan_sharded(
                &self.population,
                self.config,
                &self.control,
                senders.max(1),
                receivers.max(1),
            ),
        }
    }
}

/// The threaded engine behind [`Topology::Threads`]: spawn `senders` TX
/// feeder threads, each generating one shard's targets into a bounded
/// ring, plus `receivers` worker threads driving the fed shard worlds
/// (worker `j` owns worlds `i ≡ j (mod receivers)` and runs each to
/// completion in index order — a deferred world's feeder simply blocks
/// on its full ring until the world starts consuming, so there is no
/// circular wait). Outputs merge deterministically by shard index, which
/// is why every thread count produces identical bytes.
fn run_scan_sharded(
    population: &Arc<Population>,
    config: ScanConfig,
    control: &RunControl,
    senders: u32,
    receivers: u32,
) -> ScanOutput {
    let receivers = receivers.min(senders);
    let outputs: Vec<ScanOutput> = crossbeam::thread::scope(|scope| {
        let mut feeders = Vec::new();
        let mut worker_inputs: Vec<Vec<(u32, ScanConfig, FeedReceiver)>> =
            (0..receivers).map(|_| Vec::new()).collect();
        for i in 0..senders {
            let mut shard_config = config.clone();
            shard_config.shard = (i, senders);
            if i > 0 {
                // One progress monitor is enough; shard 0 reports for
                // all (interleaved per-shard lines would be
                // unreadable anyway).
                shard_config.telemetry.monitor = None;
            }
            let (feed_tx, feed_rx) = ring::feed(txrx::FEED_CAPACITY);
            let feeder_config = shard_config.clone();
            feeders.push(scope.spawn(move |_| txrx::run_feeder(&feeder_config, feed_tx)));
            worker_inputs[(i % receivers) as usize].push((i, shard_config, feed_rx));
        }
        let mut workers = Vec::new();
        for worlds in worker_inputs {
            let pop = population.clone();
            let ctl = control.clone();
            workers.push(scope.spawn(move |_| {
                worlds
                    .into_iter()
                    .map(|(i, cfg, feed_rx)| (i, run_world(&pop, cfg, &ctl, feed_rx)))
                    .collect::<Vec<_>>()
            }));
        }
        let mut outputs: Vec<(u32, ScanOutput)> = workers
            .into_iter()
            // A worker panic must propagate, not be silently merged
            // into partial results. iw-lint: allow(panic-budget)
            .flat_map(|h| h.join().expect("receiver worker panicked"))
            .collect();
        for h in feeders {
            // Feeders end once their ring closes (or its world is
            // dropped by a kill/abort). iw-lint: allow(panic-budget)
            h.join().expect("TX feeder panicked");
        }
        outputs.sort_by_key(|(i, _)| *i);
        outputs.into_iter().map(|(_, out)| out).collect()
    })
    // Scope errors are rethrown thread panics; same policy as above.
    .expect("crossbeam scope"); // iw-lint: allow(panic-budget)
    merge(outputs)
}

/// The empty output of a run refused before it started.
fn diverged_output(detail: String) -> ScanOutput {
    ScanOutput {
        results: Vec::new(),
        open_ports: Vec::new(),
        mtu_results: Vec::new(),
        summary: ScanSummary::default(),
        sim_stats: SimStats::default(),
        duration: Duration::ZERO,
        telemetry: ScanTelemetry::default(),
        trace: Trace::default(),
        checkpoints: Vec::new(),
        disposition: RunDisposition::Diverged { detail },
    }
}

/// Run one self-generating scan world to completion on the current
/// thread ([`Topology::Single`]).
fn run_single(
    population: &Arc<Population>,
    config: ScanConfig,
    control: &RunControl,
) -> ScanOutput {
    drive(population, Scanner::new(config), control)
}

/// Run one fed shard world to completion on the current thread: same
/// event loop as [`run_single`], but targets arrive from a TX feeder
/// over the ring instead of being generated in-world.
fn run_world(
    population: &Arc<Population>,
    config: ScanConfig,
    control: &RunControl,
    feed: FeedReceiver,
) -> ScanOutput {
    drive(population, Scanner::with_feed(config, feed), control)
}

/// The shared event loop: drive a prepared scanner against the
/// population with the durable-campaign hooks, then harvest.
fn drive(population: &Arc<Population>, scanner: Scanner, control: &RunControl) -> ScanOutput {
    let seed = scanner.config().seed;
    let record_trace = scanner.config().record_trace;
    let shard_index = scanner.config().shard.0;
    // The sim profiles its own hot path whenever span tracing is on.
    let profile = scanner.config().telemetry.record_spans;
    let factory = PopulationFactory::new(population.clone());
    let mut sim = Sim::new(
        scanner,
        factory,
        SimConfig {
            seed,
            record_trace,
            profile,
        },
    );
    sim.kick_scanner(|s, now, fx| s.start(now, fx));

    // Stepwise event loop with the durable-campaign hooks. The replay
    // barrier, the kill point and the periodic captures are all phrased
    // in (event count, virtual time), so every run — uninterrupted,
    // killed or resumed — walks the exact same sequence of states.
    let barrier = control
        .resume
        .as_ref()
        .and_then(|c| c.shard(shard_index))
        .cloned();
    let mut validated = barrier.is_none();
    let every = control.checkpoint_every.map_or(0, |d| d.as_nanos());
    let mut next_capture = every;
    let abort_nanos = control.abort_at.map(|d| d.as_nanos());
    let mut aborted = false;
    let mut processed: u64 = 0;
    let mut disposition = RunDisposition::Completed;
    let mut checkpoints: Vec<ShardCheckpoint> = Vec::new();
    loop {
        if let Some(b) = &barrier {
            if !validated && processed == b.events {
                let now = sim.now();
                let replayed = sim.scanner_mut().checkpoint(processed, now);
                if replayed.canonical_json() != b.canonical_json() {
                    disposition = RunDisposition::Diverged {
                        detail: format!(
                            "shard {shard_index}: replayed state at event {} does not match \
                             the checkpoint (stale file or non-identical campaign?)",
                            b.events
                        ),
                    };
                    break;
                }
                validated = true;
            }
        }
        if control.kill_after_events > 0 && processed >= control.kill_after_events {
            // Crash injection: stop dead between two events, leaving only
            // what the checkpoint callback persisted.
            let now = sim.now();
            let capture = sim.scanner_mut().checkpoint(processed, now);
            if let Some(cb) = &control.on_checkpoint {
                cb(shard_index, &capture);
            }
            checkpoints.push(capture);
            disposition = RunDisposition::Killed { events: processed };
            break;
        }
        if !sim.step() {
            break;
        }
        processed += 1;
        let now = sim.now();
        if !aborted {
            if let Some(deadline) = abort_nanos {
                if now.as_nanos() >= deadline {
                    aborted = true;
                    disposition = RunDisposition::Aborted;
                    sim.kick_scanner(|s, at, fx| s.begin_drain(at, fx));
                }
            }
        }
        if every > 0 {
            while now.as_nanos() >= next_capture {
                // Count the capture *before* taking it, so the captured
                // counters include this tick; a resumed run repeats the
                // same cadence and lands on the same values.
                let capture = {
                    let s = sim.scanner_mut();
                    s.note_checkpoint_taken();
                    s.checkpoint(processed, now)
                };
                if let Some(cb) = &control.on_checkpoint {
                    cb(shard_index, &capture);
                }
                checkpoints.push(capture);
                next_capture += every;
            }
        }
    }
    if let Some(b) = &barrier {
        if !validated && disposition == RunDisposition::Completed {
            disposition = RunDisposition::Diverged {
                detail: format!(
                    "shard {shard_index}: replay finished after {processed} events, before \
                     the checkpoint barrier at event {}",
                    b.events
                ),
            };
        }
    }
    if matches!(
        disposition,
        RunDisposition::Completed | RunDisposition::Aborted
    ) {
        // Final capture (no counter: it adds no tick a resumed run would
        // have to reproduce) so the persisted campaign file records the
        // terminal state — exhausted, drained, all results in.
        let now = sim.now();
        let capture = sim.scanner_mut().checkpoint(processed, now);
        if let Some(cb) = &control.on_checkpoint {
            cb(shard_index, &capture);
        }
        checkpoints.push(capture);
    }

    let end = sim.now();
    let duration = end - iw_netsim::Instant::ZERO;
    let stats = sim.stats();
    let trace = sim.trace().clone();
    let sim_tracer = sim.take_tracer();
    harvest(
        sim.scanner_mut(),
        stats,
        duration,
        trace,
        sim_tracer,
        end,
        checkpoints,
        disposition,
    )
}

#[allow(clippy::too_many_arguments)]
fn harvest(
    scanner: &mut Scanner,
    sim_stats: SimStats,
    duration: Duration,
    trace: Trace,
    sim_tracer: Tracer,
    end: iw_netsim::Instant,
    checkpoints: Vec<ShardCheckpoint>,
    disposition: RunDisposition,
) -> ScanOutput {
    let mut results = scanner.results().to_vec();
    results.sort_by_key(|r| r.ip);
    let mut open_ports = scanner.open_ports().to_vec();
    open_ports.sort_unstable();
    // A host that answers several probes lands in the list once per
    // SYN-ACK; the report wants the set of open ports, not the tally.
    open_ports.dedup();
    let mut mtu_results = scanner.mtu_results().to_vec();
    mtu_results.sort_by_key(|r| r.ip);
    let summary = summarize(&results, scanner.targets_sent(), scanner.refused());
    scanner.note_sim_stats(&sim_stats);
    // Fold trace counters and flush the final stream snapshot *before*
    // the canonical metrics snapshot so both see the same totals.
    scanner.finish_observability(sim_tracer, end);
    let telemetry = ScanTelemetry {
        metrics: scanner.metrics_snapshot(),
        events: scanner.take_events(),
        status_lines: scanner.take_status_lines(),
        tracer: scanner.take_tracer(),
        flight: scanner.take_flight_recorder(),
        stream: scanner.take_stream(),
        icmp: scanner.take_icmp_harvest(),
    };
    ScanOutput {
        results,
        open_ports,
        mtu_results,
        summary,
        sim_stats,
        duration,
        telemetry,
        trace,
        checkpoints,
        disposition,
    }
}

/// Build Table 1 aggregates from per-host records.
pub fn summarize(results: &[HostResult], targets: u64, refused: u64) -> ScanSummary {
    let mut summary = ScanSummary {
        targets,
        refused,
        reachable: results.len() as u64,
        ..ScanSummary::default()
    };
    for r in results {
        match r.primary_verdict() {
            Some(MssVerdict::Success(_)) => summary.success += 1,
            Some(MssVerdict::FewData(_)) => summary.few_data += 1,
            _ => summary.error += 1,
        }
        for (_, outcomes) in &r.runs {
            for o in outcomes {
                if let ProbeOutcome::Error { kind } = o {
                    summary.error_kinds.note(*kind);
                }
            }
        }
    }
    summary
}

fn merge(outputs: Vec<ScanOutput>) -> ScanOutput {
    let mut results = Vec::new();
    let mut open_ports = Vec::new();
    let mut mtu_results = Vec::new();
    let mut summary = ScanSummary::default();
    let mut sim_stats = SimStats::default();
    let mut duration = Duration::ZERO;
    let mut telemetry = ScanTelemetry::default();
    let mut trace = Trace::default();
    let mut checkpoints = Vec::new();
    let mut disposition = RunDisposition::Completed;
    for out in outputs {
        results.extend(out.results);
        open_ports.extend(out.open_ports);
        mtu_results.extend(out.mtu_results);
        summary += &out.summary;
        sim_stats += out.sim_stats;
        duration = duration.max(out.duration);
        telemetry.metrics.merge(&out.telemetry.metrics);
        telemetry.events.merge(&out.telemetry.events);
        telemetry.status_lines.extend(out.telemetry.status_lines);
        telemetry.tracer.merge(&out.telemetry.tracer);
        telemetry.flight.merge(&out.telemetry.flight);
        telemetry.stream.merge(&out.telemetry.stream);
        telemetry.icmp.merge(&out.telemetry.icmp);
        trace.merge(&out.trace);
        checkpoints.extend(out.checkpoints);
        disposition = disposition.merge(out.disposition);
    }
    results.sort_by_key(|r| r.ip);
    open_ports.sort_unstable();
    open_ports.dedup();
    mtu_results.sort_by_key(|r| r.ip);
    checkpoints.sort_by_key(|c| (c.shard, c.events, c.at_nanos));
    ScanOutput {
        results,
        open_ports,
        mtu_results,
        summary,
        sim_stats,
        duration,
        telemetry,
        trace,
        checkpoints,
        disposition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::{HostVerdict, Protocol};

    #[test]
    fn summarize_counts_categories() {
        let mk = |v| HostResult {
            ip: 0,
            protocol: Protocol::Http,
            runs: vec![],
            verdicts: vec![(64, v)],
            host_verdict: HostVerdict::Unclassified,
        };
        let results = vec![
            mk(MssVerdict::Success(10)),
            mk(MssVerdict::Success(2)),
            mk(MssVerdict::FewData(7)),
            mk(MssVerdict::Error),
        ];
        let s = summarize(&results, 100, 5);
        assert_eq!(s.reachable, 4);
        assert_eq!(s.success, 2);
        assert_eq!(s.few_data, 1);
        assert_eq!(s.error, 1);
        assert_eq!(s.targets, 100);
        assert_eq!(s.refused, 5);
    }
}
