//! Glue: run a scanner against a synthetic population, optionally
//! sharded across OS threads (ZMap-style cycle-striding shards merged
//! afterwards; results stay deterministic because every shard is an
//! independent deterministic simulation).

use crate::results::{HostResult, MssVerdict, MtuResult, ScanSummary};
use crate::scanner::{ScanConfig, Scanner};
use iw_internet::population::{Population, PopulationFactory};
use iw_netsim::sim::SimStats;
use iw_netsim::{Duration, Sim, SimConfig};
use std::sync::Arc;

/// Everything a scan produces.
#[derive(Debug, Clone)]
pub struct ScanOutput {
    /// Per-host measurement records (sorted by address).
    pub results: Vec<HostResult>,
    /// Port-scan mode: open ports.
    pub open_ports: Vec<u32>,
    /// ICMP mode: discovered path MTUs.
    pub mtu_results: Vec<MtuResult>,
    /// Table 1 aggregates.
    pub summary: ScanSummary,
    /// Simulator packet/event counters.
    pub sim_stats: SimStats,
    /// Virtual time the scan took (§3.4's metric).
    pub duration: Duration,
}

/// Run one scan to completion on the current thread.
pub fn run_scan(population: &Arc<Population>, config: ScanConfig) -> ScanOutput {
    let seed = config.seed;
    let scanner = Scanner::new(config);
    let factory = PopulationFactory::new(population.clone());
    let mut sim = Sim::new(
        scanner,
        factory,
        SimConfig {
            seed,
            record_trace: false,
        },
    );
    sim.kick_scanner(|s, now, fx| s.start(now, fx));
    sim.run_to_completion();
    let duration = sim.now() - iw_netsim::Instant::ZERO;
    let stats = sim.stats();
    harvest(sim.scanner_mut(), stats, duration)
}

fn harvest(scanner: &mut Scanner, sim_stats: SimStats, duration: Duration) -> ScanOutput {
    let mut results = scanner.results().to_vec();
    results.sort_by_key(|r| r.ip);
    let mut open_ports = scanner.open_ports().to_vec();
    open_ports.sort_unstable();
    let mut mtu_results = scanner.mtu_results().to_vec();
    mtu_results.sort_by_key(|r| r.ip);
    let summary = summarize(&results, scanner.targets_sent(), scanner.refused());
    ScanOutput {
        results,
        open_ports,
        mtu_results,
        summary,
        sim_stats,
        duration,
    }
}

/// Build Table 1 aggregates from per-host records.
pub fn summarize(results: &[HostResult], targets: u64, refused: u64) -> ScanSummary {
    let mut summary = ScanSummary {
        targets,
        refused,
        reachable: results.len() as u64,
        ..ScanSummary::default()
    };
    for r in results {
        match r.primary_verdict() {
            Some(MssVerdict::Success(_)) => summary.success += 1,
            Some(MssVerdict::FewData(_)) => summary.few_data += 1,
            _ => summary.error += 1,
        }
    }
    summary
}

/// Run a scan split into `threads` ZMap shards on real threads and merge.
pub fn run_scan_sharded(
    population: &Arc<Population>,
    config: ScanConfig,
    threads: u32,
) -> ScanOutput {
    assert!(threads > 0);
    if threads == 1 {
        let mut config = config;
        config.shard = (0, 1);
        return run_scan(population, config);
    }
    let outputs: Vec<ScanOutput> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..threads {
            let mut shard_config = config.clone();
            shard_config.shard = (i, threads);
            let pop = population.clone();
            handles.push(scope.spawn(move |_| run_scan(&pop, shard_config)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    merge(outputs)
}

fn merge(outputs: Vec<ScanOutput>) -> ScanOutput {
    let mut results = Vec::new();
    let mut open_ports = Vec::new();
    let mut mtu_results = Vec::new();
    let mut summary = ScanSummary::default();
    let mut sim_stats = SimStats::default();
    let mut duration = Duration::ZERO;
    for out in outputs {
        results.extend(out.results);
        open_ports.extend(out.open_ports);
        mtu_results.extend(out.mtu_results);
        summary.targets += out.summary.targets;
        summary.reachable += out.summary.reachable;
        summary.success += out.summary.success;
        summary.few_data += out.summary.few_data;
        summary.error += out.summary.error;
        summary.refused += out.summary.refused;
        sim_stats.scanner_tx += out.sim_stats.scanner_tx;
        sim_stats.scanner_rx += out.sim_stats.scanner_rx;
        sim_stats.host_tx += out.sim_stats.host_tx;
        sim_stats.host_rx += out.sim_stats.host_rx;
        sim_stats.lost += out.sim_stats.lost;
        sim_stats.scanner_tx_bytes += out.sim_stats.scanner_tx_bytes;
        sim_stats.scanner_rx_bytes += out.sim_stats.scanner_rx_bytes;
        sim_stats.hosts_spawned += out.sim_stats.hosts_spawned;
        sim_stats.events += out.sim_stats.events;
        duration = duration.max(out.duration);
    }
    results.sort_by_key(|r| r.ip);
    open_ports.sort_unstable();
    mtu_results.sort_by_key(|r| r.ip);
    ScanOutput {
        results,
        open_ports,
        mtu_results,
        summary,
        sim_stats,
        duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::{HostVerdict, Protocol};

    #[test]
    fn summarize_counts_categories() {
        let mk = |v| HostResult {
            ip: 0,
            protocol: Protocol::Http,
            runs: vec![],
            verdicts: vec![(64, v)],
            host_verdict: HostVerdict::Unclassified,
        };
        let results = vec![
            mk(MssVerdict::Success(10)),
            mk(MssVerdict::Success(2)),
            mk(MssVerdict::FewData(7)),
            mk(MssVerdict::Error),
        ];
        let s = summarize(&results, 100, 5);
        assert_eq!(s.reachable, 4);
        assert_eq!(s.success, 2);
        assert_eq!(s.few_data, 1);
        assert_eq!(s.error, 1);
        assert_eq!(s.targets, 100);
        assert_eq!(s.refused, 5);
    }
}
