//! Glue: run a scanner against a synthetic population, optionally
//! sharded across OS threads (ZMap-style cycle-striding shards merged
//! afterwards; results stay deterministic because every shard is an
//! independent deterministic simulation).

use crate::checkpoint::{CampaignCheckpoint, ConfigDigest, RunDisposition, ShardCheckpoint};
use crate::results::{HostResult, MssVerdict, MtuResult, ProbeOutcome, Protocol, ScanSummary};
use crate::scanner::{ScanConfig, Scanner};
use iw_internet::population::{Population, PopulationFactory};
use iw_netsim::sim::SimStats;
use iw_netsim::{Duration, Sim, SimConfig, Trace};
use iw_telemetry::{EventLog, FlightRecorder, IcmpHarvest, Snapshot, TelemetrySink, Tracer};
use std::sync::Arc;

/// Everything a scan produces.
#[derive(Debug, Clone)]
pub struct ScanOutput {
    /// Per-host measurement records (sorted by address).
    pub results: Vec<HostResult>,
    /// Port-scan mode: open ports.
    pub open_ports: Vec<u32>,
    /// ICMP mode: discovered path MTUs.
    pub mtu_results: Vec<MtuResult>,
    /// Table 1 aggregates.
    pub summary: ScanSummary,
    /// Simulator packet/event counters.
    pub sim_stats: SimStats,
    /// Virtual time the scan took (§3.4's metric).
    pub duration: Duration,
    /// Metrics, events and monitor output.
    pub telemetry: ScanTelemetry,
    /// Recorded wire traffic (empty unless `record_trace`).
    pub trace: Trace,
    /// Checkpoint captures (periodic, kill-point and final), sorted by
    /// `(shard, events)`.
    pub checkpoints: Vec<ShardCheckpoint>,
    /// How the run ended (kill/abort/divergence poison completion).
    pub disposition: RunDisposition,
}

/// Durable-campaign controls: crash injection, periodic checkpoint
/// capture, graceful abort and resume validation. The default is a plain
/// uninterrupted run.
#[derive(Clone, Default)]
pub struct RunControl {
    /// Stop each shard's event loop after this many events (0 = off).
    /// This is the crash-injection hook: the loop breaks *between*
    /// events, exactly as a `kill -9` between two event handlers would.
    pub kill_after_events: u64,
    /// Capture a checkpoint each time virtual time crosses a multiple of
    /// this interval. A resumed run must inherit the interval from the
    /// checkpoint so its captures land on identical boundaries.
    pub checkpoint_every: Option<Duration>,
    /// Graceful-shutdown deadline: past this virtual time the scanner
    /// drains in-flight work and the run ends as [`RunDisposition::Aborted`].
    pub abort_at: Option<Duration>,
    /// A prior campaign checkpoint to resume: the run replays from event
    /// zero and validates its state against the recorded barrier.
    pub resume: Option<Arc<CampaignCheckpoint>>,
    /// Invoked on every capture as it happens (the CLI persists the
    /// assembled campaign file from here; called on shard threads).
    pub on_checkpoint: Option<CheckpointSink>,
}

/// Checkpoint-capture callback: `(shard index, capture)`.
pub type CheckpointSink = Arc<dyn Fn(u32, &ShardCheckpoint) + Send + Sync>;

/// The observability products of a scan, merged across shards.
#[derive(Debug, Clone, Default)]
pub struct ScanTelemetry {
    /// Merged metrics snapshot (scan scope merges exactly; see
    /// [`Snapshot::to_canonical_json`]).
    pub metrics: Snapshot,
    /// Merged session event log (empty unless `telemetry.record_events`).
    pub events: EventLog,
    /// Captured progress-monitor lines (empty unless a capture monitor ran).
    pub status_lines: Vec<String>,
    /// Merged span tracer (empty unless `telemetry.record_spans`).
    pub tracer: Tracer,
    /// Flight-recorder dumps for failed sessions (empty unless
    /// `telemetry.flight_recorder`).
    pub flight: FlightRecorder,
    /// Streaming JSONL telemetry (empty unless `telemetry.stream`).
    pub stream: TelemetrySink,
    /// ICMP control-plane harvest (always collected; cheap).
    pub icmp: IcmpHarvest,
}

/// The one way to run a scan: configure, shard, go.
///
/// ```no_run
/// # use iw_core::{ScanRunner, ScanConfig, Protocol};
/// # use iw_internet::Population;
/// # use std::sync::Arc;
/// # let population: Arc<Population> = unimplemented!();
/// let output = ScanRunner::new(&population)
///     .config(ScanConfig::study(Protocol::Http, population.space_size(), 7))
///     .shards(4)
///     .run();
/// ```
///
/// Replaces the free functions `run_scan`/`run_scan_sharded` (now
/// deprecated shims over this type). The default configuration is the
/// paper's HTTP study over the population's full space with seed 0.
pub struct ScanRunner {
    population: Arc<Population>,
    config: ScanConfig,
    shards: u32,
    control: RunControl,
}

impl ScanRunner {
    /// A runner with the study defaults for `population`.
    pub fn new(population: &Arc<Population>) -> ScanRunner {
        ScanRunner {
            config: ScanConfig::study(Protocol::Http, population.space_size(), 0),
            population: population.clone(),
            shards: 1,
            control: RunControl::default(),
        }
    }

    /// Replace the scan configuration wholesale.
    pub fn config(mut self, config: ScanConfig) -> ScanRunner {
        self.config = config;
        self
    }

    /// Split the scan into this many ZMap cycle-striding shards, one OS
    /// thread each, merged deterministically afterwards. Zero is
    /// clamped to one; with one shard the configured `shard` tuple is
    /// honored as-is (so a caller can still run a single sub-shard).
    pub fn shards(mut self, shards: u32) -> ScanRunner {
        self.shards = shards.max(1);
        self
    }

    /// Install durable-campaign controls (checkpointing, crash injection,
    /// graceful abort, resume).
    pub fn control(mut self, control: RunControl) -> ScanRunner {
        self.control = control;
        self
    }

    /// Run to completion and merge.
    pub fn run(self) -> ScanOutput {
        // Resume pre-flight: the checkpoint must describe this very
        // campaign, or the replay would diverge by construction. Fail
        // before any replay work starts, with the offending field named.
        if let Some(ckpt) = &self.control.resume {
            let digest = ConfigDigest::from_config(&self.config);
            if let Some(detail) = ckpt.config.first_mismatch(&digest) {
                return diverged_output(detail);
            }
            if ckpt.threads != self.shards {
                return diverged_output(format!(
                    "checkpoint was taken with {} shard(s), this run has {}",
                    ckpt.threads, self.shards
                ));
            }
        }
        if self.shards == 1 {
            return run_single(&self.population, self.config, &self.control);
        }
        let threads = self.shards;
        let config = self.config;
        let population = self.population;
        let control = self.control;
        let outputs: Vec<ScanOutput> = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for i in 0..threads {
                let mut shard_config = config.clone();
                shard_config.shard = (i, threads);
                if i > 0 {
                    // One progress monitor is enough; shard 0 reports for
                    // all (interleaved per-shard lines would be
                    // unreadable anyway).
                    shard_config.telemetry.monitor = None;
                }
                let pop = population.clone();
                let ctl = control.clone();
                handles.push(scope.spawn(move |_| run_single(&pop, shard_config, &ctl)));
            }
            handles
                .into_iter()
                // A shard-thread panic must propagate, not be silently
                // merged into partial results. iw-lint: allow(panic-budget)
                .map(|h| h.join().expect("shard thread panicked"))
                .collect()
        })
        // Scope errors are rethrown shard panics; same policy as above.
        .expect("crossbeam scope"); // iw-lint: allow(panic-budget)
        merge(outputs)
    }
}

/// The empty output of a run refused before it started.
fn diverged_output(detail: String) -> ScanOutput {
    ScanOutput {
        results: Vec::new(),
        open_ports: Vec::new(),
        mtu_results: Vec::new(),
        summary: ScanSummary::default(),
        sim_stats: SimStats::default(),
        duration: Duration::ZERO,
        telemetry: ScanTelemetry::default(),
        trace: Trace::default(),
        checkpoints: Vec::new(),
        disposition: RunDisposition::Diverged { detail },
    }
}

/// Run one scan to completion on the current thread.
#[deprecated(note = "use ScanRunner::new(&population).config(config).run()")]
pub fn run_scan(population: &Arc<Population>, config: ScanConfig) -> ScanOutput {
    ScanRunner::new(population).config(config).run()
}

fn run_single(
    population: &Arc<Population>,
    config: ScanConfig,
    control: &RunControl,
) -> ScanOutput {
    let seed = config.seed;
    let record_trace = config.record_trace;
    let shard_index = config.shard.0;
    // The sim profiles its own hot path whenever span tracing is on.
    let profile = config.telemetry.record_spans;
    let scanner = Scanner::new(config);
    let factory = PopulationFactory::new(population.clone());
    let mut sim = Sim::new(
        scanner,
        factory,
        SimConfig {
            seed,
            record_trace,
            profile,
        },
    );
    sim.kick_scanner(|s, now, fx| s.start(now, fx));

    // Stepwise event loop with the durable-campaign hooks. The replay
    // barrier, the kill point and the periodic captures are all phrased
    // in (event count, virtual time), so every run — uninterrupted,
    // killed or resumed — walks the exact same sequence of states.
    let barrier = control
        .resume
        .as_ref()
        .and_then(|c| c.shard(shard_index))
        .cloned();
    let mut validated = barrier.is_none();
    let every = control.checkpoint_every.map_or(0, |d| d.as_nanos());
    let mut next_capture = every;
    let abort_nanos = control.abort_at.map(|d| d.as_nanos());
    let mut aborted = false;
    let mut processed: u64 = 0;
    let mut disposition = RunDisposition::Completed;
    let mut checkpoints: Vec<ShardCheckpoint> = Vec::new();
    loop {
        if let Some(b) = &barrier {
            if !validated && processed == b.events {
                let now = sim.now();
                let replayed = sim.scanner_mut().checkpoint(processed, now);
                if replayed.canonical_json() != b.canonical_json() {
                    disposition = RunDisposition::Diverged {
                        detail: format!(
                            "shard {shard_index}: replayed state at event {} does not match \
                             the checkpoint (stale file or non-identical campaign?)",
                            b.events
                        ),
                    };
                    break;
                }
                validated = true;
            }
        }
        if control.kill_after_events > 0 && processed >= control.kill_after_events {
            // Crash injection: stop dead between two events, leaving only
            // what the checkpoint callback persisted.
            let now = sim.now();
            let capture = sim.scanner_mut().checkpoint(processed, now);
            if let Some(cb) = &control.on_checkpoint {
                cb(shard_index, &capture);
            }
            checkpoints.push(capture);
            disposition = RunDisposition::Killed { events: processed };
            break;
        }
        if !sim.step() {
            break;
        }
        processed += 1;
        let now = sim.now();
        if !aborted {
            if let Some(deadline) = abort_nanos {
                if now.as_nanos() >= deadline {
                    aborted = true;
                    disposition = RunDisposition::Aborted;
                    sim.kick_scanner(|s, at, fx| s.begin_drain(at, fx));
                }
            }
        }
        if every > 0 {
            while now.as_nanos() >= next_capture {
                // Count the capture *before* taking it, so the captured
                // counters include this tick; a resumed run repeats the
                // same cadence and lands on the same values.
                let capture = {
                    let s = sim.scanner_mut();
                    s.note_checkpoint_taken();
                    s.checkpoint(processed, now)
                };
                if let Some(cb) = &control.on_checkpoint {
                    cb(shard_index, &capture);
                }
                checkpoints.push(capture);
                next_capture += every;
            }
        }
    }
    if let Some(b) = &barrier {
        if !validated && disposition == RunDisposition::Completed {
            disposition = RunDisposition::Diverged {
                detail: format!(
                    "shard {shard_index}: replay finished after {processed} events, before \
                     the checkpoint barrier at event {}",
                    b.events
                ),
            };
        }
    }
    if matches!(
        disposition,
        RunDisposition::Completed | RunDisposition::Aborted
    ) {
        // Final capture (no counter: it adds no tick a resumed run would
        // have to reproduce) so the persisted campaign file records the
        // terminal state — exhausted, drained, all results in.
        let now = sim.now();
        let capture = sim.scanner_mut().checkpoint(processed, now);
        if let Some(cb) = &control.on_checkpoint {
            cb(shard_index, &capture);
        }
        checkpoints.push(capture);
    }

    let end = sim.now();
    let duration = end - iw_netsim::Instant::ZERO;
    let stats = sim.stats();
    let trace = sim.trace().clone();
    let sim_tracer = sim.take_tracer();
    harvest(
        sim.scanner_mut(),
        stats,
        duration,
        trace,
        sim_tracer,
        end,
        checkpoints,
        disposition,
    )
}

#[allow(clippy::too_many_arguments)]
fn harvest(
    scanner: &mut Scanner,
    sim_stats: SimStats,
    duration: Duration,
    trace: Trace,
    sim_tracer: Tracer,
    end: iw_netsim::Instant,
    checkpoints: Vec<ShardCheckpoint>,
    disposition: RunDisposition,
) -> ScanOutput {
    let mut results = scanner.results().to_vec();
    results.sort_by_key(|r| r.ip);
    let mut open_ports = scanner.open_ports().to_vec();
    open_ports.sort_unstable();
    // A host that answers several probes lands in the list once per
    // SYN-ACK; the report wants the set of open ports, not the tally.
    open_ports.dedup();
    let mut mtu_results = scanner.mtu_results().to_vec();
    mtu_results.sort_by_key(|r| r.ip);
    let summary = summarize(&results, scanner.targets_sent(), scanner.refused());
    scanner.note_sim_stats(&sim_stats);
    // Fold trace counters and flush the final stream snapshot *before*
    // the canonical metrics snapshot so both see the same totals.
    scanner.finish_observability(sim_tracer, end);
    let telemetry = ScanTelemetry {
        metrics: scanner.metrics_snapshot(),
        events: scanner.take_events(),
        status_lines: scanner.take_status_lines(),
        tracer: scanner.take_tracer(),
        flight: scanner.take_flight_recorder(),
        stream: scanner.take_stream(),
        icmp: scanner.take_icmp_harvest(),
    };
    ScanOutput {
        results,
        open_ports,
        mtu_results,
        summary,
        sim_stats,
        duration,
        telemetry,
        trace,
        checkpoints,
        disposition,
    }
}

/// Build Table 1 aggregates from per-host records.
pub fn summarize(results: &[HostResult], targets: u64, refused: u64) -> ScanSummary {
    let mut summary = ScanSummary {
        targets,
        refused,
        reachable: results.len() as u64,
        ..ScanSummary::default()
    };
    for r in results {
        match r.primary_verdict() {
            Some(MssVerdict::Success(_)) => summary.success += 1,
            Some(MssVerdict::FewData(_)) => summary.few_data += 1,
            _ => summary.error += 1,
        }
        for (_, outcomes) in &r.runs {
            for o in outcomes {
                if let ProbeOutcome::Error { kind } = o {
                    summary.error_kinds.note(*kind);
                }
            }
        }
    }
    summary
}

/// Run a scan split into `threads` ZMap shards on real threads and merge.
#[deprecated(note = "use ScanRunner::new(&population).config(config).shards(threads).run()")]
pub fn run_scan_sharded(
    population: &Arc<Population>,
    config: ScanConfig,
    threads: u32,
) -> ScanOutput {
    let mut config = config;
    if threads <= 1 {
        // The legacy entry point always normalized the shard tuple.
        config.shard = (0, 1);
    }
    ScanRunner::new(population)
        .config(config)
        .shards(threads)
        .run()
}

fn merge(outputs: Vec<ScanOutput>) -> ScanOutput {
    let mut results = Vec::new();
    let mut open_ports = Vec::new();
    let mut mtu_results = Vec::new();
    let mut summary = ScanSummary::default();
    let mut sim_stats = SimStats::default();
    let mut duration = Duration::ZERO;
    let mut telemetry = ScanTelemetry::default();
    let mut trace = Trace::default();
    let mut checkpoints = Vec::new();
    let mut disposition = RunDisposition::Completed;
    for out in outputs {
        results.extend(out.results);
        open_ports.extend(out.open_ports);
        mtu_results.extend(out.mtu_results);
        summary += &out.summary;
        sim_stats += out.sim_stats;
        duration = duration.max(out.duration);
        telemetry.metrics.merge(&out.telemetry.metrics);
        telemetry.events.merge(&out.telemetry.events);
        telemetry.status_lines.extend(out.telemetry.status_lines);
        telemetry.tracer.merge(&out.telemetry.tracer);
        telemetry.flight.merge(&out.telemetry.flight);
        telemetry.stream.merge(&out.telemetry.stream);
        telemetry.icmp.merge(&out.telemetry.icmp);
        trace.merge(&out.trace);
        checkpoints.extend(out.checkpoints);
        disposition = disposition.merge(out.disposition);
    }
    results.sort_by_key(|r| r.ip);
    open_ports.sort_unstable();
    open_ports.dedup();
    mtu_results.sort_by_key(|r| r.ip);
    checkpoints.sort_by_key(|c| (c.shard, c.events, c.at_nanos));
    ScanOutput {
        results,
        open_ports,
        mtu_results,
        summary,
        sim_stats,
        duration,
        telemetry,
        trace,
        checkpoints,
        disposition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::{HostVerdict, Protocol};

    #[test]
    fn summarize_counts_categories() {
        let mk = |v| HostResult {
            ip: 0,
            protocol: Protocol::Http,
            runs: vec![],
            verdicts: vec![(64, v)],
            host_verdict: HostVerdict::Unclassified,
        };
        let results = vec![
            mk(MssVerdict::Success(10)),
            mk(MssVerdict::Success(2)),
            mk(MssVerdict::FewData(7)),
            mk(MssVerdict::Error),
        ];
        let s = summarize(&results, 100, 5);
        assert_eq!(s.reachable, 4);
        assert_eq!(s.success, 2);
        assert_eq!(s.few_data, 1);
        assert_eq!(s.error, 1);
        assert_eq!(s.targets, 100);
        assert_eq!(s.refused, 5);
    }
}
