//! ZMap-style address-space permutation.
//!
//! Targets are visited in the order of the cyclic group ⟨g⟩ ⊂ (Z/pZ)*
//! with p the smallest prime above the space size: `x ← g·x mod p`,
//! skipping values outside the space. This gives (a) a full permutation
//! — every address exactly once, (b) no per-address state beyond one
//! u64, and (c) probes that spread uniformly over the space and thus
//! over destination networks, which is what lets ZMap send at line rate
//! without hammering one prefix.
//!
//! Sharding splits the cycle by stride: shard *i* of *n* starts at
//! `g^(i+1)` and steps by `g^n`, so shards partition the space exactly.

use crate::prime::{mod_mul, mod_pow, next_prime, primitive_root};

/// A full-cycle permutation of `{0, 1, …, size-1}`.
#[derive(Debug, Clone)]
pub struct Permutation {
    size: u64,
    p: u64,
    generator: u64,
}

impl Permutation {
    /// Build a permutation of a space of `size` addresses.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn new(size: u64, seed: u64) -> Permutation {
        assert!(size > 0, "empty scan space");
        let p = next_prime(size.max(2));
        let generator = primitive_root(p, seed);
        Permutation { size, p, generator }
    }

    /// Space size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The group modulus.
    pub fn modulus(&self) -> u64 {
        self.p
    }

    /// The generator in use.
    pub fn generator(&self) -> u64 {
        self.generator
    }

    /// Iterate the whole space (shard 0 of 1).
    pub fn iter(&self) -> ShardIter {
        self.shard(0, 1)
    }

    /// Iterate shard `index` of `count` (cycle-striding split).
    ///
    /// # Panics
    /// Panics if `index >= count` or `count == 0`.
    pub fn shard(&self, index: u32, count: u32) -> ShardIter {
        assert!(count > 0 && index < count, "bad shard spec");
        let step = mod_pow(self.generator, u64::from(count), self.p);
        let start = mod_pow(self.generator, u64::from(index) + 1, self.p);
        ShardIter {
            perm: self.clone(),
            step,
            next: start,
            produced: 0,
            budget: cycle_len(self.p, u64::from(index), u64::from(count)),
        }
    }
}

/// How many of the p−1 group elements fall to shard `index` of `count`.
fn cycle_len(p: u64, index: u64, count: u64) -> u64 {
    let total = p - 1;
    let base = total / count;
    let extra = u64::from(index < total % count);
    base + extra
}

/// Iterator over one shard's targets (values < size, i.e. shifted to
/// 0-based addresses).
#[derive(Debug, Clone)]
pub struct ShardIter {
    perm: Permutation,
    step: u64,
    next: u64,
    produced: u64,
    budget: u64,
}

impl ShardIter {
    /// The resumable cursor: `(next, produced)` — the group element the
    /// next call to [`Iterator::next`] will consider, and how many
    /// elements have been consumed so far. Together with the shard spec
    /// this pins the iterator's exact position, so a checkpointed scan
    /// can be reconstructed mid-cycle (or a replay validated against the
    /// recorded position).
    pub fn cursor(&self) -> (u64, u64) {
        (self.next, self.produced)
    }

    /// Move this iterator to a previously captured [`ShardIter::cursor`].
    ///
    /// Returns `false` (leaving the iterator untouched) when the cursor
    /// is not a position this shard can occupy: `produced` past the
    /// shard's budget, or `next` outside the group's element range.
    pub fn seek(&mut self, next: u64, produced: u64) -> bool {
        if produced > self.budget || next == 0 || next >= self.perm.p {
            return false;
        }
        self.next = next;
        self.produced = produced;
        true
    }
}

impl Iterator for ShardIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.produced < self.budget {
            let current = self.next;
            self.next = mod_mul(self.next, self.step, self.perm.p);
            self.produced += 1;
            // Group elements are 1..=p-1; addresses are 0..size.
            let addr = current - 1;
            if addr < self.perm.size {
                return Some(addr);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn full_cycle_is_a_permutation() {
        for size in [10u64, 100, 1000, 4096] {
            let perm = Permutation::new(size, 42);
            let visited: Vec<u64> = perm.iter().collect();
            assert_eq!(visited.len() as u64, size);
            let set: HashSet<u64> = visited.iter().copied().collect();
            assert_eq!(set.len() as u64, size, "all distinct");
            assert!(visited.iter().all(|a| *a < size));
        }
    }

    #[test]
    fn shards_partition_the_space() {
        let size = 10_007u64;
        let perm = Permutation::new(size, 7);
        for shard_count in [2u32, 3, 8] {
            let mut all = HashSet::new();
            let mut total = 0u64;
            for i in 0..shard_count {
                for addr in perm.shard(i, shard_count) {
                    assert!(all.insert(addr), "address visited twice");
                    total += 1;
                }
            }
            assert_eq!(total, size, "{shard_count} shards must cover all");
        }
    }

    #[test]
    fn different_seeds_different_orders() {
        let a: Vec<u64> = Permutation::new(1000, 1).iter().take(50).collect();
        let b: Vec<u64> = Permutation::new(1000, 2).iter().take(50).collect();
        assert_ne!(a, b);
        // But both cover the same set eventually.
        let sa: HashSet<u64> = Permutation::new(1000, 1).iter().collect();
        let sb: HashSet<u64> = Permutation::new(1000, 2).iter().collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn order_is_scattered_not_sequential() {
        // The permutation must not walk prefixes in order: count how many
        // successive pairs are adjacent addresses.
        let visited: Vec<u64> = Permutation::new(100_000, 3).iter().take(1000).collect();
        let adjacent = visited
            .windows(2)
            .filter(|w| w[1] == w[0] + 1 || w[0] == w[1] + 1)
            .count();
        assert!(adjacent < 5, "{adjacent} adjacent pairs in 1000 probes");
    }

    #[test]
    fn cursor_seek_resumes_mid_cycle() {
        let perm = Permutation::new(10_007, 11);
        for shard_count in [1u32, 4] {
            for index in 0..shard_count {
                let mut original = perm.shard(index, shard_count);
                // Consume an arbitrary prefix, capture the cursor …
                let prefix: Vec<u64> = original.by_ref().take(137).collect();
                let (next, produced) = original.cursor();
                // … then rebuild a fresh iterator at that position.
                let mut resumed = perm.shard(index, shard_count);
                assert!(resumed.seek(next, produced));
                assert_eq!(
                    resumed.collect::<Vec<u64>>(),
                    original.collect::<Vec<u64>>(),
                    "shard {index}/{shard_count} tail must continue identically"
                );
                assert!(!prefix.is_empty());
            }
        }
    }

    #[test]
    fn seek_rejects_impossible_cursors() {
        let perm = Permutation::new(1000, 3);
        let mut it = perm.shard(0, 2);
        let before = it.cursor();
        assert!(!it.seek(0, 1), "group element 0 does not exist");
        assert!(!it.seek(perm.modulus(), 1), "next must be < p");
        assert!(!it.seek(1, u64::MAX), "produced past the budget");
        assert_eq!(it.cursor(), before, "failed seeks leave the cursor");
    }

    #[test]
    fn deterministic() {
        let a: Vec<u64> = Permutation::new(5000, 9).iter().collect();
        let b: Vec<u64> = Permutation::new(5000, 9).iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_spaces() {
        assert_eq!(Permutation::new(1, 0).iter().collect::<Vec<_>>(), vec![0]);
        let two: HashSet<u64> = Permutation::new(2, 0).iter().collect();
        assert_eq!(two, HashSet::from([0, 1]));
    }

    #[test]
    fn spread_across_halves() {
        // First 1% of probes should already touch both halves of the
        // space roughly evenly (the anti-hammering property).
        let size = 1 << 20;
        let first: Vec<u64> = Permutation::new(size, 5).iter().take(10_000).collect();
        let low = first.iter().filter(|a| **a < size / 2).count();
        let frac = low as f64 / first.len() as f64;
        assert!((0.45..0.55).contains(&frac), "{frac}");
    }
}
