//! Bounded batched target ring between TX feeder threads and shard
//! scan worlds.
//!
//! The threaded topology ([`crate::driver::Topology::Threads`]) splits
//! each shard into a TX half that walks the cyclic-group permutation and
//! an RX half that paces, probes, and infers. This ring is the only
//! channel between them: the feeder pushes batches of admitted targets,
//! the scanner pulls them one at a time from `TargetIter::Feed`, and a
//! bounded capacity gives backpressure so a fast feeder cannot outrun a
//! deferred world by more than a few batches.
//!
//! Ownership and lock order are declared in
//! `crates/lint/src/concurrency.rs` (`Mutex` "inner", rank 15; channel
//! endpoint "feed" with `txrx.rs` as the send side and `scanner.rs` as
//! the receive side) so iw-lint's shared-state-audit and
//! channel-discipline rules gate every use. The mutex guards a plain
//! `VecDeque` plus close/stat bookkeeping; consumers drain whole batches
//! under one acquisition, so the per-target hot path stays lock-free.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// One admitted target, as produced by a TX feeder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct TargetMsg {
    /// Target address.
    pub ip: u32,
    /// Known domain (Alexa-style list targets), if any.
    pub domain: Option<String>,
    /// Generator cursor *after* producing this target (including any
    /// filter/sample rejects skipped on the way), in the same
    /// `(next, produced)` encoding as `permutation::ShardIter::cursor`.
    /// Checkpoints taken after consuming this target resume from here.
    pub cursor: (u64, u64),
}

/// Terminal state of a fully drained feed: the exhaustion cursor plus
/// the TX-side production stats, published by [`FeedSender::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FeedFinal {
    /// Generator cursor with the whole partition consumed.
    pub cursor: (u64, u64),
    /// Targets the feeder produced (admitted past filter + sampling).
    pub slots: u64,
    /// Batches pushed into the ring.
    pub batches: u64,
    /// Batches that had to wait for ring space (backpressure events).
    pub stalls: u64,
}

/// State behind the ring mutex.
struct FeedState {
    queue: VecDeque<TargetMsg>,
    closed: bool,
    finished: Option<FeedFinal>,
    /// The receiving world was dropped (killed/aborted run): discard
    /// further batches so the feeder drains instead of blocking forever.
    rx_gone: bool,
    slots: u64,
    batches: u64,
    stalls: u64,
}

struct Shared {
    /// Declared in crates/lint/src/concurrency.rs, lock-order rank 15.
    inner: Mutex<FeedState>,
    /// Feeder-side wait: ring has space again.
    space: Condvar,
    /// Scanner-side wait: ring has items (or closed).
    items: Condvar,
    capacity: usize,
}

/// TX half: owned by one feeder thread in `txrx.rs`.
pub(crate) struct FeedSender {
    shared: Arc<Shared>,
}

/// RX half: owned by one shard world's `Scanner` (`TargetIter::Feed`).
pub(crate) struct FeedReceiver {
    shared: Arc<Shared>,
    /// Batch drained out of the mutex; the per-target hot path pops
    /// from here without touching the lock.
    local: VecDeque<TargetMsg>,
    finished: Option<FeedFinal>,
}

/// Build a bounded ring holding at most `capacity` queued targets
/// (soft bound: one in-flight batch may overshoot it).
pub(crate) fn feed(capacity: usize) -> (FeedSender, FeedReceiver) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(FeedState {
            queue: VecDeque::new(),
            closed: false,
            finished: None,
            rx_gone: false,
            slots: 0,
            batches: 0,
            stalls: 0,
        }),
        space: Condvar::new(),
        items: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        FeedSender {
            shared: Arc::clone(&shared),
        },
        FeedReceiver {
            shared,
            local: VecDeque::new(),
            finished: None,
        },
    )
}

impl FeedSender {
    /// Push a batch, blocking while the ring is at capacity. Batches
    /// are discarded (but still counted) once the receiver is gone.
    pub fn send(&self, batch: Vec<TargetMsg>) {
        if batch.is_empty() {
            return;
        }
        let Ok(mut inner) = self.shared.inner.lock() else {
            return;
        };
        let mut stalled = false;
        while inner.queue.len() >= self.shared.capacity && !inner.rx_gone {
            stalled = true;
            let Ok(next) = self.shared.space.wait(inner) else {
                return;
            };
            inner = next;
        }
        inner.stalls += u64::from(stalled);
        inner.batches += 1;
        inner.slots += batch.len() as u64;
        if !inner.rx_gone {
            inner.queue.extend(batch);
            self.shared.items.notify_one();
        }
    }

    /// Close the feed: the partition is fully walked. `cursor` is the
    /// generator state with everything consumed (trailing rejects
    /// included), so a checkpoint taken at exhaustion matches a
    /// self-pacing scanner's byte-for-byte.
    pub fn close(self, cursor: (u64, u64)) {
        let Ok(mut inner) = self.shared.inner.lock() else {
            return;
        };
        inner.finished = Some(FeedFinal {
            cursor,
            slots: inner.slots,
            batches: inner.batches,
            stalls: inner.stalls,
        });
        inner.closed = true;
        self.shared.items.notify_one();
    }
}

impl Drop for FeedSender {
    fn drop(&mut self) {
        // A feeder that unwound without `close` (panic) still releases
        // the scanner; the missing `finished` marks the feed as torn.
        let Ok(mut inner) = self.shared.inner.lock() else {
            return;
        };
        if !inner.closed {
            inner.closed = true;
            self.shared.items.notify_one();
        }
    }
}

impl FeedReceiver {
    /// Pull the next target, blocking (in wall time — virtual time is
    /// unaffected) until the feeder produces one or closes the feed.
    /// Returns `None` exactly once the feed is closed and drained.
    pub fn recv(&mut self) -> Option<TargetMsg> {
        if let Some(msg) = self.local.pop_front() {
            return Some(msg);
        }
        let Ok(mut inner) = self.shared.inner.lock() else {
            return None;
        };
        loop {
            if !inner.queue.is_empty() {
                std::mem::swap(&mut self.local, &mut inner.queue);
                self.shared.space.notify_one();
                return self.local.pop_front();
            }
            if inner.closed {
                if let Some(f) = inner.finished {
                    self.finished = Some(f);
                }
                return None;
            }
            let Ok(next) = self.shared.items.wait(inner) else {
                return None;
            };
            inner = next;
        }
    }

    /// Terminal feed state; available after `recv` has returned `None`
    /// on a cleanly closed feed.
    pub fn finished(&self) -> Option<&FeedFinal> {
        self.finished.as_ref()
    }
}

impl Drop for FeedReceiver {
    fn drop(&mut self) {
        // A world abandoned mid-feed (kill/abort) must not strand its
        // feeder on a full ring: flag the disconnect and wake it.
        let Ok(mut inner) = self.shared.inner.lock() else {
            return;
        };
        inner.rx_gone = true;
        inner.queue.clear();
        self.shared.space.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(ip: u32) -> TargetMsg {
        TargetMsg {
            ip,
            domain: None,
            cursor: (u64::from(ip) + 1, u64::from(ip) + 1),
        }
    }

    #[test]
    fn fifo_across_batches() {
        let (tx, mut rx) = feed(16);
        tx.send(vec![msg(1), msg(2)]);
        tx.send(vec![msg(3)]);
        tx.close((9, 9));
        let got: Vec<u32> = std::iter::from_fn(|| rx.recv()).map(|m| m.ip).collect();
        assert_eq!(got, vec![1, 2, 3]);
        let fin = rx.finished().copied().unwrap();
        assert_eq!(fin.cursor, (9, 9));
        assert_eq!(fin.slots, 3);
        assert_eq!(fin.batches, 2);
        assert_eq!(fin.stalls, 0);
    }

    #[test]
    fn recv_after_exhaustion_stays_none_and_keeps_final_state() {
        let (tx, mut rx) = feed(4);
        tx.send(vec![msg(7)]);
        tx.close((1, 1));
        assert_eq!(rx.recv().map(|m| m.ip), Some(7));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.finished().map(|f| f.cursor), Some((1, 1)));
    }

    #[test]
    fn bounded_capacity_blocks_and_counts_stalls() {
        let (tx, mut rx) = feed(2);
        let producer = std::thread::spawn(move || {
            for i in 0..10u32 {
                tx.send(vec![msg(i)]);
            }
            tx.close((0xFF, 10));
        });
        // Drain slowly from this side; the producer must block (it can
        // hold at most capacity + one batch in flight) yet every target
        // still arrives in order.
        let mut got = Vec::new();
        while let Some(m) = rx.recv() {
            got.push(m.ip);
        }
        producer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        let fin = rx.finished().copied().unwrap();
        assert_eq!(fin.slots, 10);
        assert_eq!(fin.batches, 10);
    }

    #[test]
    fn dropped_receiver_unblocks_the_feeder() {
        let (tx, rx) = feed(1);
        drop(rx);
        // Every send now returns immediately instead of waiting for
        // space that will never appear.
        for i in 0..100u32 {
            tx.send(vec![msg(i)]);
        }
        tx.close((0, 0));
    }

    #[test]
    fn dropped_sender_closes_the_feed_without_final_state() {
        let (tx, mut rx) = feed(4);
        tx.send(vec![msg(1)]);
        drop(tx);
        assert_eq!(rx.recv().map(|m| m.ip), Some(1));
        assert_eq!(rx.recv(), None);
        assert!(rx.finished().is_none(), "torn feed has no final cursor");
    }
}
