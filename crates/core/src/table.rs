//! Open-addressed hash table keyed by IPv4 address.
//!
//! The scanner keeps several per-target side tables (live sessions,
//! pending SYN retries, RTT timestamps, path-MTU probe state) that are
//! hit once or twice for every packet on the wire. All of them key on
//! the one component of the 4-tuple that actually varies during a scan —
//! the 32-bit target address; source address and both ports are fixed by
//! the session-parameter schedule. `IpMap` exploits that: a flat
//! power-of-two slot array, a single 64-bit multiply-xor finalizer over
//! the address (no SipHash, no `Hasher` indirection), robin-hood probing
//! to keep probe chains short at high load, and backward-shift deletion
//! so the table never accumulates tombstones no matter how many sessions
//! churn through it.
//!
//! Iteration order is *not* part of the contract (it follows hash order,
//! like `std::collections::HashMap`); the scanner never derives output
//! from table iteration, so determinism of scan results is preserved by
//! construction.

/// Maximum load numerator/denominator: grow at 7/8 full.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// Initial number of slots on first insert.
const INITIAL_SLOTS: usize = 16;

/// An open-addressed map from host-order IPv4 address to `V`.
///
/// Robin-hood probing with backward-shift deletion; amortized O(1)
/// insert/lookup/remove with no tombstones.
#[derive(Debug, Clone)]
pub struct IpMap<V> {
    /// Power-of-two slot array (empty until the first insert).
    slots: Vec<Option<(u32, V)>>,
    len: usize,
}

impl<V> Default for IpMap<V> {
    fn default() -> Self {
        IpMap::new()
    }
}

/// SplitMix64 finalizer over the address: full-avalanche in three
/// multiply-xor rounds, so consecutive addresses spread across slots.
#[inline]
fn hash(key: u32) -> u64 {
    let mut x = u64::from(key).wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl<V> IpMap<V> {
    /// An empty map (allocates nothing until the first insert).
    pub fn new() -> IpMap<V> {
        IpMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Probe distance of the key resident at `idx` from its ideal slot.
    #[inline]
    fn displacement(&self, idx: usize, key: u32) -> usize {
        let ideal = (hash(key) as usize) & self.mask();
        (idx.wrapping_sub(ideal)) & self.mask()
    }

    /// Insert or replace; returns the previous value for the key.
    pub fn insert(&mut self, key: u32, value: V) -> Option<V> {
        if self.slots.is_empty() || (self.len + 1) * LOAD_DEN > self.slots.len() * LOAD_NUM {
            self.grow();
        }
        let mask = self.mask();
        let mut idx = (hash(key) as usize) & mask;
        let mut dist = 0usize;
        let mut entry = (key, value);
        loop {
            match self.slots[idx].as_mut() {
                None => {
                    self.slots[idx] = Some(entry);
                    self.len += 1;
                    return None;
                }
                Some(resident) => {
                    if resident.0 == entry.0 {
                        return Some(std::mem::replace(&mut resident.1, entry.1));
                    }
                    // Robin hood: the richer entry (smaller displacement)
                    // yields its slot and continues probing.
                    let ideal = (hash(resident.0) as usize) & mask;
                    let theirs = idx.wrapping_sub(ideal) & mask;
                    if theirs < dist {
                        std::mem::swap(resident, &mut entry);
                        dist = theirs;
                    }
                }
            }
            idx = (idx + 1) & mask;
            dist += 1;
        }
    }

    /// Find the slot index holding `key`, if present.
    #[inline]
    fn find(&self, key: u32) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mask = self.mask();
        let mut idx = (hash(key) as usize) & mask;
        let mut dist = 0usize;
        loop {
            match &self.slots[idx] {
                None => return None,
                Some((k, _)) => {
                    if *k == key {
                        return Some(idx);
                    }
                    // The robin-hood invariant orders a probe chain by
                    // displacement: passing an entry closer to home than
                    // we are proves the key is absent.
                    if self.displacement(idx, *k) < dist {
                        return None;
                    }
                }
            }
            idx = (idx + 1) & mask;
            dist += 1;
        }
    }

    /// Shared reference to the value for `key`.
    pub fn get(&self, key: u32) -> Option<&V> {
        self.find(key)
            .and_then(|idx| self.slots[idx].as_ref())
            .map(|(_, v)| v)
    }

    /// Mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut V> {
        self.find(key)
            .and_then(|idx| self.slots[idx].as_mut())
            .map(|(_, v)| v)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: u32) -> bool {
        self.find(key).is_some()
    }

    /// Remove `key`, returning its value. Backward-shift deletion: the
    /// tail of the probe chain moves one slot closer to home, so no
    /// tombstone is left and lookups never scan dead slots.
    pub fn remove(&mut self, key: u32) -> Option<V> {
        let idx = self.find(key)?;
        let removed = self.slots[idx].take().map(|(_, v)| v);
        if removed.is_some() {
            self.len -= 1;
        }
        let mask = self.mask();
        let mut hole = idx;
        let mut cur = (idx + 1) & mask;
        loop {
            let shift = match &self.slots[cur] {
                Some((k, _)) => self.displacement(cur, *k) > 0,
                None => false,
            };
            if !shift {
                break;
            }
            self.slots[hole] = self.slots[cur].take();
            hole = cur;
            cur = (cur + 1) & mask;
        }
        removed
    }

    /// Keep only entries for which `f` returns true.
    ///
    /// Collects doomed keys first, then removes them one by one: the
    /// backward shifts of removal would otherwise move not-yet-visited
    /// entries behind the scan cursor.
    pub fn retain(&mut self, mut f: impl FnMut(&u32, &mut V) -> bool) {
        let mut dead: Vec<u32> = Vec::new();
        for (k, v) in self.slots.iter_mut().flatten() {
            if !f(k, v) {
                dead.push(*k);
            }
        }
        for k in dead {
            self.remove(k);
        }
    }

    /// Iterate over `(key, &value)` in hash order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &V)> {
        self.slots
            .iter()
            .filter_map(|slot| slot.as_ref().map(|(k, v)| (*k, v)))
    }

    /// Double the slot array (or allocate it) and re-file every entry.
    fn grow(&mut self) {
        let new_cap = if self.slots.is_empty() {
            INITIAL_SLOTS
        } else {
            self.slots.len() * 2
        };
        let old = std::mem::replace(&mut self.slots, (0..new_cap).map(|_| None).collect());
        self.len = 0;
        for (k, v) in old.into_iter().flatten() {
            self.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// xorshift64* — deterministic op streams for the model test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = IpMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "a"), None);
        assert_eq!(m.insert(2, "b"), None);
        assert_eq!(m.insert(1, "a2"), Some("a"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(1), Some(&"a2"));
        assert_eq!(m.get(3), None);
        assert!(m.contains_key(2));
        assert_eq!(m.remove(1), Some("a2"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut m = IpMap::new();
        m.insert(42, 0u32);
        if let Some(v) = m.get_mut(42) {
            *v = 7;
        }
        assert_eq!(m.get(42), Some(&7));
    }

    #[test]
    fn matches_std_hashmap_under_random_churn() {
        // 20k mixed operations over a deliberately small key space so
        // collisions, displacement chains and backward shifts all happen
        // constantly; the std HashMap is the reference model.
        for seed in 1..=5u64 {
            let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
            let mut m: IpMap<u64> = IpMap::new();
            let mut model: HashMap<u32, u64> = HashMap::new();
            for step in 0..20_000u64 {
                let key = (rng.next() % 512) as u32;
                match rng.next() % 4 {
                    0 | 1 => {
                        assert_eq!(m.insert(key, step), model.insert(key, step), "seed {seed}");
                    }
                    2 => {
                        assert_eq!(m.remove(key), model.remove(&key), "seed {seed}");
                    }
                    _ => {
                        assert_eq!(m.get(key), model.get(&key), "seed {seed}");
                        assert_eq!(m.contains_key(key), model.contains_key(&key));
                    }
                }
                assert_eq!(m.len(), model.len(), "seed {seed}");
            }
            let mut got: Vec<(u32, u64)> = m.iter().map(|(k, v)| (k, *v)).collect();
            got.sort_unstable();
            let mut want: Vec<(u32, u64)> = model.into_iter().collect();
            want.sort_unstable();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn retain_matches_model() {
        let mut m: IpMap<u32> = IpMap::new();
        let mut model: HashMap<u32, u32> = HashMap::new();
        for k in 0..1000u32 {
            m.insert(k, k * 3);
            model.insert(k, k * 3);
        }
        m.retain(|k, v| (*k + *v) % 3 == 0 || *k < 10);
        model.retain(|k, v| (*k + *v) % 3 == 0 || *k < 10);
        assert_eq!(m.len(), model.len());
        for (k, v) in &model {
            assert_eq!(m.get(*k), Some(v));
        }
    }

    #[test]
    fn full_churn_leaves_no_residue() {
        // Insert and remove the same large batch repeatedly: without
        // backward-shift deletion this degrades as tombstones pile up;
        // here the table must end every lap exactly empty.
        let mut m: IpMap<u32> = IpMap::new();
        for lap in 0..5u32 {
            for k in 0..10_000u32 {
                m.insert(k, lap);
            }
            assert_eq!(m.len(), 10_000);
            for k in 0..10_000u32 {
                assert_eq!(m.remove(k), Some(lap), "lap {lap}");
            }
            assert!(m.is_empty(), "lap {lap}");
        }
    }

    #[test]
    fn adversarial_same_slot_keys() {
        // Keys engineered to share low hash bits still resolve by linear
        // probing; deleting the head of the chain must not orphan the
        // tail (the backward shift repairs it).
        let mut m: IpMap<u32> = IpMap::new();
        let keys: Vec<u32> = (0..64u32).collect();
        for &k in &keys {
            m.insert(k, k + 100);
        }
        for &k in &keys {
            assert_eq!(m.get(k), Some(&(k + 100)));
        }
        for &k in keys.iter().step_by(2) {
            m.remove(k);
        }
        for &k in &keys {
            if k % 2 == 0 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(&(k + 100)));
            }
        }
    }
}
