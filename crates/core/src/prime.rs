//! Primality testing and primitive-root search.
//!
//! ZMap iterates the IPv4 space as the cyclic group ⟨g⟩ ⊂ (Z/pZ)* with
//! the fixed prime p = 2³² + 15. Because our reproduction scans *scaled*
//! spaces, we generalize: for any space size n we find the smallest prime
//! p > n and a primitive root g of p, giving a full-cycle permutation of
//! {1, …, p−1} that we filter to {1, …, n}.

/// Deterministic Miller–Rabin, exact for all `u64` inputs
/// (the standard 12-witness set).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // n-1 = d · 2^s with d odd
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a % n, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mod_mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The smallest prime strictly greater than `n`.
pub fn next_prime(n: u64) -> u64 {
    let mut candidate = n + 1;
    if candidate <= 2 {
        return 2;
    }
    if candidate.is_multiple_of(2) {
        candidate += 1;
    }
    while !is_prime(candidate) {
        candidate += 2;
    }
    candidate
}

/// Modular multiplication without overflow (via u128).
pub fn mod_mul(a: u64, b: u64, m: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// Modular exponentiation.
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    if m == 1 {
        return 0;
    }
    let mut acc = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mod_mul(acc, base, m);
        }
        base = mod_mul(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Prime factorization by trial division (fine for p−1 of ≤ 2⁶⁴ scan
/// spaces: our p−1 values are small and smooth enough in practice; the
/// loop is bounded by √n).
pub fn factorize(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d.saturating_mul(d) <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += if d == 2 { 1 } else { 2 };
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

/// Find a primitive root of prime `p`, starting the search at a
/// seed-dependent offset so different scans use different generators
/// (ZMap randomizes its generator per scan the same way).
pub fn primitive_root(p: u64, seed: u64) -> u64 {
    assert!(is_prime(p), "primitive roots need a prime modulus");
    if p == 2 {
        return 1;
    }
    let phi = p - 1;
    let factors = factorize(phi);
    // Walk candidates deterministically from a well-mixed seed offset.
    let mixed = iw_internet::util::splitmix64(seed);
    let mut candidate = 2 + mixed % (p - 3).max(1);
    loop {
        if is_primitive_root(candidate, p, phi, &factors) {
            return candidate;
        }
        candidate += 1;
        if candidate >= p {
            candidate = 2;
        }
    }
}

fn is_primitive_root(g: u64, p: u64, phi: u64, factors: &[u64]) -> bool {
    if g.is_multiple_of(p) {
        return false;
    }
    factors.iter().all(|f| mod_pow(g, phi / f, p) != 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 65537, 4294967311];
        for p in primes {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 9, 100, 65536, 4294967297] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn zmap_prime() {
        // The prime ZMap uses for the full IPv4 space: 2^32 + 15.
        assert_eq!(next_prime(1 << 32), (1u64 << 32) + 15);
    }

    #[test]
    fn next_prime_examples() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(13), 17);
        assert_eq!(next_prime(1 << 22), (1 << 22) + 15);
    }

    #[test]
    fn factorize_examples() {
        assert_eq!(factorize(12), vec![2, 3]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(2 * 3 * 5 * 7 * 11), vec![2, 3, 5, 7, 11]);
        assert_eq!(factorize(1), Vec::<u64>::new());
    }

    #[test]
    fn primitive_root_generates_full_group() {
        let p = 101u64;
        let g = primitive_root(p, 0);
        let mut seen = std::collections::HashSet::new();
        let mut x = 1u64;
        for _ in 0..p - 1 {
            x = mod_mul(x, g, p);
            seen.insert(x);
        }
        assert_eq!(seen.len() as u64, p - 1, "g={g} must generate Z_{p}^*");
    }

    #[test]
    fn primitive_root_seed_dependence() {
        let p = next_prime(1 << 16);
        let a = primitive_root(p, 1);
        let b = primitive_root(p, 999);
        // Different seeds usually land on different roots.
        assert!(a != b || p < 100);
        for g in [a, b] {
            let phi = p - 1;
            let factors = factorize(phi);
            assert!(factors.iter().all(|f| mod_pow(g, phi / f, p) != 1));
        }
    }

    #[test]
    fn mod_pow_edge_cases() {
        assert_eq!(mod_pow(2, 10, 1_000_000), 1024);
        assert_eq!(mod_pow(5, 0, 7), 1);
        assert_eq!(mod_pow(0, 5, 7), 0);
        assert_eq!(mod_pow(u64::MAX - 1, 2, u64::MAX - 2), 1); // (m+1)^2 ≡ 1, no overflow
    }
}
