//! Controlled two-node testbed (§3.5 validation).
//!
//! "We manually validated our IW estimation approach in two controlled
//! testbed experiments by running different versions of Linux and
//! Windows" — this module is that testbed: one scanner, one host with an
//! exactly known configuration, one configurable link (clean, lossy, or
//! with scripted drops for exact tail loss), and optionally a full
//! packet trace for inspection.

use crate::results::{HostResult, Protocol};
use crate::scanner::{ScanConfig, Scanner, TargetSpec};
use iw_hoststack::{Host, HostConfig};
use iw_netsim::{Endpoint, LinkConfig, Sim, SimConfig, Trace};
use iw_wire::ipv4::Ipv4Addr;

/// One controlled experiment.
#[derive(Debug, Clone)]
pub struct TestbedSpec {
    /// The host under test.
    pub host: HostConfig,
    /// The link between scanner and host.
    pub link: LinkConfig,
    /// Protocol to probe.
    pub protocol: Protocol,
    /// Scan seed.
    pub seed: u64,
    /// Known domain (sets Host header / SNI), as when probing by name.
    pub domain: Option<String>,
    /// Record a packet trace.
    pub record_trace: bool,
}

impl TestbedSpec {
    /// A clean-link testbed probe of `host`.
    pub fn new(host: HostConfig, protocol: Protocol) -> TestbedSpec {
        TestbedSpec {
            host,
            link: LinkConfig::testbed(),
            protocol,
            seed: 7,
            domain: None,
            record_trace: false,
        }
    }
}

/// The target address used by the testbed.
pub const TESTBED_HOST_IP: u32 = 0x0a00_0001;

/// Run one controlled measurement; returns the host record (if the host
/// answered) plus the packet trace (empty unless requested).
pub fn probe_host(spec: &TestbedSpec) -> (Option<HostResult>, Trace) {
    let mut config = ScanConfig::study(spec.protocol, 1 << 8, spec.seed);
    config.targets = TargetSpec::List(vec![(TESTBED_HOST_IP, spec.domain.clone())]);
    config.rate_pps = 1_000_000;
    let scanner = Scanner::new(config);

    let host_config = spec.host.clone();
    let link = spec.link.clone();
    let seed = spec.seed;
    let factory = move |ip: u32| {
        if ip == TESTBED_HOST_IP {
            Some((
                Box::new(Host::new(Ipv4Addr::from_u32(ip), host_config.clone(), seed))
                    as Box<dyn Endpoint>,
                link.clone(),
            ))
        } else {
            None
        }
    };
    let mut sim = Sim::new(
        scanner,
        factory,
        SimConfig {
            seed: spec.seed,
            record_trace: spec.record_trace,
            ..SimConfig::default()
        },
    );
    sim.kick_scanner(|s, now, fx| s.start(now, fx));
    sim.run_to_completion();
    let result = sim.scanner().results().first().cloned();
    (result, sim.trace().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::MssVerdict;
    use iw_hoststack::IwPolicy;

    #[test]
    fn ground_truth_recovered_on_clean_link() {
        let spec = TestbedSpec::new(HostConfig::simple_web(50_000), Protocol::Http);
        let (result, _) = probe_host(&spec);
        let result = result.expect("host answered");
        assert_eq!(result.primary_verdict(), Some(MssVerdict::Success(10)));
    }

    #[test]
    fn insufficient_data_detected() {
        // A 300 B page on an IW10 host, with URI echo off so the bloat
        // retry cannot rescue the probe: the estimate must degrade to a
        // lower bound.
        let mut host = HostConfig::simple_web(300);
        host.iw = IwPolicy::Segments(10);
        if let Some(http) = &mut host.http {
            http.behavior = iw_hoststack::HttpBehavior::Direct {
                root_size: 300,
                echo_404: false,
            };
        }
        let spec = TestbedSpec::new(host, Protocol::Http);
        let (result, _) = probe_host(&spec);
        let result = result.expect("host answered");
        match result.primary_verdict().unwrap() {
            MssVerdict::FewData(lb) => assert!(lb >= 4, "bound {lb}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn uri_echo_rescues_error_page_hosts() {
        // A host that 404s everything but echoes the URI: the initial
        // "/" yields a tiny error page, and the bloated-URI retry grows
        // it past the IW (§3.2's rescue path).
        let mut host = HostConfig::simple_web(0);
        host.iw = IwPolicy::Segments(10);
        if let Some(http) = &mut host.http {
            http.behavior = iw_hoststack::HttpBehavior::NotFound {
                base_size: 200,
                echo_uri: true,
            };
        }
        let spec = TestbedSpec::new(host, Protocol::Http);
        let (result, _) = probe_host(&spec);
        let result = result.unwrap();
        assert_eq!(
            result.primary_verdict(),
            Some(MssVerdict::Success(10)),
            "error-page bloating (§3.2) must recover the IW: {:?}",
            result.runs
        );
    }

    #[test]
    fn small_200_is_final_no_bloat_retry() {
        // A 2xx page, however small, is a final answer: the probe must
        // not burn a second connection on it.
        let mut host = HostConfig::simple_web(300);
        host.iw = IwPolicy::Segments(10);
        let spec = TestbedSpec::new(host, Protocol::Http);
        let (result, _) = probe_host(&spec);
        let result = result.unwrap();
        match result.primary_verdict().unwrap() {
            MssVerdict::FewData(lb) => assert!(lb >= 4, "bound {lb}"),
            other => panic!("{other:?}"),
        }
        for (_, outcomes) in &result.runs {
            for o in outcomes {
                if let crate::results::ProbeOutcome::FewData { redirected, .. } = o {
                    assert!(!redirected, "no second connection for a 2xx");
                }
            }
        }
    }

    #[test]
    fn trace_recording_shows_fig1_exchange() {
        let mut spec = TestbedSpec::new(HostConfig::simple_web(50_000), Protocol::Http);
        spec.record_trace = true;
        let (_, trace) = probe_host(&spec);
        let rendered = trace.render_tcp();
        assert!(rendered.contains("SYN"), "{rendered}");
        assert!(rendered.contains("[MSS=64]"), "{rendered}");
        assert!(rendered.contains("RST"), "{rendered}");
    }
}
