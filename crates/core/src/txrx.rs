//! TX feeder threads: the send half of `Topology::Threads`.
//!
//! A feeder owns one shard's target generation — it walks the shard's
//! cyclic-group partition (or its round-robin slice of an explicit
//! list), applies the blacklist and the sampling filter, and pushes
//! batches of admitted targets into the bounded ring (`ring::feed`).
//! Pacing deliberately stays on the scan-world side: the feeder runs as
//! far ahead as ring capacity allows, and the world's per-shard token
//! bucket (`rate::shard_rate`) decides when each target actually leaves.
//!
//! Every message carries the generator cursor as of that target, and
//! the close carries the fully-walked terminal cursor, so a fed world's
//! checkpoints are byte-identical to a self-generating shard's.

use crate::permutation::Permutation;
use crate::ring::{FeedSender, TargetMsg};
use crate::scanner::{sample_admits, ScanConfig, TargetSpec};

/// Queued targets a ring holds before the feeder blocks (soft bound —
/// one in-flight batch may overshoot). At study rates one capacity is
/// tens of pacing ticks of headroom.
pub(crate) const FEED_CAPACITY: usize = 4096;
/// Targets per pushed batch: large enough to amortize the ring lock,
/// small enough that a world never waits long for its first targets.
pub(crate) const FEED_BATCH: usize = 256;

/// How many entries of an explicit `len`-target list land in round-robin
/// partition `index` of `count`.
pub(crate) fn list_partition_len(len: usize, index: u32, count: u32) -> u64 {
    let count = u64::from(count.max(1));
    let len = len as u64;
    len / count + u64::from(u64::from(index) < len % count)
}

/// Generate shard `config.shard` of the target space into the ring, then
/// close it with the terminal cursor. Runs on its own thread; the only
/// shared state it touches is the ring.
pub(crate) fn run_feeder(config: &ScanConfig, feed: FeedSender) {
    let mut batch: Vec<TargetMsg> = Vec::with_capacity(FEED_BATCH);
    let final_cursor = match &config.targets {
        TargetSpec::FullSpace { size } => {
            let perm = Permutation::new(u64::from(*size), config.seed);
            let mut iter = perm.shard(config.shard.0, config.shard.1);
            while let Some(addr) = iter.next() {
                let ip = addr as u32;
                if !config.filter.admits(ip) || !sample_admits(config, ip) {
                    continue;
                }
                batch.push(TargetMsg {
                    ip,
                    domain: None,
                    cursor: iter.cursor(),
                });
                if batch.len() == FEED_BATCH {
                    let full = std::mem::replace(&mut batch, Vec::with_capacity(FEED_BATCH));
                    feed.send(full);
                }
            }
            iter.cursor()
        }
        TargetSpec::List(list) => {
            let count = config.shard.1.max(1) as usize;
            let index = config.shard.0 as usize;
            let mut remaining = list_partition_len(list.len(), config.shard.0, config.shard.1);
            for (k, (ip, domain)) in list.iter().enumerate() {
                if k % count != index {
                    continue;
                }
                remaining -= 1;
                if !config.filter.admits(*ip) || !sample_admits(config, *ip) {
                    continue;
                }
                batch.push(TargetMsg {
                    ip: *ip,
                    domain: domain.clone(),
                    cursor: (remaining, 0),
                });
                if batch.len() == FEED_BATCH {
                    let full = std::mem::replace(&mut batch, Vec::with_capacity(FEED_BATCH));
                    feed.send(full);
                }
            }
            (0, 0)
        }
    };
    feed.send(batch);
    feed.close(final_cursor);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::Protocol;
    use crate::ring;

    fn config(space: u32, shard: (u32, u32)) -> ScanConfig {
        let mut c = ScanConfig::study(Protocol::Http, space, 7);
        c.shard = shard;
        c
    }

    /// Drain a feeder's whole output on the current thread (capacity is
    /// large enough that nothing blocks at these sizes).
    fn drain(config: &ScanConfig) -> (Vec<TargetMsg>, ring::FeedFinal) {
        let (tx, mut rx) = ring::feed(1 << 20);
        run_feeder(config, tx);
        let mut out = Vec::new();
        while let Some(msg) = rx.recv() {
            out.push(msg);
        }
        let fin = *rx.finished().expect("clean close");
        (out, fin)
    }

    #[test]
    fn feeders_partition_the_space_exactly() {
        let space = 1 << 12;
        let single = drain(&config(space, (0, 1))).0;
        for count in [2u32, 3, 8] {
            let mut merged: Vec<u32> = (0..count)
                .flat_map(|i| drain(&config(space, (i, count))).0)
                .map(|m| m.ip)
                .collect();
            merged.sort_unstable();
            let mut want: Vec<u32> = single.iter().map(|m| m.ip).collect();
            want.sort_unstable();
            assert_eq!(merged, want, "{count} feeders");
        }
    }

    #[test]
    fn final_cursor_matches_a_fully_consumed_iterator() {
        let cfg = config(1 << 10, (1, 3));
        let (_, fin) = drain(&cfg);
        let mut iter = Permutation::new(1 << 10, cfg.seed).shard(1, 3);
        for _ in iter.by_ref() {}
        assert_eq!(fin.cursor, iter.cursor());
        assert!(fin.slots > 0);
        assert_eq!(fin.batches, fin.slots.div_ceil(FEED_BATCH as u64));
    }

    #[test]
    fn list_partition_lengths_cover_the_list() {
        for (len, count) in [(10usize, 3u32), (7, 8), (0, 4), (100, 1)] {
            let total: u64 = (0..count).map(|i| list_partition_len(len, i, count)).sum();
            assert_eq!(total, len as u64, "len {len} over {count}");
        }
    }
}
