//! Per-host probe sessions: the §4 scan configuration.
//!
//! "We decided to probe each host three times to account for tail loss
//! and count it successful if at least two out of three probes yield the
//! same result and … we require them to be the maximum of all three
//! probes. To further test if hosts adjust their IW based on the
//! announced MSS … we scan with an MSS of 64 B and 128 B. To ensure no
//! temporal changes at the host, all six probes (three for each MSS) are
//! sent after each other."

use crate::cookie::CookieKey;
use crate::inference::{ConnConfig, ConnNote, ConnOutput, InferenceConn};
use crate::probe::http::HttpProbe;
use crate::probe::tls::TlsProbe;
use crate::probe::{ProbeDriver, ProbeStep};
use crate::results::{ErrorKind, HostResult, HostVerdict, MssVerdict, ProbeOutcome, Protocol};
use iw_internet::util::mix;
use iw_netsim::{Duration, Instant};
use iw_telemetry::{OutcomeKind, SessionEvent};
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp;

/// Session-wide parameters shared by all hosts of a scan.
#[derive(Debug, Clone)]
pub struct SessionParams {
    /// Protocol under measurement (HTTP or TLS).
    pub protocol: Protocol,
    /// Probes per MSS value (3 in the study).
    pub probes_per_mss: u32,
    /// MSS values, in probe order ([64, 128] in the study).
    pub mss_list: Vec<u16>,
    /// First source port; each connection takes one from here up.
    pub base_sport: u16,
    /// Scanner address.
    pub source: Ipv4Addr,
    /// Scan seed (drives the ClientHello randoms).
    pub seed: u64,
    /// Exhaustion-verification knob (see [`ConnConfig::verify_exhaustion`]).
    pub verify_exhaustion: bool,
    /// How many times an `Error`/`Unreachable` probe outcome is retried on
    /// a fresh connection before being recorded (0 = record immediately).
    pub probe_retries: u32,
    /// Delay before a retry connection; doubles with every attempt.
    pub probe_backoff: Duration,
}

impl SessionParams {
    /// The study configuration for a protocol.
    pub fn study(protocol: Protocol, source: Ipv4Addr, seed: u64) -> SessionParams {
        SessionParams {
            protocol,
            probes_per_mss: 3,
            mss_list: vec![64, 128],
            base_sport: 40000,
            source,
            seed,
            verify_exhaustion: true,
            probe_retries: 0,
            probe_backoff: Duration::from_millis(500),
        }
    }

    /// Total probes per host.
    pub fn total_probes(&self) -> u32 {
        self.probes_per_mss * self.mss_list.len() as u32
    }

    /// The source port of (probe, conn, attempt) — 2 connections max per
    /// probe; retry attempts stride past the whole base block so retry
    /// connections never collide with an earlier attempt's ports.
    pub fn sport(&self, probe_idx: u32, conn_idx: u8, attempt: u32) -> u16 {
        let block = (self.total_probes() * 2) as u16;
        self.base_sport
            .wrapping_add((attempt as u16).wrapping_mul(block))
            .wrapping_add((probe_idx * 2) as u16)
            .wrapping_add(u16::from(conn_idx))
    }
}

/// Output of feeding an event to a session.
#[derive(Debug, Default)]
pub struct SessionOutput {
    /// Segments to transmit to the session's host.
    pub tx: Vec<tcp::Repr>,
    /// Deadline to be woken at.
    pub deadline: Option<Instant>,
    /// Present once: the finished host record.
    pub result: Option<HostResult>,
    /// Lifecycle transitions for the scan event log (the scanner stamps
    /// them with host address and virtual time).
    pub events: Vec<SessionEvent>,
}

/// A live measurement session against one host.
pub struct HostSession {
    ip: Ipv4Addr,
    params: SessionParams,
    cookie: CookieKey,
    /// Optional known domain (Alexa scans): Host header + SNI.
    domain: Option<String>,
    probe_idx: u32,
    conn_idx: u8,
    /// Retry attempt of the current probe (0 = first try). Strides the
    /// source-port allocation so retry connections use fresh ports.
    attempt: u32,
    /// Retries consumed by the current probe; reset when the probe records.
    retries_used: u32,
    /// When set, the session is backing off; the next timer at/after this
    /// instant launches the retry connection.
    retry_at: Option<Instant>,
    driver: Box<dyn ProbeDriver + Send>,
    conn: InferenceConn,
    /// Outcomes per MSS run.
    runs: Vec<(u16, Vec<ProbeOutcome>)>,
    done: bool,
    /// When the session was created (SYN-ACK arrival); session-lifetime
    /// telemetry measures from here.
    started: Instant,
    /// The deadline the scanner last armed a simulator timer for. Stale
    /// timer fires are no-ops by construction, so arming a second timer
    /// for the same instant buys nothing — the scanner consults this to
    /// skip duplicate arms and keep the event queue lean.
    armed: Option<Instant>,
}

impl HostSession {
    /// Start a session. The initial SYN for (probe 0, conn 0) was already
    /// sent statelessly by the scanner, so the returned output carries no
    /// SYN — feed the SYN-ACK that created this session via
    /// [`HostSession::on_segment`].
    pub fn new(
        ip: Ipv4Addr,
        params: SessionParams,
        cookie: CookieKey,
        domain: Option<String>,
        now: Instant,
    ) -> HostSession {
        let mut runs = Vec::with_capacity(params.mss_list.len());
        for mss in &params.mss_list {
            runs.push((*mss, Vec::new()));
        }
        let mut driver = make_driver(&params, ip, &domain, 0);
        let request = driver.initial_request();
        let cfg = conn_config(&params, &cookie, ip, 0, 0, 0, request);
        // Reconstruct the conn machine in SynSent; discard its duplicate
        // SYN (already on the wire).
        let (conn, _discard) = InferenceConn::new(cfg, now);
        HostSession {
            ip,
            params,
            cookie,
            domain,
            probe_idx: 0,
            conn_idx: 0,
            attempt: 0,
            retries_used: 0,
            retry_at: None,
            driver,
            conn,
            runs,
            done: false,
            started: now,
            armed: None,
        }
    }

    /// The target address.
    pub fn ip(&self) -> Ipv4Addr {
        self.ip
    }

    /// When the session was created.
    pub fn started(&self) -> Instant {
        self.started
    }

    /// The MSS the current probe announces.
    pub fn current_mss(&self) -> u16 {
        let mss_idx = (self.probe_idx / self.params.probes_per_mss) as usize;
        self.params.mss_list[mss_idx.min(self.params.mss_list.len() - 1)]
    }

    /// Whether the session concluded.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether a simulator timer must be armed for `deadline`: true the
    /// first time each distinct deadline is reported, false for repeats
    /// (one pending timer per instant is enough — extra ones would fire
    /// as no-ops).
    pub fn should_arm(&mut self, deadline: Instant) -> bool {
        if self.armed == Some(deadline) {
            return false;
        }
        self.armed = Some(deadline);
        true
    }

    /// Feed an inbound segment (already parsed; src is this host).
    pub fn on_segment(&mut self, seg: &tcp::Repr, now: Instant) -> SessionOutput {
        if self.done {
            return SessionOutput::default();
        }
        // Only the current connection's port is live; late packets from
        // completed connections are ignored (they were RST anyway).
        if seg.dst_port
            != self
                .params
                .sport(self.probe_idx, self.conn_idx, self.attempt)
        {
            return SessionOutput::default();
        }
        if self.retry_at.is_some() {
            // Backing off between attempts: nothing is in flight on the
            // current port yet, so any straggler is from a dead connection.
            return SessionOutput::default();
        }
        let out = self.conn.on_segment(seg, now);
        self.absorb(out, now)
    }

    /// Timer wake-up.
    pub fn on_timer(&mut self, now: Instant) -> SessionOutput {
        if self.done {
            return SessionOutput::default();
        }
        if let Some(at) = self.retry_at {
            if now < at {
                return SessionOutput {
                    deadline: Some(at),
                    ..SessionOutput::default()
                };
            }
            return self.launch_retry(now);
        }
        let out = self.conn.on_timer(now);
        self.absorb(out, now)
    }

    /// The backoff expired: open a fresh connection for the current probe
    /// on the next attempt's source port.
    fn launch_retry(&mut self, now: Instant) -> SessionOutput {
        self.retry_at = None;
        self.driver = make_driver(&self.params, self.ip, &self.domain, self.probe_idx);
        let request = self.driver.initial_request();
        let cfg = conn_config(
            &self.params,
            &self.cookie,
            self.ip,
            self.probe_idx,
            self.conn_idx,
            self.attempt,
            request,
        );
        let (conn, first) = InferenceConn::new(cfg, now);
        self.conn = conn;
        SessionOutput {
            tx: first.tx,
            deadline: first.deadline,
            result: None,
            events: Vec::new(),
        }
    }

    /// Abort the session right now, recording `kind` for every probe that
    /// has not concluded yet. Used by the scanner's watchdog, eviction,
    /// and ICMP-unreachable paths. No-op when already done.
    pub fn force_conclude(&mut self, kind: ErrorKind) -> SessionOutput {
        if self.done {
            return SessionOutput::default();
        }
        let mut session_out = SessionOutput::default();
        if self.retry_at.is_none() {
            // A live connection may need an RST on the wire.
            session_out.tx = self.conn.fail(kind).tx;
        }
        self.retry_at = None;
        while self.probe_idx < self.params.total_probes() {
            session_out.events.push(SessionEvent::ProbeConcluded {
                probe: self.probe_idx as u8,
                outcome: OutcomeKind::Error,
            });
            let mss_idx = (self.probe_idx / self.params.probes_per_mss) as usize;
            self.runs[mss_idx].1.push(ProbeOutcome::Error { kind });
            self.probe_idx += 1;
        }
        let host = self.finalize();
        session_out.events.push(SessionEvent::SessionFinished {
            outcome: host
                .primary_verdict()
                .map(MssVerdict::outcome_kind)
                .unwrap_or(OutcomeKind::Error),
        });
        session_out.result = Some(host);
        session_out.deadline = None;
        session_out
    }

    fn absorb(&mut self, out: ConnOutput, now: Instant) -> SessionOutput {
        let probe = self.probe_idx as u8;
        let mut session_out = SessionOutput {
            tx: out.tx,
            deadline: out.deadline,
            result: None,
            events: out
                .notes
                .iter()
                .map(|note| match note {
                    ConnNote::RetransmitDetected { bytes_in_flight } => {
                        SessionEvent::RetransmitDetected {
                            probe,
                            bytes_in_flight: u64::from(*bytes_in_flight),
                        }
                    }
                    ConnNote::VerifyAckSent => SessionEvent::VerifyAckSent { probe },
                })
                .collect(),
        };
        let Some(result) = out.result else {
            return session_out;
        };
        match self.driver.next_step(&result) {
            ProbeStep::FollowUp(request) => {
                self.conn_idx += 1;
                session_out
                    .events
                    .push(SessionEvent::FollowUpStarted { probe });
                let cfg = conn_config(
                    &self.params,
                    &self.cookie,
                    self.ip,
                    self.probe_idx,
                    self.conn_idx,
                    self.attempt,
                    request,
                );
                let (conn, first) = InferenceConn::new(cfg, now);
                self.conn = conn;
                session_out.tx.extend(first.tx);
                session_out.deadline = first.deadline;
            }
            ProbeStep::Conclude(outcome) => {
                // Transient failures are retried on a fresh connection
                // (new source port) after a doubling backoff, instead of
                // burning one of the probe's vote slots. ICMP unreachable
                // is deliberately NOT retried: the network told us.
                let retryable = matches!(
                    outcome,
                    ProbeOutcome::Unreachable
                        | ProbeOutcome::Error {
                            kind: ErrorKind::MidConnectionReset
                        }
                        | ProbeOutcome::Error {
                            kind: ErrorKind::HandshakeTimeout
                        }
                );
                if retryable && self.retries_used < self.params.probe_retries {
                    self.retries_used += 1;
                    self.attempt += 1;
                    self.conn_idx = 0;
                    let shift = self.retries_used - 1;
                    let delay = Duration::from_nanos(self.params.probe_backoff.as_nanos() << shift);
                    session_out.events.push(SessionEvent::ProbeRetried {
                        probe,
                        attempt: self.attempt as u8,
                    });
                    let at = now + delay;
                    self.retry_at = Some(at);
                    session_out.deadline = Some(at);
                    return session_out;
                }
                session_out.events.push(SessionEvent::ProbeConcluded {
                    probe,
                    outcome: outcome.outcome_kind(),
                });
                let mss_idx = (self.probe_idx / self.params.probes_per_mss) as usize;
                self.runs[mss_idx].1.push(outcome);
                self.probe_idx += 1;
                self.retries_used = 0;
                self.attempt = 0;
                // Even an Unreachable probe does not abort the session: a
                // lost SYN under loss must not discard the host (the
                // remaining probes still vote).
                if self.probe_idx >= self.params.total_probes() {
                    let host = self.finalize();
                    session_out.events.push(SessionEvent::SessionFinished {
                        outcome: host
                            .primary_verdict()
                            .map(MssVerdict::outcome_kind)
                            .unwrap_or(OutcomeKind::Error),
                    });
                    session_out.result = Some(host);
                    session_out.deadline = None;
                } else {
                    // Launch the next probe immediately ("all six probes
                    // are sent after each other").
                    self.conn_idx = 0;
                    session_out.events.push(SessionEvent::ProbeStarted {
                        probe: self.probe_idx as u8,
                        mss: self.current_mss(),
                    });
                    self.driver = make_driver(&self.params, self.ip, &self.domain, self.probe_idx);
                    let request = self.driver.initial_request();
                    let cfg = conn_config(
                        &self.params,
                        &self.cookie,
                        self.ip,
                        self.probe_idx,
                        self.conn_idx,
                        self.attempt,
                        request,
                    );
                    let (conn, first) = InferenceConn::new(cfg, now);
                    self.conn = conn;
                    session_out.tx.extend(first.tx);
                    session_out.deadline = first.deadline;
                }
            }
        }
        session_out
    }

    fn finalize(&mut self) -> HostResult {
        self.done = true;
        let verdicts: Vec<(u16, MssVerdict)> = self
            .runs
            .iter()
            .map(|(mss, outcomes)| (*mss, vote(outcomes)))
            .collect();
        let host_verdict = classify_host(&verdicts);
        HostResult {
            ip: self.ip.to_u32(),
            protocol: self.params.protocol,
            runs: std::mem::take(&mut self.runs),
            verdicts,
            host_verdict,
        }
    }
}

fn make_driver(
    params: &SessionParams,
    ip: Ipv4Addr,
    domain: &Option<String>,
    probe_idx: u32,
) -> Box<dyn ProbeDriver + Send> {
    match params.protocol {
        Protocol::Http | Protocol::PortScan => {
            let host = domain.clone().unwrap_or_else(|| ip.to_string());
            Box::new(HttpProbe::new(host))
        }
        Protocol::Tls => {
            let mut random = [0u8; 32];
            let h = mix(&[params.seed, u64::from(ip.to_u32()), u64::from(probe_idx)]);
            for (i, b) in random.iter_mut().enumerate() {
                *b = (h >> (8 * (i % 8))) as u8 ^ i as u8;
            }
            Box::new(TlsProbe::new(domain.clone(), random))
        }
        // Callers route ICMP targets to the MTU prober, never here.
        // iw-lint: allow(panic-budget)
        Protocol::IcmpMtu => unreachable!("ICMP probes do not use TCP sessions"),
    }
}

fn conn_config(
    params: &SessionParams,
    cookie: &CookieKey,
    ip: Ipv4Addr,
    probe_idx: u32,
    conn_idx: u8,
    attempt: u32,
    request: Vec<u8>,
) -> ConnConfig {
    let sport = params.sport(probe_idx, conn_idx, attempt);
    let dport = params.protocol.port();
    let mss_idx = (probe_idx / params.probes_per_mss) as usize;
    let mss = params.mss_list[mss_idx];
    let isn = cookie.isn(ip.to_u32(), sport, dport);
    let mut cfg = ConnConfig::new(ip, params.source, sport, dport, mss, isn, request);
    cfg.verify_exhaustion = params.verify_exhaustion;
    cfg
}

/// The 2-of-3-maximum vote over one MSS run's probe outcomes. With
/// fewer than three probes (ablation configurations) a single success
/// is accepted — there is nothing to vote with.
pub fn vote(outcomes: &[ProbeOutcome]) -> MssVerdict {
    let required = if outcomes.len() >= 3 { 2 } else { 1 };
    let successes: Vec<u32> = outcomes
        .iter()
        .filter_map(|o| match o {
            ProbeOutcome::Success { segments, .. } => Some(*segments),
            _ => None,
        })
        .collect();
    if let Some(&max) = successes.iter().max() {
        if successes.iter().filter(|s| **s == max).count() >= required {
            return MssVerdict::Success(max);
        }
        if successes.len() >= 2 {
            // Two or more successes that cannot agree on the maximum:
            // the paper's criterion rejects the host ("error marks all
            // other cases").
            return MssVerdict::Error;
        }
    }
    // Lone success or no success: fall back to the strongest lower bound.
    let mut lower: Option<u32> = None;
    let mut any_few = false;
    for o in outcomes {
        match o {
            ProbeOutcome::FewData { lower_bound, .. } => {
                any_few = true;
                lower = Some(lower.map_or(*lower_bound, |l| l.max(*lower_bound)));
            }
            ProbeOutcome::Success { segments, .. } => {
                lower = Some(lower.map_or(*segments, |l| l.max(*segments)));
            }
            _ => {}
        }
    }
    if any_few || successes.len() == 1 {
        return MssVerdict::FewData(lower.unwrap_or(0));
    }
    if outcomes
        .iter()
        .all(|o| matches!(o, ProbeOutcome::Unreachable))
    {
        return MssVerdict::Unreachable;
    }
    MssVerdict::Error
}

/// Cross-MSS classification (§4.2).
pub fn classify_host(verdicts: &[(u16, MssVerdict)]) -> HostVerdict {
    if verdicts.len() < 2 {
        return match verdicts.first() {
            Some((_, MssVerdict::Success(s))) => HostVerdict::SegmentBased(*s),
            _ => HostVerdict::Unclassified,
        };
    }
    let (mss_a, va) = verdicts[0];
    let (mss_b, vb) = verdicts[1];
    match (va, vb) {
        (MssVerdict::Success(a), MssVerdict::Success(b)) => {
            if a == b {
                HostVerdict::SegmentBased(a)
            } else if a == 2 * b && mss_b == 2 * mss_a {
                // Segment count halves as MSS doubles: a byte budget.
                HostVerdict::ByteBased(a * u32::from(mss_a))
            } else {
                HostVerdict::OtherScaling {
                    at_64: a,
                    at_128: b,
                }
            }
        }
        _ => HostVerdict::Unclassified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn success(segments: u32) -> ProbeOutcome {
        ProbeOutcome::Success {
            segments,
            bytes: segments * 64,
            max_seg: 64,
            loss_suspected: false,
            reordered: false,
            redirected: false,
        }
    }

    fn few(lower: u32) -> ProbeOutcome {
        ProbeOutcome::FewData {
            lower_bound: lower,
            bytes: lower * 64,
            max_seg: 64,
            fin_seen: true,
            redirected: false,
        }
    }

    #[test]
    fn vote_unanimous_success() {
        assert_eq!(
            vote(&[success(10), success(10), success(10)]),
            MssVerdict::Success(10)
        );
    }

    #[test]
    fn vote_tail_loss_max_rule() {
        // One probe underestimated (tail loss): two agree on the max.
        assert_eq!(
            vote(&[success(9), success(10), success(10)]),
            MssVerdict::Success(10)
        );
        // Two probes agree on 9 but 10 is the max: NOT a success (the
        // agreeing pair must BE the maximum).
        assert_eq!(
            vote(&[success(9), success(9), success(10)]),
            MssVerdict::Error
        );
    }

    #[test]
    fn vote_all_disagree() {
        assert_eq!(
            vote(&[success(8), success(9), success(10)]),
            MssVerdict::Error
        );
    }

    #[test]
    fn vote_few_data_takes_max_bound() {
        assert_eq!(vote(&[few(7), few(7), few(3)]), MssVerdict::FewData(7));
        assert_eq!(vote(&[few(0), few(0), few(0)]), MssVerdict::FewData(0));
    }

    #[test]
    fn vote_lone_success_degrades_to_bound() {
        assert_eq!(
            vote(&[success(10), few(7), few(7)]),
            MssVerdict::FewData(10)
        );
    }

    #[test]
    fn vote_unreachable() {
        assert_eq!(
            vote(&[ProbeOutcome::Unreachable, ProbeOutcome::Unreachable]),
            MssVerdict::Unreachable
        );
    }

    #[test]
    fn classify_segment_based() {
        let v = vec![
            (64, MssVerdict::Success(10)),
            (128, MssVerdict::Success(10)),
        ];
        assert_eq!(classify_host(&v), HostVerdict::SegmentBased(10));
    }

    #[test]
    fn classify_byte_based_4k() {
        let v = vec![
            (64, MssVerdict::Success(64)),
            (128, MssVerdict::Success(32)),
        ];
        assert_eq!(classify_host(&v), HostVerdict::ByteBased(4096));
    }

    #[test]
    fn classify_mtu_fill() {
        let v = vec![
            (64, MssVerdict::Success(24)),
            (128, MssVerdict::Success(12)),
        ];
        assert_eq!(classify_host(&v), HostVerdict::ByteBased(1536));
    }

    #[test]
    fn classify_other_and_unclassified() {
        let v = vec![(64, MssVerdict::Success(10)), (128, MssVerdict::Success(7))];
        assert_eq!(
            classify_host(&v),
            HostVerdict::OtherScaling {
                at_64: 10,
                at_128: 7
            }
        );
        let v = vec![(64, MssVerdict::Success(10)), (128, MssVerdict::FewData(3))];
        assert_eq!(classify_host(&v), HostVerdict::Unclassified);
    }

    #[test]
    fn sport_allocation_unique() {
        let p = SessionParams::study(Protocol::Http, Ipv4Addr::new(192, 0, 2, 1), 1);
        let mut seen = std::collections::HashSet::new();
        for attempt in 0..4u32 {
            for probe in 0..p.total_probes() {
                for conn in 0..2u8 {
                    assert!(seen.insert(p.sport(probe, conn, attempt)));
                }
            }
        }
        assert_eq!(p.total_probes(), 6);
    }

    fn retry_session(probe_retries: u32) -> HostSession {
        let mut params = SessionParams::study(Protocol::Http, Ipv4Addr::new(192, 0, 2, 9), 7);
        params.probe_retries = probe_retries;
        let ip = Ipv4Addr::new(198, 51, 100, 1);
        HostSession::new(ip, params, CookieKey::new(7), None, Instant::ZERO)
    }

    /// Drive the current connection to a handshake timeout by firing the
    /// session timer past the SYN deadline.
    fn time_out_handshake(s: &mut HostSession, now: Instant) -> SessionOutput {
        s.on_timer(now + Duration::from_secs(30))
    }

    #[test]
    fn transient_failure_schedules_backoff_retry() {
        let mut s = retry_session(2);
        let out = time_out_handshake(&mut s, Instant::ZERO);
        // Not recorded: a retry is pending instead.
        assert!(out.result.is_none());
        assert!(out.events.iter().any(|e| matches!(
            e,
            SessionEvent::ProbeRetried {
                probe: 0,
                attempt: 1
            }
        )));
        let at = out.deadline.expect("backoff deadline");
        // Before the backoff expires the timer is a no-op re-arm.
        let just_before = Instant::ZERO + Duration::from_nanos((at - Instant::ZERO).as_nanos() - 1);
        let early = s.on_timer(just_before);
        assert!(early.tx.is_empty());
        assert_eq!(early.deadline, Some(at));
        // At the deadline a fresh SYN goes out on a new source port.
        let retry = s.on_timer(at);
        assert_eq!(retry.tx.len(), 1);
        assert!(retry.tx[0].flags.contains(tcp::Flags::SYN));
        let base = s.params.sport(0, 0, 0);
        assert_eq!(retry.tx[0].src_port, s.params.sport(0, 0, 1));
        assert_ne!(retry.tx[0].src_port, base);
    }

    #[test]
    fn retry_budget_exhaustion_records_error() {
        let mut s = retry_session(1);
        let out = time_out_handshake(&mut s, Instant::ZERO);
        let at = out.deadline.expect("backoff deadline");
        let retry = s.on_timer(at);
        assert_eq!(retry.tx.len(), 1);
        // Second timeout: budget spent, the failure is recorded and the
        // next probe launches immediately (back on attempt 0 ports).
        let out = s.on_timer(at + Duration::from_secs(30));
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, SessionEvent::ProbeConcluded { probe: 0, .. })));
        assert_eq!(s.runs[0].1.len(), 1);
        assert!(matches!(
            s.runs[0].1[0],
            ProbeOutcome::Error {
                kind: ErrorKind::HandshakeTimeout
            }
        ));
        assert_eq!(out.tx.len(), 1);
        assert_eq!(out.tx[0].src_port, s.params.sport(1, 0, 0));
    }

    #[test]
    fn no_retries_by_default() {
        let mut s = retry_session(0);
        let out = time_out_handshake(&mut s, Instant::ZERO);
        assert!(s.runs[0].1.len() == 1);
        assert!(out
            .events
            .iter()
            .all(|e| !matches!(e, SessionEvent::ProbeRetried { .. })));
    }

    #[test]
    fn force_conclude_records_error_for_remaining_probes() {
        let mut s = retry_session(0);
        let out = s.force_conclude(ErrorKind::CollectTimeout);
        let host = out.result.expect("result");
        assert!(s.is_done());
        assert_eq!(out.deadline, None);
        let total: usize = host.runs.iter().map(|(_, o)| o.len()).sum();
        assert_eq!(total, 6);
        assert!(host.runs.iter().all(|(_, o)| o.iter().all(|p| matches!(
            p,
            ProbeOutcome::Error {
                kind: ErrorKind::CollectTimeout
            }
        ))));
        // Idempotent.
        let again = s.force_conclude(ErrorKind::CollectTimeout);
        assert!(again.result.is_none());
    }
}
