//! Result types for probes, hosts and whole scans.

use iw_telemetry::OutcomeKind;
use serde::{Deserialize, Serialize};

/// What a scan probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// HTTP on 80/tcp (§3.2).
    Http,
    /// TLS on 443/tcp (§3.3).
    Tls,
    /// Single-packet SYN port scan — the unmodified-ZMap baseline (§3.4).
    PortScan,
    /// RFC 1191 ICMP path-MTU discovery (footnote 1).
    IcmpMtu,
}

impl Protocol {
    /// The destination port probed (0 for ICMP).
    pub fn port(self) -> u16 {
        match self {
            Protocol::Http => 80,
            Protocol::Tls => 443,
            Protocol::PortScan => 80,
            Protocol::IcmpMtu => 0,
        }
    }
}

/// Why a probe errored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// RST after the handshake completed.
    MidConnectionReset,
    /// Response failed to parse at the wire level.
    Malformed,
    /// The three probes of an MSS run disagreed irreconcilably.
    Inconsistent,
    /// An in-session SYN (probe ≥ 1, follow-up or retry connection) went
    /// unanswered: the host was reachable moments ago but stopped
    /// completing handshakes.
    HandshakeTimeout,
    /// The resilience layer gave up waiting (session watchdog deadline or
    /// concurrency-cap eviction) before the probe could conclude.
    CollectTimeout,
    /// An ICMP destination-unreachable fast-failed the probe.
    IcmpUnreachable,
}

impl ErrorKind {
    /// Every kind, in a stable order (parallel to [`ErrorKindCounts`]).
    pub const ALL: [ErrorKind; 6] = [
        ErrorKind::MidConnectionReset,
        ErrorKind::Malformed,
        ErrorKind::Inconsistent,
        ErrorKind::HandshakeTimeout,
        ErrorKind::CollectTimeout,
        ErrorKind::IcmpUnreachable,
    ];

    /// Stable snake_case name (metric suffixes, reports).
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::MidConnectionReset => "mid_connection_reset",
            ErrorKind::Malformed => "malformed",
            ErrorKind::Inconsistent => "inconsistent",
            ErrorKind::HandshakeTimeout => "handshake_timeout",
            ErrorKind::CollectTimeout => "collect_timeout",
            ErrorKind::IcmpUnreachable => "icmp_unreachable",
        }
    }

    /// Position in [`ErrorKind::ALL`] (the tests assert this match and
    /// the array stay in sync).
    pub fn index(self) -> usize {
        match self {
            ErrorKind::MidConnectionReset => 0,
            ErrorKind::Malformed => 1,
            ErrorKind::Inconsistent => 2,
            ErrorKind::HandshakeTimeout => 3,
            ErrorKind::CollectTimeout => 4,
            ErrorKind::IcmpUnreachable => 5,
        }
    }
}

/// Per-[`ErrorKind`] probe counts: the loss-mode composition of a scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorKindCounts {
    /// Counts parallel to [`ErrorKind::ALL`].
    pub counts: [u64; 6],
}

impl ErrorKindCounts {
    /// Record one errored probe.
    pub fn note(&mut self, kind: ErrorKind) {
        self.counts[kind.index()] += 1;
    }

    /// Count for one kind.
    pub fn get(&self, kind: ErrorKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total errored probes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl std::ops::AddAssign<&ErrorKindCounts> for ErrorKindCounts {
    fn add_assign(&mut self, rhs: &ErrorKindCounts) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts.iter()) {
            *a += b;
        }
    }
}

/// The outcome of one probe (one or two TCP connections).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// The IW was filled and verified exhausted.
    Success {
        /// Estimated IW in segments: ⌊bytes / max_seg⌋.
        segments: u32,
        /// Distinct payload bytes received before the retransmission.
        bytes: u32,
        /// Largest segment observed (the effective MSS).
        max_seg: u32,
        /// A sequence hole was still open at decision time.
        loss_suspected: bool,
        /// Out-of-order arrival was observed.
        reordered: bool,
        /// The estimate came from a follow-up connection (redirect/bloat).
        redirected: bool,
    },
    /// The host ran out of data before filling its IW.
    FewData {
        /// Lower bound on the IW in segments (max(1, ⌊bytes/max_seg⌋)
        /// when any data arrived; 0 = the "NoData" row).
        lower_bound: u32,
        /// Distinct payload bytes received.
        bytes: u32,
        /// Largest segment observed (0 when no data).
        max_seg: u32,
        /// A FIN proved the host was out of data.
        fin_seen: bool,
        /// The outcome came from a follow-up connection.
        redirected: bool,
    },
    /// Connection failed after establishment.
    Error {
        /// Failure class.
        kind: ErrorKind,
    },
    /// No usable SYN-ACK (silent drop or RST-to-SYN).
    Unreachable,
}

impl ProbeOutcome {
    /// Rank for "keep the better of two connections" comparisons.
    pub fn quality(&self) -> (u8, u32) {
        match self {
            ProbeOutcome::Success { segments, .. } => (3, *segments),
            ProbeOutcome::FewData { lower_bound, .. } => (2, *lower_bound),
            ProbeOutcome::Error { .. } => (1, 0),
            ProbeOutcome::Unreachable => (0, 0),
        }
    }

    /// Whether this is a success.
    pub fn is_success(&self) -> bool {
        matches!(self, ProbeOutcome::Success { .. })
    }

    /// The event-log classification of this outcome.
    pub fn outcome_kind(&self) -> OutcomeKind {
        match self {
            ProbeOutcome::Success { .. } => OutcomeKind::Success,
            ProbeOutcome::FewData { .. } => OutcomeKind::FewData,
            ProbeOutcome::Error { .. } => OutcomeKind::Error,
            ProbeOutcome::Unreachable => OutcomeKind::Unreachable,
        }
    }
}

/// The per-MSS verdict after the 2-of-3-maximum vote (§4 "Dataset").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MssVerdict {
    /// IW estimated (segments).
    Success(u32),
    /// Only a lower bound (segments; 0 = no data).
    FewData(u32),
    /// Errors dominated or probes disagreed.
    Error,
    /// Host never completed a handshake.
    Unreachable,
}

impl MssVerdict {
    /// The event-log classification of this verdict.
    pub fn outcome_kind(self) -> OutcomeKind {
        match self {
            MssVerdict::Success(_) => OutcomeKind::Success,
            MssVerdict::FewData(_) => OutcomeKind::FewData,
            MssVerdict::Error => OutcomeKind::Error,
            MssVerdict::Unreachable => OutcomeKind::Unreachable,
        }
    }
}

/// Cross-MSS interpretation of a host's IW configuration (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostVerdict {
    /// IW configured in segments: same count at both MSS values.
    SegmentBased(u32),
    /// IW configured in bytes: segment count halves when MSS doubles.
    /// Value = estimated byte budget (segments₆₄ × 64).
    ByteBased(u32),
    /// Successful at both MSS values but fitting neither pattern.
    OtherScaling {
        /// Estimate at MSS 64.
        at_64: u32,
        /// Estimate at MSS 128.
        at_128: u32,
    },
    /// Could not estimate at both MSS values.
    Unclassified,
}

/// The complete record for one probed host.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostResult {
    /// Target address (scan-space coordinates).
    pub ip: u32,
    /// Protocol scanned.
    pub protocol: Protocol,
    /// Raw outcomes per MSS run: `(mss, one outcome per probe)`.
    pub runs: Vec<(u16, Vec<ProbeOutcome>)>,
    /// Voted verdict per MSS (parallel to `runs`).
    pub verdicts: Vec<(u16, MssVerdict)>,
    /// Cross-MSS classification.
    pub host_verdict: HostVerdict,
}

impl HostResult {
    /// The verdict of the (primary) MSS-64 run.
    pub fn primary_verdict(&self) -> Option<MssVerdict> {
        self.verdicts.first().map(|(_, v)| *v)
    }

    /// The successful IW estimate at MSS 64, if any.
    pub fn iw_estimate(&self) -> Option<u32> {
        match self.primary_verdict() {
            Some(MssVerdict::Success(iw)) => Some(iw),
            _ => None,
        }
    }
}

/// Result of an ICMP path-MTU probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MtuResult {
    /// Target address.
    pub ip: u32,
    /// Discovered path MTU (bytes).
    pub mtu: u32,
}

/// Aggregate counts for one scan — the raw material of Table 1.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScanSummary {
    /// Targets probed (SYNs to distinct addresses).
    pub targets: u64,
    /// Hosts that completed a handshake and allowed data exchange.
    pub reachable: u64,
    /// Reachable hosts with a successful (voted) estimate at MSS 64.
    pub success: u64,
    /// Reachable hosts that ran out of data.
    pub few_data: u64,
    /// Reachable hosts with errors.
    pub error: u64,
    /// Hosts answering SYN with RST (counted as not reachable).
    pub refused: u64,
    /// Per-kind breakdown of errored probes across all runs (not hosts:
    /// one host contributes up to `total_probes` entries).
    #[serde(default)]
    pub error_kinds: ErrorKindCounts,
}

impl std::ops::AddAssign<&ScanSummary> for ScanSummary {
    fn add_assign(&mut self, rhs: &ScanSummary) {
        self.targets += rhs.targets;
        self.reachable += rhs.reachable;
        self.success += rhs.success;
        self.few_data += rhs.few_data;
        self.error += rhs.error;
        self.refused += rhs.refused;
        self.error_kinds += &rhs.error_kinds;
    }
}

impl ScanSummary {
    /// Percentage helpers over the reachable denominator.
    pub fn rates(&self) -> (f64, f64, f64) {
        let d = self.reachable.max(1) as f64;
        (
            self.success as f64 / d * 100.0,
            self.few_data as f64 / d * 100.0,
            self.error as f64 / d * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_ordering() {
        let success = ProbeOutcome::Success {
            segments: 10,
            bytes: 640,
            max_seg: 64,
            loss_suspected: false,
            reordered: false,
            redirected: false,
        };
        let few = ProbeOutcome::FewData {
            lower_bound: 7,
            bytes: 450,
            max_seg: 64,
            fin_seen: true,
            redirected: false,
        };
        let err = ProbeOutcome::Error {
            kind: ErrorKind::MidConnectionReset,
        };
        assert!(success.quality() > few.quality());
        assert!(few.quality() > err.quality());
        assert!(err.quality() > ProbeOutcome::Unreachable.quality());
        assert!(success.is_success());
        assert!(!few.is_success());
    }

    #[test]
    fn summary_rates() {
        let s = ScanSummary {
            targets: 1000,
            reachable: 200,
            success: 100,
            few_data: 96,
            error: 4,
            refused: 10,
            ..ScanSummary::default()
        };
        let (su, fd, er) = s.rates();
        assert!((su - 50.0).abs() < 1e-9);
        assert!((fd - 48.0).abs() < 1e-9);
        assert!((er - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summary_add_assign_sums_every_field() {
        let mut a = ScanSummary {
            targets: 1,
            reachable: 2,
            success: 3,
            few_data: 4,
            error: 5,
            refused: 6,
            ..ScanSummary::default()
        };
        a.error_kinds.note(ErrorKind::HandshakeTimeout);
        let mut b = ScanSummary {
            targets: 10,
            reachable: 20,
            success: 30,
            few_data: 40,
            error: 50,
            refused: 60,
            ..ScanSummary::default()
        };
        b.error_kinds.note(ErrorKind::HandshakeTimeout);
        b.error_kinds.note(ErrorKind::IcmpUnreachable);
        a += &b;
        assert_eq!(
            (
                a.targets,
                a.reachable,
                a.success,
                a.few_data,
                a.error,
                a.refused
            ),
            (11, 22, 33, 44, 55, 66)
        );
        assert_eq!(a.error_kinds.get(ErrorKind::HandshakeTimeout), 2);
        assert_eq!(a.error_kinds.get(ErrorKind::IcmpUnreachable), 1);
        assert_eq!(a.error_kinds.total(), 3);
    }

    #[test]
    fn error_kind_names_and_indexes_are_consistent() {
        let mut seen = std::collections::HashSet::new();
        for (i, kind) in ErrorKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert!(seen.insert(kind.name()), "duplicate name {}", kind.name());
        }
    }

    #[test]
    fn outcome_kind_mappings() {
        assert_eq!(MssVerdict::Success(4).outcome_kind(), OutcomeKind::Success);
        assert_eq!(MssVerdict::FewData(1).outcome_kind(), OutcomeKind::FewData);
        assert_eq!(MssVerdict::Error.outcome_kind(), OutcomeKind::Error);
        assert_eq!(
            MssVerdict::Unreachable.outcome_kind(),
            OutcomeKind::Unreachable
        );
        assert_eq!(
            ProbeOutcome::Unreachable.outcome_kind(),
            OutcomeKind::Unreachable
        );
    }

    #[test]
    fn serde_round_trip() {
        let r = HostResult {
            ip: 42,
            protocol: Protocol::Http,
            runs: vec![(
                64,
                vec![ProbeOutcome::FewData {
                    lower_bound: 7,
                    bytes: 470,
                    max_seg: 64,
                    fin_seen: true,
                    redirected: false,
                }],
            )],
            verdicts: vec![(64, MssVerdict::FewData(7))],
            host_verdict: HostVerdict::Unclassified,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: HostResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ip, 42);
        assert_eq!(back.primary_verdict(), Some(MssVerdict::FewData(7)));
        assert_eq!(back.iw_estimate(), None);
    }

    #[test]
    fn protocol_ports() {
        assert_eq!(Protocol::Http.port(), 80);
        assert_eq!(Protocol::Tls.port(), 443);
    }
}
