//! # iw-core — the paper's contribution
//!
//! An Internet-scale scanner, modelled on ZMap, that infers TCP's initial
//! congestion window (IW) from HTTP and TLS hosts *without prior
//! knowledge* (Rüth, Bormann, Hohlfeld — IMC '17).
//!
//! The architecture keeps ZMap's two halves and adds the paper's third:
//!
//! 1. **Stateless target generation** — a multiplicative cyclic-group
//!    permutation of the scan space ([`permutation`], primality and
//!    primitive-root search in [`prime`]), CIDR blacklists
//!    ([`blacklist`]), token-bucket pacing ([`rate`]) and SYN cookies for
//!    stateless SYN-ACK validation ([`cookie`]).
//! 2. **Stateful probe connections** — the lightweight per-connection
//!    module the paper adds to ZMap: the IW-inference state machine
//!    ([`inference`]) that advertises a tiny MSS, counts segments until
//!    the first retransmission, and verifies exhaustion with a 2·MSS
//!    window ACK (§3.1, Fig. 1).
//! 3. **Probe drivers** ([`probe`]) — HTTP (§3.2: redirects, error-page
//!    bloating, `Connection: close`), TLS (§3.3: 40-cipher hello, OCSP),
//!    a single-packet port-scan baseline (§3.4) and the RFC 1191
//!    ICMP path-MTU probe (footnote 1).
//!
//! [`session`] chains the six probes per host (3 × MSS 64 + 3 × MSS 128),
//! applies the majority-of-maximum vote and the §4.2 byte-limit
//! detection; [`scanner`] is the event-driven engine; [`driver`] wires it
//! to `iw-netsim`/`iw-internet` and runs sharded scans on real threads.
//!
//! Observability rides on `iw-telemetry` (re-exported as [`telemetry`]):
//! the scanner always feeds an allocation-free metrics registry, and
//! [`scanner::TelemetryConfig`] opts into the session event log, SYN→
//! SYN-ACK RTT tracking and the ZMap-style progress monitor. Scan-scoped
//! metrics merge byte-identically across shard counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blacklist;
pub mod checkpoint;
pub mod cookie;
pub mod driver;
pub mod inference;
pub mod permutation;
pub mod prime;
pub mod probe;
pub mod rate;
pub mod results;
mod ring;
pub mod scanner;
pub mod session;
pub mod table;
pub mod testbed;
mod txrx;

/// The stable scan-entry surface in one import: build a config, pick a
/// [`prelude::Topology`], run via [`prelude::ScanRunner`].
///
/// ```no_run
/// use iw_core::prelude::*;
/// # use iw_internet::Population;
/// # use std::sync::Arc;
/// # let population: Arc<Population> = unimplemented!();
/// let output = ScanRunner::new(&population)
///     .topology(Topology::threads(4))
///     .run();
/// ```
pub mod prelude {
    pub use crate::driver::{RunControl, ScanOutput, ScanRunner, Topology};
    pub use crate::scanner::{ScanConfig, ScanConfigBuilder};
}

pub use checkpoint::{
    CampaignCheckpoint, CheckpointError, ConfigDigest, RunDisposition, ShardCheckpoint,
    CHECKPOINT_KIND, CHECKPOINT_VERSION,
};
pub use driver::{summarize, RunControl, ScanOutput, ScanRunner, ScanTelemetry, Topology};
pub use iw_telemetry as telemetry;
pub use results::{
    ErrorKind, ErrorKindCounts, HostResult, HostVerdict, MssVerdict, ProbeOutcome, Protocol,
    ScanSummary,
};
pub use scanner::{
    ConfigError, MonitorSink, MonitorSpec, ResilienceConfig, ScanConfig, ScanConfigBuilder,
    Scanner, TargetSpec, TelemetryConfig, WATCHDOG_FLOOR,
};
