//! Probe drivers: protocol-specific request construction and follow-up
//! logic layered on the generic inference machine.
//!
//! A *probe* is one IW measurement attempt against one host. For TLS it
//! is a single connection; for HTTP it may chain a second connection —
//! following a `301` redirect or retrying with a bloated URI (§3.2).

pub mod http;
pub mod tls;

use crate::inference::{ConnResult, RawOutcome};
use crate::results::{ErrorKind, ProbeOutcome};

/// What to do after a connection concludes.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeStep {
    /// Open a follow-up connection with this request payload.
    FollowUp(Vec<u8>),
    /// The probe is finished with this outcome.
    Conclude(ProbeOutcome),
}

/// A protocol-specific probe driver (one instance per probe attempt).
pub trait ProbeDriver {
    /// The request payload for the initial connection.
    fn initial_request(&mut self) -> Vec<u8>;
    /// Decide the next step from a finished connection.
    fn next_step(&mut self, result: &ConnResult) -> ProbeStep;
}

/// Map a raw connection outcome to a probe outcome.
pub fn outcome_from_raw(raw: &RawOutcome, redirected: bool) -> ProbeOutcome {
    match raw {
        RawOutcome::Success {
            segments,
            bytes,
            max_seg,
            loss_suspected,
            reordered,
        } => ProbeOutcome::Success {
            segments: *segments,
            bytes: *bytes,
            max_seg: *max_seg,
            loss_suspected: *loss_suspected,
            reordered: *reordered,
            redirected,
        },
        RawOutcome::FewData {
            lower_bound,
            bytes,
            max_seg,
            fin_seen,
        } => ProbeOutcome::FewData {
            lower_bound: *lower_bound,
            bytes: *bytes,
            max_seg: *max_seg,
            fin_seen: *fin_seen,
            redirected,
        },
        RawOutcome::Error(kind) => ProbeOutcome::Error { kind: *kind },
        RawOutcome::Unreachable => ProbeOutcome::Unreachable,
        // `Open` belongs to port-scan mode, which bypasses drivers.
        RawOutcome::Open => ProbeOutcome::Error {
            kind: ErrorKind::Malformed,
        },
    }
}

/// Pick the better of two probe outcomes (used when a follow-up
/// connection was attempted: keep whichever learned more).
pub fn better(a: ProbeOutcome, b: ProbeOutcome) -> ProbeOutcome {
    if b.quality() >= a.quality() {
        b
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_preserves_fields() {
        let raw = RawOutcome::Success {
            segments: 10,
            bytes: 640,
            max_seg: 64,
            loss_suspected: false,
            reordered: true,
        };
        match outcome_from_raw(&raw, true) {
            ProbeOutcome::Success {
                segments,
                redirected,
                reordered,
                ..
            } => {
                assert_eq!(segments, 10);
                assert!(redirected);
                assert!(reordered);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn better_prefers_success_then_larger_bound() {
        let few3 = ProbeOutcome::FewData {
            lower_bound: 3,
            bytes: 200,
            max_seg: 64,
            fin_seen: true,
            redirected: false,
        };
        let few7 = ProbeOutcome::FewData {
            lower_bound: 7,
            bytes: 470,
            max_seg: 64,
            fin_seen: true,
            redirected: true,
        };
        let succ = ProbeOutcome::Success {
            segments: 10,
            bytes: 640,
            max_seg: 64,
            loss_suspected: false,
            reordered: false,
            redirected: true,
        };
        assert_eq!(better(few3.clone(), few7.clone()), few7);
        assert_eq!(better(few7.clone(), few3.clone()), few7);
        assert_eq!(better(few7, succ.clone()), succ);
    }
}
