//! The HTTP probe driver (§3.2).
//!
//! Connection 1: `GET /` with the only Host header we can produce without
//! prior knowledge — the literal IP (or a domain when the target list
//! provides one, e.g. the Alexa scan). If the response redirects, RST and
//! follow the `Location` on a fresh connection; otherwise retry with a
//! URI long enough to fill the MTU, banking on error pages that echo the
//! URI. `Connection: close` is always requested so a FIN marks "out of
//! data".

use super::{better, outcome_from_raw, ProbeDriver, ProbeStep};
use crate::inference::ConnResult;
use crate::results::ProbeOutcome;
use iw_wire::http::{split_location, Request, ResponseHead};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Initial,
    Followed,
}

/// One HTTP probe attempt.
pub struct HttpProbe {
    /// Host header value: the bare IP, or a known domain.
    host: String,
    stage: Stage,
    first_outcome: Option<ProbeOutcome>,
}

/// The long probe URI: identifies the scan (as the paper's does) and
/// fills the MTU so echoed error pages grow past any standard IW.
pub fn bloat_uri() -> String {
    let mut uri = String::with_capacity(1400);
    uri.push_str("/this-is-a-tcp-initial-window-research-scan-see-DESIGN.md");
    while uri.len() < 1400 {
        uri.push_str("-initial-window-measurement");
    }
    uri.truncate(1400);
    uri
}

impl HttpProbe {
    /// New probe; `host` is the Host-header value (IP string or domain).
    pub fn new(host: String) -> HttpProbe {
        HttpProbe {
            host,
            stage: Stage::Initial,
            first_outcome: None,
        }
    }
}

impl ProbeDriver for HttpProbe {
    fn initial_request(&mut self) -> Vec<u8> {
        Request::probe_get("/", &self.host).to_bytes()
    }

    fn next_step(&mut self, result: &ConnResult) -> ProbeStep {
        let outcome = outcome_from_raw(&result.outcome, self.stage == Stage::Followed);
        match self.stage {
            Stage::Initial => {
                if outcome.is_success() {
                    return ProbeStep::Conclude(outcome);
                }
                if matches!(
                    outcome,
                    ProbeOutcome::Error { .. } | ProbeOutcome::Unreachable
                ) {
                    return ProbeStep::Conclude(outcome);
                }
                // Redirects are followed; error responses are retried
                // with the bloated URI (their pages may echo it). A small
                // but *successful* 2xx page is a final answer — the host
                // simply has little data at "/", and a long URI would only
                // swap it for an error page (§3.2).
                let head = ResponseHead::parse(&result.response).ok();
                match &head {
                    Some(h) => {
                        if let Some(location) = h.redirect_location() {
                            self.first_outcome = Some(outcome);
                            self.stage = Stage::Followed;
                            let (host, path) = split_location(location);
                            if !host.is_empty() {
                                self.host = host;
                            }
                            return ProbeStep::FollowUp(
                                Request::probe_get(&path, &self.host).to_bytes(),
                            );
                        }
                        if h.status >= 400 {
                            self.first_outcome = Some(outcome);
                            self.stage = Stage::Followed;
                            return ProbeStep::FollowUp(
                                Request::probe_get(&bloat_uri(), &self.host).to_bytes(),
                            );
                        }
                        ProbeStep::Conclude(outcome)
                    }
                    // Unparseable (e.g. zero bytes): try the bloat anyway.
                    None => {
                        self.first_outcome = Some(outcome);
                        self.stage = Stage::Followed;
                        ProbeStep::FollowUp(Request::probe_get(&bloat_uri(), &self.host).to_bytes())
                    }
                }
            }
            Stage::Followed => {
                let first = self
                    .first_outcome
                    .take()
                    .unwrap_or(ProbeOutcome::Unreachable);
                ProbeStep::Conclude(better(first, outcome))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::RawOutcome;
    use crate::results::ErrorKind;

    fn few_data(response: &[u8]) -> ConnResult {
        ConnResult {
            outcome: RawOutcome::FewData {
                lower_bound: 4,
                bytes: 300,
                max_seg: 64,
                fin_seen: true,
            },
            response: response.to_vec(),
        }
    }

    fn success() -> ConnResult {
        ConnResult {
            outcome: RawOutcome::Success {
                segments: 10,
                bytes: 640,
                max_seg: 64,
                loss_suspected: false,
                reordered: false,
            },
            response: b"HTTP/1.1 200 OK\r\n\r\n".to_vec(),
        }
    }

    #[test]
    fn initial_request_has_ip_host() {
        let mut p = HttpProbe::new("203.0.113.9".into());
        let req = p.initial_request();
        let parsed = Request::parse(&req).unwrap();
        assert_eq!(parsed.uri, "/");
        assert_eq!(parsed.host, "203.0.113.9");
    }

    #[test]
    fn success_concludes_immediately() {
        let mut p = HttpProbe::new("1.2.3.4".into());
        p.initial_request();
        match p.next_step(&success()) {
            ProbeStep::Conclude(o) => assert!(o.is_success()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn redirect_is_followed_with_extracted_host() {
        let mut p = HttpProbe::new("1.2.3.4".into());
        p.initial_request();
        let resp =
            b"HTTP/1.1 301 Moved Permanently\r\nLocation: http://www.example.com/deep/page\r\n\r\n";
        match p.next_step(&few_data(resp)) {
            ProbeStep::FollowUp(req) => {
                let parsed = Request::parse(&req).unwrap();
                assert_eq!(parsed.uri, "/deep/page");
                assert_eq!(parsed.host, "www.example.com");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_redirect_bloats_uri() {
        let mut p = HttpProbe::new("1.2.3.4".into());
        p.initial_request();
        let resp = b"HTTP/1.1 404 Not Found\r\n\r\nshort";
        match p.next_step(&few_data(resp)) {
            ProbeStep::FollowUp(req) => {
                let parsed = Request::parse(&req).unwrap();
                assert!(parsed.uri.len() >= 1300, "URI must fill the MTU");
                assert_eq!(parsed.host, "1.2.3.4");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn follow_up_keeps_better_outcome() {
        let mut p = HttpProbe::new("1.2.3.4".into());
        p.initial_request();
        let step = p.next_step(&few_data(b"HTTP/1.1 404 Not Found\r\n\r\n"));
        assert!(matches!(step, ProbeStep::FollowUp(_)));
        // Follow-up succeeds.
        match p.next_step(&success()) {
            ProbeStep::Conclude(ProbeOutcome::Success { redirected, .. }) => {
                assert!(redirected);
            }
            other => panic!("{other:?}"),
        }
        // Or follow-up is worse: keep the first.
        let mut p = HttpProbe::new("1.2.3.4".into());
        p.initial_request();
        p.next_step(&few_data(b"HTTP/1.1 404 Not Found\r\n\r\n"));
        let worse = ConnResult {
            outcome: RawOutcome::FewData {
                lower_bound: 1,
                bytes: 70,
                max_seg: 64,
                fin_seen: true,
            },
            response: Vec::new(),
        };
        match p.next_step(&worse) {
            ProbeStep::Conclude(ProbeOutcome::FewData { lower_bound, .. }) => {
                assert_eq!(lower_bound, 4, "first connection's bound kept");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_concludes_without_follow_up() {
        let mut p = HttpProbe::new("1.2.3.4".into());
        p.initial_request();
        let err = ConnResult {
            outcome: RawOutcome::Error(ErrorKind::MidConnectionReset),
            response: Vec::new(),
        };
        assert!(matches!(p.next_step(&err), ProbeStep::Conclude(_)));
    }

    #[test]
    fn bloat_uri_is_mtu_sized_and_identifying() {
        let uri = bloat_uri();
        assert_eq!(uri.len(), 1400);
        assert!(uri.contains("research-scan"));
        assert!(uri.starts_with('/'));
    }
}
