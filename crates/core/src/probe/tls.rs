//! The TLS probe driver (§3.3).
//!
//! A single connection: send a ClientHello with the 40-cipher
//! browser-union list and an OCSP status request, then simply count the
//! bytes of the server's flight. The paper found no advantage in
//! inspecting TLS length fields (§3.3, last paragraph), so neither do we
//! — the generic ACK-release check decides success.

use super::{outcome_from_raw, ProbeDriver, ProbeStep};
use crate::inference::ConnResult;
use iw_wire::tls::handshake::ClientHello;

/// One TLS probe attempt.
pub struct TlsProbe {
    /// SNI to offer, when a domain is known (Alexa scan); plain IP
    /// enumeration offers none — the §4 "few data" discussion hinges on
    /// exactly this.
    sni: Option<String>,
    /// ClientHello random (deterministic per probe).
    random: [u8; 32],
}

impl TlsProbe {
    /// New probe with an optional server name.
    pub fn new(sni: Option<String>, random: [u8; 32]) -> TlsProbe {
        TlsProbe { sni, random }
    }
}

impl ProbeDriver for TlsProbe {
    fn initial_request(&mut self) -> Vec<u8> {
        ClientHello::probe(self.random, self.sni.as_deref()).to_record_bytes()
    }

    fn next_step(&mut self, result: &ConnResult) -> ProbeStep {
        ProbeStep::Conclude(outcome_from_raw(&result.outcome, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::RawOutcome;
    use crate::results::ProbeOutcome;

    #[test]
    fn request_is_a_client_hello() {
        let mut p = TlsProbe::new(None, [9; 32]);
        let req = p.initial_request();
        // Record header: handshake(22), TLS record version 3.x.
        assert_eq!(req[0], 22);
        assert_eq!(req[1], 3);
        let (records, _) = iw_wire::tls::record::parse_stream(&req).unwrap();
        let hello = ClientHello::parse(records[0].payload).unwrap();
        assert_eq!(hello.cipher_suites.len(), 40);
        assert!(hello.wants_ocsp());
        assert_eq!(hello.server_name(), None);
    }

    #[test]
    fn sni_included_when_known() {
        let mut p = TlsProbe::new(Some("site1.example".into()), [1; 32]);
        let req = p.initial_request();
        let (records, _) = iw_wire::tls::record::parse_stream(&req).unwrap();
        let hello = ClientHello::parse(records[0].payload).unwrap();
        assert_eq!(hello.server_name(), Some("site1.example"));
    }

    #[test]
    fn single_connection_always_concludes() {
        let mut p = TlsProbe::new(None, [2; 32]);
        let result = ConnResult {
            outcome: RawOutcome::FewData {
                lower_bound: 1,
                bytes: 7,
                max_seg: 7,
                fin_seen: true,
            },
            response: vec![21, 3, 3, 0, 2, 2, 40],
        };
        match p.next_step(&result) {
            ProbeStep::Conclude(ProbeOutcome::FewData { lower_bound, .. }) => {
                assert_eq!(lower_bound, 1)
            }
            other => panic!("{other:?}"),
        }
    }
}
