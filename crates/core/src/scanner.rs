//! The scan engine: ZMap's send/receive architecture as one event-driven
//! endpoint.
//!
//! The send side walks the cyclic-group permutation (or an explicit
//! target list), applies the blacklist and the sampling filter, and
//! paces stateless SYNs (or ICMP echos) with a token bucket. The receive
//! side validates SYN-ACKs against the ISN cookie and only then
//! allocates the stateful per-host probe session — the "lightweight
//! fashion" extension the paper adds to ZMap (§3.4).

use crate::blacklist::ScanFilter;
use crate::cookie::CookieKey;
use crate::permutation::{Permutation, ShardIter};
use crate::rate::TokenBucket;
use crate::results::{HostResult, MtuResult, Protocol};
use crate::session::{HostSession, SessionParams, SessionOutput};
use iw_internet::util::mix;
use iw_netsim::{Duration, Effects, Endpoint, Instant, TimerToken};
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp::{self, Flags};
use iw_wire::{icmp, ipv4, IpProtocol};
use std::collections::HashMap;

/// What to scan.
#[derive(Debug, Clone)]
pub enum TargetSpec {
    /// The whole scaled address space (permutation order).
    FullSpace {
        /// Space size in addresses.
        size: u32,
    },
    /// An explicit list (e.g. Alexa): `(ip, known domain)`.
    List(Vec<(u32, Option<String>)>),
}

/// Scan configuration.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Seed for permutation, cookies and probe randomness.
    pub seed: u64,
    /// Protocol module.
    pub protocol: Protocol,
    /// Target generation rate (packets/second, virtual time).
    pub rate_pps: u64,
    /// Targets.
    pub targets: TargetSpec,
    /// White/blacklists.
    pub filter: ScanFilter,
    /// Probe only this fraction of admitted targets (1.0 = all); the
    /// "1 % is enough" experiments use 0.01.
    pub sample_fraction: f64,
    /// Salt distinguishing independent random samples.
    pub sample_salt: u64,
    /// `(index, count)` cycle-striding shard.
    pub shard: (u32, u32),
    /// Probes per MSS (3 in the study).
    pub probes_per_mss: u32,
    /// Announced MSS values in run order.
    pub mss_list: Vec<u16>,
    /// Scanner source address.
    pub source: Ipv4Addr,
    /// Exhaustion-verification knob (ablation; on in the study).
    pub verify_exhaustion: bool,
}

impl ScanConfig {
    /// Study defaults against a full space.
    pub fn study(protocol: Protocol, space: u32, seed: u64) -> ScanConfig {
        ScanConfig {
            seed,
            protocol,
            rate_pps: 150_000,
            targets: TargetSpec::FullSpace { size: space },
            filter: ScanFilter::default(),
            sample_fraction: 1.0,
            sample_salt: 0,
            shard: (0, 1),
            probes_per_mss: 3,
            mss_list: vec![64, 128],
            source: Ipv4Addr::new(198, 18, 0, 1),
            verify_exhaustion: true,
        }
    }
}

enum TargetIter {
    Perm(ShardIter),
    List(std::vec::IntoIter<(u32, Option<String>)>),
}

impl TargetIter {
    fn next(&mut self) -> Option<(u32, Option<String>)> {
        match self {
            TargetIter::Perm(iter) => iter.next().map(|ip| (ip as u32, None)),
            TargetIter::List(iter) => iter.next(),
        }
    }
}

/// Timer token for the pacing tick.
const PACING_TOKEN: TimerToken = u64::MAX;
/// Pacing tick length.
const TICK: Duration = Duration::from_millis(5);

#[derive(Debug, Clone, Copy)]
struct MtuProbe {
    current_total: u32,
}

/// The scanner endpoint.
pub struct Scanner {
    config: ScanConfig,
    params: SessionParams,
    cookie: CookieKey,
    bucket: TokenBucket,
    targets: TargetIter,
    exhausted: bool,
    sessions: HashMap<u32, HostSession>,
    domains: HashMap<u32, String>,
    results: Vec<HostResult>,
    open_ports: Vec<u32>,
    mtu_states: HashMap<u32, MtuProbe>,
    mtu_results: Vec<MtuResult>,
    targets_sent: u64,
    refused: u64,
    ident: u16,
}

impl Scanner {
    /// Build a scanner from a config.
    pub fn new(config: ScanConfig) -> Scanner {
        let params = SessionParams {
            protocol: config.protocol,
            probes_per_mss: config.probes_per_mss,
            mss_list: config.mss_list.clone(),
            base_sport: 40000,
            source: config.source,
            seed: config.seed,
            verify_exhaustion: config.verify_exhaustion,
        };
        let targets = match &config.targets {
            TargetSpec::FullSpace { size } => {
                let perm = Permutation::new(u64::from(*size), config.seed);
                TargetIter::Perm(perm.shard(config.shard.0, config.shard.1))
            }
            TargetSpec::List(list) => TargetIter::List(list.clone().into_iter()),
        };
        let cookie = CookieKey::new(config.seed);
        let bucket = TokenBucket::new(
            config.rate_pps,
            (config.rate_pps / 100).max(16),
            Instant::ZERO,
        );
        Scanner {
            config,
            params,
            cookie,
            bucket,
            targets,
            exhausted: false,
            sessions: HashMap::new(),
            domains: HashMap::new(),
            results: Vec::new(),
            open_ports: Vec::new(),
            mtu_states: HashMap::new(),
            mtu_results: Vec::new(),
            targets_sent: 0,
            refused: 0,
            ident: 1,
        }
    }

    /// Begin scanning (call once via `Sim::kick_scanner`).
    pub fn start(&mut self, now: Instant, fx: &mut Effects) {
        self.pace(now, fx);
    }

    /// Finished host records (harvest after the run).
    pub fn results(&self) -> &[HostResult] {
        &self.results
    }

    /// Open ports found (port-scan mode).
    pub fn open_ports(&self) -> &[u32] {
        &self.open_ports
    }

    /// Path-MTU results (ICMP mode).
    pub fn mtu_results(&self) -> &[MtuResult] {
        &self.mtu_results
    }

    /// SYNs answered by RST (host up, port closed).
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Distinct targets probed.
    pub fn targets_sent(&self) -> u64 {
        self.targets_sent
    }

    /// Sessions still in flight (diagnostics).
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }

    fn sample_admits(&self, ip: u32) -> bool {
        if self.config.sample_fraction >= 1.0 {
            return true;
        }
        let h = mix(&[self.config.seed, self.config.sample_salt, u64::from(ip)]);
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.config.sample_fraction
    }

    fn pace(&mut self, now: Instant, fx: &mut Effects) {
        if self.exhausted {
            return;
        }
        let want = (self.config.rate_pps / 200).max(1);
        let grant = self.bucket.take(now, want);
        for _ in 0..grant {
            loop {
                let Some((ip, domain)) = self.targets.next() else {
                    self.exhausted = true;
                    return; // no re-arm: receive path finishes the scan
                };
                if !self.config.filter.admits(ip) || !self.sample_admits(ip) {
                    continue;
                }
                self.targets_sent += 1;
                if let Some(d) = domain {
                    self.domains.insert(ip, d);
                }
                self.send_initial_probe(ip, fx);
                break;
            }
        }
        fx.arm(TICK, PACING_TOKEN);
    }

    fn send_initial_probe(&mut self, ip: u32, fx: &mut Effects) {
        match self.config.protocol {
            Protocol::IcmpMtu => {
                let total = 1500u32;
                self.mtu_states.insert(
                    ip,
                    MtuProbe {
                        current_total: total,
                    },
                );
                self.send_echo(ip, total, fx);
            }
            _ => {
                let dport = self.config.protocol.port();
                let sport = self.params.sport(0, 0);
                let isn = self.cookie.isn(ip, sport, dport);
                let syn = tcp::Repr {
                    src_port: sport,
                    dst_port: dport,
                    seq: isn,
                    ack: 0,
                    flags: Flags::SYN,
                    window: 65535,
                    options: vec![tcp::TcpOption::Mss(self.params_mss0())],
                    payload: Vec::new(),
                };
                self.emit_segment(Ipv4Addr::from_u32(ip), &syn, fx);
            }
        }
    }

    fn params_mss0(&self) -> u16 {
        *self.config.mss_list.first().unwrap_or(&64)
    }

    fn emit_segment(&mut self, dst: Ipv4Addr, seg: &tcp::Repr, fx: &mut Effects) {
        let l4 = seg.emit(self.config.source, dst);
        let datagram = ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: self.config.source,
                dst_addr: dst,
                protocol: IpProtocol::Tcp,
                payload_len: l4.len(),
                ttl: 64,
            },
            self.ident,
            &l4,
        );
        self.ident = self.ident.wrapping_add(1);
        fx.send(datagram);
    }

    fn send_echo(&mut self, ip: u32, total_len: u32, fx: &mut Effects) {
        let payload_len =
            total_len as usize - ipv4::HEADER_LEN - icmp::HEADER_LEN;
        let msg = icmp::Message::EchoRequest {
            ident: (self.cookie.isn(ip, 0, 0) & 0xffff) as u16,
            seq: 1,
            payload_len,
        };
        let l4 = msg.emit();
        let datagram = ipv4::build_datagram(
            &ipv4::Repr {
                src_addr: self.config.source,
                dst_addr: Ipv4Addr::from_u32(ip),
                protocol: IpProtocol::Icmp,
                payload_len: l4.len(),
                ttl: 64,
            },
            self.ident,
            &l4,
        );
        self.ident = self.ident.wrapping_add(1);
        fx.send(datagram);
    }

    fn apply_session_output(&mut self, ip: u32, out: SessionOutput, now: Instant, fx: &mut Effects) {
        let dst = Ipv4Addr::from_u32(ip);
        for seg in &out.tx {
            self.emit_segment(dst, seg, fx);
        }
        if let Some(deadline) = out.deadline {
            if deadline > now {
                fx.arm(deadline - now, u64::from(ip));
            }
        }
        if let Some(result) = out.result {
            self.results.push(result);
            self.sessions.remove(&ip);
        }
    }

    fn on_tcp(&mut self, src: Ipv4Addr, seg: &tcp::Repr, now: Instant, fx: &mut Effects) {
        let ip = src.to_u32();

        if self.config.protocol == Protocol::PortScan {
            let sport = self.params.sport(0, 0);
            if seg.dst_port != sport {
                return;
            }
            if seg.flags.contains(Flags::SYN)
                && seg.flags.contains(Flags::ACK)
                && self.cookie.validate(ip, sport, seg.src_port, seg.ack)
            {
                self.open_ports.push(ip);
                let rst = tcp::Repr::bare(sport, seg.src_port, seg.ack, 0, Flags::RST, 0);
                self.emit_segment(src, &rst, fx);
            } else if seg.flags.contains(Flags::RST) {
                self.refused += 1;
            }
            return;
        }

        if let Some(session) = self.sessions.get_mut(&ip) {
            let out = session.on_segment(seg, now);
            self.apply_session_output(ip, out, now, fx);
            return;
        }
        // No session: a valid SYN-ACK for (probe 0, conn 0) creates one.
        let sport = self.params.sport(0, 0);
        let dport = self.config.protocol.port();
        if seg.dst_port == sport
            && seg.src_port == dport
            && seg.flags.contains(Flags::SYN)
            && seg.flags.contains(Flags::ACK)
            && self.cookie.validate(ip, sport, dport, seg.ack)
        {
            let domain = self.domains.get(&ip).cloned();
            let mut session =
                HostSession::new(src, self.params.clone(), self.cookie, domain, now);
            let out = session.on_segment(seg, now);
            self.sessions.insert(ip, session);
            self.apply_session_output(ip, out, now, fx);
        } else if seg.flags.contains(Flags::RST)
            && seg.dst_port == sport
            && self.cookie.validate(ip, sport, dport, seg.ack)
        {
            self.refused += 1;
        }
    }

    fn on_icmp(&mut self, src: Ipv4Addr, msg: &icmp::Message, fx: &mut Effects) {
        if self.config.protocol != Protocol::IcmpMtu {
            return;
        }
        let ip = src.to_u32();
        let Some(state) = self.mtu_states.get(&ip).copied() else {
            return;
        };
        match msg {
            icmp::Message::FragNeeded { mtu } => {
                let mtu = u32::from(*mtu);
                if mtu > 0 && mtu < state.current_total {
                    self.mtu_states.insert(ip, MtuProbe { current_total: mtu });
                    self.send_echo(ip, mtu, fx);
                }
            }
            icmp::Message::EchoReply { .. } => {
                self.mtu_results.push(MtuResult {
                    ip,
                    mtu: state.current_total,
                });
                self.mtu_states.remove(&ip);
            }
            _ => {}
        }
    }
}

impl Endpoint for Scanner {
    fn on_packet(&mut self, pkt: &[u8], now: Instant, fx: &mut Effects) {
        let Ok(packet) = ipv4::Packet::new_checked(pkt) else {
            return;
        };
        let Ok(ip_repr) = ipv4::Repr::parse(&packet) else {
            return;
        };
        if ip_repr.dst_addr != self.config.source {
            return;
        }
        match ip_repr.protocol {
            IpProtocol::Tcp => {
                let payload = packet.payload();
                let Ok(seg_packet) = tcp::Packet::new_checked(payload) else {
                    return;
                };
                let Ok(seg) = tcp::Repr::parse(&seg_packet, ip_repr.src_addr, ip_repr.dst_addr)
                else {
                    return;
                };
                self.on_tcp(ip_repr.src_addr, &seg, now, fx);
            }
            IpProtocol::Icmp => {
                if let Ok(msg) = icmp::Message::parse(packet.payload()) {
                    self.on_icmp(ip_repr.src_addr, &msg, fx);
                }
            }
            IpProtocol::Unknown(_) => {}
        }
    }

    fn on_timer(&mut self, token: TimerToken, now: Instant, fx: &mut Effects) {
        if token == PACING_TOKEN {
            self.pace(now, fx);
            return;
        }
        let ip = token as u32;
        if let Some(session) = self.sessions.get_mut(&ip) {
            let out = session.on_timer(now);
            self.apply_session_output(ip, out, now, fx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_study_defaults() {
        let c = ScanConfig::study(Protocol::Http, 1 << 20, 7);
        assert_eq!(c.rate_pps, 150_000);
        assert_eq!(c.mss_list, vec![64, 128]);
        assert_eq!(c.probes_per_mss, 3);
        assert_eq!(c.shard, (0, 1));
    }

    #[test]
    fn sampling_fraction_filters_deterministically() {
        let mut config = ScanConfig::study(Protocol::Http, 1 << 16, 7);
        config.sample_fraction = 0.25;
        let s = Scanner::new(config);
        let admitted = (0..40_000u32).filter(|ip| s.sample_admits(*ip)).count();
        let frac = admitted as f64 / 40_000.0;
        assert!((0.23..0.27).contains(&frac), "{frac}");
        // Same seed/salt → same subset.
        let s2 = Scanner::new(ScanConfig {
            sample_fraction: 0.25,
            ..ScanConfig::study(Protocol::Http, 1 << 16, 7)
        });
        for ip in 0..1000 {
            assert_eq!(s.sample_admits(ip), s2.sample_admits(ip));
        }
    }

    #[test]
    fn different_salts_different_samples() {
        let mk = |salt| {
            let mut c = ScanConfig::study(Protocol::Http, 1 << 16, 7);
            c.sample_fraction = 0.5;
            c.sample_salt = salt;
            Scanner::new(c)
        };
        let a = mk(1);
        let b = mk(2);
        let differing = (0..2000u32)
            .filter(|ip| a.sample_admits(*ip) != b.sample_admits(*ip))
            .count();
        assert!(differing > 500, "{differing}");
    }

    #[test]
    fn pacing_respects_rate() {
        let mut config = ScanConfig::study(Protocol::Http, 1 << 20, 3);
        config.rate_pps = 10_000;
        let mut scanner = Scanner::new(config);
        let mut fx = Effects::default();
        let mut now = Instant::ZERO;
        scanner.start(now, &mut fx);
        let mut sent = fx.tx.len() as u64;
        for _ in 0..200 {
            now += TICK;
            let mut fx = Effects::default();
            scanner.pace(now, &mut fx);
            sent += fx.tx.len() as u64;
        }
        // 200 ticks × 5 ms = 1 s → ≈ 10k SYNs.
        assert!((9_000..=11_000).contains(&sent), "{sent}");
    }
}
