//! The scan engine: ZMap's send/receive architecture as one event-driven
//! endpoint.
//!
//! The send side walks the cyclic-group permutation (or an explicit
//! target list), applies the blacklist and the sampling filter, and
//! paces stateless SYNs (or ICMP echos) with a token bucket. The receive
//! side validates SYN-ACKs against the ISN cookie and only then
//! allocates the stateful per-host probe session — the "lightweight
//! fashion" extension the paper adds to ZMap (§3.4).

use crate::blacklist::ScanFilter;
use crate::checkpoint::ShardCheckpoint;
use crate::cookie::{self, CookieKey, SynAckCheck};
use crate::permutation::{Permutation, ShardIter};
use crate::rate::{shard_rate, TokenBucket};
use crate::results::{ErrorKind, HostResult, MssVerdict, MtuResult, ProbeOutcome, Protocol};
use crate::ring::FeedReceiver;
use crate::session::{HostSession, SessionOutput, SessionParams};
use crate::table::IpMap;
use iw_internet::util::mix;
use iw_netsim::{Duration, Effects, Endpoint, Instant, TimerToken};
use iw_telemetry::{
    manifest, BufferSink, CounterId, EventLog, FlightRecorder, GaugeId, HistogramId, IcmpHarvest,
    MetricsRegistry, OutcomeKind, ProgressMonitor, ProgressSample, SessionEvent, Snapshot,
    StdoutSink, TelemetrySink, Tracer, DEFAULT_RING_CAPACITY,
};
use iw_wire::ipv4::Ipv4Addr;
use iw_wire::tcp::{self, Flags};
use iw_wire::{icmp, ipv4, IpProtocol};
use std::collections::VecDeque;

/// What to scan.
#[derive(Debug, Clone)]
pub enum TargetSpec {
    /// The whole scaled address space (permutation order).
    FullSpace {
        /// Space size in addresses.
        size: u32,
    },
    /// An explicit list (e.g. Alexa): `(ip, known domain)`.
    List(Vec<(u32, Option<String>)>),
}

/// Scan configuration.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Seed for permutation, cookies and probe randomness.
    pub seed: u64,
    /// Protocol module.
    pub protocol: Protocol,
    /// Target generation rate (packets/second, virtual time).
    pub rate_pps: u64,
    /// Targets.
    pub targets: TargetSpec,
    /// White/blacklists.
    pub filter: ScanFilter,
    /// Probe only this fraction of admitted targets (1.0 = all); the
    /// "1 % is enough" experiments use 0.01.
    pub sample_fraction: f64,
    /// Salt distinguishing independent random samples.
    pub sample_salt: u64,
    /// `(index, count)` cycle-striding shard.
    pub shard: (u32, u32),
    /// Probes per MSS (3 in the study).
    pub probes_per_mss: u32,
    /// Announced MSS values in run order.
    pub mss_list: Vec<u16>,
    /// Scanner source address.
    pub source: Ipv4Addr,
    /// Exhaustion-verification knob (ablation; on in the study).
    pub verify_exhaustion: bool,
    /// Record the simulated wire traffic (pcap export).
    pub record_trace: bool,
    /// Stateless-first hybrid mode (ZBanner-style): discovery SYNs carry
    /// their whole per-flow state in the source port + ISN cookie, and a
    /// target only earns scanner memory once its SYN-ACK validates and it
    /// is promoted to a full stateful IW-inference session. Applies to
    /// the TCP inference protocols (`Http`/`Tls`); `PortScan` is already
    /// stateless and `IcmpMtu` has no handshake.
    pub stateless_first: bool,
    /// Telemetry knobs (event log, RTT tracking, progress monitor).
    pub telemetry: TelemetryConfig,
    /// Resilience knobs (retries, watchdog, concurrency cap).
    pub resilience: ResilienceConfig,
}

/// Resilience knobs: retry budgets, the per-session watchdog and the
/// concurrency cap. Everything defaults to off so the baseline scan is
/// byte-identical with and without this layer compiled in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// SYN retransmissions for silent targets (0 = single SYN, ZMap
    /// style). Each retry doubles the backoff.
    pub syn_retries: u32,
    /// Delay before the first SYN retry; doubles per attempt.
    pub syn_backoff: Duration,
    /// Per-probe connection retries for `Error`/`Unreachable` outcomes
    /// (0 = record the failure immediately).
    pub probe_retries: u32,
    /// Delay before a probe retry connection; doubles per attempt.
    pub probe_backoff: Duration,
    /// Hard per-session deadline: a session still running this long after
    /// its SYN-ACK is force-concluded (tarpit defense). `None` = no watchdog.
    pub session_deadline: Option<Duration>,
    /// Maximum live sessions; above this the oldest session is evicted
    /// (0 = unbounded).
    pub max_sessions: usize,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            syn_retries: 0,
            syn_backoff: Duration::from_secs(1),
            probe_retries: 0,
            probe_backoff: Duration::from_millis(500),
            session_deadline: None,
            max_sessions: 0,
        }
    }
}

impl ResilienceConfig {
    /// A hardened profile for hostile networks: 2 SYN retries, 2 probe
    /// retries, a 75 s watchdog and a 64 Ki session cap.
    pub fn hardened() -> ResilienceConfig {
        ResilienceConfig {
            syn_retries: 2,
            syn_backoff: Duration::from_secs(1),
            probe_retries: 2,
            probe_backoff: Duration::from_millis(500),
            session_deadline: Some(Duration::from_secs(75)),
            max_sessions: 65_536,
        }
    }
}

/// Telemetry knobs for a scan. Everything defaults to off: the metrics
/// registry always runs (it is allocation-free), but the event log and the
/// SYN-timestamp map cost memory per host and are opt-in.
#[derive(Debug, Clone, Default)]
pub struct TelemetryConfig {
    /// Record per-session lifecycle events into the scan event log.
    pub record_events: bool,
    /// Track SYN send times to measure the SYN → SYN-ACK RTT (one map
    /// entry per in-flight target).
    pub record_rtt: bool,
    /// Emit periodic ZMap-style progress lines.
    pub monitor: Option<MonitorSpec>,
    /// Record virtual-time session-phase spans (handshake, probes,
    /// session lifetime) for Chrome-trace export. Uses the SYN-timestamp
    /// map, so it shares `record_rtt`'s per-target memory cost.
    pub record_spans: bool,
    /// Keep a bounded per-session flight-recorder ring of wire and
    /// state-machine activity; sessions ending in an error dump theirs
    /// as a JSONL black box.
    pub flight_recorder: bool,
    /// Append streaming JSONL telemetry (metric deltas + per-target
    /// results) on this virtual-time interval.
    pub stream: Option<Duration>,
}

/// Progress-monitor configuration.
#[derive(Debug, Clone)]
pub struct MonitorSpec {
    /// Virtual-time reporting interval.
    pub interval: Duration,
    /// Where the status lines go.
    pub sink: MonitorSink,
}

impl Default for MonitorSpec {
    fn default() -> MonitorSpec {
        MonitorSpec {
            interval: Duration::from_secs(1),
            sink: MonitorSink::Capture,
        }
    }
}

/// Status-line destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorSink {
    /// Print lines as they are produced (the CLI's `--monitor`).
    Stdout,
    /// Collect lines for later retrieval (tests; sharded runs).
    Capture,
}

impl ScanConfig {
    /// Study defaults against a full space.
    pub fn study(protocol: Protocol, space: u32, seed: u64) -> ScanConfig {
        ScanConfig {
            seed,
            protocol,
            rate_pps: 150_000,
            targets: TargetSpec::FullSpace { size: space },
            filter: ScanFilter::default(),
            sample_fraction: 1.0,
            sample_salt: 0,
            shard: (0, 1),
            probes_per_mss: 3,
            mss_list: vec![64, 128],
            source: Ipv4Addr::new(198, 18, 0, 1),
            verify_exhaustion: true,
            record_trace: false,
            stateless_first: false,
            telemetry: TelemetryConfig::default(),
            resilience: ResilienceConfig::default(),
        }
    }

    /// Validated construction: study defaults plus checked overrides.
    ///
    /// The struct's fields stay public (the experiment binaries tweak
    /// them freely), but configurations assembled through the builder
    /// are guaranteed internally consistent at `build()` time.
    pub fn builder(protocol: Protocol, space: u32, seed: u64) -> ScanConfigBuilder {
        ScanConfigBuilder {
            config: ScanConfig::study(protocol, space, seed),
            explicit_session_cap: false,
        }
    }
}

/// A scan configuration rejected by [`ScanConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The MSS run list is empty: the scan would probe nothing.
    EmptyMssList,
    /// An announced MSS of zero (the TCP option cannot express it and
    /// every segment-count division would be by zero).
    ZeroMss,
    /// `probes_per_mss` of zero: no probes, no verdicts.
    ZeroProbes,
    /// A target rate of zero packets/second never sends the first SYN.
    ZeroRate,
    /// `sample_fraction` outside `(0, 1]`.
    SampleFraction(f64),
    /// An explicit session cap of zero would evict every session on
    /// admission. Leave [`ResilienceConfig::max_sessions`] untouched
    /// for an unbounded table instead.
    ZeroSessionCap,
    /// The watchdog would fire before a single connection attempt can
    /// exhaust its own timeouts (SYN 4 s + collect 10 s + verify 3 s),
    /// force-concluding perfectly healthy sessions.
    WatchdogBelowFloor(Duration),
    /// Retries were requested with a zero backoff: every retry would
    /// fire in the same virtual instant, a busy-loop in disguise.
    ZeroBackoff,
}

/// Minimum useful watchdog: one full connection attempt's timeout
/// budget (`syn_timeout + collect_timeout + verify_timeout` defaults).
pub const WATCHDOG_FLOOR: Duration = Duration::from_secs(4 + 10 + 3);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyMssList => write!(f, "mss_list must not be empty"),
            ConfigError::ZeroMss => write!(f, "mss_list must not contain 0"),
            ConfigError::ZeroProbes => write!(f, "probes_per_mss must be at least 1"),
            ConfigError::ZeroRate => write!(f, "rate_pps must be at least 1"),
            ConfigError::SampleFraction(v) => {
                write!(f, "sample_fraction {v} outside (0, 1]")
            }
            ConfigError::ZeroSessionCap => {
                write!(f, "explicit max_sessions of 0 (omit it for unbounded)")
            }
            ConfigError::WatchdogBelowFloor(d) => write!(
                f,
                "session watchdog {:?} below the {:?} single-attempt floor",
                d, WATCHDOG_FLOOR
            ),
            ConfigError::ZeroBackoff => {
                write!(f, "retries configured with a zero backoff")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Checked builder for [`ScanConfig`]; see [`ScanConfig::builder`].
#[derive(Debug, Clone)]
pub struct ScanConfigBuilder {
    config: ScanConfig,
    explicit_session_cap: bool,
}

impl ScanConfigBuilder {
    /// Target generation rate in packets/second of virtual time.
    pub fn rate_pps(mut self, rate: u64) -> Self {
        self.config.rate_pps = rate;
        self
    }

    /// Announced MSS values, in run order.
    pub fn mss_list(mut self, mss_list: Vec<u16>) -> Self {
        self.config.mss_list = mss_list;
        self
    }

    /// Probes per MSS value (the study uses 3).
    pub fn probes_per_mss(mut self, probes: u32) -> Self {
        self.config.probes_per_mss = probes;
        self
    }

    /// Probe only this fraction of admitted targets, salted.
    pub fn sample(mut self, fraction: f64, salt: u64) -> Self {
        self.config.sample_fraction = fraction;
        self.config.sample_salt = salt;
        self
    }

    /// Toggle the 2·MSS exhaustion-verification ACK (ablation knob).
    pub fn verify_exhaustion(mut self, on: bool) -> Self {
        self.config.verify_exhaustion = on;
        self
    }

    /// Record the simulated wire traffic for pcap export.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.config.record_trace = on;
        self
    }

    /// Toggle stateless-first hybrid discovery (ZBanner-style).
    pub fn stateless_first(mut self, on: bool) -> Self {
        self.config.stateless_first = on;
        self
    }

    /// Replace the telemetry knobs wholesale.
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.config.telemetry = telemetry;
        self
    }

    /// Replace the resilience knobs wholesale. A zero `max_sessions`
    /// here still means "unbounded" (only [`Self::max_sessions`] makes
    /// zero an error, because there it is necessarily deliberate).
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.config.resilience = resilience;
        self
    }

    /// Cap the live-session table (explicit zero is rejected at build).
    pub fn max_sessions(mut self, cap: usize) -> Self {
        self.config.resilience.max_sessions = cap;
        self.explicit_session_cap = true;
        self
    }

    /// Arm the per-session watchdog.
    pub fn watchdog(mut self, deadline: Duration) -> Self {
        self.config.resilience.session_deadline = Some(deadline);
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ScanConfig, ConfigError> {
        let c = &self.config;
        if c.mss_list.is_empty() {
            return Err(ConfigError::EmptyMssList);
        }
        if c.mss_list.contains(&0) {
            return Err(ConfigError::ZeroMss);
        }
        if c.probes_per_mss == 0 {
            return Err(ConfigError::ZeroProbes);
        }
        if c.rate_pps == 0 {
            return Err(ConfigError::ZeroRate);
        }
        if !(c.sample_fraction > 0.0 && c.sample_fraction <= 1.0) {
            return Err(ConfigError::SampleFraction(c.sample_fraction));
        }
        if self.explicit_session_cap && c.resilience.max_sessions == 0 {
            return Err(ConfigError::ZeroSessionCap);
        }
        if let Some(deadline) = c.resilience.session_deadline {
            if deadline < WATCHDOG_FLOOR {
                return Err(ConfigError::WatchdogBelowFloor(deadline));
            }
        }
        let r = &c.resilience;
        if (r.syn_retries > 0 && r.syn_backoff == Duration::ZERO)
            || (r.probe_retries > 0 && r.probe_backoff == Duration::ZERO)
        {
            return Err(ConfigError::ZeroBackoff);
        }
        Ok(self.config)
    }
}

enum TargetIter {
    Perm(ShardIter),
    List(std::vec::IntoIter<(u32, Option<String>)>),
    /// Targets arrive pre-generated from a TX feeder thread over the
    /// bounded ring (`Topology::Threads`). `cursor` mirrors the feeder's
    /// generator state as of the last consumed target, so checkpoints
    /// look exactly like a self-generating scanner's.
    Feed {
        feed: FeedReceiver,
        cursor: (u64, u64),
    },
}

impl TargetIter {
    fn next(&mut self) -> Option<(u32, Option<String>)> {
        match self {
            TargetIter::Perm(iter) => iter.next().map(|ip| (ip as u32, None)),
            TargetIter::List(iter) => iter.next(),
            TargetIter::Feed { feed, cursor } => match feed.recv() {
                Some(msg) => {
                    *cursor = msg.cursor;
                    Some((msg.ip, msg.domain))
                }
                None => {
                    // Exhausted: adopt the feeder's terminal cursor (the
                    // partition fully walked, trailing rejects included),
                    // matching what a self-generating iterator would hold.
                    if let Some(fin) = feed.finished() {
                        *cursor = fin.cursor;
                    }
                    None
                }
            },
        }
    }

    /// Resumable position: the permutation cursor ([`ShardIter::cursor`]),
    /// or `(remaining, 0)` for explicit lists. Either way the pair pins
    /// the generator's exact state for checkpoint barrier comparison.
    fn cursor(&self) -> (u64, u64) {
        match self {
            TargetIter::Perm(iter) => iter.cursor(),
            TargetIter::List(iter) => (iter.len() as u64, 0),
            TargetIter::Feed { cursor, .. } => *cursor,
        }
    }
}

/// Timer token for the pacing tick.
const PACING_TOKEN: TimerToken = u64::MAX;
/// Timer token for the progress monitor (session tokens are `u64::from(ip)`,
/// so the top of the token space is free for scanner-internal timers).
const MONITOR_TOKEN: TimerToken = u64::MAX - 1;
/// Timer token for the periodic SYN-timestamp sweep.
const SWEEP_TOKEN: TimerToken = u64::MAX - 2;
/// Timer token for the streaming-telemetry snapshot tick.
const STREAM_TOKEN: TimerToken = u64::MAX - 3;
/// Per-IP timer namespaces in bits 32..40 of the token (bits ..32 carry
/// the IP): 0 = session wake-up, 1 = SYN retry, 2 = session watchdog,
/// 3 = discovery retransmit. The scanner-global tokens above live at the
/// very top of the space and are matched by equality first.
const SYN_RETRY_NS: u64 = 1 << 32;
/// See [`SYN_RETRY_NS`].
const WATCHDOG_NS: u64 = 2 << 32;
/// Discovery-retransmit namespace; the attempt index rides in bits 40..
/// so the timer itself carries the whole retry state — no `pending`
/// entry exists for a discovery-phase target.
const DISCOVERY_NS: u64 = 3 << 32;

/// Token for discovery retransmission `attempt` of target `ip`.
fn discovery_token(attempt: u32, ip: u32) -> TimerToken {
    DISCOVERY_NS | (u64::from(attempt) << 40) | u64::from(ip)
}
/// Pacing tick length.
const TICK: Duration = Duration::from_millis(5);
/// Period of the SYN-timestamp sweep.
const SWEEP_PERIOD: Duration = Duration::from_secs(1);
/// A SYN-timestamp entry older than this belongs to a host that will
/// never SYN-ACK; the sweep drops it (satellite: the `syn_ts` leak).
const RTT_EXPIRY: Duration = Duration::from_secs(8);

/// The deterministic per-target sampling decision, shared by the
/// self-generating scanner and the TX feeders (`txrx`): a target's
/// admission depends only on `(seed, salt, ip)`, never on who asks.
pub(crate) fn sample_admits(config: &ScanConfig, ip: u32) -> bool {
    if config.sample_fraction >= 1.0 {
        return true;
    }
    let h = mix(&[config.seed, config.sample_salt, u64::from(ip)]);
    ((h >> 11) as f64 / (1u64 << 53) as f64) < config.sample_fraction
}

/// Array index of an [`OutcomeKind`] in the per-outcome counter blocks.
fn kind_index(kind: OutcomeKind) -> usize {
    match kind {
        OutcomeKind::Success => 0,
        OutcomeKind::FewData => 1,
        OutcomeKind::Error => 2,
        OutcomeKind::Unreachable => 3,
    }
}

/// The scanner's metric schema: every counter/gauge/histogram the engine
/// records, registered once at construction so the hot path is pure index
/// arithmetic. `scan.*` metrics are population-determined and merge exactly
/// across shard counts; `shard.*` metrics are scheduling-determined.
struct Metrics {
    registry: MetricsRegistry,
    targets_sent: CounterId,
    synacks_validated: CounterId,
    refused: CounterId,
    sessions_started: CounterId,
    retransmits_detected: CounterId,
    verify_acks_sent: CounterId,
    /// Per-probe terminal outcomes, indexed by [`kind_index`].
    probes: [CounterId; 4],
    /// Per-session (primary-verdict) outcomes, indexed by [`kind_index`].
    sessions_finished: [CounterId; 4],
    rtt_nanos: HistogramId,
    session_lifetime_nanos: HistogramId,
    retransmit_bytes: HistogramId,
    pace_ticks: CounterId,
    token_wait_nanos: HistogramId,
    live_peak: GaugeId,
    syn_retries: CounterId,
    probes_retried: CounterId,
    /// Eviction is scheduling-determined (which session is oldest depends
    /// on shard interleaving), so it lives in the shard scope and stays
    /// out of the canonical cross-shard snapshot.
    sessions_evicted: CounterId,
    watchdog_forced: CounterId,
    icmp_unreachable: CounterId,
    /// Terminal `ProbeOutcome::Error` kinds, indexed by [`ErrorKind::index`].
    error_kinds: [CounterId; 6],
    /// ICMP control-plane harvest: every message, unreachable subtypes
    /// (indexed by [`IcmpHarvest::unreachable_code_index`]), frag-needed.
    icmp_messages: CounterId,
    icmp_unreachable_codes: [CounterId; 4],
    icmp_frag_needed: CounterId,
    icmp_source_quench: CounterId,
    /// Stateless-first discovery accounting (Scan scope: responses are
    /// population-determined) plus the per-shard state-peak gauge.
    discovery_syns: CounterId,
    discovery_retries: CounterId,
    discovery_validated: CounterId,
    discovery_promoted: CounterId,
    discovery_duplicates: CounterId,
    discovery_cookie_mismatch: CounterId,
    discovery_raw_isn_echo: CounterId,
    discovery_spoofed_rst: CounterId,
    discovery_state_peak: GaugeId,
    /// RSTs dropped on any verdict path for failing cookie validation.
    rst_ignored: CounterId,
    /// Durable-campaign accounting. Shard-scoped: capture cadence and
    /// drain pressure depend on per-shard event interleaving.
    checkpoints_taken: CounterId,
    checkpoint_drain_forced: CounterId,
    /// Flight-recorder dumps (sessions that ended in an error).
    flight_dumps: CounterId,
    /// Span-tracer accounting, folded in at harvest.
    trace_spans_scan: CounterId,
    trace_spans_shard: CounterId,
    trace_span_nanos: HistogramId,
    /// TX-feeder accounting (`Topology::Threads`), folded in from the
    /// ring's terminal state at harvest; zero for self-generating
    /// topologies. Shard-scoped: production counts depend on the split.
    tx_targets: CounterId,
    tx_batches: CounterId,
    /// Event-loop kernel counters, filled from `SimStats` at harvest.
    /// Shard-scoped: each shard runs its own simulator instance.
    sim_events: CounterId,
    sim_packets: CounterId,
    sim_pool_allocations: CounterId,
    sim_pool_recycled: CounterId,
    sim_pool_outstanding: GaugeId,
}

impl Metrics {
    fn new() -> Metrics {
        let mut r = MetricsRegistry::new();
        let targets_sent = r.register_counter(&manifest::SCAN_TARGETS_SENT);
        let synacks_validated = r.register_counter(&manifest::SCAN_SYNACKS_VALIDATED);
        let refused = r.register_counter(&manifest::SCAN_REFUSED);
        let sessions_started = r.register_counter(&manifest::SCAN_SESSIONS_STARTED);
        let retransmits_detected = r.register_counter(&manifest::SCAN_RETRANSMITS_DETECTED);
        let verify_acks_sent = r.register_counter(&manifest::SCAN_VERIFY_ACKS_SENT);
        let probes = manifest::PROBE_OUTCOME_COUNTERS.map(|def| r.register_counter(def));
        let sessions_finished =
            manifest::SESSION_OUTCOME_COUNTERS.map(|def| r.register_counter(def));
        let rtt_nanos = r.register_histogram(&manifest::SCAN_RTT_NANOS);
        let session_lifetime_nanos = r.register_histogram(&manifest::SCAN_SESSION_LIFETIME_NANOS);
        let retransmit_bytes = r.register_histogram(&manifest::SCAN_RETRANSMIT_BYTES_IN_FLIGHT);
        let pace_ticks = r.register_counter(&manifest::SHARD_PACE_TICKS);
        let token_wait_nanos = r.register_histogram(&manifest::SHARD_PACE_TOKEN_WAIT_NANOS);
        let live_peak = r.register_gauge(&manifest::SHARD_SESSIONS_LIVE_PEAK);
        let syn_retries = r.register_counter(&manifest::SCAN_SYN_RETRIES);
        let probes_retried = r.register_counter(&manifest::SCAN_PROBES_RETRIED);
        let sessions_evicted = r.register_counter(&manifest::SCAN_SESSIONS_EVICTED);
        let watchdog_forced = r.register_counter(&manifest::SCAN_SESSIONS_WATCHDOG_FORCED);
        let icmp_unreachable = r.register_counter(&manifest::SCAN_ICMP_UNREACHABLE);
        let error_kinds = manifest::ERROR_KIND_COUNTERS.map(|def| r.register_counter(def));
        let icmp_messages = r.register_counter(&manifest::SCAN_ICMP_MESSAGES);
        let icmp_unreachable_codes =
            manifest::ICMP_UNREACHABLE_CODE_COUNTERS.map(|def| r.register_counter(def));
        let icmp_frag_needed = r.register_counter(&manifest::SCAN_ICMP_FRAG_NEEDED);
        let icmp_source_quench = r.register_counter(&manifest::SCAN_ICMP_SOURCE_QUENCH);
        let discovery_syns = r.register_counter(&manifest::SCAN_DISCOVERY_SYNS);
        let discovery_retries = r.register_counter(&manifest::SCAN_DISCOVERY_RETRIES);
        let discovery_validated = r.register_counter(&manifest::SCAN_DISCOVERY_VALIDATED);
        let discovery_promoted = r.register_counter(&manifest::SCAN_DISCOVERY_PROMOTED);
        let discovery_duplicates = r.register_counter(&manifest::SCAN_DISCOVERY_DUPLICATES);
        let discovery_cookie_mismatch =
            r.register_counter(&manifest::SCAN_DISCOVERY_COOKIE_MISMATCH);
        let discovery_raw_isn_echo = r.register_counter(&manifest::SCAN_DISCOVERY_RAW_ISN_ECHO);
        let discovery_spoofed_rst = r.register_counter(&manifest::SCAN_DISCOVERY_SPOOFED_RST);
        let discovery_state_peak = r.register_gauge(&manifest::SCAN_DISCOVERY_STATE_PEAK);
        let rst_ignored = r.register_counter(&manifest::SCAN_RST_IGNORED);
        let checkpoints_taken = r.register_counter(&manifest::SCAN_CHECKPOINTS_TAKEN);
        let checkpoint_drain_forced = r.register_counter(&manifest::SCAN_CHECKPOINT_DRAIN_FORCED);
        let flight_dumps = r.register_counter(&manifest::SCAN_FLIGHT_DUMPS);
        let trace_spans_scan = r.register_counter(&manifest::TRACE_SPANS_SCAN);
        let trace_spans_shard = r.register_counter(&manifest::TRACE_SPANS_SHARD);
        let trace_span_nanos = r.register_histogram(&manifest::TRACE_SPAN_NANOS);
        let tx_targets = r.register_counter(&manifest::SHARD_TX_TARGETS);
        let tx_batches = r.register_counter(&manifest::SHARD_TX_BATCHES);
        let sim_events = r.register_counter(&manifest::SIM_QUEUE_EVENTS);
        let sim_packets = r.register_counter(&manifest::SIM_QUEUE_PACKETS);
        let sim_pool_allocations = r.register_counter(&manifest::SIM_QUEUE_POOL_ALLOCATIONS);
        let sim_pool_recycled = r.register_counter(&manifest::SIM_QUEUE_POOL_RECYCLED);
        let sim_pool_outstanding = r.register_gauge(&manifest::SIM_QUEUE_POOL_OUTSTANDING);
        Metrics {
            registry: r,
            targets_sent,
            synacks_validated,
            refused,
            sessions_started,
            retransmits_detected,
            verify_acks_sent,
            probes,
            sessions_finished,
            rtt_nanos,
            session_lifetime_nanos,
            retransmit_bytes,
            pace_ticks,
            token_wait_nanos,
            live_peak,
            syn_retries,
            probes_retried,
            sessions_evicted,
            watchdog_forced,
            icmp_unreachable,
            error_kinds,
            icmp_messages,
            icmp_unreachable_codes,
            icmp_frag_needed,
            icmp_source_quench,
            discovery_syns,
            discovery_retries,
            discovery_validated,
            discovery_promoted,
            discovery_duplicates,
            discovery_cookie_mismatch,
            discovery_raw_isn_echo,
            discovery_spoofed_rst,
            discovery_state_peak,
            rst_ignored,
            checkpoints_taken,
            checkpoint_drain_forced,
            flight_dumps,
            trace_spans_scan,
            trace_spans_shard,
            trace_span_nanos,
            tx_targets,
            tx_batches,
            sim_events,
            sim_packets,
            sim_pool_allocations,
            sim_pool_recycled,
            sim_pool_outstanding,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct MtuProbe {
    current_total: u32,
}

/// The scanner endpoint.
pub struct Scanner {
    config: ScanConfig,
    params: SessionParams,
    cookie: CookieKey,
    bucket: TokenBucket,
    targets: TargetIter,
    exhausted: bool,
    sessions: IpMap<HostSession>,
    /// Targets probed but not yet answered, with the number of SYN retries
    /// already spent. Populated only when `resilience.syn_retries > 0`;
    /// entries leave on SYN-ACK/RST/ICMP or retry exhaustion.
    pending: IpMap<u32>,
    /// Session creation order (oldest first) for `max_sessions` eviction.
    /// Maintained only when a cap is configured; may hold stale entries
    /// for already-finished sessions (skipped on eviction, lazily
    /// compacted on conclusion so it stays O(live sessions)).
    session_order: VecDeque<u32>,
    /// Responders awaiting promotion to a stateful session, in discovery
    /// order (stateless-first mode). Drained FIFO whenever the session
    /// table has room under `max_sessions`.
    promotions: VecDeque<u32>,
    /// Promoted targets whose stateful handshake is still in flight (SYN
    /// sent, session not yet created). The promotion drain counts these
    /// against `max_sessions` — a session only appears when the SYN-ACK
    /// returns, so gating on the session table alone would flush the
    /// whole queue in one burst and the admission path would then evict
    /// everything past the cap. Entries leave on session creation,
    /// refusal, ICMP fast-fail or SYN-retry exhaustion.
    promoted_inflight: IpMap<()>,
    /// Targets whose discovery SYN-ACK (or RST) already validated, with
    /// the attempt that elicited it: blind retransmissions can draw
    /// duplicate responses, and a responder must be promoted exactly
    /// once. O(responders) by construction.
    discovered: IpMap<u32>,
    domains: IpMap<String>,
    results: Vec<HostResult>,
    open_ports: Vec<u32>,
    mtu_states: IpMap<MtuProbe>,
    mtu_results: Vec<MtuResult>,
    targets_sent: u64,
    refused: u64,
    ident: u16,
    /// Prebuilt initial-SYN segment (4-tuple and MSS option are fixed for
    /// the whole scan); only `seq` is rewritten per target, so the probe
    /// fan-out never re-allocates the options vector.
    syn_template: tcp::Repr,
    /// Prebuilt discovery-SYN segment (stateless-first mode): `src_port`
    /// carries the attempt, `seq` the cookie; everything else is fixed.
    discovery_template: tcp::Repr,
    metrics: Metrics,
    events: EventLog,
    /// SYN send times for RTT measurement (populated only when
    /// `telemetry.record_rtt`; entries are consumed on first response).
    syn_ts: IpMap<Instant>,
    monitor: Option<ProgressMonitor>,
    monitor_sink: MonitorSink,
    status_lines: Vec<String>,
    /// Estimated targets this shard will probe (0 = unknown).
    targets_total: u64,
    /// Session-phase span tracer (scan scope) plus this shard's pacing
    /// spans; the sim kernel's hot-path spans merge in at harvest.
    tracer: Tracer,
    /// Per-session flight recorder (black-box rings + error dumps).
    recorder: FlightRecorder,
    /// Streaming JSONL sink (snapshot deltas + per-target results).
    sink: TelemetrySink,
    /// Classified ICMP side-traffic.
    icmp_harvest: IcmpHarvest,
    /// End of the previous pacing tick (for the `pace.tick` span).
    last_pace_at: Instant,
}

impl Scanner {
    /// Build a self-generating scanner: it walks its own shard of the
    /// permutation (or its target list) while pacing.
    pub fn new(config: ScanConfig) -> Scanner {
        let targets = match &config.targets {
            TargetSpec::FullSpace { size } => {
                let perm = Permutation::new(u64::from(*size), config.seed);
                TargetIter::Perm(perm.shard(config.shard.0, config.shard.1))
            }
            TargetSpec::List(list) => TargetIter::List(list.clone().into_iter()),
        };
        Scanner::build(config, targets)
    }

    /// Build a scanner fed by a TX thread over the bounded ring
    /// (`Topology::Threads`): pacing, probing and inference stay here,
    /// target generation happens in `txrx::run_feeder`. The initial
    /// cursor is the feeder's starting generator state so checkpoints
    /// taken before the first target are well-formed.
    pub(crate) fn with_feed(config: ScanConfig, feed: FeedReceiver) -> Scanner {
        let cursor = match &config.targets {
            TargetSpec::FullSpace { size } => {
                let perm = Permutation::new(u64::from(*size), config.seed);
                perm.shard(config.shard.0, config.shard.1).cursor()
            }
            TargetSpec::List(list) => (
                crate::txrx::list_partition_len(list.len(), config.shard.0, config.shard.1),
                0,
            ),
        };
        Scanner::build(config, TargetIter::Feed { feed, cursor })
    }

    fn build(config: ScanConfig, targets: TargetIter) -> Scanner {
        let params = SessionParams {
            protocol: config.protocol,
            probes_per_mss: config.probes_per_mss,
            mss_list: config.mss_list.clone(),
            base_sport: 40000,
            source: config.source,
            seed: config.seed,
            verify_exhaustion: config.verify_exhaustion,
            probe_retries: config.resilience.probe_retries,
            probe_backoff: config.resilience.probe_backoff,
        };
        let cookie = CookieKey::new(config.seed);
        // Each shard paces at its integer slice of the global rate, so N
        // concurrent shards provably sum to `rate_pps` (see
        // `rate::shard_rate`); with one shard the slice is the whole
        // budget. `config.rate_pps` stays global for digests and the
        // monitor's configured-pps line.
        let pace_pps = shard_rate(config.rate_pps, config.shard.0, config.shard.1);
        let bucket = TokenBucket::new(pace_pps, (pace_pps / 100).max(16), Instant::ZERO);
        let targets_total = match &config.targets {
            TargetSpec::FullSpace { size } => {
                let per_shard = u64::from(*size) / u64::from(config.shard.1.max(1));
                (per_shard as f64 * config.sample_fraction.clamp(0.0, 1.0)) as u64
            }
            TargetSpec::List(list) => list.len() as u64,
        };
        let monitor = config
            .telemetry
            .monitor
            .as_ref()
            .map(|spec| ProgressMonitor::new(spec.interval.as_nanos()));
        let monitor_sink = config
            .telemetry
            .monitor
            .as_ref()
            .map_or(MonitorSink::Capture, |spec| spec.sink);
        let events = EventLog::new(config.telemetry.record_events);
        let tracer = Tracer::new(config.telemetry.record_spans);
        let recorder = FlightRecorder::new(config.telemetry.flight_recorder, DEFAULT_RING_CAPACITY);
        let sink = TelemetrySink::new(config.telemetry.stream.is_some());
        let syn_template = tcp::Repr {
            src_port: params.sport(0, 0, 0),
            dst_port: config.protocol.port(),
            seq: 0,
            ack: 0,
            flags: Flags::SYN,
            window: 65535,
            options: vec![tcp::TcpOption::Mss(*config.mss_list.first().unwrap_or(&64))],
            payload: Vec::new(),
        };
        let discovery_template = tcp::Repr {
            src_port: cookie::DISCOVERY_BASE_SPORT,
            ..syn_template.clone()
        };
        Scanner {
            config,
            params,
            cookie,
            bucket,
            targets,
            exhausted: false,
            sessions: IpMap::new(),
            pending: IpMap::new(),
            session_order: VecDeque::new(),
            promotions: VecDeque::new(),
            promoted_inflight: IpMap::new(),
            discovered: IpMap::new(),
            domains: IpMap::new(),
            results: Vec::new(),
            open_ports: Vec::new(),
            mtu_states: IpMap::new(),
            mtu_results: Vec::new(),
            targets_sent: 0,
            refused: 0,
            ident: 1,
            syn_template,
            discovery_template,
            metrics: Metrics::new(),
            events,
            syn_ts: IpMap::new(),
            monitor,
            monitor_sink,
            status_lines: Vec::new(),
            targets_total,
            tracer,
            recorder,
            sink,
            icmp_harvest: IcmpHarvest::default(),
            last_pace_at: Instant::ZERO,
        }
    }

    /// Begin scanning (call once via `Sim::kick_scanner`).
    pub fn start(&mut self, now: Instant, fx: &mut Effects) {
        if let Some(m) = &self.monitor {
            fx.arm(Duration::from_nanos(m.interval_nanos()), MONITOR_TOKEN);
        }
        // The sweep also bounds the SYN-timestamp map when it serves the
        // span tracer, and expires flight-recorder rings of silent hosts.
        let t = &self.config.telemetry;
        if t.record_rtt || t.record_spans || t.flight_recorder {
            fx.arm(SWEEP_PERIOD, SWEEP_TOKEN);
        }
        if let Some(interval) = t.stream {
            fx.arm(interval, STREAM_TOKEN);
        }
        self.pace(now, fx);
    }

    /// Finished host records (harvest after the run).
    pub fn results(&self) -> &[HostResult] {
        &self.results
    }

    /// Open ports found (port-scan mode).
    pub fn open_ports(&self) -> &[u32] {
        &self.open_ports
    }

    /// Path-MTU results (ICMP mode).
    pub fn mtu_results(&self) -> &[MtuResult] {
        &self.mtu_results
    }

    /// SYNs answered by RST (host up, port closed).
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// Distinct targets probed.
    pub fn targets_sent(&self) -> u64 {
        self.targets_sent
    }

    /// Sessions still in flight (diagnostics).
    pub fn live_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// SYN timestamps still held for RTT measurement (diagnostics; the
    /// sweep keeps this bounded even when targets never answer).
    pub fn rtt_pending(&self) -> usize {
        self.syn_ts.len()
    }

    /// Depth of the eviction-order queue (diagnostics; lazy compaction
    /// keeps this O(live sessions), not O(total sessions started)).
    pub fn eviction_queue_len(&self) -> usize {
        self.session_order.len()
    }

    /// Fold the simulation kernel's counters into the shard-scoped
    /// `sim.queue.*` metrics. Called once per shard at harvest, after the
    /// event loop drains.
    pub fn note_sim_stats(&mut self, stats: &iw_netsim::sim::SimStats) {
        let m = &mut self.metrics;
        m.registry.add(m.sim_events, stats.events);
        m.registry
            .add(m.sim_packets, stats.scanner_rx + stats.host_rx);
        m.registry
            .add(m.sim_pool_allocations, stats.pool_allocations);
        m.registry.add(m.sim_pool_recycled, stats.pool_recycled);
        m.registry
            .gauge_set(m.sim_pool_outstanding, stats.pool_outstanding);
    }

    /// Frozen metrics snapshot (merge across shards via [`Snapshot::merge`]).
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.registry.snapshot()
    }

    /// Take the session event log (leaves a disabled, empty log behind).
    pub fn take_events(&mut self) -> EventLog {
        std::mem::replace(&mut self.events, EventLog::new(false))
    }

    /// Take the span tracer (merge across shards via [`Tracer::merge`]).
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Take the flight recorder (merge via [`FlightRecorder::merge`]).
    pub fn take_flight_recorder(&mut self) -> FlightRecorder {
        std::mem::take(&mut self.recorder)
    }

    /// Take the streaming sink (merge via [`TelemetrySink::merge`]).
    pub fn take_stream(&mut self) -> TelemetrySink {
        std::mem::take(&mut self.sink)
    }

    /// Take the ICMP harvest (merge via [`IcmpHarvest::merge`]).
    pub fn take_icmp_harvest(&mut self) -> IcmpHarvest {
        std::mem::take(&mut self.icmp_harvest)
    }

    /// Close out the observability layer at harvest time, after the event
    /// loop drains: merge the sim kernel's hot-path spans, fold the span
    /// accounting into the `trace.*` metrics, emit the final progress line
    /// (even mid-interval, with error-kind tallies) and flush the last
    /// streaming snapshot so delta sums equal final totals.
    pub fn finish_observability(&mut self, sim_tracer: Tracer, now: Instant) {
        self.note_feed_stats();
        self.tracer.merge(&sim_tracer);
        if self.tracer.is_enabled() {
            let m = &mut self.metrics;
            m.registry
                .add(m.trace_spans_scan, self.tracer.scan_span_count());
            m.registry
                .add(m.trace_spans_shard, self.tracer.shard_span_total());
            for s in self.tracer.spans() {
                m.registry.observe(m.trace_span_nanos, s.dur_nanos);
            }
        }
        if let Some(mut monitor) = self.monitor.take() {
            let sample = self.progress_sample(now);
            let errors: Vec<(&'static str, u64)> = ErrorKind::ALL
                .iter()
                .map(|k| {
                    let id = self.metrics.error_kinds[k.index()];
                    (k.name(), self.metrics.registry.counter_value(id))
                })
                .collect();
            match self.monitor_sink {
                MonitorSink::Stdout => monitor.final_report(&sample, &errors, &mut StdoutSink),
                MonitorSink::Capture => {
                    let mut sink = BufferSink::default();
                    monitor.final_report(&sample, &errors, &mut sink);
                    self.status_lines.extend(sink.lines);
                }
            }
            self.monitor = Some(monitor);
        }
        if self.sink.is_enabled() {
            let snap = self.metrics.registry.snapshot();
            self.sink
                .note_snapshot(now.as_nanos(), self.config.shard.0, &snap);
        }
    }

    /// Take the captured progress status lines.
    pub fn take_status_lines(&mut self) -> Vec<String> {
        std::mem::take(&mut self.status_lines)
    }

    /// The configuration this scanner runs under.
    pub(crate) fn config(&self) -> &ScanConfig {
        &self.config
    }

    /// Fold the TX feeder's terminal production stats into the
    /// shard-scoped `shard.tx.*` counters. Runs at harvest (after the
    /// event loop drains, before the final snapshot) so periodic
    /// checkpoint captures never see them — a `Threads {1, 1}` world's
    /// checkpoint trail stays byte-identical to `Single`'s. Ring-stall
    /// counts are wall-clock scheduling facts and deliberately stay out
    /// of the registry.
    fn note_feed_stats(&mut self) {
        if let TargetIter::Feed { feed, .. } = &self.targets {
            if let Some(fin) = feed.finished() {
                let m = &mut self.metrics;
                m.registry.add(m.tx_targets, fin.slots);
                m.registry.add(m.tx_batches, fin.batches);
            }
        }
    }

    /// Capture this shard's observable state as a [`ShardCheckpoint`]
    /// (a pure read — the driver pairs it with its event count). The
    /// capture is the durable-campaign barrier token: a resumed replay
    /// reaching `events` must reproduce these bytes exactly.
    pub fn checkpoint(&self, events: u64, now: Instant) -> ShardCheckpoint {
        let (cursor_next, cursor_produced) = self.targets.cursor();
        let mut pending: Vec<(u32, u32)> = self
            .pending
            .iter()
            .map(|(ip, retries)| (ip, *retries))
            .collect();
        pending.sort_unstable();
        let mut sessions: Vec<u32> = self.sessions.iter().map(|(ip, _)| ip).collect();
        sessions.extend(self.mtu_states.iter().map(|(ip, _)| ip));
        sessions.sort_unstable();
        let snap = self.metrics.registry.snapshot();
        let counters: Vec<(String, u64)> = snap
            .counters
            .iter()
            .map(|(name, (_, value))| (name.clone(), *value))
            .collect();
        ShardCheckpoint {
            shard: self.config.shard.0,
            events,
            at_nanos: now.as_nanos(),
            cursor_next,
            cursor_produced,
            exhausted: self.exhausted,
            targets_sent: self.targets_sent,
            pending,
            sessions,
            // Queue order is state (promotion is FIFO), so the capture
            // is NOT sorted — a resumed replay must reproduce the exact
            // drain order for the tail to stay byte-identical.
            promotions: self.promotions.iter().copied().collect(),
            results_recorded: (self.results.len() + self.open_ports.len() + self.mtu_results.len())
                as u64,
            stream_records: self.sink.len() as u64,
            counters,
        }
    }

    /// Count one periodic checkpoint capture. The driver calls this
    /// *before* [`Self::checkpoint`] on periodic ticks so the captured
    /// counters include the capture producing them; kill and barrier
    /// validation captures do not count — a resumed run only has to
    /// reproduce the periodic cadence to stay byte-identical.
    pub fn note_checkpoint_taken(&mut self) {
        self.metrics.registry.inc(self.metrics.checkpoints_taken);
    }

    /// Graceful-shutdown drain: stop target generation, drop pending SYN
    /// retries and force-conclude every live session (recorded as
    /// [`ErrorKind::CollectTimeout`]) so the event loop winds down on its
    /// own. Every state entry cut short counts into
    /// `scan.checkpoint.drain_forced`.
    pub fn begin_drain(&mut self, now: Instant, fx: &mut Effects) {
        self.exhausted = true;
        self.pending.retain(|_, _| false);
        // Queued responders are cut short exactly like pending retries:
        // each dropped promotion is forced-drain pressure.
        for _ in 0..self.promotions.len() {
            self.metrics
                .registry
                .inc(self.metrics.checkpoint_drain_forced);
        }
        self.promotions.clear();
        // In-flight promoted handshakes are cut off with them: their
        // SYN-ACKs may still arrive, but no further slots are gated.
        self.promoted_inflight.retain(|_, _| false);
        let mut ips: Vec<u32> = self.sessions.iter().map(|(ip, _)| ip).collect();
        ips.sort_unstable();
        for ip in ips {
            let Some(session) = self.sessions.get_mut(ip) else {
                continue;
            };
            let out = session.force_conclude(ErrorKind::CollectTimeout);
            self.metrics
                .registry
                .inc(self.metrics.checkpoint_drain_forced);
            self.apply_session_output(ip, out, now, fx);
        }
        let mut mtu_ips: Vec<u32> = self.mtu_states.iter().map(|(ip, _)| ip).collect();
        mtu_ips.sort_unstable();
        for ip in mtu_ips {
            self.mtu_states.remove(ip);
            self.metrics
                .registry
                .inc(self.metrics.checkpoint_drain_forced);
        }
    }

    fn sample_admits(&self, ip: u32) -> bool {
        sample_admits(&self.config, ip)
    }

    fn pace(&mut self, now: Instant, fx: &mut Effects) {
        if self.exhausted {
            return;
        }
        self.metrics.registry.inc(self.metrics.pace_ticks);
        // Per tick, ask for this shard's slice of the rate (the bucket
        // carries `shard_rate(..)`, not the global figure).
        let want = (self.bucket.rate_pps() / 200).max(1);
        let grant = self.bucket.take(now, want);
        if self.tracer.is_enabled() {
            // One shard-scoped span per tick: the inter-tick gap with the
            // grant size as its argument (hot-path cadence profile).
            self.tracer.record_shard(
                self.last_pace_at.as_nanos(),
                now.as_nanos(),
                0,
                "pace.tick",
                grant,
            );
            self.last_pace_at = now;
        }
        if grant < want {
            // The bucket throttled us: record how long until the next token.
            self.metrics.registry.observe(
                self.metrics.token_wait_nanos,
                self.bucket.next_available().as_nanos(),
            );
        }
        for _ in 0..grant {
            loop {
                let Some((ip, domain)) = self.targets.next() else {
                    self.exhausted = true;
                    return; // no re-arm: receive path finishes the scan
                };
                if !self.config.filter.admits(ip) || !self.sample_admits(ip) {
                    continue;
                }
                self.targets_sent += 1;
                self.metrics.registry.inc(self.metrics.targets_sent);
                if let Some(d) = domain {
                    self.domains.insert(ip, d);
                }
                self.send_initial_probe(ip, now, fx);
                break;
            }
        }
        // Re-arm no sooner than the bucket can actually pay out: at low
        // rates the next token may be many ticks away, and a fixed 5 ms
        // cadence would wake the scanner just to record another zero
        // grant. `next_available` rounds up, so the wake-up always finds
        // at least one token.
        fx.arm(TICK.max(self.bucket.next_available()), PACING_TOKEN);
    }

    fn send_initial_probe(&mut self, ip: u32, now: Instant, fx: &mut Effects) {
        match self.config.protocol {
            Protocol::IcmpMtu => {
                let total = 1500u32;
                self.mtu_states.insert(
                    ip,
                    MtuProbe {
                        current_total: total,
                    },
                );
                self.send_echo(ip, total, fx);
            }
            _ if self.discovery_active() => {
                // Stateless-first: the SYN's source port and cookie ISN
                // carry the whole flow state. No `pending` entry, no RTT
                // stamp, no recorder ring — a target earns memory only at
                // promotion. Retransmission state rides in the timer
                // token itself (attempt in bits 40..).
                self.metrics.registry.inc(self.metrics.discovery_syns);
                self.emit_discovery_syn(ip, 0, fx);
                if self.discovery_retry_budget() > 0 {
                    fx.arm(self.config.resilience.syn_backoff, discovery_token(1, ip));
                }
            }
            _ => self.send_stateful_syn(ip, now, fx),
        }
    }

    /// Whether discovery-phase statelessness applies: the inference
    /// protocols handshake over TCP and benefit; `PortScan` is already
    /// stateless and `IcmpMtu` has no TCP handshake.
    fn discovery_active(&self) -> bool {
        self.config.stateless_first
            && matches!(self.config.protocol, Protocol::Http | Protocol::Tls)
    }

    /// Discovery retransmission budget: the configured SYN retries,
    /// clamped so the attempt always fits the source-port encoding.
    fn discovery_retry_budget(&self) -> u32 {
        self.config
            .resilience
            .syn_retries
            .min(cookie::DISCOVERY_MAX_ATTEMPTS - 1)
    }

    /// Send the stateful SYN for a target — directly in classic mode, or
    /// at promotion time in stateless-first mode. From here on the
    /// target follows the exact classic lifecycle (pending entry, RTT
    /// stamp, recorder ring, `SYN_RETRY_NS` timers), which is what keeps
    /// responder verdicts byte-identical across the two modes.
    fn send_stateful_syn(&mut self, ip: u32, now: Instant, fx: &mut Effects) {
        // The SYN timestamp serves both the RTT histogram and the
        // handshake span, so either knob populates the map (the
        // sweep bounds it for silent targets in both cases).
        if self.config.telemetry.record_rtt || self.config.telemetry.record_spans {
            self.syn_ts.insert(ip, now);
        }
        self.recorder
            .note_state(ip, now.as_nanos(), SessionEvent::SynSent);
        self.events
            .record(now.as_nanos(), ip, SessionEvent::SynSent);
        self.emit_syn(ip, now, fx);
        if self.config.resilience.syn_retries > 0 {
            self.pending.insert(ip, 0);
            fx.arm(
                self.config.resilience.syn_backoff,
                SYN_RETRY_NS | u64::from(ip),
            );
        }
    }

    /// Emit the stateless discovery SYN for `attempt`: the source port
    /// encodes the attempt, the ISN is the cookie for exactly that flow,
    /// so the eventual SYN-ACK names the transmission it answers.
    fn emit_discovery_syn(&mut self, ip: u32, attempt: u32, fx: &mut Effects) {
        let sport = cookie::discovery_sport(attempt);
        let dport = self.discovery_template.dst_port;
        self.discovery_template.src_port = sport;
        self.discovery_template.seq = self.cookie.isn(ip, sport, dport);
        Self::emit_datagram(
            self.config.source,
            &mut self.ident,
            Ipv4Addr::from_u32(ip),
            &self.discovery_template,
            fx,
        );
    }

    /// A discovery-retransmit timer fired: the attempt to send now rides
    /// in the token. Retransmit on a fresh source port unless the target
    /// already answered (discovered, promoted into the session table, or
    /// mid-promotion in the pending map).
    fn discovery_retry_fire(&mut self, ip: u32, attempt: u32, now: Instant, fx: &mut Effects) {
        let _ = now;
        if attempt == 0 || attempt > self.discovery_retry_budget() {
            return;
        }
        if self.discovered.contains_key(ip)
            || self.sessions.contains_key(ip)
            || self.pending.contains_key(ip)
        {
            return;
        }
        self.metrics.registry.inc(self.metrics.discovery_retries);
        self.emit_discovery_syn(ip, attempt, fx);
        if attempt < self.discovery_retry_budget() {
            // Same doubling schedule as the stateful SYN retry path.
            let backoff =
                Duration::from_nanos(self.config.resilience.syn_backoff.as_nanos() << attempt);
            fx.arm(backoff, discovery_token(attempt + 1, ip));
        }
    }

    /// A discovery-flow segment arrived (destination port inside the
    /// discovery block). Every verdict path is cookie-gated; failures are
    /// counted by taxonomy and dropped without a verdict.
    fn on_discovery_segment(
        &mut self,
        src: Ipv4Addr,
        seg: &tcp::Repr,
        now: Instant,
        fx: &mut Effects,
    ) {
        let ip = src.to_u32();
        let Some(attempt) = cookie::discovery_attempt(seg.dst_port) else {
            return;
        };
        if seg.flags.contains(Flags::SYN) && seg.flags.contains(Flags::ACK) {
            match self
                .cookie
                .classify_synack(ip, seg.dst_port, seg.src_port, seg.ack)
            {
                SynAckCheck::Valid => {
                    // Tear the stateless flow down either way: the host
                    // holds a half-open connection we will never use.
                    let rst =
                        tcp::Repr::bare(seg.dst_port, seg.src_port, seg.ack, 0, Flags::RST, 0);
                    Self::emit_datagram(self.config.source, &mut self.ident, src, &rst, fx);
                    if self.discovered.contains_key(ip) {
                        self.metrics.registry.inc(self.metrics.discovery_duplicates);
                        return;
                    }
                    self.discovered.insert(ip, attempt);
                    self.metrics.registry.inc(self.metrics.discovery_validated);
                    self.promotions.push_back(ip);
                    self.note_discovery_state();
                    self.try_drain_promotions(now, fx);
                }
                SynAckCheck::RawIsnEcho => {
                    self.metrics
                        .registry
                        .inc(self.metrics.discovery_raw_isn_echo);
                }
                SynAckCheck::Mismatch => {
                    self.metrics
                        .registry
                        .inc(self.metrics.discovery_cookie_mismatch);
                }
            }
        } else if seg.flags.contains(Flags::RST) {
            if !self
                .cookie
                .validate(ip, seg.dst_port, seg.src_port, seg.ack)
            {
                self.metrics
                    .registry
                    .inc(self.metrics.discovery_spoofed_rst);
                return;
            }
            if self.discovered.contains_key(ip) {
                return;
            }
            // A cookie-valid refusal is a terminal verdict: host up, port
            // closed — same as the stateful path, no promotion needed.
            self.discovered.insert(ip, attempt);
            self.refused += 1;
            self.metrics.registry.inc(self.metrics.refused);
            self.observe_event(ip, SessionEvent::Refused, now);
            self.sink.note_result(now.as_nanos(), ip, "refused");
            self.recorder.conclude(ip, now.as_nanos(), None);
        }
    }

    /// Promote queued responders into stateful sessions while the
    /// `max_sessions` cap has room. Unlike classic mode (which evicts the
    /// oldest session on admission pressure), promotion *waits*: the
    /// queue is the back-pressure buffer, and concluded sessions pull the
    /// next responder in.
    fn try_drain_promotions(&mut self, now: Instant, fx: &mut Effects) {
        let cap = self.config.resilience.max_sessions;
        while let Some(&ip) = self.promotions.front() {
            // In-flight promotions hold a slot too: their sessions only
            // materialize one RTT later, when the SYN-ACK comes back.
            if cap > 0 && self.sessions.len() + self.promoted_inflight.len() >= cap {
                return;
            }
            self.promotions.pop_front();
            self.promoted_inflight.insert(ip, ());
            self.metrics.registry.inc(self.metrics.discovery_promoted);
            self.send_stateful_syn(ip, now, fx);
            self.note_discovery_state();
        }
    }

    /// A promoted target left the in-flight set without producing a live
    /// session (refusal, ICMP fast-fail, SYN-retry exhaustion): its
    /// `max_sessions` slot frees up, so pull the next queued responder.
    fn promotion_slot_freed(&mut self, ip: u32, now: Instant, fx: &mut Effects) {
        if self.promoted_inflight.remove(ip).is_some() && !self.promotions.is_empty() {
            self.try_drain_promotions(now, fx);
        }
    }

    /// Record the current per-target discovery footprint into the
    /// `scan.discovery.state_peak` gauge (the registry keeps the peak).
    /// This is the memory-model gate: the gauge counts distinct targets
    /// holding pre-session state — queued responders plus promoted
    /// handshakes in flight. `pending` and `syn_ts` entries only exist
    /// for those same targets in stateless-first mode, so the gauge
    /// bounds them too: O(validated responders), never O(targets).
    fn note_discovery_state(&mut self) {
        let footprint = (self.promotions.len() + self.promoted_inflight.len()) as u64;
        self.metrics
            .registry
            .gauge_set(self.metrics.discovery_state_peak, footprint);
    }

    /// Emit the stateless (probe 0, conn 0) SYN for a target. Retries use
    /// the identical 4-tuple and ISN, so a SYN-ACK to any attempt
    /// validates against the same cookie.
    fn emit_syn(&mut self, ip: u32, now: Instant, fx: &mut Effects) {
        let dport = self.syn_template.dst_port;
        let sport = self.syn_template.src_port;
        self.syn_template.seq = self.cookie.isn(ip, sport, dport);
        self.recorder.note_wire(
            ip,
            now.as_nanos(),
            true,
            Flags::SYN.bits(),
            self.syn_template.seq,
            0,
            0,
        );
        Self::emit_datagram(
            self.config.source,
            &mut self.ident,
            Ipv4Addr::from_u32(ip),
            &self.syn_template,
            fx,
        );
    }

    /// A SYN-retry timer fired: retransmit if the target is still silent
    /// and budget remains, with doubled backoff.
    fn syn_retry_fire(&mut self, ip: u32, now: Instant, fx: &mut Effects) {
        if self.sessions.contains_key(ip) {
            self.pending.remove(ip);
            return;
        }
        let Some(attempts) = self.pending.get(ip).copied() else {
            return;
        };
        if attempts >= self.config.resilience.syn_retries {
            // Budget spent and still silent: give up on the target and
            // drop its RTT timestamp (it will never be consumed). The
            // flight recorder dumps the ring — a SYN-blackholed target is
            // a failure worth a black box even though no session existed.
            self.pending.remove(ip);
            self.syn_ts.remove(ip);
            if self
                .recorder
                .conclude(ip, now.as_nanos(), Some("handshake_timeout"))
            {
                self.metrics.registry.inc(self.metrics.flight_dumps);
            }
            self.promotion_slot_freed(ip, now, fx);
            return;
        }
        self.pending.insert(ip, attempts + 1);
        self.note_session_event(
            ip,
            SessionEvent::SynRetried {
                attempt: (attempts + 1) as u8,
            },
            now,
        );
        // Karn's rule: once a SYN is retransmitted, a later SYN-ACK is
        // ambiguous — it may answer either transmission — so the RTT
        // sample (and the handshake span it would start) is dropped
        // rather than attributing whole backoff periods to the wire.
        self.syn_ts.remove(ip);
        self.emit_syn(ip, now, fx);
        let backoff =
            Duration::from_nanos(self.config.resilience.syn_backoff.as_nanos() << (attempts + 1));
        fx.arm(backoff, SYN_RETRY_NS | u64::from(ip));
    }

    /// The per-session watchdog fired: if the session is somehow still
    /// running, force-conclude it (tarpit/dribbler defense).
    fn watchdog_fire(&mut self, ip: u32, now: Instant, fx: &mut Effects) {
        let Some(session) = self.sessions.get_mut(ip) else {
            return;
        };
        let out = session.force_conclude(ErrorKind::CollectTimeout);
        self.note_session_event(ip, SessionEvent::WatchdogForced, now);
        self.apply_session_output(ip, out, now, fx);
    }

    /// Evict the oldest live session to stay under `max_sessions`.
    fn evict_oldest(&mut self, now: Instant, fx: &mut Effects) {
        while let Some(ip) = self.session_order.pop_front() {
            let Some(session) = self.sessions.get_mut(ip) else {
                continue; // stale entry: that session already finished
            };
            let out = session.force_conclude(ErrorKind::CollectTimeout);
            self.note_session_event(ip, SessionEvent::SessionEvicted, now);
            self.apply_session_output(ip, out, now, fx);
            return;
        }
    }

    /// Periodic sweep of the SYN-timestamp map: entries past the expiry
    /// belong to hosts that never answered and would otherwise leak.
    fn sweep_rtt(&mut self, now: Instant, fx: &mut Effects) {
        self.syn_ts.retain(|_, t0| now - *t0 < RTT_EXPIRY);
        // Flight-recorder rings of hosts that went silent before reaching
        // a conclusion age out on the same schedule; live sessions keep
        // theirs (a black box must survive until the verdict).
        let cutoff = now.as_nanos().saturating_sub(RTT_EXPIRY.as_nanos());
        let sessions = &self.sessions;
        self.recorder
            .expire_stale(cutoff, |ip| sessions.contains_key(ip));
        if !(self.exhausted && self.syn_ts.is_empty() && self.recorder.live_rings() == 0) {
            fx.arm(SWEEP_PERIOD, SWEEP_TOKEN);
        }
    }

    fn emit_segment(&mut self, dst: Ipv4Addr, seg: &tcp::Repr, now: Instant, fx: &mut Effects) {
        self.recorder.note_wire(
            dst.to_u32(),
            now.as_nanos(),
            true,
            seg.flags.bits(),
            seg.seq,
            seg.ack,
            seg.payload.len() as u32,
        );
        Self::emit_datagram(self.config.source, &mut self.ident, dst, seg, fx);
    }

    /// Emit one TCP segment as a pooled IPv4 datagram. An associated fn
    /// (not a method) so callers can hold a borrow on another `Scanner`
    /// field — e.g. the SYN template — across the call.
    fn emit_datagram(
        src: Ipv4Addr,
        ident: &mut u16,
        dst: Ipv4Addr,
        seg: &tcp::Repr,
        fx: &mut Effects,
    ) {
        let mut buf = fx.buffer();
        ipv4::build_datagram_into(
            &ipv4::Repr {
                src_addr: src,
                dst_addr: dst,
                protocol: IpProtocol::Tcp,
                payload_len: seg.buffer_len(),
                ttl: 64,
            },
            *ident,
            &mut buf,
            |l4| seg.emit_into(src, dst, l4),
        );
        *ident = ident.wrapping_add(1);
        fx.send(buf.freeze());
    }

    fn send_echo(&mut self, ip: u32, total_len: u32, fx: &mut Effects) {
        let payload_len = total_len as usize - ipv4::HEADER_LEN - icmp::HEADER_LEN;
        let msg = icmp::Message::EchoRequest {
            ident: (self.cookie.isn(ip, 0, 0) & 0xffff) as u16,
            seq: 1,
            payload_len,
        };
        let mut buf = fx.buffer();
        ipv4::build_datagram_into(
            &ipv4::Repr {
                src_addr: self.config.source,
                dst_addr: Ipv4Addr::from_u32(ip),
                protocol: IpProtocol::Icmp,
                payload_len: msg.buffer_len(),
                ttl: 64,
            },
            self.ident,
            &mut buf,
            |l4| msg.emit_into(l4),
        );
        self.ident = self.ident.wrapping_add(1);
        fx.send(buf.freeze());
    }

    fn apply_session_output(
        &mut self,
        ip: u32,
        out: SessionOutput,
        now: Instant,
        fx: &mut Effects,
    ) {
        let dst = Ipv4Addr::from_u32(ip);
        for seg in &out.tx {
            self.emit_segment(dst, seg, now, fx);
        }
        for ev in &out.events {
            self.note_session_event(ip, *ev, now);
        }
        if let Some(deadline) = out.deadline {
            if deadline > now
                && self
                    .sessions
                    .get_mut(ip)
                    .is_none_or(|session| session.should_arm(deadline))
            {
                fx.arm(deadline - now, u64::from(ip));
            }
        }
        if let Some(result) = out.result {
            let mut first_error: Option<ErrorKind> = None;
            for (_, outcomes) in &result.runs {
                for o in outcomes {
                    if let ProbeOutcome::Error { kind } = o {
                        self.metrics
                            .registry
                            .inc(self.metrics.error_kinds[kind.index()]);
                        first_error = first_error.or(Some(*kind));
                    }
                }
            }
            let primary = result.primary_verdict();
            let outcome = primary.map(|v| v.outcome_kind());
            let verdict = outcome.map_or("unknown", OutcomeKind::name);
            self.sink.note_result(now.as_nanos(), ip, verdict);
            // Clean verdicts drop their black box; error verdicts dump it,
            // named after the first failing probe's error kind. Two more
            // shapes are diagnosable failures, not clean conclusions: a
            // few-data verdict with a zero lower bound (the handshake
            // succeeded and the host then sent nothing usable — the
            // SYN-ACK-blackhole signature), and a verdict-less session
            // whose probes recorded errors.
            let error_name = match outcome {
                Some(OutcomeKind::Success) => None,
                Some(OutcomeKind::FewData) => match primary {
                    Some(MssVerdict::FewData(0)) => Some("no_data"),
                    _ => None,
                },
                Some(OutcomeKind::Unreachable) => Some("icmp_unreachable"),
                Some(OutcomeKind::Error) => Some(first_error.map_or("error", ErrorKind::name)),
                None => first_error.map(ErrorKind::name),
            };
            if self.recorder.conclude(ip, now.as_nanos(), error_name) {
                self.metrics.registry.inc(self.metrics.flight_dumps);
            }
            self.results.push(result);
            self.sessions.remove(ip);
            self.metrics
                .registry
                .gauge_set(self.metrics.live_peak, self.sessions.len() as u64);
            // Lazily compact the eviction deque: normally-concluded
            // sessions leave stale entries behind, and without this the
            // deque grows O(total sessions started) over a long
            // campaign. Compacting only past 2× live (+ slack) keeps the
            // amortized cost O(1) per conclusion.
            if self.config.resilience.max_sessions > 0
                && self.session_order.len() > self.sessions.len() * 2 + 16
            {
                let sessions = &self.sessions;
                self.session_order.retain(|ip| sessions.contains_key(*ip));
            }
            // A concluded session frees a `max_sessions` slot: pull the
            // next queued responder in (stateless-first mode).
            if !self.promotions.is_empty() {
                self.try_drain_promotions(now, fx);
            }
        }
    }

    /// Fold one session lifecycle event into the metrics and the event log.
    fn note_session_event(&mut self, ip: u32, ev: SessionEvent, now: Instant) {
        let m = &mut self.metrics;
        match ev {
            SessionEvent::RetransmitDetected {
                bytes_in_flight, ..
            } => {
                m.registry.inc(m.retransmits_detected);
                m.registry.observe(m.retransmit_bytes, bytes_in_flight);
            }
            SessionEvent::VerifyAckSent { .. } => m.registry.inc(m.verify_acks_sent),
            SessionEvent::ProbeConcluded { outcome, .. } => {
                m.registry.inc(m.probes[kind_index(outcome)]);
            }
            SessionEvent::SessionFinished { outcome } => {
                m.registry.inc(m.sessions_finished[kind_index(outcome)]);
                // The session is still in the map here (removal happens
                // after its events are folded in).
                if let Some(session) = self.sessions.get(ip) {
                    m.registry.observe(
                        m.session_lifetime_nanos,
                        (now - session.started()).as_nanos(),
                    );
                }
            }
            SessionEvent::SynRetried { .. } => m.registry.inc(m.syn_retries),
            SessionEvent::ProbeRetried { .. } => m.registry.inc(m.probes_retried),
            SessionEvent::WatchdogForced => m.registry.inc(m.watchdog_forced),
            SessionEvent::SessionEvicted => m.registry.inc(m.sessions_evicted),
            SessionEvent::IcmpUnreachable => m.registry.inc(m.icmp_unreachable),
            _ => {}
        }
        self.observe_event(ip, ev, now);
    }

    /// Fold one lifecycle event into the span tracer, the flight recorder
    /// and the event log (no metrics — callers that need counters go
    /// through [`Self::note_session_event`]).
    fn observe_event(&mut self, ip: u32, ev: SessionEvent, now: Instant) {
        let n = now.as_nanos();
        if self.tracer.is_enabled() {
            // Span slots per target: 1 = current probe, 2 = the session.
            // (The handshake span comes from the SYN-timestamp map, so
            // silent targets leave nothing behind in the tracer.)
            match ev {
                SessionEvent::SessionStarted => self.tracer.open(ip, 2, n),
                SessionEvent::ProbeStarted { .. } => self.tracer.open(ip, 1, n),
                SessionEvent::ProbeConcluded { probe, .. } => {
                    self.tracer.close(ip, 1, n, "probe", u64::from(probe));
                }
                SessionEvent::SessionFinished { outcome } => {
                    self.tracer
                        .close(ip, 2, n, "session", kind_index(outcome) as u64);
                    self.tracer.discard(ip, 1);
                }
                _ => {}
            }
        }
        self.recorder.note_state(ip, n, ev);
        self.events.record(n, ip, ev);
    }

    /// Consume a SYN timestamp: feed the RTT histogram (when tracking)
    /// and close the handshake span (when tracing).
    fn consume_syn_ts(&mut self, ip: u32, now: Instant) {
        if let Some(t0) = self.syn_ts.remove(ip) {
            if self.config.telemetry.record_rtt {
                self.metrics
                    .registry
                    .observe(self.metrics.rtt_nanos, (now - t0).as_nanos());
            }
            self.tracer
                .record_scan(t0.as_nanos(), now.as_nanos(), ip, "handshake", 0);
        }
    }

    fn on_tcp(&mut self, src: Ipv4Addr, seg: &tcp::Repr, now: Instant, fx: &mut Effects) {
        let ip = src.to_u32();
        self.recorder.note_wire(
            ip,
            now.as_nanos(),
            false,
            seg.flags.bits(),
            seg.seq,
            seg.ack,
            seg.payload.len() as u32,
        );

        if self.config.protocol == Protocol::PortScan {
            let sport = self.params.sport(0, 0, 0);
            if seg.dst_port != sport {
                return;
            }
            if seg.flags.contains(Flags::SYN)
                && seg.flags.contains(Flags::ACK)
                && self.cookie.validate(ip, sport, seg.src_port, seg.ack)
            {
                self.metrics.registry.inc(self.metrics.synacks_validated);
                self.consume_syn_ts(ip, now);
                self.pending.remove(ip);
                self.observe_event(ip, SessionEvent::SynAckValidated, now);
                self.open_ports.push(ip);
                let rst = tcp::Repr::bare(sport, seg.src_port, seg.ack, 0, Flags::RST, 0);
                self.emit_segment(src, &rst, now, fx);
                self.sink.note_result(now.as_nanos(), ip, "open");
                self.recorder.conclude(ip, now.as_nanos(), None);
            } else if seg.flags.contains(Flags::RST) {
                // Cookie-gate the refusal verdict exactly like the
                // SYN-ACK path: a RST acks our ISN+1 iff it answers our
                // SYN. Spoofed/backscatter RSTs produce no verdict.
                if !self.cookie.validate(ip, sport, seg.src_port, seg.ack) {
                    self.metrics.registry.inc(self.metrics.rst_ignored);
                    return;
                }
                self.refused += 1;
                self.metrics.registry.inc(self.metrics.refused);
                self.syn_ts.remove(ip);
                self.pending.remove(ip);
                self.observe_event(ip, SessionEvent::Refused, now);
                self.sink.note_result(now.as_nanos(), ip, "refused");
                self.recorder.conclude(ip, now.as_nanos(), None);
            }
            return;
        }

        // Stateless-first discovery flows live in their own source-port
        // block, so the destination port alone routes the segment.
        if self.discovery_active() && cookie::discovery_attempt(seg.dst_port).is_some() {
            self.on_discovery_segment(src, seg, now, fx);
            return;
        }

        if let Some(session) = self.sessions.get_mut(ip) {
            let out = session.on_segment(seg, now);
            self.apply_session_output(ip, out, now, fx);
            return;
        }
        // No session: a valid SYN-ACK for (probe 0, conn 0) creates one.
        let sport = self.params.sport(0, 0, 0);
        let dport = self.config.protocol.port();
        if seg.dst_port == sport
            && seg.src_port == dport
            && seg.flags.contains(Flags::SYN)
            && seg.flags.contains(Flags::ACK)
            && self.cookie.validate(ip, sport, dport, seg.ack)
        {
            let cap = self.config.resilience.max_sessions;
            if cap > 0 && self.sessions.len() >= cap {
                self.evict_oldest(now, fx);
            }
            self.metrics.registry.inc(self.metrics.synacks_validated);
            self.consume_syn_ts(ip, now);
            self.pending.remove(ip);
            // The in-flight slot becomes the session's slot (net
            // occupancy unchanged, so no promotion drain here).
            self.promoted_inflight.remove(ip);
            self.metrics.registry.inc(self.metrics.sessions_started);
            self.observe_event(ip, SessionEvent::SynAckValidated, now);
            self.observe_event(ip, SessionEvent::SessionStarted, now);
            let domain = self.domains.get(ip).cloned();
            let mut session = HostSession::new(src, self.params.clone(), self.cookie, domain, now);
            self.observe_event(
                ip,
                SessionEvent::ProbeStarted {
                    probe: 0,
                    mss: session.current_mss(),
                },
                now,
            );
            let out = session.on_segment(seg, now);
            self.sessions.insert(ip, session);
            if cap > 0 {
                self.session_order.push_back(ip);
            }
            if let Some(deadline) = self.config.resilience.session_deadline {
                fx.arm(deadline, WATCHDOG_NS | u64::from(ip));
            }
            self.metrics
                .registry
                .gauge_set(self.metrics.live_peak, self.sessions.len() as u64);
            self.apply_session_output(ip, out, now, fx);
        } else if seg.flags.contains(Flags::RST) && seg.dst_port == sport {
            if !self.cookie.validate(ip, sport, dport, seg.ack) {
                // Reached our port but does not ack our cookie: spoofed
                // or stale — drop without a verdict (mirrors the
                // PortScan-path gate).
                self.metrics.registry.inc(self.metrics.rst_ignored);
                return;
            }
            self.refused += 1;
            self.metrics.registry.inc(self.metrics.refused);
            self.syn_ts.remove(ip);
            self.pending.remove(ip);
            self.observe_event(ip, SessionEvent::Refused, now);
            self.sink.note_result(now.as_nanos(), ip, "refused");
            // A refusal is a clean conclusion: the black box is dropped.
            self.recorder.conclude(ip, now.as_nanos(), None);
            self.promotion_slot_freed(ip, now, fx);
        }
    }

    /// A point-in-time progress reading for the monitor.
    fn progress_sample(&self, now: Instant) -> ProgressSample {
        let m = &self.metrics;
        ProgressSample {
            elapsed_nanos: now.as_nanos(),
            targets_sent: self.targets_sent,
            targets_total: self.targets_total,
            hits: m.registry.counter_value(m.synacks_validated) + self.mtu_results.len() as u64,
            live_sessions: (self.sessions.len() + self.mtu_states.len()) as u64,
            configured_pps: self.config.rate_pps,
            verdicts: [
                m.registry.counter_value(m.sessions_finished[0]),
                m.registry.counter_value(m.sessions_finished[1]),
                m.registry.counter_value(m.sessions_finished[2]),
                m.registry.counter_value(m.sessions_finished[3]),
            ],
        }
    }

    fn monitor_tick(&mut self, now: Instant, fx: &mut Effects) {
        let Some(mut monitor) = self.monitor.take() else {
            return;
        };
        let sample = self.progress_sample(now);
        if monitor.due(sample.elapsed_nanos) {
            match self.monitor_sink {
                MonitorSink::Stdout => monitor.report(&sample, &mut StdoutSink),
                MonitorSink::Capture => {
                    let mut sink = BufferSink::default();
                    monitor.report(&sample, &mut sink);
                    self.status_lines.extend(sink.lines);
                }
            }
        }
        let interval = monitor.interval_nanos();
        self.monitor = Some(monitor);
        // Keep ticking while the scan can still make progress; once sending
        // is done and the stateful sessions drained, let the sim wind down.
        // (Unanswered MTU probes hold no timers, so they do not keep the
        // monitor alive either.)
        if !(self.exhausted && self.sessions.is_empty()) {
            fx.arm(Duration::from_nanos(interval), MONITOR_TOKEN);
        }
    }

    /// Streaming-telemetry tick: append one snapshot-delta record; keeps
    /// ticking on the same keep-alive rule as the monitor.
    fn stream_tick(&mut self, now: Instant, fx: &mut Effects) {
        let Some(interval) = self.config.telemetry.stream else {
            return;
        };
        let snap = self.metrics.registry.snapshot();
        self.sink
            .note_snapshot(now.as_nanos(), self.config.shard.0, &snap);
        if !(self.exhausted && self.sessions.is_empty()) {
            fx.arm(interval, STREAM_TOKEN);
        }
    }

    fn on_icmp(&mut self, src: Ipv4Addr, msg: &icmp::Message, now: Instant, fx: &mut Effects) {
        let ip = src.to_u32();
        // Control-plane harvest: classify every ICMP message before any
        // mode-specific handling, so the `scan.icmp.*` family and the
        // manifest section see the scan's full side-traffic.
        self.metrics.registry.inc(self.metrics.icmp_messages);
        match msg {
            icmp::Message::DstUnreachable { code } => {
                self.icmp_harvest.note_unreachable(ip, *code);
                self.metrics.registry.inc(
                    self.metrics.icmp_unreachable_codes[IcmpHarvest::unreachable_code_index(*code)],
                );
            }
            icmp::Message::FragNeeded { .. } => {
                self.icmp_harvest.note_frag_needed(ip);
                self.metrics.registry.inc(self.metrics.icmp_frag_needed);
            }
            icmp::Message::EchoReply { .. } => self.icmp_harvest.note_echo_reply(ip),
            icmp::Message::SourceQuench => {
                // Advisory rate-limiting signature (RFC 6633 deprecates
                // acting on it): classify, never fast-fail the target.
                self.icmp_harvest.note_source_quench(ip);
                self.metrics.registry.inc(self.metrics.icmp_source_quench);
            }
            _ => self.icmp_harvest.note_other(ip),
        }
        if self.config.protocol != Protocol::IcmpMtu {
            // TCP scan modes: a destination-unreachable from the target
            // fast-fails it instead of waiting out the SYN/collect
            // timeouts. (No quoted datagram in the sim's ICMP; the source
            // address identifies the target.)
            let icmp::Message::DstUnreachable { .. } = msg else {
                return;
            };
            let was_pending = self.pending.remove(ip).is_some();
            let had_syn_ts = self.syn_ts.remove(ip).is_some();
            if !was_pending && !had_syn_ts && !self.sessions.contains_key(ip) {
                return;
            }
            self.note_session_event(ip, SessionEvent::IcmpUnreachable, now);
            if let Some(session) = self.sessions.get_mut(ip) {
                let out = session.force_conclude(ErrorKind::IcmpUnreachable);
                self.apply_session_output(ip, out, now, fx);
            } else {
                // Fast-failed before a session existed: no HostResult will
                // record this target, so the black box (and the stream)
                // carry the explanation.
                self.sink.note_result(now.as_nanos(), ip, "unreachable");
                if self
                    .recorder
                    .conclude(ip, now.as_nanos(), Some("icmp_unreachable"))
                {
                    self.metrics.registry.inc(self.metrics.flight_dumps);
                }
                self.promotion_slot_freed(ip, now, fx);
            }
            return;
        }
        let Some(state) = self.mtu_states.get(ip).copied() else {
            return;
        };
        match msg {
            icmp::Message::FragNeeded { mtu } => {
                let mtu = u32::from(*mtu);
                if mtu > 0 && mtu < state.current_total {
                    self.mtu_states.insert(ip, MtuProbe { current_total: mtu });
                    self.send_echo(ip, mtu, fx);
                }
            }
            icmp::Message::EchoReply { .. } => {
                self.sink.note_result(now.as_nanos(), ip, "mtu");
                self.mtu_results.push(MtuResult {
                    ip,
                    mtu: state.current_total,
                });
                self.mtu_states.remove(ip);
            }
            _ => {}
        }
    }
}

impl Endpoint for Scanner {
    fn on_packet(&mut self, pkt: &[u8], now: Instant, fx: &mut Effects) {
        let Ok(packet) = ipv4::Packet::new_checked(pkt) else {
            return;
        };
        let Ok(ip_repr) = ipv4::Repr::parse(&packet) else {
            return;
        };
        if ip_repr.dst_addr != self.config.source {
            return;
        }
        match ip_repr.protocol {
            IpProtocol::Tcp => {
                let payload = packet.payload();
                let Ok(seg_packet) = tcp::Packet::new_checked(payload) else {
                    return;
                };
                let Ok(seg) = tcp::Repr::parse(&seg_packet, ip_repr.src_addr, ip_repr.dst_addr)
                else {
                    return;
                };
                self.on_tcp(ip_repr.src_addr, &seg, now, fx);
            }
            IpProtocol::Icmp => {
                if let Ok(msg) = icmp::Message::parse(packet.payload()) {
                    self.on_icmp(ip_repr.src_addr, &msg, now, fx);
                }
            }
            IpProtocol::Unknown(_) => {}
        }
    }

    fn on_timer(&mut self, token: TimerToken, now: Instant, fx: &mut Effects) {
        if token == PACING_TOKEN {
            self.pace(now, fx);
            return;
        }
        if token == MONITOR_TOKEN {
            self.monitor_tick(now, fx);
            return;
        }
        if token == SWEEP_TOKEN {
            self.sweep_rtt(now, fx);
            return;
        }
        if token == STREAM_TOKEN {
            self.stream_tick(now, fx);
            return;
        }
        let ip = token as u32;
        // The namespace sits in bits 32..40; bits 40.. carry per-namespace
        // payload (the discovery attempt), so mask before dispatching.
        match (token >> 32) & 0xff {
            0 => {
                if let Some(session) = self.sessions.get_mut(ip) {
                    let out = session.on_timer(now);
                    self.apply_session_output(ip, out, now, fx);
                }
            }
            1 => self.syn_retry_fire(ip, now, fx),
            2 => self.watchdog_fire(ip, now, fx),
            3 => self.discovery_retry_fire(ip, (token >> 40) as u32, now, fx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_study_defaults() {
        let c = ScanConfig::study(Protocol::Http, 1 << 20, 7);
        assert_eq!(c.rate_pps, 150_000);
        assert_eq!(c.mss_list, vec![64, 128]);
        assert_eq!(c.probes_per_mss, 3);
        assert_eq!(c.shard, (0, 1));
    }

    #[test]
    fn sampling_fraction_filters_deterministically() {
        let mut config = ScanConfig::study(Protocol::Http, 1 << 16, 7);
        config.sample_fraction = 0.25;
        let s = Scanner::new(config);
        let admitted = (0..40_000u32).filter(|ip| s.sample_admits(*ip)).count();
        let frac = admitted as f64 / 40_000.0;
        assert!((0.23..0.27).contains(&frac), "{frac}");
        // Same seed/salt → same subset.
        let s2 = Scanner::new(ScanConfig {
            sample_fraction: 0.25,
            ..ScanConfig::study(Protocol::Http, 1 << 16, 7)
        });
        for ip in 0..1000 {
            assert_eq!(s.sample_admits(ip), s2.sample_admits(ip));
        }
    }

    #[test]
    fn different_salts_different_samples() {
        let mk = |salt| {
            let mut c = ScanConfig::study(Protocol::Http, 1 << 16, 7);
            c.sample_fraction = 0.5;
            c.sample_salt = salt;
            Scanner::new(c)
        };
        let a = mk(1);
        let b = mk(2);
        let differing = (0..2000u32)
            .filter(|ip| a.sample_admits(*ip) != b.sample_admits(*ip))
            .count();
        assert!(differing > 500, "{differing}");
    }

    #[test]
    fn manifest_error_kind_counters_match_error_kind_order() {
        // The scanner indexes `Metrics::error_kinds` by `ErrorKind::index()`,
        // so the manifest block must enumerate the kinds in exactly that
        // order, under the names `scan.probes.error_kinds.<kind name>`.
        assert_eq!(manifest::ERROR_KIND_COUNTERS.len(), ErrorKind::ALL.len());
        for (def, kind) in manifest::ERROR_KIND_COUNTERS.iter().zip(ErrorKind::ALL) {
            assert_eq!(
                def.name,
                format!("scan.probes.error_kinds.{}", kind.name()),
                "manifest order drifted from ErrorKind::index()"
            );
        }
    }

    #[test]
    fn every_manifest_metric_is_registered_by_the_scanner() {
        // 100 % manifest coverage: the engine registers every declared
        // metric, so snapshots (and the iw-lint conformance rule) see the
        // same universe of names in one place.
        let snap = Metrics::new().registry.snapshot();
        for def in manifest::ALL {
            let present = snap.counters.contains_key(def.name)
                || snap.gauges.contains_key(def.name)
                || snap.histograms.contains_key(def.name);
            assert!(present, "manifest metric {} never registered", def.name);
        }
        let total = snap.counters.len() + snap.gauges.len() + snap.histograms.len();
        assert_eq!(total, manifest::ALL.len(), "undeclared metric registered");
    }

    #[test]
    fn pacing_respects_rate() {
        let mut config = ScanConfig::study(Protocol::Http, 1 << 20, 3);
        config.rate_pps = 10_000;
        let mut scanner = Scanner::new(config);
        let mut fx = Effects::default();
        let mut now = Instant::ZERO;
        scanner.start(now, &mut fx);
        let mut sent = fx.tx.len() as u64;
        for _ in 0..200 {
            now += TICK;
            let mut fx = Effects::default();
            scanner.pace(now, &mut fx);
            sent += fx.tx.len() as u64;
        }
        // 200 ticks × 5 ms = 1 s → ≈ 10k SYNs.
        assert!((9_000..=11_000).contains(&sent), "{sent}");
    }
}
