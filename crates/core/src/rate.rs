//! Token-bucket send pacing.
//!
//! ZMap paces probes to a configured packets-per-second rate; the paper
//! runs at a "moderate" 150 kpps (§3.4). The bucket is driven by virtual
//! time and capped so long stalls don't produce catch-up bursts.

use iw_netsim::{Duration, Instant};

/// A token bucket measured in packets.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_pps: u64,
    burst: u64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate_pps`, holding at most `burst` tokens.
    pub fn new(rate_pps: u64, burst: u64, now: Instant) -> TokenBucket {
        assert!(rate_pps > 0, "zero send rate");
        TokenBucket {
            rate_pps,
            burst: burst.max(1),
            tokens: 0.0,
            last: now,
        }
    }

    /// Refill for elapsed time and return how many packets may be sent.
    pub fn take(&mut self, now: Instant, want: u64) -> u64 {
        let elapsed = now.duration_since(self.last);
        self.last = now;
        self.tokens += elapsed.as_secs_f64() * self.rate_pps as f64;
        self.tokens = self.tokens.min(self.burst as f64);
        let grant = (self.tokens as u64).min(want);
        self.tokens -= grant as f64;
        grant
    }

    /// Time until at least one token is available.
    pub fn next_available(&self) -> Duration {
        if self.tokens >= 1.0 {
            Duration::ZERO
        } else {
            let missing = 1.0 - self.tokens;
            Duration::from_nanos((missing / self.rate_pps as f64 * 1e9) as u64)
        }
    }

    /// Configured rate.
    pub fn rate_pps(&self) -> u64 {
        self.rate_pps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected_over_time() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(1000, 100, t0);
        let mut sent = 0u64;
        // Poll every 10 ms for one virtual second.
        for tick in 1..=100u64 {
            let now = t0 + Duration::from_millis(10 * tick);
            sent += bucket.take(now, u64::MAX);
        }
        assert!((950..=1050).contains(&sent), "sent {sent} in 1s at 1kpps");
    }

    #[test]
    fn burst_is_capped() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(1000, 50, t0);
        // A long stall must not grant more than the burst.
        let granted = bucket.take(t0 + Duration::from_secs(60), u64::MAX);
        assert_eq!(granted, 50);
    }

    #[test]
    fn want_limits_grant() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(1_000_000, 1000, t0);
        let granted = bucket.take(t0 + Duration::from_millis(10), 3);
        assert_eq!(granted, 3);
    }

    #[test]
    fn next_available_estimates() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(100, 10, t0);
        assert!(bucket.next_available() > Duration::ZERO);
        bucket.take(t0 + Duration::from_secs(1), 0); // refill only
        assert_eq!(bucket.next_available(), Duration::ZERO);
    }

    #[test]
    fn never_exceeds_rate_even_with_dense_polling() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(150_000, 1500, t0);
        let mut sent = 0u64;
        for tick in 1..=10_000u64 {
            let now = t0 + Duration::from_micros(100 * tick);
            sent += bucket.take(now, u64::MAX);
        }
        // One virtual second at 150 kpps.
        assert!((149_000..=151_500).contains(&sent), "{sent}");
    }
}
