//! Token-bucket send pacing.
//!
//! ZMap paces probes to a configured packets-per-second rate; the paper
//! runs at a "moderate" 150 kpps (§3.4). The bucket is driven by virtual
//! time and capped so long stalls don't produce catch-up bursts.

use iw_netsim::{Duration, Instant};

/// Fractional-credit denominator: one token = `rate_pps` pps·ns credits
/// accumulated over one second.
const NANOS_PER_SEC: u64 = 1_000_000_000;

/// A token bucket measured in packets.
///
/// Accounting is exact integer arithmetic in pps·nanosecond units: a
/// whole token is `NANOS_PER_SEC` credit units and each elapsed
/// nanosecond deposits `rate_pps` units. Floating point drifted on long
/// scans (hours of virtual time at 150 kpps accumulate representation
/// error) and its sub-ulp residue let `next_available` truncate a real
/// wait down to zero — a zero-delay timer re-arm busy loop.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_pps: u64,
    burst: u64,
    /// Whole tokens available.
    tokens: u64,
    /// Fractional credit in pps·ns units, always `< NANOS_PER_SEC`.
    carry: u64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate_pps`, holding at most `burst` tokens.
    pub fn new(rate_pps: u64, burst: u64, now: Instant) -> TokenBucket {
        assert!(rate_pps > 0, "zero send rate");
        TokenBucket {
            rate_pps,
            burst: burst.max(1),
            tokens: 0,
            carry: 0,
            last: now,
        }
    }

    /// Refill for elapsed time and return how many packets may be sent.
    pub fn take(&mut self, now: Instant, want: u64) -> u64 {
        let elapsed = now.duration_since(self.last);
        self.last = now;
        let credit = self.carry as u128 + elapsed.as_nanos() as u128 * self.rate_pps as u128;
        let refill = credit / NANOS_PER_SEC as u128;
        let whole = (self.tokens as u128 + refill).min(u64::MAX as u128) as u64;
        if whole >= self.burst {
            // Capped: surplus credit (including the fraction) is forfeit,
            // exactly like the f64 `min(burst)` used to drop it.
            self.tokens = self.burst;
            self.carry = 0;
        } else {
            self.tokens = whole;
            self.carry = (credit % NANOS_PER_SEC as u128) as u64;
        }
        let grant = self.tokens.min(want);
        self.tokens -= grant;
        grant
    }

    /// Time until at least one token is available.
    ///
    /// Rounds *up*: whenever `take` would grant zero, this is strictly
    /// positive, and waiting exactly this long always yields a token.
    pub fn next_available(&self) -> Duration {
        if self.tokens >= 1 {
            Duration::ZERO
        } else {
            let missing = NANOS_PER_SEC - self.carry; // credit units short of one token
            Duration::from_nanos(missing.div_ceil(self.rate_pps))
        }
    }

    /// Configured rate.
    pub fn rate_pps(&self) -> u64 {
        self.rate_pps
    }
}

/// Shard `index`'s slice of a global packets-per-second budget split
/// across `count` shards.
///
/// The global rate divides as evenly as integers allow: every shard gets
/// `rate_pps / count`, and the first `rate_pps % count` shards carry one
/// extra token, so `sum(shard_rate(R, i, N) for i in 0..N) == R` exactly
/// whenever `R >= N`. When the global rate is smaller than the shard
/// count the tail shards would round to zero — a rate the bucket
/// rejects — so the slice is clamped to 1 pps and the aggregate may
/// exceed `R` by up to `N - R` packets per second. That corner only
/// arises in pathological configs (more shards than packets per
/// second); real campaigns run at kpps and above.
pub fn shard_rate(rate_pps: u64, index: u32, count: u32) -> u64 {
    let count = u64::from(count.max(1));
    let index = u64::from(index);
    let share = rate_pps / count + u64::from(index < rate_pps % count);
    share.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected_over_time() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(1000, 100, t0);
        let mut sent = 0u64;
        // Poll every 10 ms for one virtual second.
        for tick in 1..=100u64 {
            let now = t0 + Duration::from_millis(10 * tick);
            sent += bucket.take(now, u64::MAX);
        }
        assert!((950..=1050).contains(&sent), "sent {sent} in 1s at 1kpps");
    }

    #[test]
    fn burst_is_capped() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(1000, 50, t0);
        // A long stall must not grant more than the burst.
        let granted = bucket.take(t0 + Duration::from_secs(60), u64::MAX);
        assert_eq!(granted, 50);
    }

    #[test]
    fn want_limits_grant() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(1_000_000, 1000, t0);
        let granted = bucket.take(t0 + Duration::from_millis(10), 3);
        assert_eq!(granted, 3);
    }

    #[test]
    fn next_available_estimates() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(100, 10, t0);
        assert!(bucket.next_available() > Duration::ZERO);
        bucket.take(t0 + Duration::from_secs(1), 0); // refill only
        assert_eq!(bucket.next_available(), Duration::ZERO);
    }

    /// Drive a bucket for `ticks` polls of `step`, recording grants and
    /// throttle waits into a registry exactly like `Scanner::pace` does,
    /// and return the frozen snapshot.
    fn paced_snapshot(
        rate_pps: u64,
        burst: u64,
        step: Duration,
        ticks: u64,
        want: u64,
    ) -> iw_telemetry::Snapshot {
        use iw_telemetry::{MetricsRegistry, Scope};
        let mut r = MetricsRegistry::new();
        let granted = r.counter("scan.targets_sent", Scope::Scan);
        let tick_ctr = r.counter("shard.pace.ticks", Scope::Shard);
        let wait = r.histogram("shard.pace.token_wait_nanos", Scope::Shard);
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(rate_pps, burst, t0);
        for tick in 1..=ticks {
            let now = t0 + step.saturating_mul(tick);
            r.inc(tick_ctr);
            let grant = bucket.take(now, want);
            r.add(granted, grant);
            if grant < want {
                r.observe(wait, bucket.next_available().as_nanos());
            }
        }
        r.snapshot()
    }

    #[test]
    fn burst_cap_shows_in_metrics_after_stall() {
        // 1 kpps, burst 50, polled once after a 60 s stall: the metrics
        // must show exactly one burst-capped grant, not 60 000 packets of
        // catch-up.
        let snap = paced_snapshot(1000, 50, Duration::from_secs(60), 1, u64::MAX);
        assert_eq!(snap.counter("scan.targets_sent"), 50);
        assert_eq!(snap.counter("shard.pace.ticks"), 1);
    }

    #[test]
    fn no_catch_up_after_long_stall() {
        // Steady 5 ms ticks at 10 kpps with a generous burst: every tick
        // wants more than the refill provides, so every tick records a
        // positive throttle wait — and the long stall baked into the first
        // tick (bucket created at t=0, first poll at t=30 s) still only
        // yields the burst.
        let mut sent_after_stall = 0u64;
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(10_000, 100, t0);
        let stall_grant = bucket.take(t0 + Duration::from_secs(30), u64::MAX);
        assert_eq!(stall_grant, 100, "stall grants the burst, nothing more");
        for tick in 1..=200u64 {
            let now = t0 + Duration::from_secs(30) + Duration::from_millis(5 * tick);
            sent_after_stall += bucket.take(now, u64::MAX);
        }
        // 1 s at 10 kpps after the stall: the rate is honoured from the
        // first post-stall tick, with no residual credit.
        assert!(
            (9_500..=10_500).contains(&sent_after_stall),
            "{sent_after_stall}"
        );
    }

    #[test]
    fn fractional_tokens_accumulate_at_low_rates() {
        // 2 pps polled every 100 ms: each tick refills 0.2 tokens. Grants
        // only happen when the fraction crosses 1.0 — over 10 s exactly
        // ~20 packets leave, and the throttled ticks record their waits.
        let snap = paced_snapshot(2, 8, Duration::from_millis(100), 100, 1);
        let sent = snap.counter("scan.targets_sent");
        assert!((19..=20).contains(&sent), "sent {sent} in 10 s at 2 pps");
        assert_eq!(snap.counter("shard.pace.ticks"), 100);
        let waits = snap.histogram("shard.pace.token_wait_nanos").unwrap();
        // 100 ticks, ~20 grants → ~80 throttled ticks with a recorded wait.
        assert!((78..=81).contains(&waits.count), "{}", waits.count);
        // Each wait is under one token period (500 ms) and positive.
        assert!(waits.max <= 500_000_000, "{}", waits.max);
        assert!(waits.min >= 1, "fractional credit means a partial wait");
    }

    #[test]
    fn zero_grant_always_reports_positive_wait_at_high_rate() {
        // Regression: with f64 accounting a bucket at ~0.9999 tokens could
        // report `next_available() == 0` while `take` still granted 0 —
        // the pacing loop then re-armed a zero-delay timer and spun. At
        // high rates the rounded-down wait fell below 1 ns most easily, so
        // probe a dense spread of awkward fractional states there.
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(3_333_333, 10_000, t0);
        let mut now = t0;
        let mut zero_grants = 0u64;
        for tick in 1..=50_000u64 {
            now = now + Duration::from_nanos(97 + tick % 211);
            if bucket.take(now, u64::MAX) == 0 {
                zero_grants += 1;
                let wait = bucket.next_available();
                assert!(wait > Duration::ZERO, "zero-delay re-arm at tick {tick}");
                // Round-up must be *sufficient*: waiting exactly `wait`
                // always produces a token.
                let mut probe = bucket.clone();
                assert!(
                    probe.take(now + wait, 1) == 1,
                    "wait {wait:?} at tick {tick} did not yield a token"
                );
            }
        }
        assert!(zero_grants > 1000, "test must exercise empty-bucket polls");
    }

    #[test]
    fn exact_grant_count_over_one_hour_at_paper_rate() {
        // One hour of virtual time at the paper's 150 kpps must grant
        // *exactly* rate × seconds packets — integer accounting does not
        // drift no matter how awkward the polling cadence. The f64 version
        // accumulated representation error across hundreds of thousands
        // of refills.
        const HOUR_NS: u64 = 3_600 * 1_000_000_000;
        const RATE: u64 = 150_000;
        let step = Duration::from_nanos(999_937); // ~1 ms, never divides evenly
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(RATE, 1_500, t0);
        let mut sent = 0u64;
        let mut elapsed = 0u64;
        while elapsed < HOUR_NS {
            let d = step.as_nanos().min(HOUR_NS - elapsed);
            elapsed += d;
            sent += bucket.take(t0 + Duration::from_nanos(elapsed), u64::MAX);
        }
        assert_eq!(sent, RATE * 3_600, "exactly one hour of tokens");
    }

    #[test]
    fn shard_rates_sum_exactly_to_the_global_rate() {
        // The division invariant the threaded topology relies on: N
        // per-shard buckets together pace at exactly the configured
        // global rate whenever R >= N, including non-power-of-two shard
        // counts and rates that don't divide evenly.
        for &(rate, count) in &[
            (150_000u64, 1u32),
            (150_000, 3),
            (150_000, 4),
            (150_000, 7),
            (150_001, 8),
            (4_000_000, 16),
            (5, 5),
            (17, 3),
        ] {
            let sum: u64 = (0..count).map(|i| shard_rate(rate, i, count)).sum();
            assert_eq!(sum, rate, "rate {rate} over {count} shards");
            // No shard deviates from the even share by more than one
            // token per second.
            for i in 0..count {
                let share = shard_rate(rate, i, count);
                let even = rate / u64::from(count);
                assert!(
                    share == even || share == even + 1,
                    "shard {i}/{count} got {share} of {rate}"
                );
            }
        }
    }

    #[test]
    fn shard_rate_clamps_to_one_when_outnumbered() {
        // More shards than packets per second: every shard still gets a
        // valid (>= 1 pps) bucket; the documented over-admission corner.
        for i in 0..8u32 {
            assert!(shard_rate(3, i, 8) >= 1);
        }
        assert_eq!((0..8).map(|i| shard_rate(3, i, 8)).sum::<u64>(), 8);
    }

    #[test]
    fn sharded_buckets_pace_the_global_rate_over_a_long_window() {
        // Satellite gate: drive N independent per-shard buckets over an
        // hour of virtual time and demand the aggregate grant count equal
        // the single global bucket's to within one token per shard (the
        // only slack integer division leaves, and the steady cadence here
        // collects even that).
        const RATE: u64 = 150_000;
        const HOUR_SECS: u64 = 3_600;
        for &count in &[1u32, 3, 4, 8] {
            let t0 = Instant::ZERO;
            let mut buckets: Vec<TokenBucket> = (0..count)
                .map(|i| {
                    let r = shard_rate(RATE, i, count);
                    TokenBucket::new(r, (r / 100).max(16), t0)
                })
                .collect();
            let mut sent = 0u64;
            for tick in 1..=HOUR_SECS * 200 {
                let now = t0 + Duration::from_millis(5 * tick);
                for bucket in &mut buckets {
                    sent += bucket.take(now, u64::MAX);
                }
            }
            let expect = RATE * HOUR_SECS;
            assert!(
                sent.abs_diff(expect) <= u64::from(count),
                "{count} shards granted {sent}, want {expect} ± {count}"
            );
        }
    }

    #[test]
    fn stalled_shard_cannot_starve_the_others() {
        // Buckets are fully independent: one shard never polling (a
        // stalled sender) changes nothing about what its peers may send.
        const RATE: u64 = 100_000;
        const COUNT: u32 = 4;
        let t0 = Instant::ZERO;
        let drive = |stall: Option<u32>| -> Vec<u64> {
            let mut buckets: Vec<TokenBucket> = (0..COUNT)
                .map(|i| {
                    let r = shard_rate(RATE, i, COUNT);
                    TokenBucket::new(r, (r / 100).max(16), t0)
                })
                .collect();
            let mut sent = vec![0u64; COUNT as usize];
            for tick in 1..=2_000u64 {
                let now = t0 + Duration::from_millis(5 * tick);
                for (i, bucket) in buckets.iter_mut().enumerate() {
                    if Some(i as u32) == stall {
                        continue; // this shard never takes
                    }
                    sent[i] += bucket.take(now, u64::MAX);
                }
            }
            sent
        };
        let healthy = drive(None);
        let degraded = drive(Some(2));
        assert_eq!(degraded[2], 0, "the stalled shard sent nothing");
        for i in [0usize, 1, 3] {
            assert_eq!(
                healthy[i], degraded[i],
                "shard {i} throughput changed because shard 2 stalled"
            );
        }
        // And the stalled shard's unused budget is not silently
        // redistributed: the aggregate drops by exactly its share.
        let healthy_total: u64 = healthy.iter().sum();
        let degraded_total: u64 = degraded.iter().sum();
        assert_eq!(healthy_total - degraded_total, healthy[2]);
    }

    #[test]
    fn never_exceeds_rate_even_with_dense_polling() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(150_000, 1500, t0);
        let mut sent = 0u64;
        for tick in 1..=10_000u64 {
            let now = t0 + Duration::from_micros(100 * tick);
            sent += bucket.take(now, u64::MAX);
        }
        // One virtual second at 150 kpps.
        assert!((149_000..=151_500).contains(&sent), "{sent}");
    }
}
