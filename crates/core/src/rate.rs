//! Token-bucket send pacing.
//!
//! ZMap paces probes to a configured packets-per-second rate; the paper
//! runs at a "moderate" 150 kpps (§3.4). The bucket is driven by virtual
//! time and capped so long stalls don't produce catch-up bursts.

use iw_netsim::{Duration, Instant};

/// A token bucket measured in packets.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_pps: u64,
    burst: u64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket refilling at `rate_pps`, holding at most `burst` tokens.
    pub fn new(rate_pps: u64, burst: u64, now: Instant) -> TokenBucket {
        assert!(rate_pps > 0, "zero send rate");
        TokenBucket {
            rate_pps,
            burst: burst.max(1),
            tokens: 0.0,
            last: now,
        }
    }

    /// Refill for elapsed time and return how many packets may be sent.
    pub fn take(&mut self, now: Instant, want: u64) -> u64 {
        let elapsed = now.duration_since(self.last);
        self.last = now;
        self.tokens += elapsed.as_secs_f64() * self.rate_pps as f64;
        self.tokens = self.tokens.min(self.burst as f64);
        let grant = (self.tokens as u64).min(want);
        self.tokens -= grant as f64;
        grant
    }

    /// Time until at least one token is available.
    pub fn next_available(&self) -> Duration {
        if self.tokens >= 1.0 {
            Duration::ZERO
        } else {
            let missing = 1.0 - self.tokens;
            Duration::from_nanos((missing / self.rate_pps as f64 * 1e9) as u64)
        }
    }

    /// Configured rate.
    pub fn rate_pps(&self) -> u64 {
        self.rate_pps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_respected_over_time() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(1000, 100, t0);
        let mut sent = 0u64;
        // Poll every 10 ms for one virtual second.
        for tick in 1..=100u64 {
            let now = t0 + Duration::from_millis(10 * tick);
            sent += bucket.take(now, u64::MAX);
        }
        assert!((950..=1050).contains(&sent), "sent {sent} in 1s at 1kpps");
    }

    #[test]
    fn burst_is_capped() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(1000, 50, t0);
        // A long stall must not grant more than the burst.
        let granted = bucket.take(t0 + Duration::from_secs(60), u64::MAX);
        assert_eq!(granted, 50);
    }

    #[test]
    fn want_limits_grant() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(1_000_000, 1000, t0);
        let granted = bucket.take(t0 + Duration::from_millis(10), 3);
        assert_eq!(granted, 3);
    }

    #[test]
    fn next_available_estimates() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(100, 10, t0);
        assert!(bucket.next_available() > Duration::ZERO);
        bucket.take(t0 + Duration::from_secs(1), 0); // refill only
        assert_eq!(bucket.next_available(), Duration::ZERO);
    }

    /// Drive a bucket for `ticks` polls of `step`, recording grants and
    /// throttle waits into a registry exactly like `Scanner::pace` does,
    /// and return the frozen snapshot.
    fn paced_snapshot(
        rate_pps: u64,
        burst: u64,
        step: Duration,
        ticks: u64,
        want: u64,
    ) -> iw_telemetry::Snapshot {
        use iw_telemetry::{MetricsRegistry, Scope};
        let mut r = MetricsRegistry::new();
        let granted = r.counter("scan.targets_sent", Scope::Scan);
        let tick_ctr = r.counter("shard.pace.ticks", Scope::Shard);
        let wait = r.histogram("shard.pace.token_wait_nanos", Scope::Shard);
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(rate_pps, burst, t0);
        for tick in 1..=ticks {
            let now = t0 + step.saturating_mul(tick);
            r.inc(tick_ctr);
            let grant = bucket.take(now, want);
            r.add(granted, grant);
            if grant < want {
                r.observe(wait, bucket.next_available().as_nanos());
            }
        }
        r.snapshot()
    }

    #[test]
    fn burst_cap_shows_in_metrics_after_stall() {
        // 1 kpps, burst 50, polled once after a 60 s stall: the metrics
        // must show exactly one burst-capped grant, not 60 000 packets of
        // catch-up.
        let snap = paced_snapshot(1000, 50, Duration::from_secs(60), 1, u64::MAX);
        assert_eq!(snap.counter("scan.targets_sent"), 50);
        assert_eq!(snap.counter("shard.pace.ticks"), 1);
    }

    #[test]
    fn no_catch_up_after_long_stall() {
        // Steady 5 ms ticks at 10 kpps with a generous burst: every tick
        // wants more than the refill provides, so every tick records a
        // positive throttle wait — and the long stall baked into the first
        // tick (bucket created at t=0, first poll at t=30 s) still only
        // yields the burst.
        let mut sent_after_stall = 0u64;
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(10_000, 100, t0);
        let stall_grant = bucket.take(t0 + Duration::from_secs(30), u64::MAX);
        assert_eq!(stall_grant, 100, "stall grants the burst, nothing more");
        for tick in 1..=200u64 {
            let now = t0 + Duration::from_secs(30) + Duration::from_millis(5 * tick);
            sent_after_stall += bucket.take(now, u64::MAX);
        }
        // 1 s at 10 kpps after the stall: the rate is honoured from the
        // first post-stall tick, with no residual credit.
        assert!(
            (9_500..=10_500).contains(&sent_after_stall),
            "{sent_after_stall}"
        );
    }

    #[test]
    fn fractional_tokens_accumulate_at_low_rates() {
        // 2 pps polled every 100 ms: each tick refills 0.2 tokens. Grants
        // only happen when the fraction crosses 1.0 — over 10 s exactly
        // ~20 packets leave, and the throttled ticks record their waits.
        let snap = paced_snapshot(2, 8, Duration::from_millis(100), 100, 1);
        let sent = snap.counter("scan.targets_sent");
        assert!((19..=20).contains(&sent), "sent {sent} in 10 s at 2 pps");
        assert_eq!(snap.counter("shard.pace.ticks"), 100);
        let waits = snap.histogram("shard.pace.token_wait_nanos").unwrap();
        // 100 ticks, ~20 grants → ~80 throttled ticks with a recorded wait.
        assert!((78..=81).contains(&waits.count), "{}", waits.count);
        // Each wait is under one token period (500 ms) and positive.
        assert!(waits.max <= 500_000_000, "{}", waits.max);
        assert!(waits.min >= 1, "fractional credit means a partial wait");
    }

    #[test]
    fn never_exceeds_rate_even_with_dense_polling() {
        let t0 = Instant::ZERO;
        let mut bucket = TokenBucket::new(150_000, 1500, t0);
        let mut sent = 0u64;
        for tick in 1..=10_000u64 {
            let now = t0 + Duration::from_micros(100 * tick);
            sent += bucket.take(now, u64::MAX);
        }
        // One virtual second at 150 kpps.
        assert!((149_000..=151_500).contains(&sent), "{sent}");
    }
}
