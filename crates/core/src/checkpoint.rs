//! Durable-campaign checkpoints: a versioned, canonical-JSON snapshot of
//! a scan's position that survives crashes and powers `--resume`.
//!
//! # Why replay-validate instead of full state restore
//!
//! A mid-campaign scanner is entangled with the simulation around it:
//! host TCBs, link RNG positions, the timer wheel, packets in flight.
//! Serialising all of that would freeze the whole world format into the
//! checkpoint schema. Instead we exploit the fact that the simulation is
//! *deterministic in virtual time*: a resumed run replays from event 0
//! (cheap — hundreds of thousands of hosts per virtual second) and uses
//! the checkpoint as a **validation barrier**. When the replay reaches
//! the recorded event count, its observable scanner state — permutation
//! cursor, pending-retry set, live-session set, counters, sink record
//! count — must match the checkpoint byte-for-byte, or the resume fails
//! cleanly as diverged. Matching state at the barrier plus determinism
//! afterwards makes the resumed tail *identical* to the uninterrupted
//! run, so results, metrics and stream output are byte-equal — the crash
//! matrix in `tests/crash_matrix.rs` proves exactly that. RNG stream
//! positions are implicit: they are pure functions of (seed, events
//! replayed), which the barrier pins.
//!
//! # Schema stability
//!
//! The file is the canonical-JSON dialect of [`iw_telemetry::json`]
//! (sorted construction order, integers only) with an explicit `kind`
//! and `version` header. Unknown versions and corrupted bytes are
//! rejected with a typed [`CheckpointError`], never a panic.

use crate::results::Protocol;
use crate::scanner::{ScanConfig, TargetSpec};
use iw_telemetry::json::{push_key, push_str_literal, push_u64_field};
use iw_telemetry::{parse_json, JsonValue};
use std::fmt;
use std::fmt::Write as _;

/// Current checkpoint schema version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// The `kind` discriminator in the file header.
pub const CHECKPOINT_KIND: &str = "iwscan-campaign-checkpoint";

/// Why a checkpoint could not be loaded or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The bytes are not the emitter's JSON dialect.
    Malformed(String),
    /// Parsed, but the schema version is not one we write.
    UnknownVersion(u64),
    /// Parsed, but the `kind` header names a different artifact.
    WrongKind(String),
    /// A required field is missing or has the wrong shape.
    MissingField(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Malformed(detail) => write!(f, "malformed checkpoint: {detail}"),
            CheckpointError::UnknownVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (expected {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::WrongKind(kind) => {
                write!(f, "not a campaign checkpoint (kind {kind:?})")
            }
            CheckpointError::MissingField(field) => {
                write!(f, "checkpoint field {field:?} missing or wrong type")
            }
        }
    }
}

/// How a driver run ended.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RunDisposition {
    /// Ran to natural completion.
    #[default]
    Completed,
    /// Stopped by the crash-injection hook after this many events on the
    /// killed shard.
    Killed {
        /// Events the killed shard had processed.
        events: u64,
    },
    /// Stopped by the graceful-shutdown deadline: in-flight sessions were
    /// drained and a final checkpoint captured.
    Aborted,
    /// A resume barrier did not match the replayed state — the
    /// checkpoint belongs to a different run or was corrupted in a way
    /// that still parses.
    Diverged {
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl RunDisposition {
    /// Merge precedence across shards: any divergence poisons the run,
    /// then a kill, then an abort, then completion.
    pub fn merge(self, other: RunDisposition) -> RunDisposition {
        fn rank(d: &RunDisposition) -> u32 {
            match d {
                RunDisposition::Diverged { .. } => 3,
                RunDisposition::Killed { .. } => 2,
                RunDisposition::Aborted => 1,
                RunDisposition::Completed => 0,
            }
        }
        if rank(&other) > rank(&self) {
            other
        } else {
            self
        }
    }
}

/// A digest of every configuration field that shapes the simulation.
///
/// Resuming under a different configuration would replay a *different*
/// campaign, so the digest is compared verbatim before any replay work
/// starts. Fields are stored individually (not hashed) so a mismatch can
/// be reported legibly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigDigest {
    /// Permutation / cookie / probe seed.
    pub seed: u64,
    /// Protocol module name (`http`, `tls`, `portscan`, `icmp_mtu`).
    pub protocol: String,
    /// Target spec summary: `full:<size>` or `list:<len>`.
    pub targets: String,
    /// `sample_fraction` as IEEE-754 bits (exact, no float formatting).
    pub sample_bits: u64,
    /// Sampling salt.
    pub sample_salt: u64,
    /// Token-bucket rate (packets/second).
    pub rate_pps: u64,
    /// Probes per announced MSS.
    pub probes_per_mss: u32,
    /// Announced MSS values in run order.
    pub mss_list: Vec<u16>,
    /// Scanner source address.
    pub source: u32,
    /// Addresses covered by the whitelist.
    pub whitelist_addrs: u64,
    /// Addresses covered by the blacklist.
    pub blacklist_addrs: u64,
    /// Exhaustion-verification knob.
    pub verify_exhaustion: bool,
    /// Wire-trace recording knob.
    pub record_trace: bool,
    /// Stateless-first hybrid discovery knob.
    pub stateless_first: bool,
    /// SYN retry budget.
    pub syn_retries: u32,
    /// First SYN backoff in nanoseconds.
    pub syn_backoff_nanos: u64,
    /// Probe retry budget.
    pub probe_retries: u32,
    /// First probe backoff in nanoseconds.
    pub probe_backoff_nanos: u64,
    /// Session watchdog in nanoseconds (0 = off).
    pub watchdog_nanos: u64,
    /// Live-session cap (0 = unbounded).
    pub max_sessions: u64,
    /// Event-log knob.
    pub record_events: bool,
    /// RTT-tracking knob.
    pub record_rtt: bool,
    /// Span-recording knob.
    pub record_spans: bool,
    /// Flight-recorder knob.
    pub flight_recorder: bool,
    /// Progress-monitor interval in nanoseconds (0 = off).
    pub monitor_nanos: u64,
    /// Streaming-telemetry interval in nanoseconds (0 = off).
    pub stream_nanos: u64,
}

impl ConfigDigest {
    /// Capture the digest of a scan configuration.
    pub fn from_config(config: &ScanConfig) -> ConfigDigest {
        let protocol = match config.protocol {
            Protocol::Http => "http",
            Protocol::Tls => "tls",
            Protocol::PortScan => "portscan",
            Protocol::IcmpMtu => "icmp_mtu",
        };
        let targets = match &config.targets {
            TargetSpec::FullSpace { size } => format!("full:{size}"),
            TargetSpec::List(list) => format!("list:{}", list.len()),
        };
        ConfigDigest {
            seed: config.seed,
            protocol: protocol.to_string(),
            targets,
            sample_bits: config.sample_fraction.to_bits(),
            sample_salt: config.sample_salt,
            rate_pps: config.rate_pps,
            probes_per_mss: config.probes_per_mss,
            mss_list: config.mss_list.clone(),
            source: config.source.to_u32(),
            whitelist_addrs: config.filter.whitelist.address_count(),
            blacklist_addrs: config.filter.blacklist.address_count(),
            verify_exhaustion: config.verify_exhaustion,
            record_trace: config.record_trace,
            stateless_first: config.stateless_first,
            syn_retries: config.resilience.syn_retries,
            syn_backoff_nanos: config.resilience.syn_backoff.as_nanos(),
            probe_retries: config.resilience.probe_retries,
            probe_backoff_nanos: config.resilience.probe_backoff.as_nanos(),
            watchdog_nanos: config
                .resilience
                .session_deadline
                .map_or(0, |d| d.as_nanos()),
            max_sessions: config.resilience.max_sessions as u64,
            record_events: config.telemetry.record_events,
            record_rtt: config.telemetry.record_rtt,
            record_spans: config.telemetry.record_spans,
            flight_recorder: config.telemetry.flight_recorder,
            monitor_nanos: config
                .telemetry
                .monitor
                .as_ref()
                .map_or(0, |m| m.interval.as_nanos()),
            stream_nanos: config.telemetry.stream.map_or(0, |d| d.as_nanos()),
        }
    }

    fn emit(&self, out: &mut String) {
        out.push('{');
        push_u64_field(out, "seed", self.seed);
        out.push(',');
        push_key(out, "protocol");
        push_str_literal(out, &self.protocol);
        out.push(',');
        push_key(out, "targets");
        push_str_literal(out, &self.targets);
        out.push(',');
        push_u64_field(out, "sample_bits", self.sample_bits);
        out.push(',');
        push_u64_field(out, "sample_salt", self.sample_salt);
        out.push(',');
        push_u64_field(out, "rate_pps", self.rate_pps);
        out.push(',');
        push_u64_field(out, "probes_per_mss", u64::from(self.probes_per_mss));
        out.push(',');
        push_key(out, "mss_list");
        out.push('[');
        for (i, mss) in self.mss_list.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{mss}");
        }
        out.push(']');
        out.push(',');
        push_u64_field(out, "source", u64::from(self.source));
        out.push(',');
        push_u64_field(out, "whitelist_addrs", self.whitelist_addrs);
        out.push(',');
        push_u64_field(out, "blacklist_addrs", self.blacklist_addrs);
        out.push(',');
        push_bool_field(out, "verify_exhaustion", self.verify_exhaustion);
        out.push(',');
        push_bool_field(out, "record_trace", self.record_trace);
        out.push(',');
        push_bool_field(out, "stateless_first", self.stateless_first);
        out.push(',');
        push_u64_field(out, "syn_retries", u64::from(self.syn_retries));
        out.push(',');
        push_u64_field(out, "syn_backoff_nanos", self.syn_backoff_nanos);
        out.push(',');
        push_u64_field(out, "probe_retries", u64::from(self.probe_retries));
        out.push(',');
        push_u64_field(out, "probe_backoff_nanos", self.probe_backoff_nanos);
        out.push(',');
        push_u64_field(out, "watchdog_nanos", self.watchdog_nanos);
        out.push(',');
        push_u64_field(out, "max_sessions", self.max_sessions);
        out.push(',');
        push_bool_field(out, "record_events", self.record_events);
        out.push(',');
        push_bool_field(out, "record_rtt", self.record_rtt);
        out.push(',');
        push_bool_field(out, "record_spans", self.record_spans);
        out.push(',');
        push_bool_field(out, "flight_recorder", self.flight_recorder);
        out.push(',');
        push_u64_field(out, "monitor_nanos", self.monitor_nanos);
        out.push(',');
        push_u64_field(out, "stream_nanos", self.stream_nanos);
        out.push('}');
    }

    fn from_value(value: &JsonValue) -> Result<ConfigDigest, CheckpointError> {
        let mss_list = req_arr(value, "mss_list")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u16::try_from(n).ok())
                    .ok_or_else(|| CheckpointError::MissingField("mss_list".to_string()))
            })
            .collect::<Result<Vec<u16>, CheckpointError>>()?;
        Ok(ConfigDigest {
            seed: req_u64(value, "seed")?,
            protocol: req_str(value, "protocol")?,
            targets: req_str(value, "targets")?,
            sample_bits: req_u64(value, "sample_bits")?,
            sample_salt: req_u64(value, "sample_salt")?,
            rate_pps: req_u64(value, "rate_pps")?,
            probes_per_mss: req_u32(value, "probes_per_mss")?,
            mss_list,
            source: req_u32(value, "source")?,
            whitelist_addrs: req_u64(value, "whitelist_addrs")?,
            blacklist_addrs: req_u64(value, "blacklist_addrs")?,
            verify_exhaustion: req_bool(value, "verify_exhaustion")?,
            record_trace: req_bool(value, "record_trace")?,
            stateless_first: req_bool(value, "stateless_first")?,
            syn_retries: req_u32(value, "syn_retries")?,
            syn_backoff_nanos: req_u64(value, "syn_backoff_nanos")?,
            probe_retries: req_u32(value, "probe_retries")?,
            probe_backoff_nanos: req_u64(value, "probe_backoff_nanos")?,
            watchdog_nanos: req_u64(value, "watchdog_nanos")?,
            max_sessions: req_u64(value, "max_sessions")?,
            record_events: req_bool(value, "record_events")?,
            record_rtt: req_bool(value, "record_rtt")?,
            record_spans: req_bool(value, "record_spans")?,
            flight_recorder: req_bool(value, "flight_recorder")?,
            monitor_nanos: req_u64(value, "monitor_nanos")?,
            stream_nanos: req_u64(value, "stream_nanos")?,
        })
    }

    /// Describe the first field that differs from `other`, if any.
    pub fn first_mismatch(&self, other: &ConfigDigest) -> Option<String> {
        if self == other {
            return None;
        }
        macro_rules! check {
            ($field:ident) => {
                if self.$field != other.$field {
                    return Some(format!(
                        "config field `{}`: checkpoint {:?} vs current {:?}",
                        stringify!($field),
                        self.$field,
                        other.$field
                    ));
                }
            };
        }
        check!(seed);
        check!(protocol);
        check!(targets);
        check!(sample_bits);
        check!(sample_salt);
        check!(rate_pps);
        check!(probes_per_mss);
        check!(mss_list);
        check!(source);
        check!(whitelist_addrs);
        check!(blacklist_addrs);
        check!(verify_exhaustion);
        check!(record_trace);
        check!(stateless_first);
        check!(syn_retries);
        check!(syn_backoff_nanos);
        check!(probe_retries);
        check!(probe_backoff_nanos);
        check!(watchdog_nanos);
        check!(max_sessions);
        check!(record_events);
        check!(record_rtt);
        check!(record_spans);
        check!(flight_recorder);
        check!(monitor_nanos);
        check!(stream_nanos);
        Some("config digests differ".to_string())
    }
}

/// One shard's observable scanner state at a recorded event count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardCheckpoint {
    /// Shard index.
    pub shard: u32,
    /// Simulation events this shard had processed at capture time.
    pub events: u64,
    /// Virtual time at capture, in nanoseconds.
    pub at_nanos: u64,
    /// Permutation cursor: the next group element
    /// ([`crate::permutation::ShardIter::cursor`]), or the list index for
    /// explicit target lists.
    pub cursor_next: u64,
    /// Permutation cursor: elements consumed so far.
    pub cursor_produced: u64,
    /// Whether target generation had finished.
    pub exhausted: bool,
    /// SYNs sent (admitted targets actually probed).
    pub targets_sent: u64,
    /// Pending SYN-retry targets as sorted `(ip, retries_used)` pairs.
    pub pending: Vec<(u32, u32)>,
    /// Live stateful-session target addresses, sorted.
    pub sessions: Vec<u32>,
    /// Responders queued for promotion to a stateful session
    /// (stateless-first mode), in queue order — promotion is FIFO, so
    /// the order is part of the observable state, not a set.
    pub promotions: Vec<u32>,
    /// Host results recorded so far.
    pub results_recorded: u64,
    /// Streaming-telemetry records emitted so far.
    pub stream_records: u64,
    /// All counter values (both scopes), sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl ShardCheckpoint {
    /// Canonical JSON for this shard (also the barrier-equality token:
    /// two captures match iff these bytes match).
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.emit(&mut out);
        out
    }

    fn emit(&self, out: &mut String) {
        out.push('{');
        push_u64_field(out, "shard", u64::from(self.shard));
        out.push(',');
        push_u64_field(out, "events", self.events);
        out.push(',');
        push_u64_field(out, "at_nanos", self.at_nanos);
        out.push(',');
        push_u64_field(out, "cursor_next", self.cursor_next);
        out.push(',');
        push_u64_field(out, "cursor_produced", self.cursor_produced);
        out.push(',');
        push_bool_field(out, "exhausted", self.exhausted);
        out.push(',');
        push_u64_field(out, "targets_sent", self.targets_sent);
        out.push(',');
        push_key(out, "pending");
        out.push('[');
        for (i, (ip, retries)) in self.pending.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{ip},{retries}]");
        }
        out.push(']');
        out.push(',');
        push_key(out, "sessions");
        out.push('[');
        for (i, ip) in self.sessions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{ip}");
        }
        out.push(']');
        out.push(',');
        push_key(out, "promotions");
        out.push('[');
        for (i, ip) in self.promotions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{ip}");
        }
        out.push(']');
        out.push(',');
        push_u64_field(out, "results_recorded", self.results_recorded);
        out.push(',');
        push_u64_field(out, "stream_records", self.stream_records);
        out.push(',');
        push_key(out, "counters");
        out.push('{');
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_u64_field(out, name, *value);
        }
        out.push('}');
        out.push('}');
    }

    fn from_value(value: &JsonValue) -> Result<ShardCheckpoint, CheckpointError> {
        let pending = req_arr(value, "pending")?
            .iter()
            .map(|pair| {
                let items = pair.as_arr().unwrap_or(&[]);
                match items {
                    [ip, retries] => match (ip.as_u64(), retries.as_u64()) {
                        (Some(ip), Some(retries)) => {
                            match (u32::try_from(ip), u32::try_from(retries)) {
                                (Ok(ip), Ok(retries)) => Ok((ip, retries)),
                                _ => Err(CheckpointError::MissingField("pending".to_string())),
                            }
                        }
                        _ => Err(CheckpointError::MissingField("pending".to_string())),
                    },
                    _ => Err(CheckpointError::MissingField("pending".to_string())),
                }
            })
            .collect::<Result<Vec<(u32, u32)>, CheckpointError>>()?;
        let sessions = req_arr(value, "sessions")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| CheckpointError::MissingField("sessions".to_string()))
            })
            .collect::<Result<Vec<u32>, CheckpointError>>()?;
        let promotions = req_arr(value, "promotions")?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| CheckpointError::MissingField("promotions".to_string()))
            })
            .collect::<Result<Vec<u32>, CheckpointError>>()?;
        let counters = value
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| CheckpointError::MissingField("counters".to_string()))?
            .iter()
            .map(|(name, v)| {
                v.as_u64()
                    .map(|n| (name.clone(), n))
                    .ok_or_else(|| CheckpointError::MissingField("counters".to_string()))
            })
            .collect::<Result<Vec<(String, u64)>, CheckpointError>>()?;
        Ok(ShardCheckpoint {
            shard: req_u32(value, "shard")?,
            events: req_u64(value, "events")?,
            at_nanos: req_u64(value, "at_nanos")?,
            cursor_next: req_u64(value, "cursor_next")?,
            cursor_produced: req_u64(value, "cursor_produced")?,
            exhausted: req_bool(value, "exhausted")?,
            targets_sent: req_u64(value, "targets_sent")?,
            pending,
            sessions,
            promotions,
            results_recorded: req_u64(value, "results_recorded")?,
            stream_records: req_u64(value, "stream_records")?,
            counters,
        })
    }
}

/// The whole campaign's durable state: header, config digest, per-shard
/// snapshots and free-form CLI context (`extra`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`]).
    pub version: u64,
    /// Shard/thread count the campaign runs with.
    pub threads: u32,
    /// Periodic checkpoint interval in virtual nanoseconds (0 = final /
    /// kill capture only). A resumed run inherits this so its periodic
    /// captures land on identical virtual-time boundaries.
    pub checkpoint_every_nanos: u64,
    /// Digest of the simulation-shaping configuration.
    pub config: ConfigDigest,
    /// CLI-level context (command, scale, loss…), sorted by key.
    pub extra: Vec<(String, String)>,
    /// Per-shard snapshots, sorted by shard index.
    pub shards: Vec<ShardCheckpoint>,
}

impl CampaignCheckpoint {
    /// Serialise to canonical bytes (the exact file format).
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        push_key(&mut out, "kind");
        push_str_literal(&mut out, CHECKPOINT_KIND);
        out.push(',');
        push_u64_field(&mut out, "version", self.version);
        out.push(',');
        push_u64_field(&mut out, "threads", u64::from(self.threads));
        out.push(',');
        push_u64_field(
            &mut out,
            "checkpoint_every_nanos",
            self.checkpoint_every_nanos,
        );
        out.push(',');
        push_key(&mut out, "config");
        self.config.emit(&mut out);
        out.push(',');
        push_key(&mut out, "extra");
        out.push('{');
        let mut extra: Vec<&(String, String)> = self.extra.iter().collect();
        extra.sort();
        for (i, (key, value)) in extra.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_key(&mut out, key);
            push_str_literal(&mut out, value);
        }
        out.push('}');
        out.push(',');
        push_key(&mut out, "shards");
        out.push('[');
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            shard.emit(&mut out);
        }
        out.push(']');
        out.push('}');
        out.push('\n');
        out
    }

    /// Parse checkpoint bytes, rejecting unknown versions, foreign kinds
    /// and malformed JSON with a typed error (never a panic).
    pub fn parse(text: &str) -> Result<CampaignCheckpoint, CheckpointError> {
        let value = parse_json(text).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        let kind = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .unwrap_or("<missing>");
        if kind != CHECKPOINT_KIND {
            return Err(CheckpointError::WrongKind(kind.to_string()));
        }
        let version = req_u64(&value, "version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnknownVersion(version));
        }
        let config = ConfigDigest::from_value(
            value
                .get("config")
                .ok_or_else(|| CheckpointError::MissingField("config".to_string()))?,
        )?;
        let extra = value
            .get("extra")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| CheckpointError::MissingField("extra".to_string()))?
            .iter()
            .map(|(key, v)| {
                v.as_str()
                    .map(|s| (key.clone(), s.to_string()))
                    .ok_or_else(|| CheckpointError::MissingField("extra".to_string()))
            })
            .collect::<Result<Vec<(String, String)>, CheckpointError>>()?;
        let mut shards = req_arr(&value, "shards")?
            .iter()
            .map(ShardCheckpoint::from_value)
            .collect::<Result<Vec<ShardCheckpoint>, CheckpointError>>()?;
        shards.sort_by_key(|s| s.shard);
        Ok(CampaignCheckpoint {
            version,
            threads: req_u32(&value, "threads")?,
            checkpoint_every_nanos: req_u64(&value, "checkpoint_every_nanos")?,
            config,
            extra,
            shards,
        })
    }

    /// The snapshot for shard `index`, if present.
    pub fn shard(&self, index: u32) -> Option<&ShardCheckpoint> {
        self.shards.iter().find(|s| s.shard == index)
    }
}

fn push_bool_field(out: &mut String, key: &str, value: bool) {
    push_key(out, key);
    out.push_str(if value { "true" } else { "false" });
}

fn req_u64(value: &JsonValue, key: &str) -> Result<u64, CheckpointError> {
    value
        .get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| CheckpointError::MissingField(key.to_string()))
}

fn req_u32(value: &JsonValue, key: &str) -> Result<u32, CheckpointError> {
    req_u64(value, key)?
        .try_into()
        .map_err(|_| CheckpointError::MissingField(key.to_string()))
}

fn req_str(value: &JsonValue, key: &str) -> Result<String, CheckpointError> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| CheckpointError::MissingField(key.to_string()))
}

fn req_bool(value: &JsonValue, key: &str) -> Result<bool, CheckpointError> {
    value
        .get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| CheckpointError::MissingField(key.to_string()))
}

fn req_arr<'v>(value: &'v JsonValue, key: &str) -> Result<&'v [JsonValue], CheckpointError> {
    value
        .get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| CheckpointError::MissingField(key.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::{ScanConfig, TargetSpec, TelemetryConfig};
    use crate::ResilienceConfig;
    use iw_wire::ipv4::Ipv4Addr;

    fn sample_config() -> ScanConfig {
        ScanConfig {
            seed: 0xfeed,
            protocol: Protocol::Http,
            rate_pps: 100_000,
            targets: TargetSpec::FullSpace { size: 1 << 12 },
            filter: Default::default(),
            sample_fraction: 1.0,
            sample_salt: 7,
            shard: (0, 1),
            probes_per_mss: 2,
            mss_list: vec![64, 1460],
            source: Ipv4Addr::new(10, 0, 0, 1),
            verify_exhaustion: true,
            record_trace: false,
            stateless_first: false,
            telemetry: TelemetryConfig::default(),
            resilience: ResilienceConfig::hardened(),
        }
    }

    fn sample_checkpoint() -> CampaignCheckpoint {
        CampaignCheckpoint {
            version: CHECKPOINT_VERSION,
            threads: 2,
            checkpoint_every_nanos: 5_000_000_000,
            config: ConfigDigest::from_config(&sample_config()),
            extra: vec![
                ("scale".to_string(), "small".to_string()),
                ("command".to_string(), "scan".to_string()),
            ],
            shards: vec![
                ShardCheckpoint {
                    shard: 0,
                    events: 4242,
                    at_nanos: 17_000_000,
                    cursor_next: 99,
                    cursor_produced: 1234,
                    exhausted: false,
                    targets_sent: 1200,
                    pending: vec![(167772161, 1), (167772170, 0)],
                    sessions: vec![167772162, 167772163],
                    promotions: vec![167772165, 167772164],
                    results_recorded: 1100,
                    stream_records: 3,
                    counters: vec![
                        ("scan.checkpoint.taken".to_string(), 3),
                        ("scan.targets.sent".to_string(), 1200),
                    ],
                },
                ShardCheckpoint {
                    shard: 1,
                    events: 4100,
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let ckpt = sample_checkpoint();
        let json = ckpt.to_canonical_json();
        let parsed = CampaignCheckpoint::parse(&json).unwrap();
        assert_eq!(
            parsed.to_canonical_json(),
            json,
            "re-serialise must be byte-identical"
        );
        // Field-level equality modulo extra-key canonicalisation.
        assert_eq!(parsed.threads, ckpt.threads);
        assert_eq!(parsed.config, ckpt.config);
        assert_eq!(parsed.shards, ckpt.shards);
    }

    #[test]
    fn unknown_version_rejected() {
        let mut ckpt = sample_checkpoint();
        ckpt.version = CHECKPOINT_VERSION + 1;
        let json = ckpt.to_canonical_json();
        assert_eq!(
            CampaignCheckpoint::parse(&json).unwrap_err(),
            CheckpointError::UnknownVersion(CHECKPOINT_VERSION + 1)
        );
    }

    #[test]
    fn foreign_kind_rejected() {
        let err = CampaignCheckpoint::parse(r#"{"kind":"metrics","version":1}"#).unwrap_err();
        assert_eq!(err, CheckpointError::WrongKind("metrics".to_string()));
        let err = CampaignCheckpoint::parse(r#"{"version":1}"#).unwrap_err();
        assert_eq!(err, CheckpointError::WrongKind("<missing>".to_string()));
    }

    #[test]
    fn corrupted_bytes_rejected_cleanly() {
        let json = sample_checkpoint().to_canonical_json();
        // Truncations at every prefix length must error, never panic.
        for cut in 0..json.len() - 1 {
            assert!(
                CampaignCheckpoint::parse(&json[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        // Flipping a structural byte must error too.
        let garbled = json.replace("\"shards\":[", "\"shards\":{");
        assert!(CampaignCheckpoint::parse(&garbled).is_err());
    }

    #[test]
    fn missing_fields_are_named() {
        let json = sample_checkpoint()
            .to_canonical_json()
            .replace("\"rate_pps\":100000,", "");
        assert_eq!(
            CampaignCheckpoint::parse(&json).unwrap_err(),
            CheckpointError::MissingField("rate_pps".to_string())
        );
    }

    #[test]
    fn digest_mismatch_is_legible() {
        let a = ConfigDigest::from_config(&sample_config());
        let mut altered = sample_config();
        altered.seed = 1;
        let b = ConfigDigest::from_config(&altered);
        assert!(a.first_mismatch(&a.clone()).is_none());
        let msg = a.first_mismatch(&b).unwrap();
        assert!(msg.contains("seed"), "{msg}");
    }

    #[test]
    fn disposition_merge_precedence() {
        use RunDisposition::*;
        assert_eq!(Completed.merge(Aborted), Aborted);
        assert_eq!(Killed { events: 5 }.merge(Aborted), Killed { events: 5 });
        assert_eq!(
            Aborted.merge(Diverged { detail: "x".into() }),
            Diverged { detail: "x".into() }
        );
        assert_eq!(Completed.merge(Completed), Completed);
    }

    #[test]
    fn shard_lookup_and_barrier_token() {
        let ckpt = sample_checkpoint();
        assert_eq!(ckpt.shard(1).unwrap().events, 4100);
        assert!(ckpt.shard(9).is_none());
        let a = ckpt.shards[0].canonical_json();
        let mut tweaked = ckpt.shards[0].clone();
        tweaked.cursor_next += 1;
        assert_ne!(a, tweaked.canonical_json());
        assert_eq!(a, ckpt.shards[0].clone().canonical_json());
        // Promotion is FIFO, so queue *order* is observable state: the
        // same set in a different order is a different barrier token.
        let mut reordered = ckpt.shards[0].clone();
        reordered.promotions.reverse();
        assert_ne!(a, reordered.canonical_json());
    }
}
