//! CIDR blacklists/whitelists.
//!
//! "Unroutable or blacklisted IPs were not scanned" (§4). ZMap keeps a
//! radix-style structure; at our scale a sorted interval list with binary
//! search is simpler and just as fast.

use iw_wire::ipv4::Cidr;

/// A set of address ranges with O(log n) membership tests.
#[derive(Debug, Clone, Default)]
pub struct CidrSet {
    /// Disjoint, sorted, merged intervals [start, end] inclusive.
    intervals: Vec<(u32, u32)>,
}

impl CidrSet {
    /// Empty set.
    pub fn new() -> CidrSet {
        CidrSet::default()
    }

    /// Build from prefixes (overlaps are merged).
    pub fn from_cidrs(cidrs: &[Cidr]) -> CidrSet {
        let mut intervals: Vec<(u32, u32)> = cidrs.iter().map(|c| (c.first(), c.last())).collect();
        intervals.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(intervals.len());
        for (start, end) in intervals {
            match merged.last_mut() {
                Some((_, last_end)) if start <= last_end.saturating_add(1) => {
                    *last_end = (*last_end).max(end);
                }
                _ => merged.push((start, end)),
            }
        }
        CidrSet { intervals: merged }
    }

    /// Whether `ip` is in the set.
    pub fn contains(&self, ip: u32) -> bool {
        let idx = self.intervals.partition_point(|(s, _)| *s <= ip);
        idx > 0 && self.intervals[idx - 1].1 >= ip
    }

    /// Number of addresses covered.
    pub fn address_count(&self) -> u64 {
        self.intervals
            .iter()
            .map(|(s, e)| u64::from(*e) - u64::from(*s) + 1)
            .sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }
}

/// Scan admission policy: optional whitelist, then blacklist.
#[derive(Debug, Clone, Default)]
pub struct ScanFilter {
    /// When non-empty, only these ranges are scanned.
    pub whitelist: CidrSet,
    /// Never scanned (opt-outs, reserved space).
    pub blacklist: CidrSet,
}

impl ScanFilter {
    /// Whether a target passes the filter.
    pub fn admits(&self, ip: u32) -> bool {
        if !self.whitelist.is_empty() && !self.whitelist.contains(ip) {
            return false;
        }
        !self.blacklist.contains(ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_wire::ipv4::Ipv4Addr;

    fn cidr(a: u8, b: u8, c: u8, d: u8, len: u8) -> Cidr {
        Cidr::new(Ipv4Addr::new(a, b, c, d), len)
    }

    #[test]
    fn membership() {
        let set = CidrSet::from_cidrs(&[cidr(10, 0, 0, 0, 8), cidr(192, 168, 0, 0, 16)]);
        assert!(set.contains(Ipv4Addr::new(10, 1, 2, 3).to_u32()));
        assert!(set.contains(Ipv4Addr::new(192, 168, 255, 255).to_u32()));
        assert!(!set.contains(Ipv4Addr::new(11, 0, 0, 0).to_u32()));
        assert!(!set.contains(Ipv4Addr::new(192, 169, 0, 0).to_u32()));
    }

    #[test]
    fn merging_overlaps() {
        let set = CidrSet::from_cidrs(&[
            cidr(10, 0, 0, 0, 9),
            cidr(10, 0, 0, 0, 8),
            cidr(10, 128, 0, 0, 9), // adjacent
        ]);
        assert_eq!(set.intervals.len(), 1);
        assert_eq!(set.address_count(), 1 << 24);
    }

    #[test]
    fn empty_set_contains_nothing() {
        let set = CidrSet::new();
        assert!(!set.contains(0));
        assert!(!set.contains(u32::MAX));
        assert_eq!(set.address_count(), 0);
    }

    #[test]
    fn filter_semantics() {
        let mut filter = ScanFilter::default();
        assert!(filter.admits(12345), "empty filter admits everything");
        filter.blacklist = CidrSet::from_cidrs(&[cidr(10, 0, 0, 0, 8)]);
        assert!(!filter.admits(Ipv4Addr::new(10, 0, 0, 1).to_u32()));
        assert!(filter.admits(Ipv4Addr::new(11, 0, 0, 1).to_u32()));
        filter.whitelist = CidrSet::from_cidrs(&[cidr(11, 0, 0, 0, 8)]);
        assert!(filter.admits(Ipv4Addr::new(11, 5, 5, 5).to_u32()));
        assert!(!filter.admits(Ipv4Addr::new(12, 0, 0, 1).to_u32()));
        // Blacklist wins inside the whitelist.
        filter.blacklist = CidrSet::from_cidrs(&[cidr(11, 5, 0, 0, 16)]);
        assert!(!filter.admits(Ipv4Addr::new(11, 5, 0, 1).to_u32()));
    }

    #[test]
    fn boundary_addresses() {
        let set = CidrSet::from_cidrs(&[cidr(10, 0, 0, 0, 24)]);
        assert!(set.contains(Ipv4Addr::new(10, 0, 0, 0).to_u32()));
        assert!(set.contains(Ipv4Addr::new(10, 0, 0, 255).to_u32()));
        assert!(!set.contains(Ipv4Addr::new(10, 0, 1, 0).to_u32()));
        assert!(!set.contains(Ipv4Addr::new(9, 255, 255, 255).to_u32()));
    }
}
