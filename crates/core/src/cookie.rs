//! Stateless SYN-ACK validation cookies.
//!
//! ZMap allocates no state when it sends a SYN; instead it derives the
//! initial sequence number from a keyed hash of the flow tuple. When a
//! SYN-ACK comes back, `ack - 1` must equal the cookie — anything else
//! (stale duplicates, spoofed backscatter, misrouted packets) is dropped
//! before the scanner's stateful probe module allocates a connection.

use iw_internet::util::mix;

/// Per-scan secret key material.
#[derive(Debug, Clone, Copy)]
pub struct CookieKey {
    secret: u64,
}

impl CookieKey {
    /// Derive the key from the scan seed.
    pub fn new(seed: u64) -> CookieKey {
        CookieKey {
            secret: mix(&[seed, 0xc00_c1e]),
        }
    }

    /// The ISN to place in a SYN for flow (dst ip, src port, dst port).
    pub fn isn(&self, dst_ip: u32, src_port: u16, dst_port: u16) -> u32 {
        let h = mix(&[
            self.secret,
            u64::from(dst_ip),
            (u64::from(src_port) << 16) | u64::from(dst_port),
        ]);
        h as u32
    }

    /// Validate a SYN-ACK's acknowledgment number for the flow.
    pub fn validate(&self, dst_ip: u32, src_port: u16, dst_port: u16, ack: u32) -> bool {
        ack == self.isn(dst_ip, src_port, dst_port).wrapping_add(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let key = CookieKey::new(99);
        let isn = key.isn(0x0a000001, 40000, 80);
        assert!(key.validate(0x0a000001, 40000, 80, isn.wrapping_add(1)));
        assert!(!key.validate(0x0a000001, 40000, 80, isn));
        assert!(!key.validate(0x0a000001, 40000, 80, isn.wrapping_add(2)));
    }

    #[test]
    fn flow_sensitivity() {
        let key = CookieKey::new(99);
        let base = key.isn(1, 40000, 80);
        assert_ne!(base, key.isn(2, 40000, 80), "ip matters");
        assert_ne!(base, key.isn(1, 40001, 80), "src port matters");
        assert_ne!(base, key.isn(1, 40000, 443), "dst port matters");
    }

    #[test]
    fn seed_sensitivity() {
        assert_ne!(
            CookieKey::new(1).isn(1, 2, 3),
            CookieKey::new(2).isn(1, 2, 3)
        );
    }

    #[test]
    fn isns_look_uniform() {
        let key = CookieKey::new(7);
        let mut buckets = [0u32; 16];
        for ip in 0..16_000u32 {
            buckets[(key.isn(ip, 40000, 80) >> 28) as usize] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "skewed bucket: {b}");
        }
    }
}
