//! Stateless SYN-ACK validation cookies.
//!
//! ZMap allocates no state when it sends a SYN; instead it derives the
//! initial sequence number from a keyed hash of the flow tuple. When a
//! SYN-ACK comes back, `ack - 1` must equal the cookie — anything else
//! (stale duplicates, spoofed backscatter, misrouted packets) is dropped
//! before the scanner's stateful probe module allocates a connection.

use iw_internet::util::mix;

/// Base source port for stateless discovery SYNs. The retry attempt is
/// encoded as an offset from this base (ZBanner-style: the flow tuple
/// *is* the per-target state), so a SYN-ACK's destination port tells us
/// which transmission elicited it without any `pending` map lookup.
///
/// The discovery block `[39000, 39000 + DISCOVERY_MAX_ATTEMPTS)` is
/// disjoint from the stateful session block (base 40000 upward), so a
/// segment's destination port alone routes it to the right state
/// machine.
pub const DISCOVERY_BASE_SPORT: u16 = 39_000;

/// Width of the discovery source-port block: the attempt counter must
/// stay below this so decode is unambiguous.
pub const DISCOVERY_MAX_ATTEMPTS: u32 = 16;

/// The discovery source port encoding `attempt` (0-based transmission
/// index, capped at [`DISCOVERY_MAX_ATTEMPTS`]`- 1`).
pub fn discovery_sport(attempt: u32) -> u16 {
    debug_assert!(attempt < DISCOVERY_MAX_ATTEMPTS);
    DISCOVERY_BASE_SPORT + (attempt.min(DISCOVERY_MAX_ATTEMPTS - 1) as u16)
}

/// Decode a segment's destination port back into a discovery attempt,
/// or `None` if the port lies outside the discovery block.
pub fn discovery_attempt(dst_port: u16) -> Option<u32> {
    let offset = dst_port.checked_sub(DISCOVERY_BASE_SPORT)?;
    if u32::from(offset) < DISCOVERY_MAX_ATTEMPTS {
        Some(u32::from(offset))
    } else {
        None
    }
}

/// Taxonomy of a SYN-ACK's acknowledgment number against the cookie.
///
/// Distinguishing *how* validation failed matters operationally: a raw
/// ISN echo (`ack == isn`, off by exactly the missing `+1`) fingerprints
/// broken middleboxes and simplistic responders, while an arbitrary
/// mismatch is stale duplicates or spoofed backscatter. Both are dropped,
/// but they increment different `scan.discovery.*` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynAckCheck {
    /// `ack == isn + 1`: the genuine response to our SYN.
    Valid,
    /// `ack == isn` exactly: the peer echoed our ISN without the +1 —
    /// a distinct failure signature worth counting separately.
    RawIsnEcho,
    /// Anything else: spoofed, stale, or misrouted.
    Mismatch,
}

/// Per-scan secret key material.
#[derive(Debug, Clone, Copy)]
pub struct CookieKey {
    secret: u64,
}

impl CookieKey {
    /// Derive the key from the scan seed.
    pub fn new(seed: u64) -> CookieKey {
        CookieKey {
            secret: mix(&[seed, 0xc00_c1e]),
        }
    }

    /// The ISN to place in a SYN for flow (dst ip, src port, dst port).
    pub fn isn(&self, dst_ip: u32, src_port: u16, dst_port: u16) -> u32 {
        let h = mix(&[
            self.secret,
            u64::from(dst_ip),
            (u64::from(src_port) << 16) | u64::from(dst_port),
        ]);
        h as u32
    }

    /// Validate a SYN-ACK's acknowledgment number for the flow.
    pub fn validate(&self, dst_ip: u32, src_port: u16, dst_port: u16, ack: u32) -> bool {
        ack == self.isn(dst_ip, src_port, dst_port).wrapping_add(1)
    }

    /// Classify a SYN-ACK's acknowledgment number for the flow (see
    /// [`SynAckCheck`] for the taxonomy).
    pub fn classify_synack(
        &self,
        dst_ip: u32,
        src_port: u16,
        dst_port: u16,
        ack: u32,
    ) -> SynAckCheck {
        let isn = self.isn(dst_ip, src_port, dst_port);
        if ack == isn.wrapping_add(1) {
            SynAckCheck::Valid
        } else if ack == isn {
            SynAckCheck::RawIsnEcho
        } else {
            SynAckCheck::Mismatch
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let key = CookieKey::new(99);
        let isn = key.isn(0x0a000001, 40000, 80);
        assert!(key.validate(0x0a000001, 40000, 80, isn.wrapping_add(1)));
        assert!(!key.validate(0x0a000001, 40000, 80, isn));
        assert!(!key.validate(0x0a000001, 40000, 80, isn.wrapping_add(2)));
    }

    #[test]
    fn flow_sensitivity() {
        let key = CookieKey::new(99);
        let base = key.isn(1, 40000, 80);
        assert_ne!(base, key.isn(2, 40000, 80), "ip matters");
        assert_ne!(base, key.isn(1, 40001, 80), "src port matters");
        assert_ne!(base, key.isn(1, 40000, 443), "dst port matters");
    }

    #[test]
    fn seed_sensitivity() {
        assert_ne!(
            CookieKey::new(1).isn(1, 2, 3),
            CookieKey::new(2).isn(1, 2, 3)
        );
    }

    #[test]
    fn discovery_sport_round_trips_every_attempt() {
        for attempt in 0..DISCOVERY_MAX_ATTEMPTS {
            let sport = discovery_sport(attempt);
            assert_eq!(discovery_attempt(sport), Some(attempt));
        }
    }

    #[test]
    fn discovery_block_is_disjoint_from_session_block() {
        // Stateful sessions allocate source ports from 40000 upward;
        // ports outside the discovery block must decode to None.
        assert_eq!(discovery_attempt(40_000), None);
        assert_eq!(discovery_attempt(40_001), None);
        assert_eq!(
            discovery_attempt(DISCOVERY_BASE_SPORT + DISCOVERY_MAX_ATTEMPTS as u16),
            None
        );
        assert_eq!(discovery_attempt(DISCOVERY_BASE_SPORT - 1), None);
        assert_eq!(discovery_attempt(0), None);
    }

    #[test]
    fn synack_taxonomy() {
        let key = CookieKey::new(99);
        let isn = key.isn(0x0a000001, 39_000, 80);
        assert_eq!(
            key.classify_synack(0x0a000001, 39_000, 80, isn.wrapping_add(1)),
            SynAckCheck::Valid
        );
        assert_eq!(
            key.classify_synack(0x0a000001, 39_000, 80, isn),
            SynAckCheck::RawIsnEcho
        );
        assert_eq!(
            key.classify_synack(0x0a000001, 39_000, 80, isn.wrapping_add(2)),
            SynAckCheck::Mismatch
        );
        assert_eq!(
            key.classify_synack(0x0a000001, 39_000, 80, 0xdead_beef),
            SynAckCheck::Mismatch
        );
    }

    #[test]
    fn isns_look_uniform() {
        let key = CookieKey::new(7);
        let mut buckets = [0u32; 16];
        for ip in 0..16_000u32 {
            buckets[(key.isn(ip, 40000, 80) >> 28) as usize] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "skewed bucket: {b}");
        }
    }
}
