//! Fixture: the declared rx side — these sites are clean.

use crate::chan::Fx;

pub fn drain_all(fx: &Fx) -> u32 {
    let mut n = 0;
    while fx.recv().is_some() {
        n += 1;
    }
    n
}
