//! Fixture: concurrency rule pack — shared-state audit, lock order,
//! hot-path purity (incl. a two-hop transitive callee).
#![forbid(unsafe_code)]

pub mod chan;
pub mod pump;

use std::cell::RefCell;
use std::sync::Mutex;

pub struct Engine {
    pub state: Mutex<u32>,
    pub journal: Mutex<u32>,
    pub cache: RefCell<u32>,
}

impl Engine {
    pub fn step(&self) -> u32 {
        helper(self)
    }

    pub fn inverted(&self) -> u32 {
        let j = self.journal.lock().unwrap();
        let s = self.state.lock().unwrap();
        *j + *s
    }
}

fn helper(e: &Engine) -> u32 {
    sink(e)
}

fn sink(_e: &Engine) -> u32 {
    let label = format!("boom");
    label.len() as u32
}
