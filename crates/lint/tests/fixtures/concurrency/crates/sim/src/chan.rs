//! Fixture: channel-discipline call sites, declared and not.

pub struct Fx;

impl Fx {
    pub fn send(&self, _v: u32) {}
    pub fn recv(&self) -> Option<u32> {
        None
    }
}

pub fn pump_one(fx: &Fx) {
    fx.send(1);
}

pub fn drain_here(fx: &Fx) -> Option<u32> {
    fx.recv()
}

pub fn rogue(bad: &Fx) {
    bad.send(2);
}
