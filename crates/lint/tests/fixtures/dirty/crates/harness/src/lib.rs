//! Fixture: a crate outside the wall-clock scope and panic budget.
#![forbid(unsafe_code)]

pub fn now_is_fine() {
    let _ = std::time::SystemTime::now();
    let _: u32 = Option::<u32>::Some(1).unwrap();
}
