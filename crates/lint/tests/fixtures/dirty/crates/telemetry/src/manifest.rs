//! Fixture manifest at the project path so the CI dirty run exercises
//! the metrics-manifest rule end to end: the `scan.discovery.*` block
//! carries a duplicate name, a stray family and orphaned entries.

pub const DISCOVERY_SYNS: MetricDef = MetricDef::counter("scan.discovery.syns", Scope::Scan);
pub const DISCOVERY_SYNS_DUP: MetricDef = MetricDef::counter("scan.discovery.syns", Scope::Scan);
pub const DISCOVERY_STATE_PEAK: MetricDef = MetricDef::gauge("scan.discovery.state_peak", Scope::Shard);
pub const DISCOVERY_STRAY: MetricDef = MetricDef::counter("discovery.stray", Scope::Scan);
