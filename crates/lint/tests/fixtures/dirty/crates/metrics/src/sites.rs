//! Fixture metric call sites: one conformant, five violations.

pub fn register(r: &mut Registry) {
    r.counter("fix.good", Scope::Scan);
    r.counter("fix.unknown", Scope::Scan);
    r.gauge("fix.good", Scope::Scan);
    r.counter("fix.good", Scope::Shard);
    r.register_counter(&manifest::WRONG_KIND);
    r.register_counter(&manifest::MISSING);
    r.register_counter(&manifest::DUP);
    r.register_counter(&manifest::BADNAME);
    r.register_counter(&manifest::STRAY);
    let _ = manifest::GROUP.len();
}
