//! Fixture manifest: duplicate, bad name, orphan, stray family.

pub const GOOD: MetricDef = MetricDef::counter("fix.good", Scope::Scan);
pub const WRONG_KIND: MetricDef = MetricDef::gauge("fix.wrong_kind", Scope::Shard);
pub const VIA_GROUP: MetricDef = MetricDef::counter("fix.via_group", Scope::Scan);
pub const NEVER: MetricDef = MetricDef::counter("fix.never", Scope::Scan);
pub const DUP: MetricDef = MetricDef::counter("fix.good", Scope::Scan);
pub const BADNAME: MetricDef = MetricDef::counter("Fix.Bad", Scope::Scan);
pub const STRAY: MetricDef = MetricDef::counter("other.stray", Scope::Scan);
pub const GROUP: [&MetricDef; 2] = [&GOOD, &VIA_GROUP];
