//! Fixture: a machine fully in sync with its table.

pub enum Lamp {
    Off,
    On,
}

pub struct L {
    state: Lamp,
}

impl L {
    pub fn new() -> L {
        L { state: Lamp::Off }
    }

    pub fn toggle(&mut self) {
        self.state = match self.state {
            Lamp::Off => Lamp::On,
            Lamp::On => Lamp::Off,
        };
    }
}
