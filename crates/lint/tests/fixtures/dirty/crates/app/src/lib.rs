//! Fixture: one violation per pattern rule (and no unsafe forbid).

use std::time::SystemTime;

pub fn wall() -> SystemTime {
    SystemTime::now()
}

pub fn unordered() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}

pub fn panics() -> u32 {
    let v: Vec<u32> = Vec::new();
    *v.first().unwrap()
}

pub fn entropy() -> u32 {
    let _ = rand::thread_rng();
    7
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_region_is_exempt() {
        let _set = std::collections::HashSet::<u32>::new();
        let _ = Option::<u32>::None.unwrap();
    }
}
