//! Fixture: a state machine out of sync with its transition table.

pub enum Gate {
    Open,
    Closing,
    Shut,
    Limbo,
}

pub struct G {
    state: Gate,
}

impl G {
    pub fn new() -> G {
        G { state: Gate::Open }
    }

    pub fn step(&mut self) {
        self.state = match self.state {
            Gate::Open => Gate::Closing,
            Gate::Closing => Gate::Shut,
            Gate::Shut => Gate::Shut,
            Gate::Limbo => Gate::Open,
        };
    }
}
