//! Fixture: the token engine must see through raw strings and nested
//! block comments (regressions for the old line stripper).

pub fn raw_strings() -> usize {
    let doc = r#"say ".unwrap()" and SystemTime::now() in "text""#;
    let re = r"thread_rng\(\) stays quiet";
    doc.len() + re.len()
}

/* outer /* nested .unwrap() SystemTime */ still a comment */
pub fn after_nesting() -> u32 {
    let v = vec![1u32];
    *v.first().unwrap()
}
