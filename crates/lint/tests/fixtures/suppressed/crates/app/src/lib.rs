//! Fixture: every panic site is suppressed one way or another.
#![forbid(unsafe_code)]

pub fn a() -> u32 {
    // iw-lint: allow(panic-budget): fixture justification
    Option::<u32>::Some(1).unwrap()
}

pub fn b() -> u32 {
    Option::<u32>::Some(2).unwrap() // iw-lint: allow(panic-budget)
}

pub fn c() -> u32 {
    Option::<u32>::Some(3).unwrap()
}
