//! Fixture tests: every rule fires with the right span, suppressions
//! work, and the real workspace is clean.

use iw_lint::concurrency::{ChannelEndpoint, ConcurrencySpec, HotPathRoot, SharedStateSpec};
use iw_lint::machines::{MachineSpec, Transition};
use iw_lint::{check_files, collect_workspace, load_allowlist, AllowEntry, Diagnostic, LintConfig};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str, config: &LintConfig) -> Vec<Diagnostic> {
    let files = collect_workspace(&fixture_root(name)).unwrap();
    check_files(&files, config)
}

const GATE_TRANSITIONS: [Transition; 2] = [
    Transition {
        from: "Open",
        to: "Closing",
        force: false,
    },
    Transition {
        from: "Closing",
        to: "Shut",
        force: false,
    },
];

fn gate_spec() -> MachineSpec {
    MachineSpec {
        name: "Gate",
        file: "crates/app/src/machine.rs",
        states: &["Open", "Closing", "Shut", "Stuck"],
        initial: "Open",
        terminal: &["Shut"],
        transitions: &GATE_TRANSITIONS,
    }
}

const LAMP_TRANSITIONS: [Transition; 2] = [
    Transition {
        from: "Off",
        to: "On",
        force: false,
    },
    Transition {
        from: "Off",
        to: "On",
        force: true,
    },
];

fn lamp_spec() -> MachineSpec {
    MachineSpec {
        name: "Lamp",
        file: "crates/app/src/goodmachine.rs",
        states: &["Off", "On"],
        initial: "Off",
        terminal: &["On"],
        transitions: &LAMP_TRANSITIONS,
    }
}

fn dirty_config() -> LintConfig {
    LintConfig {
        wall_clock_crates: vec!["app".into()],
        unordered_paths: vec!["crates/app/src/".into()],
        panic_exempt_crates: vec!["harness".into()],
        allowlist: Vec::new(),
        manifest_path: "crates/metrics/src/manifest.rs".into(),
        metric_families: vec!["fix.".into()],
        machines: vec![gate_spec(), lamp_spec()],
        concurrency: ConcurrencySpec::default(),
    }
}

#[track_caller]
fn assert_fires(diags: &[Diagnostic], rule: &str, path: &str, line: usize, needle: &str) {
    assert!(
        diags.iter().any(|d| d.rule == rule
            && d.path == path
            && d.line == line
            && d.message.contains(needle)),
        "expected {rule} at {path}:{line} containing {needle:?}; got:\n{}",
        diags
            .iter()
            .map(|d| format!("  {}[{}:{}] {}", d.rule, d.path, d.line, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn pattern_rules_fire_with_the_right_spans() {
    let diags = lint_fixture("dirty", &dirty_config());
    let lib = "crates/app/src/lib.rs";
    assert_fires(&diags, "no-wall-clock", lib, 3, "SystemTime");
    assert_fires(&diags, "no-wall-clock", lib, 5, "SystemTime");
    assert_fires(&diags, "no-wall-clock", lib, 6, "SystemTime");
    assert_fires(&diags, "no-unordered-iteration", lib, 10, "HashMap");
    assert_fires(&diags, "panic-budget", lib, 16, ".unwrap()");
    assert_fires(&diags, "rng-hygiene", lib, 20, "thread_rng");
    assert_fires(
        &diags,
        "unsafe-forbidden",
        lib,
        0,
        "does not forbid unsafe code",
    );
    // The token engine fires per occurrence, not per line: line 10
    // mentions HashMap twice (type and constructor).
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.rule == "no-unordered-iteration" && d.line == 10)
            .count(),
        2
    );
}

#[test]
fn raw_strings_and_nested_comments_neither_hide_nor_fake_violations() {
    // Regression for the old line stripper: a raw string with an odd
    // embedded quote (`r#"…"…"#`) desynced it, and `/* /* */ */` ended
    // the comment early — producing false negatives on everything after.
    let diags = lint_fixture("dirty", &dirty_config());
    let hidden = "crates/app/src/hidden.rs";
    let in_hidden: Vec<&Diagnostic> = diags.iter().filter(|d| d.path == hidden).collect();
    // The SystemTime/unwrap/thread_rng text inside raw strings (lines
    // 5-6) and inside the nested block comment (line 10) must not fire…
    assert!(
        in_hidden.iter().all(|d| d.line == 13),
        "string/comment contents leaked into diagnostics:\n{}",
        in_hidden
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // …while the real unwrap after both constructs is still caught.
    assert_fires(&diags, "panic-budget", hidden, 13, ".unwrap()");
    assert_eq!(in_hidden.len(), 1);
}

#[test]
fn out_of_scope_crate_is_untouched() {
    let diags = lint_fixture("dirty", &dirty_config());
    assert!(
        diags.iter().all(|d| !d.path.contains("harness")),
        "harness is exempt from wall-clock and panic-budget"
    );
}

#[test]
fn test_regions_are_exempt() {
    let diags = lint_fixture("dirty", &dirty_config());
    // The trailing `mod tests` in the fixture uses HashSet and unwrap;
    // nothing may fire past the #[cfg(test)] line (line 24).
    assert!(
        diags
            .iter()
            .all(|d| d.path != "crates/app/src/lib.rs" || d.line < 24),
        "test region produced diagnostics"
    );
}

#[test]
fn state_machine_rule_finds_every_drift() {
    let diags = lint_fixture("dirty", &dirty_config());
    let m = "crates/app/src/machine.rs";
    assert_fires(&diags, "state-machine", m, 0, "`Stuck` is unreachable");
    assert_fires(
        &diags,
        "state-machine",
        m,
        0,
        "`Open` has no forced transition",
    );
    assert_fires(
        &diags,
        "state-machine",
        m,
        0,
        "`Closing` has no forced transition",
    );
    assert_fires(
        &diags,
        "state-machine",
        m,
        0,
        "`Stuck` has no forced transition",
    );
    assert_fires(
        &diags,
        "state-machine",
        m,
        3,
        "`Limbo` is missing from the transition table",
    );
    assert_fires(&diags, "state-machine", m, 3, "`Stuck` is not a variant");
    assert_fires(&diags, "state-machine", m, 3, "`Stuck` is never produced");
    assert_fires(&diags, "state-machine", m, 3, "`Stuck` is never handled");
    // The in-sync Lamp machine contributes nothing.
    assert!(
        diags
            .iter()
            .all(|d| d.path != "crates/app/src/goodmachine.rs"),
        "in-sync machine must be clean"
    );
}

#[test]
fn metrics_manifest_rule_checks_declarations_and_call_sites() {
    let diags = lint_fixture("dirty", &dirty_config());
    let man = "crates/metrics/src/manifest.rs";
    let sites = "crates/metrics/src/sites.rs";
    assert_fires(
        &diags,
        "metrics-manifest",
        man,
        7,
        "already declared as `GOOD`",
    );
    assert_fires(&diags, "metrics-manifest", man, 8, "not lowercase dotted");
    assert_fires(
        &diags,
        "metrics-manifest",
        man,
        6,
        "declared but never registered",
    );
    assert_fires(
        &diags,
        "metrics-manifest",
        sites,
        5,
        "not declared in the manifest",
    );
    assert_fires(&diags, "metrics-manifest", sites, 6, "used here as a gauge");
    assert_fires(
        &diags,
        "metrics-manifest",
        sites,
        7,
        "registered here as Scope::Shard",
    );
    assert_fires(
        &diags,
        "metrics-manifest",
        sites,
        8,
        "registered with register_counter",
    );
    assert_fires(
        &diags,
        "metrics-manifest",
        sites,
        9,
        "not a declared metric",
    );
    // VIA_GROUP is referenced only through the GROUP array — the array
    // use must mark it as registered (no unused diag at line 5).
    assert!(
        diags.iter().all(|d| !(d.path == man && d.line == 5)),
        "array-propagated usage must count"
    );
    // STRAY is registered with the right kind but its name sits outside
    // the configured `fix.` family; BADNAME is malformed and must not
    // be reported a second time by the family check.
    assert_fires(
        &diags,
        "metrics-manifest",
        man,
        9,
        "outside the declared families (fix.)",
    );
    assert!(
        diags
            .iter()
            .all(|d| !(d.line == 8 && d.message.contains("families"))),
        "malformed names are reported once, not per check"
    );
}

#[test]
fn dirty_fixture_has_no_false_positives() {
    let diags = lint_fixture("dirty", &dirty_config());
    // 8 in lib.rs (two HashMap hits on line 10) + 1 in hidden.rs
    // + 8 state-machine + 4 manifest + 5 call sites.
    assert_eq!(
        diags.len(),
        26,
        "unexpected diagnostics:\n{}",
        diags
            .iter()
            .map(|d| format!("  {}[{}:{}] {}", d.rule, d.path, d.line, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

// ---------------------------------------------------------------------
// Concurrency rule pack
// ---------------------------------------------------------------------

fn concurrency_config() -> LintConfig {
    LintConfig {
        wall_clock_crates: Vec::new(),
        unordered_paths: Vec::new(),
        panic_exempt_crates: vec!["sim".into()],
        allowlist: Vec::new(),
        // Points at an existing file with no metric declarations, so
        // the metrics rule stays silent.
        manifest_path: "crates/sim/src/lib.rs".into(),
        metric_families: Vec::new(),
        machines: Vec::new(),
        concurrency: ConcurrencySpec {
            state_crates: vec!["sim"],
            channel_crates: vec!["sim"],
            shared_state: vec![
                SharedStateSpec {
                    file: "crates/sim/src/lib.rs",
                    name: "state",
                    kind: "Mutex",
                    role: "fixture",
                    rank: Some(10),
                },
                SharedStateSpec {
                    file: "crates/sim/src/lib.rs",
                    name: "journal",
                    kind: "Mutex",
                    role: "fixture",
                    rank: Some(20),
                },
                SharedStateSpec {
                    file: "crates/sim/src/lib.rs",
                    name: "ghost",
                    kind: "Mutex",
                    role: "stale on purpose",
                    rank: Some(30),
                },
            ],
            hot_path_roots: vec![
                HotPathRoot {
                    file: "crates/sim/src/lib.rs",
                    func: "Engine::step",
                    why: "fixture",
                },
                HotPathRoot {
                    file: "crates/sim/src/lib.rs",
                    func: "Engine::gone",
                    why: "stale on purpose",
                },
            ],
            cold_boundaries: Vec::new(),
            channels: vec![
                ChannelEndpoint {
                    name: "fx",
                    role: "fixture",
                    tx_files: &["crates/sim/src/chan.rs"],
                    rx_files: &["crates/sim/src/pump.rs"],
                },
                ChannelEndpoint {
                    name: "idle",
                    role: "stale on purpose",
                    tx_files: &["crates/sim/src/chan.rs"],
                    rx_files: &[],
                },
            ],
        },
    }
}

#[test]
fn shared_state_audit_catches_undeclared_stale_and_lock_order() {
    let diags = lint_fixture("concurrency", &concurrency_config());
    let lib = "crates/sim/src/lib.rs";
    // The undeclared RefCell field.
    assert_fires(
        &diags,
        "shared-state-audit",
        lib,
        14,
        "`cache` (RefCell) is not in the concurrency manifest",
    );
    // The manifest entry whose site no longer exists.
    assert_fires(
        &diags,
        "shared-state-audit",
        lib,
        0,
        "stale concurrency manifest entry: `ghost`",
    );
    // journal (rank 20) is held when state (rank 10) is acquired.
    assert_fires(
        &diags,
        "shared-state-audit",
        lib,
        24,
        "lock-order violation in `Engine::inverted`: `state` (rank 10) acquired after `journal` (rank 20)",
    );
    // The declared, correctly used Mutex fields are clean.
    assert!(
        diags
            .iter()
            .all(|d| !(d.rule == "shared-state-audit" && (d.line == 12 || d.line == 13))),
        "declared state must not fire"
    );
}

#[test]
fn hot_path_purity_reaches_transitive_callees() {
    let diags = lint_fixture("concurrency", &concurrency_config());
    let lib = "crates/sim/src/lib.rs";
    // `format!` lives in `sink`, two call-graph hops below the root:
    // Engine::step -> helper -> sink. The diagnostic names the chain.
    assert_fires(
        &diags,
        "hot-path-purity",
        lib,
        34,
        "`format!(` in `sink` (reached via Engine::step -> helper -> sink)",
    );
    // A root that no longer resolves is reported, not silently skipped.
    assert_fires(
        &diags,
        "hot-path-purity",
        lib,
        0,
        "stale hot-path root: `Engine::gone`",
    );
    // Engine::inverted locks, but is not reachable from any root.
    assert!(
        diags
            .iter()
            .all(|d| !(d.rule == "hot-path-purity" && d.line == 24)),
        "unreachable fns are not hot-path audited"
    );
}

#[test]
fn channel_discipline_checks_endpoints_and_sides() {
    let diags = lint_fixture("concurrency", &concurrency_config());
    let chan = "crates/sim/src/chan.rs";
    // recv from a file only declared as a tx site.
    assert_fires(
        &diags,
        "channel-discipline",
        chan,
        17,
        "`fx.recv()` outside the declared rx files",
    );
    // A send on a receiver the manifest does not know.
    assert_fires(
        &diags,
        "channel-discipline",
        chan,
        21,
        "undeclared endpoint `bad`",
    );
    // A declared endpoint with no call sites at all.
    assert_fires(
        &diags,
        "channel-discipline",
        chan,
        0,
        "stale channel endpoint: `idle`",
    );
    // The declared tx site and the declared rx file are clean.
    assert!(
        diags.iter().all(|d| d.rule != "channel-discipline"
            || !(d.line == 13 || d.path == "crates/sim/src/pump.rs")),
        "declared sites must not fire"
    );
}

#[test]
fn concurrency_fixture_has_no_false_positives() {
    let diags = lint_fixture("concurrency", &concurrency_config());
    // 3 shared-state (undeclared + stale + lock-order)
    // + 2 hot-path (transitive format! + stale root)
    // + 3 channel (wrong side + undeclared + stale endpoint).
    assert_eq!(
        diags.len(),
        8,
        "unexpected diagnostics:\n{}",
        diags
            .iter()
            .map(|d| format!("  {}[{}:{}] {}", d.rule, d.path, d.line, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn suppressed_config(with_allowlist: bool) -> LintConfig {
    LintConfig {
        wall_clock_crates: Vec::new(),
        unordered_paths: Vec::new(),
        panic_exempt_crates: Vec::new(),
        allowlist: if with_allowlist {
            vec![AllowEntry {
                rule: "panic-budget".into(),
                path: "crates/app/src/lib.rs".into(),
                needle: "Some(3)".into(),
                line: 1,
            }]
        } else {
            Vec::new()
        },
        manifest_path: "crates/app/src/lib.rs".into(),
        metric_families: Vec::new(),
        machines: Vec::new(),
        concurrency: ConcurrencySpec::default(),
    }
}

#[test]
fn inline_and_allowlist_suppressions_work() {
    // Inline allows (same line and line above) plus the allowlist
    // entry silence all three unwraps.
    let diags = lint_fixture("suppressed", &suppressed_config(true));
    assert!(
        diags.is_empty(),
        "suppressions failed:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Without the allowlist entry, exactly the unsuppressed site fires.
    let diags = lint_fixture("suppressed", &suppressed_config(false));
    assert_eq!(diags.len(), 1);
    assert_fires(
        &diags,
        "panic-budget",
        "crates/app/src/lib.rs",
        14,
        ".unwrap()",
    );
}

#[test]
fn missing_manifest_is_reported() {
    let mut config = suppressed_config(true);
    config.manifest_path = "crates/metrics/src/manifest.rs".into();
    let diags = lint_fixture("suppressed", &config);
    assert_fires(
        &diags,
        "metrics-manifest",
        "crates/metrics/src/manifest.rs",
        0,
        "manifest not found",
    );
}

#[test]
fn observability_sources_are_in_panic_budget_scope() {
    // The tracing/flight-recorder layer must be audited, not exempt:
    // each new telemetry source is collected, lives in a lint-scoped
    // crate, and passes the panic budget on its own.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let files = collect_workspace(&root).unwrap();
    let config = LintConfig::project();
    for path in [
        "crates/telemetry/src/trace.rs",
        "crates/telemetry/src/recorder.rs",
        "crates/telemetry/src/sink.rs",
        "crates/telemetry/src/harvest.rs",
        "crates/core/src/scanner.rs",
    ] {
        let file = files
            .iter()
            .find(|f| f.rel_path == path)
            .unwrap_or_else(|| panic!("{path} not collected"));
        assert!(
            !config.panic_exempt_crates.iter().any(|c| c == file.krate()),
            "{path} must not be panic-budget exempt"
        );
        let mut diags = Vec::new();
        iw_lint::rules::panic_budget(std::slice::from_ref(file), &config, &mut diags);
        assert!(
            diags.is_empty(),
            "{path} violates the panic budget:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn project_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let mut config = LintConfig::project();
    config.allowlist = load_allowlist(&root).unwrap();
    let diags = iw_lint::run(&root, &config).unwrap();
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The clean run is meaningful only if the structural pass actually
    // resolved the declared hot paths: every root maps to a real fn and
    // the call graph walks somewhere from them.
    let files = collect_workspace(&root).unwrap();
    let analysis = iw_lint::analyze(&files);
    let mut roots = Vec::new();
    for r in &config.concurrency.hot_path_roots {
        let idx = analysis
            .fns
            .iter()
            .position(|f| f.qname() == r.func && files[f.file].rel_path == r.file)
            .unwrap_or_else(|| panic!("hot-path root {} not found", r.func));
        roots.push(idx);
    }
    let reached = analysis.graph.reach(&roots, &|_| false);
    assert!(
        reached.len() > roots.len(),
        "hot-path roots resolve but reach nothing — call graph is broken"
    );
}

#[test]
fn ci_fixture_count_matches_workflow() {
    // CI runs the release binary on the dirty fixture tree with the
    // project config and asserts the exact violation count; this test
    // keeps the number in .github/workflows/ci.yml honest.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let files = collect_workspace(&fixture_root("dirty")).unwrap();
    let config = LintConfig::project(); // binary default: no allowlist under the fixture root
    let count = check_files(&files, &config).len();
    let workflow = std::fs::read_to_string(root.join(".github/workflows/ci.yml")).unwrap();
    let needle = format!("iw-lint: {count} violation(s)");
    assert!(
        workflow.contains(&needle),
        "ci.yml must grep for {needle:?} on the dirty fixture (count drifted?)"
    );
}
