//! Fixture tests: every rule fires with the right span, suppressions
//! work, and the real workspace is clean.

use iw_lint::machines::{MachineSpec, Transition};
use iw_lint::{check_files, collect_workspace, load_allowlist, AllowEntry, Diagnostic, LintConfig};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint_fixture(name: &str, config: &LintConfig) -> Vec<Diagnostic> {
    let files = collect_workspace(&fixture_root(name)).unwrap();
    check_files(&files, config)
}

const GATE_TRANSITIONS: [Transition; 2] = [
    Transition {
        from: "Open",
        to: "Closing",
        force: false,
    },
    Transition {
        from: "Closing",
        to: "Shut",
        force: false,
    },
];

fn gate_spec() -> MachineSpec {
    MachineSpec {
        name: "Gate",
        file: "crates/app/src/machine.rs",
        states: &["Open", "Closing", "Shut", "Stuck"],
        initial: "Open",
        terminal: &["Shut"],
        transitions: &GATE_TRANSITIONS,
    }
}

const LAMP_TRANSITIONS: [Transition; 2] = [
    Transition {
        from: "Off",
        to: "On",
        force: false,
    },
    Transition {
        from: "Off",
        to: "On",
        force: true,
    },
];

fn lamp_spec() -> MachineSpec {
    MachineSpec {
        name: "Lamp",
        file: "crates/app/src/goodmachine.rs",
        states: &["Off", "On"],
        initial: "Off",
        terminal: &["On"],
        transitions: &LAMP_TRANSITIONS,
    }
}

fn dirty_config() -> LintConfig {
    LintConfig {
        wall_clock_crates: vec!["app".into()],
        unordered_paths: vec!["crates/app/src/".into()],
        panic_exempt_crates: vec!["harness".into()],
        allowlist: Vec::new(),
        manifest_path: "crates/metrics/src/manifest.rs".into(),
        metric_families: vec!["fix.".into()],
        machines: vec![gate_spec(), lamp_spec()],
    }
}

#[track_caller]
fn assert_fires(diags: &[Diagnostic], rule: &str, path: &str, line: usize, needle: &str) {
    assert!(
        diags.iter().any(|d| d.rule == rule
            && d.path == path
            && d.line == line
            && d.message.contains(needle)),
        "expected {rule} at {path}:{line} containing {needle:?}; got:\n{}",
        diags
            .iter()
            .map(|d| format!("  {}[{}:{}] {}", d.rule, d.path, d.line, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn pattern_rules_fire_with_the_right_spans() {
    let diags = lint_fixture("dirty", &dirty_config());
    let lib = "crates/app/src/lib.rs";
    assert_fires(&diags, "no-wall-clock", lib, 3, "SystemTime");
    assert_fires(&diags, "no-wall-clock", lib, 5, "SystemTime");
    assert_fires(&diags, "no-wall-clock", lib, 6, "SystemTime");
    assert_fires(&diags, "no-unordered-iteration", lib, 10, "HashMap");
    assert_fires(&diags, "panic-budget", lib, 16, ".unwrap()");
    assert_fires(&diags, "rng-hygiene", lib, 20, "thread_rng");
    assert_fires(
        &diags,
        "unsafe-forbidden",
        lib,
        0,
        "does not forbid unsafe code",
    );
}

#[test]
fn out_of_scope_crate_is_untouched() {
    let diags = lint_fixture("dirty", &dirty_config());
    assert!(
        diags.iter().all(|d| !d.path.contains("harness")),
        "harness is exempt from wall-clock and panic-budget"
    );
}

#[test]
fn test_regions_are_exempt() {
    let diags = lint_fixture("dirty", &dirty_config());
    // The trailing `mod tests` in the fixture uses HashSet and unwrap;
    // nothing may fire past the #[cfg(test)] line (line 24).
    assert!(
        diags
            .iter()
            .all(|d| d.path != "crates/app/src/lib.rs" || d.line < 24),
        "test region produced diagnostics"
    );
}

#[test]
fn state_machine_rule_finds_every_drift() {
    let diags = lint_fixture("dirty", &dirty_config());
    let m = "crates/app/src/machine.rs";
    assert_fires(&diags, "state-machine", m, 0, "`Stuck` is unreachable");
    assert_fires(
        &diags,
        "state-machine",
        m,
        0,
        "`Open` has no forced transition",
    );
    assert_fires(
        &diags,
        "state-machine",
        m,
        0,
        "`Closing` has no forced transition",
    );
    assert_fires(
        &diags,
        "state-machine",
        m,
        0,
        "`Stuck` has no forced transition",
    );
    assert_fires(
        &diags,
        "state-machine",
        m,
        3,
        "`Limbo` is missing from the transition table",
    );
    assert_fires(&diags, "state-machine", m, 3, "`Stuck` is not a variant");
    assert_fires(&diags, "state-machine", m, 3, "`Stuck` is never produced");
    assert_fires(&diags, "state-machine", m, 3, "`Stuck` is never handled");
    // The in-sync Lamp machine contributes nothing.
    assert!(
        diags
            .iter()
            .all(|d| d.path != "crates/app/src/goodmachine.rs"),
        "in-sync machine must be clean"
    );
}

#[test]
fn metrics_manifest_rule_checks_declarations_and_call_sites() {
    let diags = lint_fixture("dirty", &dirty_config());
    let man = "crates/metrics/src/manifest.rs";
    let sites = "crates/metrics/src/sites.rs";
    assert_fires(
        &diags,
        "metrics-manifest",
        man,
        7,
        "already declared as `GOOD`",
    );
    assert_fires(&diags, "metrics-manifest", man, 8, "not lowercase dotted");
    assert_fires(
        &diags,
        "metrics-manifest",
        man,
        6,
        "declared but never registered",
    );
    assert_fires(
        &diags,
        "metrics-manifest",
        sites,
        5,
        "not declared in the manifest",
    );
    assert_fires(&diags, "metrics-manifest", sites, 6, "used here as a gauge");
    assert_fires(
        &diags,
        "metrics-manifest",
        sites,
        7,
        "registered here as Scope::Shard",
    );
    assert_fires(
        &diags,
        "metrics-manifest",
        sites,
        8,
        "registered with register_counter",
    );
    assert_fires(
        &diags,
        "metrics-manifest",
        sites,
        9,
        "not a declared metric",
    );
    // VIA_GROUP is referenced only through the GROUP array — the array
    // use must mark it as registered (no unused diag at line 5).
    assert!(
        diags.iter().all(|d| !(d.path == man && d.line == 5)),
        "array-propagated usage must count"
    );
    // STRAY is registered with the right kind but its name sits outside
    // the configured `fix.` family; BADNAME is malformed and must not
    // be reported a second time by the family check.
    assert_fires(
        &diags,
        "metrics-manifest",
        man,
        9,
        "outside the declared families (fix.)",
    );
    assert!(
        diags
            .iter()
            .all(|d| !(d.line == 8 && d.message.contains("families"))),
        "malformed names are reported once, not per check"
    );
}

#[test]
fn dirty_fixture_has_no_false_positives() {
    let diags = lint_fixture("dirty", &dirty_config());
    // 7 in lib.rs + 8 state-machine + 4 manifest + 5 call sites.
    assert_eq!(
        diags.len(),
        24,
        "unexpected diagnostics:\n{}",
        diags
            .iter()
            .map(|d| format!("  {}[{}:{}] {}", d.rule, d.path, d.line, d.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

fn suppressed_config(with_allowlist: bool) -> LintConfig {
    LintConfig {
        wall_clock_crates: Vec::new(),
        unordered_paths: Vec::new(),
        panic_exempt_crates: Vec::new(),
        allowlist: if with_allowlist {
            vec![AllowEntry {
                rule: "panic-budget".into(),
                path: "crates/app/src/lib.rs".into(),
                needle: "Some(3)".into(),
            }]
        } else {
            Vec::new()
        },
        manifest_path: "crates/app/src/lib.rs".into(),
        metric_families: Vec::new(),
        machines: Vec::new(),
    }
}

#[test]
fn inline_and_allowlist_suppressions_work() {
    // Inline allows (same line and line above) plus the allowlist
    // entry silence all three unwraps.
    let diags = lint_fixture("suppressed", &suppressed_config(true));
    assert!(
        diags.is_empty(),
        "suppressions failed:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Without the allowlist entry, exactly the unsuppressed site fires.
    let diags = lint_fixture("suppressed", &suppressed_config(false));
    assert_eq!(diags.len(), 1);
    assert_fires(
        &diags,
        "panic-budget",
        "crates/app/src/lib.rs",
        14,
        ".unwrap()",
    );
}

#[test]
fn missing_manifest_is_reported() {
    let mut config = suppressed_config(true);
    config.manifest_path = "crates/metrics/src/manifest.rs".into();
    let diags = lint_fixture("suppressed", &config);
    assert_fires(
        &diags,
        "metrics-manifest",
        "crates/metrics/src/manifest.rs",
        0,
        "manifest not found",
    );
}

#[test]
fn observability_sources_are_in_panic_budget_scope() {
    // The tracing/flight-recorder layer must be audited, not exempt:
    // each new telemetry source is collected, lives in a lint-scoped
    // crate, and passes the panic budget on its own.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let files = collect_workspace(&root).unwrap();
    let config = LintConfig::project();
    for path in [
        "crates/telemetry/src/trace.rs",
        "crates/telemetry/src/recorder.rs",
        "crates/telemetry/src/sink.rs",
        "crates/telemetry/src/harvest.rs",
        "crates/core/src/scanner.rs",
    ] {
        let file = files
            .iter()
            .find(|f| f.rel_path == path)
            .unwrap_or_else(|| panic!("{path} not collected"));
        assert!(
            !config.panic_exempt_crates.iter().any(|c| c == file.krate()),
            "{path} must not be panic-budget exempt"
        );
        let mut diags = Vec::new();
        iw_lint::rules::panic_budget(std::slice::from_ref(file), &config, &mut diags);
        assert!(
            diags.is_empty(),
            "{path} violates the panic budget:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn project_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let mut config = LintConfig::project();
    config.allowlist = load_allowlist(&root).unwrap();
    let diags = iw_lint::run(&root, &config).unwrap();
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
