//! `cargo run -p iw-lint` — lint the workspace, exit nonzero on
//! violations. See the library docs for the rules.

use iw_lint::{load_allowlist, run, LintConfig, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: iw-lint [--root <dir>] [--rule <name>]... [--list-rules]

Checks the workspace's determinism, metrics-manifest and state-machine
invariants. Exits 0 when clean, 1 on violations, 2 on usage/IO errors.

  --root <dir>    workspace root (default: walk up from the cwd)
  --rule <name>   only report this rule (repeatable)
  --list-rules    print the rule names and exit";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for (name, desc) in RULES {
                    println!("{name:24} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--rule" => match args.next() {
                Some(name) => {
                    if !RULES.iter().any(|(n, _)| *n == name) {
                        return usage_error(&format!("unknown rule `{name}`"));
                    }
                    only.push(name);
                }
                None => return usage_error("--rule needs a rule name"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.map(Ok).unwrap_or_else(find_root) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("iw-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut config = LintConfig::project();
    config.allowlist = match load_allowlist(&root) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("iw-lint: bad allowlist: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = match run(&root, &config) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("iw-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags: Vec<_> = diags
        .into_iter()
        .filter(|d| only.is_empty() || only.iter().any(|r| r == d.rule))
        .collect();
    if diags.is_empty() {
        println!("iw-lint: workspace clean ({} rules)", RULES.len());
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}\n");
    }
    println!("iw-lint: {} violation(s)", diags.len());
    ExitCode::FAILURE
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("iw-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Walk up from the cwd to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".to_owned());
        }
    }
}
