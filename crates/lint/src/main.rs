//! `cargo run -p iw-lint` — lint the workspace, exit nonzero on
//! violations. See the library docs for the rules.

use iw_lint::{
    analyze, collect_workspace, emit, load_allowlist, run, LintConfig, ALLOWLIST_RULE, RULES,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: iw-lint [--root <dir>] [--rule <name>]... [--format <fmt>]
               [--graph dot] [--list-rules]

Checks the workspace's determinism, metrics-manifest, state-machine and
concurrency invariants. Exits 0 when clean, 1 on violations, 2 on
usage/IO errors.

  --root <dir>    workspace root (default: walk up from the cwd)
  --rule <name>   only report this rule (repeatable)
  --format <fmt>  output format: text (default), json, sarif
  --graph dot     print the approximate call graph as DOT and exit
  --list-rules    print the rule names and exit";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut format = String::from("text");
    let mut graph = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for (name, desc) in RULES {
                    println!("{name:24} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage_error("--root needs a directory"),
            },
            "--rule" => match args.next() {
                Some(name) => {
                    let known = RULES.iter().any(|(n, _)| *n == name) || name == ALLOWLIST_RULE;
                    if !known {
                        return usage_error(&format!("unknown rule `{name}`"));
                    }
                    only.push(name);
                }
                None => return usage_error("--rule needs a rule name"),
            },
            "--format" => match args.next() {
                Some(fmt) if matches!(fmt.as_str(), "text" | "json" | "sarif") => format = fmt,
                Some(fmt) => {
                    return usage_error(&format!("unknown format `{fmt}` (text|json|sarif)"))
                }
                None => return usage_error("--format needs text, json or sarif"),
            },
            "--graph" => match args.next() {
                Some(kind) if kind == "dot" => graph = true,
                Some(kind) => return usage_error(&format!("unknown graph format `{kind}`")),
                None => return usage_error("--graph needs a format (dot)"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.map(Ok).unwrap_or_else(find_root) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("iw-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if graph {
        let files = match collect_workspace(&root) {
            Ok(files) => files,
            Err(e) => {
                eprintln!("iw-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let analysis = analyze(&files);
        let paths: Vec<&str> = files.iter().map(|f| f.rel_path.as_str()).collect();
        print!("{}", analysis.graph.to_dot(&analysis.fns, &paths));
        return ExitCode::SUCCESS;
    }

    let mut config = LintConfig::project();
    config.allowlist = match load_allowlist(&root) {
        Ok(list) => list,
        Err(e) => {
            eprintln!("iw-lint: bad allowlist: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = match run(&root, &config) {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("iw-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags: Vec<_> = diags
        .into_iter()
        .filter(|d| only.is_empty() || only.iter().any(|r| r == d.rule))
        .collect();
    match format.as_str() {
        "json" => print!("{}", emit::to_json(&diags)),
        "sarif" => print!("{}", emit::to_sarif(&diags)),
        _ => {
            if diags.is_empty() {
                println!("iw-lint: workspace clean ({} rules)", RULES.len());
                return ExitCode::SUCCESS;
            }
            for d in &diags {
                println!("{d}\n");
            }
            println!("iw-lint: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("iw-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Walk up from the cwd to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory".to_owned());
        }
    }
}
