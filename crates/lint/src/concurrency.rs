//! Declared-intent concurrency manifest.
//!
//! The sharded TX/RX pipeline (ROADMAP item 1) brings real threads into
//! a codebase whose headline guarantee is byte-identical determinism.
//! This module is where concurrency *intent* is declared as data, the
//! same way `machines.rs` declares state machines — and the
//! `shared-state-audit`, `hot-path-purity` and `channel-discipline`
//! rules in `rules.rs` verify the code against it. Shared mutable
//! state, lock ordering and the cross-shard channel topology become
//! facts the linter checks, not folklore.
//!
//! `Arc` is deliberately exempt from the audit: it shares immutable
//! data (populations, checkpoints) and cannot introduce a data race by
//! itself. The audited kinds are the interior-mutability primitives —
//! `static`, `Mutex`, `RwLock`, `Atomic*`, `Rc`, `RefCell`.

/// One declared shared-state site.
#[derive(Debug, Clone)]
pub struct SharedStateSpec {
    /// Workspace-relative file the state lives in.
    pub file: &'static str,
    /// Field/binding name at the declaration site.
    pub name: &'static str,
    /// Primitive kind: `Mutex`, `RwLock`, `RefCell`, `Rc`, `Atomic`,
    /// or `static`.
    pub kind: &'static str,
    /// Why this shared state exists — shown in diagnostics and docs.
    pub role: &'static str,
    /// Lock-order rank for lockable kinds (`Mutex`/`RwLock`/`RefCell`):
    /// acquisitions must be textually nested in ascending rank.
    pub rank: Option<u32>,
}

/// A function whose whole reachable call tree must stay pure
/// (no allocation, locking or I/O).
#[derive(Debug, Clone)]
pub struct HotPathRoot {
    /// Workspace-relative file containing the root fn.
    pub file: &'static str,
    /// Qualified fn name (`Owner::name`) as extracted by `items.rs`.
    pub func: &'static str,
    /// Why this is a hot path.
    pub why: &'static str,
}

/// A function the hot-path traversal reaches but does not expand:
/// a declared cold boundary (setup, opt-in tracing, trait fan-out).
#[derive(Debug, Clone)]
pub struct ColdBoundary {
    /// Qualified (`Owner::name`) or bare fn name; bare names match any
    /// owner — used for trait methods with many impls.
    pub func: &'static str,
    /// Why crossing into this fn leaves the hot path.
    pub why: &'static str,
}

/// One declared channel endpoint pair: where sends and receives of a
/// cross-shard (or shard-to-sim) channel are allowed to appear.
#[derive(Debug, Clone)]
pub struct ChannelEndpoint {
    /// The receiver binding name at call sites (`fx` in `fx.send(..)`).
    pub name: &'static str,
    /// What flows through it.
    pub role: &'static str,
    /// Files allowed to contain send-side calls.
    pub tx_files: &'static [&'static str],
    /// Files allowed to contain recv/drain-side calls.
    pub rx_files: &'static [&'static str],
}

/// The whole manifest the three concurrency rules run against.
#[derive(Debug, Clone, Default)]
pub struct ConcurrencySpec {
    /// Crates whose non-test code is subject to `shared-state-audit`.
    pub state_crates: Vec<&'static str>,
    /// Crates whose non-test code is subject to `channel-discipline`.
    pub channel_crates: Vec<&'static str>,
    pub shared_state: Vec<SharedStateSpec>,
    pub hot_path_roots: Vec<HotPathRoot>,
    pub cold_boundaries: Vec<ColdBoundary>,
    pub channels: Vec<ChannelEndpoint>,
}

/// The project's declared concurrency intent. Every entry here is a
/// claim the linter verifies against the source: a removed site makes
/// its entry stale (diagnosed), a new primitive without an entry is a
/// violation.
pub fn project_concurrency() -> ConcurrencySpec {
    ConcurrencySpec {
        state_crates: vec!["core", "netsim", "wire", "hoststack", "telemetry", "cli"],
        channel_crates: vec!["core", "netsim", "wire", "hoststack", "bench"],
        shared_state: vec![
            SharedStateSpec {
                file: "crates/wire/src/pool.rs",
                name: "inner",
                kind: "RefCell",
                role: "single-threaded slab free-list behind BufferPool handles; \
                       becomes per-shard state when the TX/RX split lands",
                rank: Some(10),
            },
            SharedStateSpec {
                file: "crates/wire/src/pool.rs",
                name: "shared",
                kind: "Rc",
                role: "refcount on a frozen PacketBuf so fan-out clones share \
                       one backing slab without copying bytes",
                rank: None,
            },
            SharedStateSpec {
                file: "crates/core/src/ring.rs",
                name: "inner",
                kind: "Mutex",
                role: "bounded target ring between a TX feeder thread and \
                       its scan world; the recv side swaps the whole queue \
                       out so the hot path takes the lock once per batch",
                rank: Some(15),
            },
            SharedStateSpec {
                file: "crates/cli/src/commands.rs",
                name: "slots",
                kind: "Mutex",
                role: "serializes per-shard checkpoint captures into one \
                       atomically renamed campaign file",
                rank: Some(20),
            },
        ],
        hot_path_roots: vec![
            HotPathRoot {
                file: "crates/netsim/src/wheel.rs",
                func: "TimerWheel::advance_to_due",
                why: "timer-wheel advance runs once per event-loop step",
            },
            HotPathRoot {
                file: "crates/netsim/src/sim.rs",
                func: "Sim::step",
                why: "the event loop itself: one call per simulated event",
            },
            HotPathRoot {
                file: "crates/netsim/src/sim.rs",
                func: "Sim::apply_scanner_effects",
                why: "packet fan-out from scanner to links; per-batch",
            },
            HotPathRoot {
                file: "crates/core/src/rate.rs",
                func: "TokenBucket::take",
                why: "pacing decision on every transmitted probe",
            },
            HotPathRoot {
                file: "crates/wire/src/pool.rs",
                func: "BufferPool::take",
                why: "per-packet buffer checkout; the pool exists so the \
                      steady state never allocates",
            },
        ],
        cold_boundaries: vec![
            ColdBoundary {
                func: "Sim::spawn_host",
                why: "one-time host construction on first contact; factory \
                      setup is allowed to allocate",
            },
            ColdBoundary {
                func: "Trace::record",
                why: "pcap capture is opt-in (ScanConfig::record_trace) and \
                      off on the measured path",
            },
            ColdBoundary {
                func: "Tracer::record_shard",
                why: "span profiling is opt-in (SimConfig::profile)",
            },
            ColdBoundary {
                func: "Tracer::instant_shard",
                why: "span profiling is opt-in (SimConfig::profile)",
            },
            ColdBoundary {
                func: "Scanner::try_drain_promotions",
                why: "promotion of a cookie-validated discovery responder \
                      into a full stateful session; allocating session \
                      state is the point of crossing this boundary",
            },
            ColdBoundary {
                func: "on_packet",
                why: "trait fan-out: name-based resolution would conflate \
                      every Endpoint impl (hosts, chaos, scanner); endpoint \
                      internals are audited by their own invariants",
            },
            ColdBoundary {
                func: "on_timer",
                why: "trait fan-out, as for on_packet",
            },
        ],
        channels: vec![
            ChannelEndpoint {
                name: "feed",
                role: "admitted targets + generator cursors flowing from a \
                       TX feeder thread into its scan world's TargetIter",
                tx_files: &["crates/core/src/txrx.rs"],
                rx_files: &["crates/core/src/scanner.rs"],
            },
            ChannelEndpoint {
                name: "fx",
                role: "Effects sink: packets and timer arms emitted by \
                       endpoints, drained by the sim loop inside each \
                       shard's world",
                tx_files: &[
                    "crates/core/src/scanner.rs",
                    "crates/hoststack/src/host.rs",
                    "crates/hoststack/src/chaos.rs",
                    "crates/bench/src/bin/exp_eventloop.rs",
                ],
                rx_files: &["crates/netsim/src/sim.rs"],
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockable_kinds_carry_ranks_and_ranks_are_unique() {
        let spec = project_concurrency();
        let mut ranks = Vec::new();
        for s in &spec.shared_state {
            let lockable = matches!(s.kind, "Mutex" | "RwLock" | "RefCell");
            assert_eq!(
                lockable,
                s.rank.is_some(),
                "{}::{} — exactly the lockable kinds carry a rank",
                s.file,
                s.name
            );
            if let Some(r) = s.rank {
                assert!(!ranks.contains(&r), "duplicate lock-order rank {r}");
                ranks.push(r);
            }
        }
    }

    #[test]
    fn roots_live_in_state_crates() {
        let spec = project_concurrency();
        for r in &spec.hot_path_roots {
            let krate = r.file.split('/').nth(1).unwrap_or("");
            assert!(
                spec.state_crates.contains(&krate),
                "hot-path root {} is outside the audited crates",
                r.func
            );
        }
    }

    #[test]
    fn channel_files_are_disjoint_per_endpoint() {
        let spec = project_concurrency();
        for c in &spec.channels {
            for tx in c.tx_files {
                assert!(
                    !c.rx_files.contains(tx),
                    "endpoint {}: {} is both tx and rx",
                    c.name,
                    tx
                );
            }
        }
    }
}
