//! A small Rust lexer: the foundation the whole analyzer stands on.
//!
//! The linter used to strip comments and string contents line by line,
//! which broke on everything that spans lines or nests: raw strings
//! (`r#"…"#` with an odd number of quotes inside hid the rest of the
//! line), nested block comments (`/* /* */ */`), and multi-line string
//! literals. This module lexes whole files instead, producing
//!
//! * a token stream ([`Tok`]) with 1-based line numbers — what the
//!   rules, item extractor and call-graph builder match against, and
//! * blanked *code lines* (same line count as the input, comments
//!   removed, literal contents erased) — kept for snippet display and
//!   the line-oriented suppression machinery.
//!
//! The lexer is deliberately not a full Rust frontend: it distinguishes
//! identifiers, lifetimes, literals and single-character punctuation,
//! and that is enough. Multi-character operators (`::`, `=>`, `==`) are
//! matched as punctuation sequences by [`find_seq`].

/// Token classes the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `SystemTime`, `unwrap`).
    Ident,
    /// Lifetime (`'a`, `'static`) — kept distinct so `&'static str`
    /// never looks like a `static` item.
    Lifetime,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); `text`
    /// holds the literal contents, unescaped only trivially.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal.
    Num,
    /// One punctuation character (`.` `:` `(` …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: Kind,
    /// Identifier text, literal contents, or the punctuation character.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// The result of lexing one file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// The token stream, in source order.
    pub tokens: Vec<Tok>,
    /// One entry per input line: the line with comments removed and
    /// string/char-literal contents blanked.
    pub code: Vec<String>,
}

/// Lex `content` into tokens plus blanked code lines.
pub fn lex(content: &str) -> Lexed {
    Lexer::new(content).run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    tokens: Vec<Tok>,
    code: Vec<String>,
    cur: String,
}

impl Lexer {
    fn new(content: &str) -> Lexer {
        Lexer {
            chars: content.chars().collect(),
            i: 0,
            line: 1,
            tokens: Vec::new(),
            code: Vec::new(),
            cur: String::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consume one character, maintaining the line counter and code
    /// buffer (`emit` controls whether it lands in the code view).
    fn bump(&mut self, emit: bool) -> Option<char> {
        let c = *self.chars.get(self.i)?;
        self.i += 1;
        if c == '\n' {
            self.code.push(std::mem::take(&mut self.cur));
            self.line += 1;
        } else if emit {
            self.cur.push(c);
        }
        Some(c)
    }

    fn push_tok(&mut self, kind: Kind, text: String, line: usize) {
        self.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('/') {
                // Line comment (incl. doc): drop up to the newline.
                while let Some(c) = self.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    self.bump(false);
                }
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if c == '"' {
                self.string_literal(false, 0);
            } else if c == '\'' {
                self.char_or_lifetime();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c.is_alphabetic() || c == '_' {
                self.ident_or_prefixed_literal();
            } else {
                let line = self.line;
                self.bump(true);
                if !c.is_whitespace() {
                    self.push_tok(Kind::Punct, c.to_string(), line);
                }
            }
        }
        // Final (unterminated) line.
        self.code.push(std::mem::take(&mut self.cur));
        Lexed {
            tokens: self.tokens,
            code: self.code,
        }
    }

    /// Nested block comment: `/* /* */ */` must consume both closers.
    fn block_comment(&mut self) {
        self.bump(false);
        self.bump(false);
        // Keep tokens from gluing together across the removed span.
        self.cur.push(' ');
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump(false);
                    self.bump(false);
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump(false);
                    self.bump(false);
                }
                (Some(_), _) => {
                    self.bump(false);
                }
                (None, _) => break,
            }
        }
    }

    /// A (possibly raw) string literal; `hashes` is the `#` count for
    /// raw strings, 0 plus `raw = false` for ordinary ones.
    fn string_contents(&mut self, raw: bool, hashes: usize) -> String {
        let mut text = String::new();
        self.bump(true); // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') if !raw => {
                    self.bump(false);
                    if let Some(e) = self.peek(0) {
                        text.push(e);
                        self.bump(false);
                    }
                }
                Some('"') => {
                    if raw {
                        // Need `"` followed by `hashes` hashes.
                        let mut ok = true;
                        for h in 0..hashes {
                            if self.peek(1 + h) != Some('#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            self.bump(true);
                            for _ in 0..hashes {
                                self.bump(true);
                            }
                            break;
                        }
                        text.push('"');
                        self.bump(false);
                    } else {
                        self.bump(true);
                        break;
                    }
                }
                Some(c) => {
                    text.push(c);
                    self.bump(false);
                }
            }
        }
        text
    }

    fn string_literal(&mut self, raw: bool, hashes: usize) {
        let line = self.line;
        let text = self.string_contents(raw, hashes);
        self.push_tok(Kind::Str, text, line);
    }

    /// Raw-string opener after an `r`/`br` prefix: `#…#"`. Returns the
    /// hash count, or `None` if this is not a raw string after all.
    fn raw_opener(&mut self) -> Option<usize> {
        let mut hashes = 0;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) == Some('"') {
            for _ in 0..hashes {
                self.bump(true);
            }
            Some(hashes)
        } else {
            None
        }
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Lifetime: `'ident` not followed by a closing quote.
        if self.peek(1).is_some_and(|c| c.is_alphabetic() || c == '_') {
            let mut len = 1;
            while self
                .peek(1 + len)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                len += 1;
            }
            if self.peek(1 + len) != Some('\'') {
                self.bump(true); // '
                let mut name = String::new();
                for _ in 0..len {
                    if let Some(c) = self.peek(0) {
                        name.push(c);
                    }
                    self.bump(true);
                }
                self.push_tok(Kind::Lifetime, name, line);
                return;
            }
        }
        // Char literal: consume to the closing quote, honoring escapes.
        self.bump(false);
        self.cur.push_str("' '");
        let mut text = String::new();
        loop {
            match self.peek(0) {
                None => break,
                Some('\\') => {
                    self.bump(false);
                    if let Some(e) = self.peek(0) {
                        text.push(e);
                        self.bump(false);
                    }
                }
                Some('\'') => {
                    self.bump(false);
                    break;
                }
                Some(c) => {
                    text.push(c);
                    self.bump(false);
                }
            }
        }
        self.push_tok(Kind::Char, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump(true);
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5`, but not the range `0..n`.
                text.push(c);
                self.bump(true);
            } else {
                break;
            }
        }
        self.push_tok(Kind::Num, text, line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump(true);
            } else {
                break;
            }
        }
        // Raw/byte string or byte-char prefixes: r"", r#""#, b"", br"", b''.
        let is_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
        if is_prefix {
            match self.peek(0) {
                Some('"') => {
                    // A 0-hash raw string (`r"…"`/`br"…"`) still
                    // disables escape processing.
                    self.string_literal(text.contains('r'), 0);
                    return;
                }
                Some('#') if text.contains('r') => {
                    if let Some(hashes) = self.raw_opener() {
                        self.string_literal(true, hashes);
                        return;
                    }
                }
                Some('\'') if text == "b" => {
                    self.char_or_lifetime();
                    return;
                }
                _ => {}
            }
        }
        self.push_tok(Kind::Ident, text, line);
    }
}

/// Compile a pattern string (`.unwrap()`, `Instant::now(`) into the
/// token sequence it must match. The pattern is lexed with the same
/// lexer, so spacing and line breaks in the source cannot defeat it.
pub fn compile(pattern: &str) -> Vec<Tok> {
    lex(pattern).tokens
}

/// Does `tokens[at..]` start with the token sequence `pat`
/// (kind + text equality)?
pub fn match_at(tokens: &[Tok], at: usize, pat: &[Tok]) -> bool {
    if at + pat.len() > tokens.len() {
        return false;
    }
    pat.iter()
        .zip(&tokens[at..])
        .all(|(p, t)| p.kind == t.kind && p.text == t.text)
}

/// All start indices where `pat` occurs in `tokens`.
pub fn find_seq(tokens: &[Tok], pat: &[Tok]) -> Vec<usize> {
    if pat.is_empty() {
        return Vec::new();
    }
    (0..tokens.len())
        .filter(|&i| match_at(tokens, i, pat))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_are_removed() {
        assert_eq!(idents("let x = 1; // Instant::now()"), ["let", "x"]);
        assert_eq!(
            idents("let p = \".unwrap()\"; p.len()"),
            ["let", "p", "p", "len"]
        );
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        // The old line stripper never handled these at all.
        assert_eq!(
            idents("/* outer /* inner */ still */ x.unwrap()"),
            ["x", "unwrap"]
        );
        assert_eq!(idents("/* /* \" */ */ y()"), ["y"]);
    }

    #[test]
    fn raw_strings_hide_contents_not_code() {
        // An odd number of quotes inside a raw string used to flip the
        // stripper's in-string state and swallow the rest of the line.
        assert_eq!(
            idents(r##"let a = r#"with a " quote"#; foo.unwrap();"##),
            ["let", "a", "foo", "unwrap"]
        );
    }

    #[test]
    fn zero_hash_raw_strings_disable_escapes() {
        // In `r"a\"` the backslash is literal and the quote closes the
        // string; escape processing would swallow the closer and lex
        // the rest of the file as string contents.
        assert_eq!(
            idents(r#"let re = r"a\"; b.unwrap()"#),
            ["let", "re", "b", "unwrap"]
        );
        assert_eq!(idents(r#"let re = r"\d+"; ok()"#), ["let", "re", "ok"]);
    }

    #[test]
    fn multi_line_strings_span_lines() {
        let src = "let s = \"line one\n  SystemTime::now()\n\"; s.len()";
        assert_eq!(idents(src), ["let", "s", "s", "len"]);
        // The code view still has one entry per input line.
        assert_eq!(lex(src).code.len(), 3);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let toks = lex("if c == '\"' { x::<'a>() }").tokens;
        assert!(toks.iter().any(|t| t.kind == Kind::Char && t.text == "\""));
        assert!(toks
            .iter()
            .any(|t| t.kind == Kind::Lifetime && t.text == "a"));
        let toks = lex("let n = '\\n'; y()").tokens;
        assert!(toks.iter().any(|t| t.kind == Kind::Char));
        assert!(toks.iter().any(|t| t.is_ident("y")));
        // `&'static str` is a lifetime, never a `static` item.
        let toks = lex("fn f(s: &'static str) {}").tokens;
        assert!(!toks.iter().any(|t| t.is_ident("static")));
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let toks = lex("a\nb\n\nc").tokens;
        let lines: Vec<(String, usize)> = toks.into_iter().map(|t| (t.text, t.line)).collect();
        assert_eq!(
            lines,
            [
                ("a".to_owned(), 1),
                ("b".to_owned(), 2),
                ("c".to_owned(), 4)
            ]
        );
    }

    #[test]
    fn patterns_match_across_formatting() {
        let pat = compile(".unwrap()");
        let toks = lex("x\n    .unwrap\n    ()").tokens;
        assert_eq!(find_seq(&toks, &pat).len(), 1);
        let pat = compile("Instant::now(");
        let toks = lex("let t = Instant :: now ( );").tokens;
        assert_eq!(find_seq(&toks, &pat).len(), 1);
    }
}
