//! Approximate workspace call graph.
//!
//! Resolution is name-based, not type-based — good enough to answer
//! "can the timer-wheel hot path reach an allocation?" without a full
//! type checker. Three call shapes are recognized in function bodies:
//!
//! * qualified: `Owner::name(` (with `Self` mapped to the current
//!   impl owner),
//! * method: `.name(`,
//! * free: `name(` (keywords and macro invocations `name!` excluded).
//!
//! A call site resolves to candidate functions by name, preferring the
//! same file, then the same crate, then anywhere in the workspace.
//! Test functions are excluded on both ends. The graph is deterministic
//! (BTree maps, sorted edges) so `--graph dot` output is byte-stable.

use std::collections::{BTreeMap, BTreeSet};

use crate::items::FnItem;
use crate::lexer::{Kind, Tok};

/// Keywords and builtins that look like free calls but are not.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "let", "loop", "else", "impl", "use", "mod",
    "pub", "in", "as", "move", "ref", "mut", "break", "continue", "where", "unsafe", "async",
    "await", "dyn", "struct", "enum", "trait", "type", "const", "static", "crate", "super", "self",
    "Self", "Some", "Ok", "Err", "None", "Box", "Vec", "String",
];

/// One resolved edge: caller index → callee index (into the fn list).
pub type Edge = (usize, usize);

/// The workspace call graph over a flat list of [`FnItem`]s.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Adjacency: for each fn index, the sorted set of callee indices.
    pub out: Vec<Vec<usize>>,
}

/// A raw call site found in a body, before resolution.
#[derive(Debug)]
enum CallSite {
    Qualified { owner: String, name: String },
    Method { name: String },
    Free { name: String },
}

/// Scan one body's token span for call sites.
fn call_sites(tokens: &[Tok], span: (usize, usize), self_owner: Option<&str>) -> Vec<CallSite> {
    let (start, end) = span;
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind == Kind::Ident && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            // `name(` — decide which shape it is by looking back.
            let prev = if i > start { tokens.get(i - 1) } else { None };
            let prev2 = if i > start + 1 {
                tokens.get(i - 2)
            } else {
                None
            };
            let prev3 = if i > start + 2 {
                tokens.get(i - 3)
            } else {
                None
            };
            if prev.is_some_and(|p| p.is_punct('.')) {
                out.push(CallSite::Method {
                    name: t.text.clone(),
                });
            } else if prev.is_some_and(|p| p.is_punct(':'))
                && prev2.is_some_and(|p| p.is_punct(':'))
            {
                if let Some(owner) = prev3.filter(|o| o.kind == Kind::Ident) {
                    let owner = if owner.text == "Self" {
                        self_owner.unwrap_or("Self").to_owned()
                    } else {
                        owner.text.clone()
                    };
                    out.push(CallSite::Qualified {
                        owner,
                        name: t.text.clone(),
                    });
                }
            } else if !NOT_CALLS.contains(&t.text.as_str()) {
                out.push(CallSite::Free {
                    name: t.text.clone(),
                });
            }
        } else if t.kind == Kind::Ident && tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            // Macro invocation: skip the bang so `name!(` is not a call.
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

/// Crate name (`crates/<name>/…`) of a rel path, or the path itself.
fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        _ => rel_path,
    }
}

impl CallGraph {
    /// Build the graph. `fns` is the flat workspace fn list;
    /// `file_tokens[f.file]` and `file_paths[f.file]` give each fn's
    /// token stream and rel path.
    pub fn build(fns: &[FnItem], file_tokens: &[&[Tok]], file_paths: &[&str]) -> CallGraph {
        // Resolution indices. Method calls resolve by bare name; the
        // others by (owner, name) / name.
        let mut by_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            by_method.entry(&f.name).or_default().push(idx);
            match &f.owner {
                Some(o) => {
                    by_qual.entry((o, &f.name)).or_default().push(idx);
                }
                None => {
                    by_free.entry(&f.name).or_default().push(idx);
                }
            }
        }
        let prefer = |cands: &[usize], caller: &FnItem| -> Vec<usize> {
            let same_file: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| fns[c].file == caller.file)
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let caller_crate = crate_of(file_paths[caller.file]);
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&c| crate_of(file_paths[fns[c].file]) == caller_crate)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            cands.to_vec()
        };
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (idx, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            let Some(span) = f.body else { continue };
            let tokens = file_tokens[f.file];
            let mut callees: BTreeSet<usize> = BTreeSet::new();
            for site in call_sites(tokens, span, f.owner.as_deref()) {
                let resolved: Vec<usize> = match &site {
                    CallSite::Qualified { owner, name } => by_qual
                        .get(&(owner.as_str(), name.as_str()))
                        .map(|c| prefer(c, f))
                        .unwrap_or_default(),
                    CallSite::Method { name } => by_method
                        .get(name.as_str())
                        .map(|c| prefer(c, f))
                        .unwrap_or_default(),
                    CallSite::Free { name } => by_free
                        .get(name.as_str())
                        .map(|c| prefer(c, f))
                        .unwrap_or_default(),
                };
                for r in resolved {
                    if r != idx {
                        callees.insert(r);
                    }
                }
            }
            out[idx] = callees.into_iter().collect();
        }
        CallGraph { out }
    }

    /// BFS from `roots` (fn indices), skipping `boundary` fns entirely
    /// (they are visited but not expanded). Returns, for each reached
    /// fn, its predecessor on a shortest path (`usize::MAX` for roots).
    pub fn reach(
        &self,
        roots: &[usize],
        boundary: &dyn Fn(usize) -> bool,
    ) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &r in roots {
            if parent.insert(r, usize::MAX).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            if boundary(n) && !matches!(parent.get(&n), Some(&usize::MAX)) {
                continue;
            }
            for &m in &self.out[n] {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(m) {
                    e.insert(n);
                    queue.push_back(m);
                }
            }
        }
        parent
    }

    /// Graphviz DOT rendering with `path::qname` node labels.
    pub fn to_dot(&self, fns: &[FnItem], file_paths: &[&str]) -> String {
        let label = |i: usize| format!("{}::{}", file_paths[fns[i].file], fns[i].qname());
        let mut s =
            String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for (i, f) in fns.iter().enumerate() {
            if f.is_test || (self.out[i].is_empty() && !self.out.iter().any(|o| o.contains(&i))) {
                continue;
            }
            s.push_str(&format!("  \"{}\";\n", label(i)));
        }
        for (i, callees) in self.out.iter().enumerate() {
            if fns[i].is_test {
                continue;
            }
            for &c in callees {
                s.push_str(&format!("  \"{}\" -> \"{}\";\n", label(i), label(c)));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::extract;
    use crate::lexer::lex;

    fn graph(srcs: &[(&str, &str)]) -> (Vec<FnItem>, CallGraph, Vec<String>) {
        let lexed: Vec<_> = srcs.iter().map(|(_, s)| lex(s)).collect();
        let mut fns = Vec::new();
        for (i, l) in lexed.iter().enumerate() {
            fns.extend(extract(i, &l.tokens).fns);
        }
        let toks: Vec<&[Tok]> = lexed.iter().map(|l| l.tokens.as_slice()).collect();
        let paths: Vec<&str> = srcs.iter().map(|(p, _)| *p).collect();
        let g = CallGraph::build(&fns, &toks, &paths);
        let names = fns.iter().map(|f| f.qname()).collect();
        (fns, g, names)
    }

    fn edge(names: &[String], g: &CallGraph, from: &str, to: &str) -> bool {
        let fi = names.iter().position(|n| n == from).unwrap();
        let ti = names.iter().position(|n| n == to).unwrap();
        g.out[fi].contains(&ti)
    }

    #[test]
    fn free_method_and_qualified_calls_resolve() {
        let (_, g, names) = graph(&[(
            "crates/a/src/lib.rs",
            "
            pub fn top() { helper(); Widget::create(); }
            fn helper() {}
            struct Widget;
            impl Widget {
                fn create() -> Widget { Widget }
                fn spin(&self) { self.helper_method(); Self::create(); }
                fn helper_method(&self) {}
            }
            ",
        )]);
        assert!(edge(&names, &g, "top", "helper"));
        assert!(edge(&names, &g, "top", "Widget::create"));
        assert!(edge(&names, &g, "Widget::spin", "Widget::helper_method"));
        assert!(edge(&names, &g, "Widget::spin", "Widget::create"));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (fns, g, names) = graph(&[(
            "crates/a/src/lib.rs",
            "
            pub fn f() { if cond() { vec![1]; assert!(true); } }
            fn cond() -> bool { true }
            fn assert() {}
            ",
        )]);
        assert!(edge(&names, &g, "f", "cond"));
        let fi = names.iter().position(|n| n == "f").unwrap();
        let ai = names.iter().position(|n| n == "assert").unwrap();
        assert!(!g.out[fi].contains(&ai), "macro bang must not resolve");
        assert_eq!(fns.len(), 3);
    }

    #[test]
    fn same_crate_preferred_over_foreign() {
        let (_, g, names) = graph(&[
            (
                "crates/a/src/lib.rs",
                "pub fn go() { step(); } pub fn step() {}",
            ),
            ("crates/b/src/lib.rs", "pub fn step() {}"),
        ]);
        let gi = names.iter().position(|n| n == "go").unwrap();
        assert_eq!(g.out[gi].len(), 1, "only the same-file step is linked");
    }

    #[test]
    fn reach_traverses_transitively_and_respects_boundaries() {
        let (_, g, names) = graph(&[(
            "crates/a/src/lib.rs",
            "
            pub fn root() { mid(); cold(); }
            fn mid() { leaf(); }
            fn leaf() {}
            fn cold() { behind(); }
            fn behind() {}
            ",
        )]);
        let root = names.iter().position(|n| n == "root").unwrap();
        let cold = names.iter().position(|n| n == "cold").unwrap();
        let reach = g.reach(&[root], &|i| i == cold);
        let reached: Vec<&str> = names
            .iter()
            .enumerate()
            .filter(|(i, _)| reach.contains_key(i))
            .map(|(_, n)| n.as_str())
            .collect();
        assert!(reached.contains(&"leaf"), "two hops from the root");
        assert!(reached.contains(&"cold"), "boundary itself is reached");
        assert!(!reached.contains(&"behind"), "but not expanded through");
    }

    #[test]
    fn dot_output_is_stable_and_labelled() {
        let (fns, g, _) = graph(&[("crates/a/src/lib.rs", "pub fn a() { b(); } pub fn b() {}")]);
        let toksrc = "pub fn a() { b(); } pub fn b() {}";
        let _ = toksrc;
        let dot = g.to_dot(&fns, &["crates/a/src/lib.rs"]);
        assert!(dot.contains("\"crates/a/src/lib.rs::a\" -> \"crates/a/src/lib.rs::b\";"));
        assert!(dot.starts_with("digraph callgraph {"));
    }
}
