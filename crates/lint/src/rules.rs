//! The rules. Each takes the prepared sources plus the config (the
//! concurrency rules also take the structural [`Analysis`]) and appends
//! [`Diagnostic`]s; suppression filtering happens centrally in
//! [`crate::check_files`].

use crate::concurrency::{ChannelEndpoint, SharedStateSpec};
use crate::lexer::{self, Kind, Tok};
use crate::machines::MachineSpec;
use crate::{Analysis, Diagnostic, LintConfig, SourceFile};

// ---------------------------------------------------------------------
// Pattern rules (token-sequence matching)
// ---------------------------------------------------------------------

/// Match each pattern as a token subsequence in every in-scope file.
/// Patterns are compiled with the same lexer the sources went through,
/// so formatting, line breaks, comments and string contents can
/// neither hide nor fake a match.
fn scan_patterns(
    files: &[SourceFile],
    in_scope: &dyn Fn(&SourceFile) -> bool,
    patterns: &[&str],
    rule: &'static str,
    message: &dyn Fn(&str) -> String,
    help: &'static str,
    diags: &mut Vec<Diagnostic>,
) {
    let compiled: Vec<(&str, Vec<Tok>)> =
        patterns.iter().map(|p| (*p, lexer::compile(p))).collect();
    for file in files.iter().filter(|f| in_scope(f)) {
        for (pat, toks) in &compiled {
            for at in lexer::find_seq(&file.tokens, toks) {
                let line = file.tokens[at].line;
                if file.is_test(line - 1) {
                    continue;
                }
                diags.push(Diagnostic {
                    rule,
                    path: file.rel_path.clone(),
                    line,
                    message: message(pat),
                    snippet: file.raw.get(line - 1).cloned().unwrap_or_default(),
                    help,
                });
            }
        }
    }
}

/// `no-wall-clock`: deterministic crates read time only from the
/// simulator's virtual clock.
pub fn no_wall_clock(files: &[SourceFile], config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    scan_patterns(
        files,
        &|f| config.wall_clock_crates.iter().any(|c| c == f.krate()),
        &[
            "SystemTime",
            "Instant::now(",
            "std::time::Instant",
            "UNIX_EPOCH",
        ],
        "no-wall-clock",
        &|p| format!("wall-clock time source `{p}` in a deterministic crate"),
        "use the simulator's virtual clock (iw_netsim::Instant) so runs stay reproducible",
        diags,
    );
}

/// `no-unordered-iteration`: result, analysis and telemetry paths must
/// not use hash containers — iteration order would leak into output.
pub fn no_unordered_iteration(
    files: &[SourceFile],
    config: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    scan_patterns(
        files,
        &|f| {
            config
                .unordered_paths
                .iter()
                .any(|p| f.rel_path.starts_with(p.as_str()))
        },
        &["HashMap", "HashSet"],
        "no-unordered-iteration",
        &|p| format!("`{p}` on an output-producing path"),
        "use BTreeMap/BTreeSet (or sort before iterating) so output order is deterministic",
        diags,
    );
}

/// `rng-hygiene`: all randomness flows from the scan/session seed.
pub fn rng_hygiene(files: &[SourceFile], _config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    scan_patterns(
        files,
        &|_| true,
        &[
            "from_entropy",
            "thread_rng",
            "OsRng",
            "rand::random",
            "getrandom",
        ],
        "rng-hygiene",
        &|p| format!("entropy-seeded randomness `{p}`"),
        "seed RNGs from ScanConfig/session seeds (e.g. SmallRng::seed_from_u64) so runs replay",
        diags,
    );
}

/// `panic-budget`: library code must not panic except at sites with a
/// justified suppression.
pub fn panic_budget(files: &[SourceFile], config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    scan_patterns(
        files,
        &|f| !config.panic_exempt_crates.iter().any(|c| c == f.krate()),
        &[
            ".unwrap()",
            ".expect(",
            "panic!(",
            "unreachable!(",
            "todo!(",
            "unimplemented!(",
        ],
        "panic-budget",
        &|p| format!("`{p}` in library code"),
        "return an error or restructure; if the invariant truly holds, add \
         `// iw-lint: allow(panic-budget): <why>`",
        diags,
    );
}

/// `unsafe-forbidden`: every library crate's `lib.rs` carries
/// `#![forbid(unsafe_code)]`.
pub fn unsafe_forbidden(files: &[SourceFile], _config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if !file.rel_path.ends_with("/src/lib.rs") {
            continue;
        }
        let has = file
            .code
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]"));
        if !has {
            diags.push(Diagnostic {
                rule: "unsafe-forbidden",
                path: file.rel_path.clone(),
                line: 0,
                message: format!("crate `{}` does not forbid unsafe code", file.krate()),
                snippet: String::new(),
                help: "add `#![forbid(unsafe_code)]` to the crate root",
            });
        }
    }
}

// ---------------------------------------------------------------------
// Concurrency rule pack (driven by crates/lint/src/concurrency.rs)
// ---------------------------------------------------------------------

/// Interior-mutability kinds the audit recognizes, and the priority
/// used when one declaration names several (`Rc<RefCell<_>>` is a
/// `RefCell` site — the lockable wrapper is what needs the rank).
fn state_kind(t: &Tok) -> Option<&'static str> {
    if t.kind != Kind::Ident {
        return None;
    }
    match t.text.as_str() {
        "Mutex" => Some("Mutex"),
        "RwLock" => Some("RwLock"),
        "RefCell" => Some("RefCell"),
        "Rc" => Some("Rc"),
        s if s.starts_with("Atomic") && s.len() > "Atomic".len() => Some("Atomic"),
        _ => None,
    }
}

fn kind_priority(kind: &str) -> u32 {
    match kind {
        "Mutex" => 5,
        "RwLock" => 4,
        "RefCell" => 3,
        "Atomic" => 2,
        "Rc" => 1,
        _ => 0,
    }
}

fn lockable(kind: &str) -> bool {
    matches!(kind, "Mutex" | "RwLock" | "RefCell")
}

/// One detected shared-state site.
struct StateSite {
    name: Option<String>,
    kind: &'static str,
    line: usize,
}

/// The binding/field a statement introduces: `let NAME`,
/// `static NAME`, or the nearest `NAME:` field/struct-literal label
/// before the kind token.
fn stmt_name(tokens: &[Tok], start: usize, at: usize) -> Option<String> {
    for j in start..at {
        if tokens[j].is_ident("let") || tokens[j].is_ident("static") {
            let mut k = j + 1;
            if tokens.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if let Some(n) = tokens.get(k).filter(|t| t.kind == Kind::Ident) {
                return Some(n.text.clone());
            }
        }
    }
    for j in (start + 1..at).rev() {
        if tokens[j].is_punct(':')
            && tokens[j - 1].kind == Kind::Ident
            && !tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
        {
            return Some(tokens[j - 1].text.clone());
        }
    }
    None
}

/// Detect interior-mutability sites in one file's token stream.
fn state_sites(file: &SourceFile) -> Vec<StateSite> {
    let tokens = &file.tokens;
    let boundary =
        |t: &Tok| t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',');
    // (statement start, site) — used to collapse `Rc<RefCell<_>>` into
    // one site of the highest-priority kind.
    let mut per_stmt: Vec<(usize, StateSite)> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let Some(kind) = state_kind(tok) else {
            continue;
        };
        if file.is_test(tok.line - 1) {
            continue;
        }
        let mut s = i;
        while s > 0 && !boundary(&tokens[s - 1]) {
            s -= 1;
        }
        // Imports, fn signatures and `static` items (audited separately
        // via the item extractor) are not declaration sites.
        let skip = tokens[s..i]
            .iter()
            .any(|t| t.is_ident("use") || t.is_ident("fn") || t.is_ident("static"));
        if skip {
            continue;
        }
        let site = StateSite {
            name: stmt_name(tokens, s, i),
            kind,
            line: tok.line,
        };
        match per_stmt.iter_mut().find(|(st, _)| *st == s) {
            Some((_, prev)) => {
                if kind_priority(kind) > kind_priority(prev.kind) {
                    *prev = site;
                }
            }
            None => per_stmt.push((s, site)),
        }
    }
    per_stmt.into_iter().map(|(_, s)| s).collect()
}

const STATE_HELP: &str = "declare it with a role (and a lock-order rank, if lockable) in \
                          crates/lint/src/concurrency.rs, or remove the shared state";

/// Lock/borrow acquisition methods recognized by lock-order checking.
const ACQUIRE_METHODS: &[&str] = &[
    "lock",
    "try_lock",
    "read",
    "try_read",
    "write",
    "try_write",
    "borrow",
    "borrow_mut",
    "try_borrow",
    "try_borrow_mut",
];

/// `shared-state-audit`: every `static`/`Mutex`/`RwLock`/`Atomic*`/
/// `Rc`/`RefCell` in the audited crates appears in the concurrency
/// manifest with a role; lockable entries carry a rank; acquisitions
/// nest in ascending rank order; stale manifest entries are reported.
pub fn shared_state_audit(
    files: &[SourceFile],
    config: &LintConfig,
    analysis: &Analysis,
    diags: &mut Vec<Diagnostic>,
) {
    let spec = &config.concurrency;
    if spec.state_crates.is_empty() {
        return;
    }
    let in_scope = |f: &SourceFile| spec.state_crates.contains(&f.krate());
    let mut matched = vec![false; spec.shared_state.len()];

    // Manifest self-checks: lockable kinds need a rank.
    for e in &spec.shared_state {
        if lockable(e.kind) && e.rank.is_none() {
            diags.push(Diagnostic {
                rule: "shared-state-audit",
                path: e.file.to_owned(),
                line: 0,
                message: format!(
                    "concurrency manifest entry `{}` ({}) has no lock-order rank",
                    e.name, e.kind
                ),
                snippet: String::new(),
                help: "assign a unique rank in crates/lint/src/concurrency.rs; acquisitions \
                       must nest in ascending rank order",
            });
        }
    }

    // Interior-mutability sites from the token streams.
    for file in files.iter().filter(|f| in_scope(f)) {
        for site in state_sites(file) {
            let hit = spec.shared_state.iter().position(|e| {
                e.file == file.rel_path
                    && match &site.name {
                        Some(n) => e.name == n && e.kind == site.kind,
                        None => e.kind == site.kind,
                    }
            });
            match hit {
                Some(i) => matched[i] = true,
                None => {
                    let message = match &site.name {
                        Some(n) => format!(
                            "undeclared shared state: `{n}` ({}) is not in the concurrency \
                             manifest",
                            site.kind
                        ),
                        None => format!(
                            "undeclared shared state: {} site is not in the concurrency \
                             manifest",
                            site.kind
                        ),
                    };
                    diags.push(Diagnostic {
                        rule: "shared-state-audit",
                        path: file.rel_path.clone(),
                        line: site.line,
                        message,
                        snippet: file.raw.get(site.line - 1).cloned().unwrap_or_default(),
                        help: STATE_HELP,
                    });
                }
            }
        }
    }

    // `static` items from the structural pass.
    for st in &analysis.statics {
        let file = &files[st.file];
        if st.is_test || !in_scope(file) {
            continue;
        }
        let hit = spec
            .shared_state
            .iter()
            .position(|e| e.file == file.rel_path && e.name == st.name && e.kind == "static");
        match hit {
            Some(i) => matched[i] = true,
            None => diags.push(Diagnostic {
                rule: "shared-state-audit",
                path: file.rel_path.clone(),
                line: st.line,
                message: format!(
                    "undeclared shared state: `static {}` is not in the concurrency manifest",
                    st.name
                ),
                snippet: file.raw.get(st.line - 1).cloned().unwrap_or_default(),
                help: STATE_HELP,
            }),
        }
    }

    // Stale manifest entries — the declared-intent promise runs both
    // ways: the manifest must not describe state that no longer exists.
    for (i, e) in spec.shared_state.iter().enumerate() {
        if !matched[i] {
            diags.push(Diagnostic {
                rule: "shared-state-audit",
                path: e.file.to_owned(),
                line: 0,
                message: format!(
                    "stale concurrency manifest entry: `{}` ({}) matches no site in {}",
                    e.name, e.kind, e.file
                ),
                snippet: String::new(),
                help: "remove the entry from crates/lint/src/concurrency.rs or fix its \
                       file/name/kind",
            });
        }
    }

    // Lock-order: within each fn body, textually later acquisitions of
    // ranked state must not have a lower rank than an earlier one.
    for f in &analysis.fns {
        if f.is_test {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let file = &files[f.file];
        if !in_scope(file) {
            continue;
        }
        let ranked: Vec<&SharedStateSpec> = spec
            .shared_state
            .iter()
            .filter(|e| e.file == file.rel_path && e.rank.is_some())
            .collect();
        if ranked.is_empty() {
            continue;
        }
        let tokens = &file.tokens;
        let mut held: Vec<(&SharedStateSpec, usize)> = Vec::new();
        for k in b0..b1.min(tokens.len()) {
            let acq = k + 3 < tokens.len()
                && tokens[k].kind == Kind::Ident
                && tokens[k + 1].is_punct('.')
                && tokens[k + 2].kind == Kind::Ident
                && ACQUIRE_METHODS.contains(&tokens[k + 2].text.as_str())
                && tokens[k + 3].is_punct('(');
            if !acq {
                continue;
            }
            let Some(entry) = ranked.iter().find(|e| e.name == tokens[k].text) else {
                continue;
            };
            let line = tokens[k + 2].line;
            for (earlier, _) in &held {
                if entry.rank < earlier.rank {
                    diags.push(Diagnostic {
                        rule: "shared-state-audit",
                        path: file.rel_path.clone(),
                        line,
                        message: format!(
                            "lock-order violation in `{}`: `{}` (rank {}) acquired after `{}` \
                             (rank {})",
                            f.qname(),
                            entry.name,
                            entry.rank.unwrap_or(0),
                            earlier.name,
                            earlier.rank.unwrap_or(0)
                        ),
                        snippet: file.raw.get(line - 1).cloned().unwrap_or_default(),
                        help: "acquire locks in ascending declared rank order (see \
                               crates/lint/src/concurrency.rs)",
                    });
                }
            }
            if !held.iter().any(|(e, _)| e.name == entry.name) {
                held.push((entry, line));
            }
        }
    }
}

/// Purity-violation categories for `hot-path-purity`.
struct PurityPattern {
    display: &'static str,
    category: &'static str,
    toks: Vec<Tok>,
}

fn purity_patterns() -> Vec<PurityPattern> {
    let mk = |display: &'static str, category: &'static str| PurityPattern {
        display,
        category,
        toks: lexer::compile(display),
    };
    vec![
        mk("Box::new(", "allocation"),
        mk("format!(", "allocation"),
        mk(".to_string(", "allocation"),
        mk(".to_owned(", "allocation"),
        mk("String::new(", "allocation"),
        mk("String::from(", "allocation"),
        mk("String::with_capacity(", "allocation"),
        mk("Vec::with_capacity(", "allocation"),
        mk("vec![", "allocation"),
        mk(".collect(", "allocation"),
        mk(".lock(", "lock"),
        mk(".try_lock(", "lock"),
        mk("println!(", "I/O"),
        mk("eprintln!(", "I/O"),
        mk("print!(", "I/O"),
        mk("eprint!(", "I/O"),
        mk("std::fs::", "I/O"),
        mk("std::io::", "I/O"),
        mk("File::open(", "I/O"),
        mk("File::create(", "I/O"),
    ]
}

/// `hot-path-purity`: every function reachable in the call graph from
/// a declared hot-path root (stopping at declared cold boundaries)
/// must not allocate, lock or perform I/O.
pub fn hot_path_purity(
    files: &[SourceFile],
    config: &LintConfig,
    analysis: &Analysis,
    diags: &mut Vec<Diagnostic>,
) {
    let spec = &config.concurrency;
    if spec.hot_path_roots.is_empty() {
        return;
    }
    const HELP: &str = "hot paths must stay allocation-, lock- and I/O-free: move the work \
                        behind a declared cold boundary (crates/lint/src/concurrency.rs) or \
                        add `// iw-lint: allow(hot-path-purity): <why>`";
    let mut roots = Vec::new();
    for r in &spec.hot_path_roots {
        let hit = analysis
            .fns
            .iter()
            .position(|f| !f.is_test && f.qname() == r.func && files[f.file].rel_path == r.file);
        match hit {
            Some(i) => roots.push(i),
            None => diags.push(Diagnostic {
                rule: "hot-path-purity",
                path: r.file.to_owned(),
                line: 0,
                message: format!(
                    "stale hot-path root: `{}` matches no function in {}",
                    r.func, r.file
                ),
                snippet: String::new(),
                help: "update crates/lint/src/concurrency.rs to the fn's current name/file",
            }),
        }
    }
    let is_boundary = |i: usize| {
        let f = &analysis.fns[i];
        spec.cold_boundaries
            .iter()
            .any(|b| b.func == f.qname() || b.func == f.name)
    };
    let parents = analysis.graph.reach(&roots, &is_boundary);
    let patterns = purity_patterns();
    let lock_names: Vec<&str> = spec
        .shared_state
        .iter()
        .filter(|e| e.rank.is_some())
        .map(|e| e.name)
        .collect();
    let borrow_ops = ["borrow", "borrow_mut", "read", "write"];
    let growth_ops = ["push", "extend", "extend_from_slice", "resize", "insert"];
    let vec_new = lexer::compile("Vec::new(");

    for &idx in parents.keys() {
        if is_boundary(idx) && !roots.contains(&idx) {
            continue; // declared cold: reached but not audited
        }
        let f = &analysis.fns[idx];
        let Some((b0, b1)) = f.body else { continue };
        let file = &files[f.file];
        let tokens = &file.tokens;
        let body = &tokens[b0..b1.min(tokens.len())];
        let chain = chain_to(idx, &parents, analysis);
        let place = if roots.contains(&idx) {
            format!("hot-path root `{}`", f.qname())
        } else {
            format!("`{}` (reached via {chain})", f.qname())
        };
        let mut push = |display: &str, category: &str, line: usize| {
            diags.push(Diagnostic {
                rule: "hot-path-purity",
                path: file.rel_path.clone(),
                line,
                message: format!("hot-path {category}: `{display}` in {place}"),
                snippet: file.raw.get(line - 1).cloned().unwrap_or_default(),
                help: HELP,
            });
        };
        for p in &patterns {
            for at in lexer::find_seq(body, &p.toks) {
                push(p.display, p.category, body[at].line);
            }
        }
        // `Vec::new()` is only a violation when the same body grows the
        // vec — a fixed-size scratch Vec that never pushes is fine.
        let grows = body.windows(2).any(|w| {
            w[0].is_punct('.')
                && w[1].kind == Kind::Ident
                && growth_ops.contains(&w[1].text.as_str())
        });
        if grows {
            for at in lexer::find_seq(body, &vec_new) {
                push("Vec::new() + push", "allocation", body[at].line);
            }
        }
        // Borrow/RwLock acquisitions count as locks only on receivers
        // the manifest declares as ranked state — `.read(`/`.write(`
        // on an io stream is I/O, not locking, and is caught above.
        for k in 0..body.len().saturating_sub(3) {
            if body[k].kind == Kind::Ident
                && lock_names.contains(&body[k].text.as_str())
                && body[k + 1].is_punct('.')
                && body[k + 2].kind == Kind::Ident
                && borrow_ops.contains(&body[k + 2].text.as_str())
                && body[k + 3].is_punct('(')
            {
                let display = format!(".{}(", body[k + 2].text);
                push(&display, "lock", body[k + 2].line);
            }
        }
    }
}

/// Render the shortest call path `root -> … -> idx` recorded by the
/// BFS parent map.
fn chain_to(
    idx: usize,
    parents: &std::collections::BTreeMap<usize, usize>,
    analysis: &Analysis,
) -> String {
    let mut names = vec![analysis.fns[idx].qname()];
    let mut cur = idx;
    while let Some(&p) = parents.get(&cur) {
        if p == usize::MAX {
            break;
        }
        names.push(analysis.fns[p].qname());
        cur = p;
    }
    names.reverse();
    names.join(" -> ")
}

/// `channel-discipline`: every send/recv call site in the channel
/// crates names a declared endpoint, from a file the manifest lists on
/// the right side of that endpoint.
pub fn channel_discipline(
    files: &[SourceFile],
    config: &LintConfig,
    _analysis: &Analysis,
    diags: &mut Vec<Diagnostic>,
) {
    let spec = &config.concurrency;
    if spec.channel_crates.is_empty() {
        return;
    }
    const HELP: &str = "declare the endpoint (name, role, tx/rx files) in \
                        crates/lint/src/concurrency.rs so the channel topology stays data \
                        the linter verifies";
    let tx_ops = ["send", "try_send"];
    let rx_ops = ["recv", "try_recv"];
    let mut used = vec![false; spec.channels.len()];
    for file in files {
        if !spec.channel_crates.contains(&file.krate()) {
            continue;
        }
        let tokens = &file.tokens;
        for k in 0..tokens.len().saturating_sub(2) {
            let op_at = k + 1;
            if !(tokens[k].is_punct('.')
                && tokens[op_at].kind == Kind::Ident
                && tokens.get(op_at + 1).is_some_and(|t| t.is_punct('(')))
            {
                continue;
            }
            let op = tokens[op_at].text.as_str();
            let is_tx = tx_ops.contains(&op);
            let is_rx = rx_ops.contains(&op);
            if !is_tx && !is_rx {
                continue;
            }
            let line = tokens[op_at].line;
            if file.is_test(line - 1) {
                continue;
            }
            let receiver = (k > 0)
                .then(|| &tokens[k - 1])
                .filter(|t| t.kind == Kind::Ident);
            let Some(receiver) = receiver else {
                diags.push(Diagnostic {
                    rule: "channel-discipline",
                    path: file.rel_path.clone(),
                    line,
                    message: format!(
                        "channel op `.{op}()` with an unresolvable receiver — bind the \
                         endpoint to a name first"
                    ),
                    snippet: file.raw.get(line - 1).cloned().unwrap_or_default(),
                    help: HELP,
                });
                continue;
            };
            let Some(i) = spec.channels.iter().position(|c| c.name == receiver.text) else {
                diags.push(Diagnostic {
                    rule: "channel-discipline",
                    path: file.rel_path.clone(),
                    line,
                    message: format!(
                        "channel op `{}.{op}()` on undeclared endpoint `{}`",
                        receiver.text, receiver.text
                    ),
                    snippet: file.raw.get(line - 1).cloned().unwrap_or_default(),
                    help: HELP,
                });
                continue;
            };
            used[i] = true;
            let c: &ChannelEndpoint = &spec.channels[i];
            let allowed = if is_tx { c.tx_files } else { c.rx_files };
            if !allowed.contains(&file.rel_path.as_str()) {
                let side = if is_tx { "tx" } else { "rx" };
                diags.push(Diagnostic {
                    rule: "channel-discipline",
                    path: file.rel_path.clone(),
                    line,
                    message: format!(
                        "`{}.{op}()` outside the declared {side} files for endpoint `{}`",
                        c.name, c.name
                    ),
                    snippet: file.raw.get(line - 1).cloned().unwrap_or_default(),
                    help: HELP,
                });
            }
        }
    }
    for (i, c) in spec.channels.iter().enumerate() {
        if !used[i] {
            let at = c
                .tx_files
                .first()
                .or_else(|| c.rx_files.first())
                .copied()
                .unwrap_or("crates/lint/src/concurrency.rs");
            diags.push(Diagnostic {
                rule: "channel-discipline",
                path: at.to_owned(),
                line: 0,
                message: format!(
                    "stale channel endpoint: `{}` is declared but has no send/recv sites",
                    c.name
                ),
                snippet: String::new(),
                help: "remove the endpoint from crates/lint/src/concurrency.rs or fix its name",
            });
        }
    }
}

// ---------------------------------------------------------------------
// metrics-manifest
// ---------------------------------------------------------------------

/// One parsed `pub const NAME: MetricDef = MetricDef::kind("…", Scope::…);`.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Const identifier (`SCAN_TARGETS_SENT`).
    pub ident: String,
    /// Metric name (`scan.targets_sent`).
    pub name: String,
    /// `counter` / `gauge` / `histogram`.
    pub kind: &'static str,
    /// `Scan` / `Shard`.
    pub scope: String,
    /// 1-based declaration line.
    pub line: usize,
}

const KINDS: [&str; 3] = ["counter", "gauge", "histogram"];

fn ident_after(text: &str, marker: &str) -> Option<String> {
    let at = text.find(marker)? + marker.len();
    let rest = &text[at..];
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

fn first_string_literal(text: &str) -> Option<String> {
    let start = text.find('"')? + 1;
    let end = text[start..].find('"')? + start;
    Some(text[start..end].to_owned())
}

/// Does `ident` occur in `text` as a whole token?
fn has_token(text: &str, ident: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = text[from..].find(ident) {
        let at = from + pos;
        let before_ok = at == 0 || !text[..at].ends_with(is_ident);
        let after = &text[at + ident.len()..];
        let after_ok = !after.starts_with(is_ident);
        if before_ok && after_ok {
            return true;
        }
        from = at + ident.len();
    }
    false
}

/// Result of [`parse_manifest`]: scalar entries, aggregation arrays
/// (array ident plus member idents), and declaration diagnostics.
pub type ParsedManifest = (
    Vec<ManifestEntry>,
    Vec<(String, Vec<String>)>,
    Vec<Diagnostic>,
);

/// Parse the manifest: scalar `MetricDef` consts and `[&MetricDef; N]`
/// aggregation arrays (array use marks every member as used).
pub fn parse_manifest(file: &SourceFile) -> ParsedManifest {
    let mut entries = Vec::new();
    let mut arrays: Vec<(String, Vec<String>)> = Vec::new();
    let mut diags = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        if file.is_test(idx) {
            break;
        }
        if !code.contains("pub const ") {
            continue;
        }
        // Join the declaration up to its terminating `;` (rustfmt may
        // wrap it) from the raw lines, so the metric name survives.
        // A `;` inside the type (`[&MetricDef; 4]`) is not the end of
        // the declaration — only a trailing `;` is.
        let mut joined = String::new();
        for raw in file.raw.iter().skip(idx) {
            joined.push_str(raw);
            joined.push(' ');
            if raw.trim_end().ends_with(';') {
                break;
            }
        }
        let Some(ident) = ident_after(code, "pub const ") else {
            continue;
        };
        if code.contains(": MetricDef") && !code.contains("[&MetricDef") {
            let kind = KINDS
                .iter()
                .find(|k| joined.contains(&format!("MetricDef::{k}(")))
                .copied();
            let name = first_string_literal(&joined);
            let scope = ident_after(&joined, "Scope::");
            match (kind, name, scope) {
                (Some(kind), Some(name), Some(scope)) => {
                    if !name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c))
                    {
                        diags.push(manifest_diag(
                            file,
                            idx,
                            format!("metric name {name:?} is not lowercase dotted"),
                        ));
                    }
                    entries.push(ManifestEntry {
                        ident,
                        name,
                        kind,
                        scope,
                        line: idx + 1,
                    });
                }
                _ => diags.push(manifest_diag(
                    file,
                    idx,
                    format!(
                        "could not parse manifest declaration `{ident}` \
                         (expected MetricDef::<kind>(\"name\", Scope::…))"
                    ),
                )),
            }
        } else if code.contains("[&MetricDef") {
            let members: Vec<String> = joined
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .filter(|t| {
                    t.len() > 1
                        && t.chars()
                            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
                        && t.chars().any(|c| c.is_ascii_uppercase())
                        && *t != ident
                })
                .map(str::to_owned)
                .collect();
            arrays.push((ident, members));
        }
    }
    // Duplicate metric names defeat the whole point of a manifest.
    for (i, e) in entries.iter().enumerate() {
        if let Some(first) = entries[..i].iter().find(|p| p.name == e.name) {
            diags.push(manifest_diag(
                file,
                e.line - 1,
                format!(
                    "metric name {:?} already declared as `{}`",
                    e.name, first.ident
                ),
            ));
        }
    }
    (entries, arrays, diags)
}

fn manifest_diag(file: &SourceFile, idx: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: "metrics-manifest",
        path: file.rel_path.clone(),
        line: idx + 1,
        message,
        snippet: file.raw[idx].clone(),
        help: "keep crates/telemetry/src/manifest.rs the single source of truth for metrics",
    }
}

/// `metrics-manifest`: every metric call site in the workspace agrees
/// with the manifest (name exists, kind matches the method, scope
/// matches the declaration), `register_*` constants exist with the
/// right kind, every declared metric is registered somewhere, and
/// every name sits inside a declared family prefix.
pub fn metrics_manifest(files: &[SourceFile], config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let Some(manifest) = files.iter().find(|f| f.rel_path == config.manifest_path) else {
        diags.push(Diagnostic {
            rule: "metrics-manifest",
            path: config.manifest_path.clone(),
            line: 0,
            message: "metrics manifest not found".to_owned(),
            snippet: String::new(),
            help: "declare all metrics in the manifest; see crates/telemetry/src/manifest.rs",
        });
        return;
    };
    let (entries, arrays, parse_diags) = parse_manifest(manifest);
    diags.extend(parse_diags);

    // Every well-formed name must live in a declared family — the
    // dotted prefix is how downstream tooling (inspect, manifest
    // sections) groups metrics. Malformed names already got a
    // diagnostic above; don't report them twice.
    if !config.metric_families.is_empty() {
        for e in &entries {
            let well_formed = e
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c));
            if well_formed
                && !config
                    .metric_families
                    .iter()
                    .any(|f| e.name.starts_with(f.as_str()))
            {
                diags.push(manifest_diag(
                    manifest,
                    e.line - 1,
                    format!(
                        "metric {:?} is outside the declared families ({})",
                        e.name,
                        config.metric_families.join(", ")
                    ),
                ));
            }
        }
    }

    let mut used: Vec<bool> = vec![false; entries.len()];
    let mut array_used: Vec<bool> = vec![false; arrays.len()];

    for file in files {
        if file.rel_path == manifest.rel_path {
            continue;
        }
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test(idx) {
                break;
            }
            let raw = &file.raw[idx];
            // Literal call sites: .counter("…"), .gauge("…"), .histogram("…").
            for kind in KINDS {
                let call = format!(".{kind}(\"");
                let Some(at) = code.find(&call) else { continue };
                let Some(name) = raw
                    .find(&format!(".{kind}("))
                    .and_then(|p| first_string_literal(&raw[p..]))
                else {
                    continue;
                };
                match entries.iter().find(|e| e.name == name) {
                    None => diags.push(site_diag(
                        file,
                        idx,
                        format!("metric {name:?} is not declared in the manifest"),
                    )),
                    Some(entry) => {
                        if entry.kind != kind {
                            diags.push(site_diag(
                                file,
                                idx,
                                format!(
                                    "metric {name:?} is a {} in the manifest, used here as a {kind}",
                                    entry.kind
                                ),
                            ));
                        }
                        // A Scope argument makes this a registration —
                        // it must match the declared scope.
                        if let Some(scope) = ident_after(&code[at..], "Scope::") {
                            if scope != entry.scope {
                                diags.push(site_diag(
                                    file,
                                    idx,
                                    format!(
                                        "metric {name:?} is Scope::{} in the manifest, \
                                         registered here as Scope::{scope}",
                                        entry.scope
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            // register_counter(&manifest::IDENT) and friends.
            for kind in KINDS {
                let call = format!("register_{kind}(");
                let Some(at) = code.find(&call) else { continue };
                let Some(ident) = ident_after(&code[at..], "manifest::") else {
                    continue;
                };
                match entries.iter().find(|e| e.ident == ident) {
                    None => diags.push(site_diag(
                        file,
                        idx,
                        format!("`manifest::{ident}` is not a declared metric"),
                    )),
                    Some(entry) => {
                        if entry.kind != kind {
                            diags.push(site_diag(
                                file,
                                idx,
                                format!(
                                    "`manifest::{ident}` is a {} but is registered with \
                                     register_{kind}",
                                    entry.kind
                                ),
                            ));
                        }
                    }
                }
            }
            // Usage tracking (non-test references outside the manifest).
            for (i, e) in entries.iter().enumerate() {
                if !used[i] && has_token(code, &e.ident) {
                    used[i] = true;
                }
            }
            for (i, (ident, _)) in arrays.iter().enumerate() {
                if !array_used[i] && has_token(code, ident) {
                    array_used[i] = true;
                }
            }
        }
    }

    // A metric referenced only through a used aggregation array counts.
    for (i, (_, members)) in arrays.iter().enumerate() {
        if array_used[i] {
            for m in members {
                if let Some(j) = entries.iter().position(|e| &e.ident == m) {
                    used[j] = true;
                }
            }
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if !used[i] {
            diags.push(Diagnostic {
                rule: "metrics-manifest",
                path: manifest.rel_path.clone(),
                line: e.line,
                message: format!(
                    "metric {:?} (`{}`) is declared but never registered",
                    e.name, e.ident
                ),
                snippet: manifest.raw[e.line - 1].clone(),
                help: "register it (register_counter(&manifest::…)) or delete the declaration",
            });
        }
    }
}

fn site_diag(file: &SourceFile, idx: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: "metrics-manifest",
        path: file.rel_path.clone(),
        line: idx + 1,
        message,
        snippet: file.raw[idx].clone(),
        help: "declare metrics in crates/telemetry/src/manifest.rs and register via \
               register_counter/register_gauge/register_histogram",
    }
}

// ---------------------------------------------------------------------
// state-machine
// ---------------------------------------------------------------------

/// `state-machine`: each configured machine's transition table is
/// internally exhaustive and in sync with its enum.
pub fn state_machine(files: &[SourceFile], config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for spec in &config.machines {
        check_machine(spec, files, diags);
    }
}

fn machine_diag(spec: &MachineSpec, line: usize, snippet: String, message: String) -> Diagnostic {
    Diagnostic {
        rule: "state-machine",
        path: spec.file.to_owned(),
        line,
        message,
        snippet,
        help: "keep crates/lint/src/machines.rs and the enum/transition code in sync",
    }
}

fn check_machine(spec: &MachineSpec, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    let mut fail = |msg: String| diags.push(machine_diag(spec, 0, String::new(), msg));

    // -- internal consistency of the table ---------------------------
    let known = |s: &str| spec.states.contains(&s);
    if !known(spec.initial) {
        fail(format!(
            "machine `{}`: initial state `{}` is not in the state list",
            spec.name, spec.initial
        ));
    }
    for t in spec.terminal {
        if !known(t) {
            fail(format!(
                "machine `{}`: terminal state `{t}` is not in the state list",
                spec.name
            ));
        }
    }
    for tr in spec.transitions {
        for s in [tr.from, tr.to] {
            if !known(s) {
                fail(format!(
                    "machine `{}`: transition {} -> {} references unknown state `{s}`",
                    spec.name, tr.from, tr.to
                ));
            }
        }
        if spec.terminal.contains(&tr.from) {
            fail(format!(
                "machine `{}`: terminal state `{}` has an outgoing transition to `{}`",
                spec.name, tr.from, tr.to
            ));
        }
    }
    // Reachability from the initial state.
    let mut reached = vec![false; spec.states.len()];
    if let Some(i) = spec.states.iter().position(|s| *s == spec.initial) {
        reached[i] = true;
        let mut frontier = vec![spec.initial];
        while let Some(from) = frontier.pop() {
            for tr in spec.transitions.iter().filter(|t| t.from == from) {
                if let Some(j) = spec.states.iter().position(|s| *s == tr.to) {
                    if !reached[j] {
                        reached[j] = true;
                        frontier.push(tr.to);
                    }
                }
            }
        }
    }
    for (i, s) in spec.states.iter().enumerate() {
        if !reached[i] {
            fail(format!(
                "machine `{}`: state `{s}` is unreachable from `{}`",
                spec.name, spec.initial
            ));
        }
    }
    // Every non-terminal state needs a forced conclusion to a terminal
    // state — this is the watchdog/force_conclude coverage guarantee.
    for s in spec.states.iter().filter(|s| !spec.terminal.contains(s)) {
        let covered = spec
            .transitions
            .iter()
            .any(|t| t.force && t.from == *s && spec.terminal.contains(&t.to));
        if !covered {
            fail(format!(
                "machine `{}`: non-terminal state `{s}` has no forced transition \
                 to a terminal state (watchdog/force_conclude would leak it)",
                spec.name
            ));
        }
    }

    // -- sync with the source ----------------------------------------
    let Some(file) = files.iter().find(|f| f.rel_path == spec.file) else {
        fail(format!(
            "machine `{}`: file {} not found in the workspace",
            spec.name, spec.file
        ));
        return;
    };
    let Some(decl_start) = file.code.iter().position(|l| {
        (l.contains(&format!("enum {} ", spec.name))
            || l.contains(&format!("enum {}{{", spec.name)))
            && !l.trim_start().starts_with("//")
    }) else {
        fail(format!(
            "machine `{}`: no `enum {}` declaration in {}",
            spec.name, spec.name, spec.file
        ));
        return;
    };
    // Collect variants until the closing brace.
    let mut variants = Vec::new();
    let mut decl_end = decl_start;
    for (idx, code) in file.code.iter().enumerate().skip(decl_start + 1) {
        let t = code.trim();
        if t.starts_with('}') {
            decl_end = idx;
            break;
        }
        let ident: String = t
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            variants.push(ident);
        }
    }
    for v in &variants {
        if !known(v) {
            diags.push(machine_diag(
                spec,
                decl_start + 1,
                file.raw[decl_start].clone(),
                format!(
                    "machine `{}`: enum variant `{v}` is missing from the transition table",
                    spec.name
                ),
            ));
        }
    }
    for s in spec.states {
        if !variants.iter().any(|v| v == s) {
            diags.push(machine_diag(
                spec,
                decl_start + 1,
                file.raw[decl_start].clone(),
                format!(
                    "machine `{}`: table state `{s}` is not a variant of the enum",
                    spec.name
                ),
            ));
        }
    }
    // Every state must be produced (assigned/constructed) and handled
    // (matched/compared) somewhere outside the declaration.
    for s in spec.states {
        let token = format!("{}::{s}", spec.name);
        let mut produced = false;
        let mut handled = false;
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test(idx) {
                break;
            }
            if idx >= decl_start && idx <= decl_end {
                continue;
            }
            let mut from = 0;
            while let Some(pos) = code[from..].find(&token) {
                let at = from + pos;
                let prefix = code[..at].trim_end();
                let suffix = code[at + token.len()..].trim_start();
                if prefix.ends_with("==")
                    || prefix.ends_with("!=")
                    || prefix.ends_with('|')
                    || suffix.starts_with("=>")
                    || suffix.starts_with('|')
                {
                    handled = true;
                } else if prefix.ends_with("=>")
                    || prefix.ends_with('=')
                    || prefix.ends_with(':')
                    || prefix.ends_with('{')
                    || prefix.ends_with('(')
                    || prefix.ends_with(',')
                    || prefix.is_empty()
                {
                    produced = true;
                }
                from = at + token.len();
            }
        }
        if !produced {
            diags.push(machine_diag(
                spec,
                decl_start + 1,
                file.raw[decl_start].clone(),
                format!(
                    "machine `{}`: state `{s}` is never produced (no `= {token}` / \
                     `: {token}` site)",
                    spec.name
                ),
            ));
        }
        if !handled {
            diags.push(machine_diag(
                spec,
                decl_start + 1,
                file.raw[decl_start].clone(),
                format!(
                    "machine `{}`: state `{s}` is never handled (no `{token} =>` arm or \
                     comparison)",
                    spec.name
                ),
            ));
        }
    }
}
