//! The seven rules. Each takes the prepared sources plus the config
//! and appends [`Diagnostic`]s; suppression filtering happens centrally
//! in [`crate::check_files`].

use crate::machines::MachineSpec;
use crate::{Diagnostic, LintConfig, SourceFile};

// ---------------------------------------------------------------------
// Pattern rules
// ---------------------------------------------------------------------

fn scan_patterns(
    files: &[SourceFile],
    in_scope: &dyn Fn(&SourceFile) -> bool,
    patterns: &[&str],
    rule: &'static str,
    message: &dyn Fn(&str) -> String,
    help: &'static str,
    diags: &mut Vec<Diagnostic>,
) {
    for file in files.iter().filter(|f| in_scope(f)) {
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test(idx) {
                break;
            }
            for pat in patterns {
                if code.contains(pat) {
                    diags.push(Diagnostic {
                        rule,
                        path: file.rel_path.clone(),
                        line: idx + 1,
                        message: message(pat),
                        snippet: file.raw[idx].clone(),
                        help,
                    });
                }
            }
        }
    }
}

/// `no-wall-clock`: deterministic crates read time only from the
/// simulator's virtual clock.
pub fn no_wall_clock(files: &[SourceFile], config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    scan_patterns(
        files,
        &|f| config.wall_clock_crates.iter().any(|c| c == f.krate()),
        &[
            "SystemTime",
            "Instant::now(",
            "std::time::Instant",
            "UNIX_EPOCH",
        ],
        "no-wall-clock",
        &|p| format!("wall-clock time source `{p}` in a deterministic crate"),
        "use the simulator's virtual clock (iw_netsim::Instant) so runs stay reproducible",
        diags,
    );
}

/// `no-unordered-iteration`: result, analysis and telemetry paths must
/// not use hash containers — iteration order would leak into output.
pub fn no_unordered_iteration(
    files: &[SourceFile],
    config: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    scan_patterns(
        files,
        &|f| {
            config
                .unordered_paths
                .iter()
                .any(|p| f.rel_path.starts_with(p.as_str()))
        },
        &["HashMap", "HashSet"],
        "no-unordered-iteration",
        &|p| format!("`{p}` on an output-producing path"),
        "use BTreeMap/BTreeSet (or sort before iterating) so output order is deterministic",
        diags,
    );
}

/// `rng-hygiene`: all randomness flows from the scan/session seed.
pub fn rng_hygiene(files: &[SourceFile], _config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    scan_patterns(
        files,
        &|_| true,
        &[
            "from_entropy",
            "thread_rng",
            "OsRng",
            "rand::random",
            "getrandom",
        ],
        "rng-hygiene",
        &|p| format!("entropy-seeded randomness `{p}`"),
        "seed RNGs from ScanConfig/session seeds (e.g. SmallRng::seed_from_u64) so runs replay",
        diags,
    );
}

/// `panic-budget`: library code must not panic except at sites with a
/// justified suppression.
pub fn panic_budget(files: &[SourceFile], config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    scan_patterns(
        files,
        &|f| !config.panic_exempt_crates.iter().any(|c| c == f.krate()),
        &[
            ".unwrap()",
            ".expect(",
            "panic!(",
            "unreachable!(",
            "todo!(",
            "unimplemented!(",
        ],
        "panic-budget",
        &|p| format!("`{p}` in library code"),
        "return an error or restructure; if the invariant truly holds, add \
         `// iw-lint: allow(panic-budget): <why>`",
        diags,
    );
}

/// `unsafe-forbidden`: every library crate's `lib.rs` carries
/// `#![forbid(unsafe_code)]`.
pub fn unsafe_forbidden(files: &[SourceFile], _config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for file in files {
        if !file.rel_path.ends_with("/src/lib.rs") {
            continue;
        }
        let has = file
            .code
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]"));
        if !has {
            diags.push(Diagnostic {
                rule: "unsafe-forbidden",
                path: file.rel_path.clone(),
                line: 0,
                message: format!("crate `{}` does not forbid unsafe code", file.krate()),
                snippet: String::new(),
                help: "add `#![forbid(unsafe_code)]` to the crate root",
            });
        }
    }
}

// ---------------------------------------------------------------------
// metrics-manifest
// ---------------------------------------------------------------------

/// One parsed `pub const NAME: MetricDef = MetricDef::kind("…", Scope::…);`.
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Const identifier (`SCAN_TARGETS_SENT`).
    pub ident: String,
    /// Metric name (`scan.targets_sent`).
    pub name: String,
    /// `counter` / `gauge` / `histogram`.
    pub kind: &'static str,
    /// `Scan` / `Shard`.
    pub scope: String,
    /// 1-based declaration line.
    pub line: usize,
}

const KINDS: [&str; 3] = ["counter", "gauge", "histogram"];

fn ident_after(text: &str, marker: &str) -> Option<String> {
    let at = text.find(marker)? + marker.len();
    let rest = &text[at..];
    let ident: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if ident.is_empty() {
        None
    } else {
        Some(ident)
    }
}

fn first_string_literal(text: &str) -> Option<String> {
    let start = text.find('"')? + 1;
    let end = text[start..].find('"')? + start;
    Some(text[start..end].to_owned())
}

/// Does `ident` occur in `text` as a whole token?
fn has_token(text: &str, ident: &str) -> bool {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = text[from..].find(ident) {
        let at = from + pos;
        let before_ok = at == 0 || !text[..at].ends_with(is_ident);
        let after = &text[at + ident.len()..];
        let after_ok = !after.starts_with(is_ident);
        if before_ok && after_ok {
            return true;
        }
        from = at + ident.len();
    }
    false
}

/// Result of [`parse_manifest`]: scalar entries, aggregation arrays
/// (array ident plus member idents), and declaration diagnostics.
pub type ParsedManifest = (
    Vec<ManifestEntry>,
    Vec<(String, Vec<String>)>,
    Vec<Diagnostic>,
);

/// Parse the manifest: scalar `MetricDef` consts and `[&MetricDef; N]`
/// aggregation arrays (array use marks every member as used).
pub fn parse_manifest(file: &SourceFile) -> ParsedManifest {
    let mut entries = Vec::new();
    let mut arrays: Vec<(String, Vec<String>)> = Vec::new();
    let mut diags = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        if file.is_test(idx) {
            break;
        }
        if !code.contains("pub const ") {
            continue;
        }
        // Join the declaration up to its terminating `;` (rustfmt may
        // wrap it) from the raw lines, so the metric name survives.
        // A `;` inside the type (`[&MetricDef; 4]`) is not the end of
        // the declaration — only a trailing `;` is.
        let mut joined = String::new();
        for raw in file.raw.iter().skip(idx) {
            joined.push_str(raw);
            joined.push(' ');
            if raw.trim_end().ends_with(';') {
                break;
            }
        }
        let Some(ident) = ident_after(code, "pub const ") else {
            continue;
        };
        if code.contains(": MetricDef") && !code.contains("[&MetricDef") {
            let kind = KINDS
                .iter()
                .find(|k| joined.contains(&format!("MetricDef::{k}(")))
                .copied();
            let name = first_string_literal(&joined);
            let scope = ident_after(&joined, "Scope::");
            match (kind, name, scope) {
                (Some(kind), Some(name), Some(scope)) => {
                    if !name
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c))
                    {
                        diags.push(manifest_diag(
                            file,
                            idx,
                            format!("metric name {name:?} is not lowercase dotted"),
                        ));
                    }
                    entries.push(ManifestEntry {
                        ident,
                        name,
                        kind,
                        scope,
                        line: idx + 1,
                    });
                }
                _ => diags.push(manifest_diag(
                    file,
                    idx,
                    format!(
                        "could not parse manifest declaration `{ident}` \
                         (expected MetricDef::<kind>(\"name\", Scope::…))"
                    ),
                )),
            }
        } else if code.contains("[&MetricDef") {
            let members: Vec<String> = joined
                .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .filter(|t| {
                    t.len() > 1
                        && t.chars()
                            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
                        && t.chars().any(|c| c.is_ascii_uppercase())
                        && *t != ident
                })
                .map(str::to_owned)
                .collect();
            arrays.push((ident, members));
        }
    }
    // Duplicate metric names defeat the whole point of a manifest.
    for (i, e) in entries.iter().enumerate() {
        if let Some(first) = entries[..i].iter().find(|p| p.name == e.name) {
            diags.push(manifest_diag(
                file,
                e.line - 1,
                format!(
                    "metric name {:?} already declared as `{}`",
                    e.name, first.ident
                ),
            ));
        }
    }
    (entries, arrays, diags)
}

fn manifest_diag(file: &SourceFile, idx: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: "metrics-manifest",
        path: file.rel_path.clone(),
        line: idx + 1,
        message,
        snippet: file.raw[idx].clone(),
        help: "keep crates/telemetry/src/manifest.rs the single source of truth for metrics",
    }
}

/// `metrics-manifest`: every metric call site in the workspace agrees
/// with the manifest (name exists, kind matches the method, scope
/// matches the declaration), `register_*` constants exist with the
/// right kind, every declared metric is registered somewhere, and
/// every name sits inside a declared family prefix.
pub fn metrics_manifest(files: &[SourceFile], config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let Some(manifest) = files.iter().find(|f| f.rel_path == config.manifest_path) else {
        diags.push(Diagnostic {
            rule: "metrics-manifest",
            path: config.manifest_path.clone(),
            line: 0,
            message: "metrics manifest not found".to_owned(),
            snippet: String::new(),
            help: "declare all metrics in the manifest; see crates/telemetry/src/manifest.rs",
        });
        return;
    };
    let (entries, arrays, parse_diags) = parse_manifest(manifest);
    diags.extend(parse_diags);

    // Every well-formed name must live in a declared family — the
    // dotted prefix is how downstream tooling (inspect, manifest
    // sections) groups metrics. Malformed names already got a
    // diagnostic above; don't report them twice.
    if !config.metric_families.is_empty() {
        for e in &entries {
            let well_formed = e
                .name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c));
            if well_formed
                && !config
                    .metric_families
                    .iter()
                    .any(|f| e.name.starts_with(f.as_str()))
            {
                diags.push(manifest_diag(
                    manifest,
                    e.line - 1,
                    format!(
                        "metric {:?} is outside the declared families ({})",
                        e.name,
                        config.metric_families.join(", ")
                    ),
                ));
            }
        }
    }

    let mut used: Vec<bool> = vec![false; entries.len()];
    let mut array_used: Vec<bool> = vec![false; arrays.len()];

    for file in files {
        if file.rel_path == manifest.rel_path {
            continue;
        }
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test(idx) {
                break;
            }
            let raw = &file.raw[idx];
            // Literal call sites: .counter("…"), .gauge("…"), .histogram("…").
            for kind in KINDS {
                let call = format!(".{kind}(\"");
                let Some(at) = code.find(&call) else { continue };
                let Some(name) = raw
                    .find(&format!(".{kind}("))
                    .and_then(|p| first_string_literal(&raw[p..]))
                else {
                    continue;
                };
                match entries.iter().find(|e| e.name == name) {
                    None => diags.push(site_diag(
                        file,
                        idx,
                        format!("metric {name:?} is not declared in the manifest"),
                    )),
                    Some(entry) => {
                        if entry.kind != kind {
                            diags.push(site_diag(
                                file,
                                idx,
                                format!(
                                    "metric {name:?} is a {} in the manifest, used here as a {kind}",
                                    entry.kind
                                ),
                            ));
                        }
                        // A Scope argument makes this a registration —
                        // it must match the declared scope.
                        if let Some(scope) = ident_after(&code[at..], "Scope::") {
                            if scope != entry.scope {
                                diags.push(site_diag(
                                    file,
                                    idx,
                                    format!(
                                        "metric {name:?} is Scope::{} in the manifest, \
                                         registered here as Scope::{scope}",
                                        entry.scope
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
            // register_counter(&manifest::IDENT) and friends.
            for kind in KINDS {
                let call = format!("register_{kind}(");
                let Some(at) = code.find(&call) else { continue };
                let Some(ident) = ident_after(&code[at..], "manifest::") else {
                    continue;
                };
                match entries.iter().find(|e| e.ident == ident) {
                    None => diags.push(site_diag(
                        file,
                        idx,
                        format!("`manifest::{ident}` is not a declared metric"),
                    )),
                    Some(entry) => {
                        if entry.kind != kind {
                            diags.push(site_diag(
                                file,
                                idx,
                                format!(
                                    "`manifest::{ident}` is a {} but is registered with \
                                     register_{kind}",
                                    entry.kind
                                ),
                            ));
                        }
                    }
                }
            }
            // Usage tracking (non-test references outside the manifest).
            for (i, e) in entries.iter().enumerate() {
                if !used[i] && has_token(code, &e.ident) {
                    used[i] = true;
                }
            }
            for (i, (ident, _)) in arrays.iter().enumerate() {
                if !array_used[i] && has_token(code, ident) {
                    array_used[i] = true;
                }
            }
        }
    }

    // A metric referenced only through a used aggregation array counts.
    for (i, (_, members)) in arrays.iter().enumerate() {
        if array_used[i] {
            for m in members {
                if let Some(j) = entries.iter().position(|e| &e.ident == m) {
                    used[j] = true;
                }
            }
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if !used[i] {
            diags.push(Diagnostic {
                rule: "metrics-manifest",
                path: manifest.rel_path.clone(),
                line: e.line,
                message: format!(
                    "metric {:?} (`{}`) is declared but never registered",
                    e.name, e.ident
                ),
                snippet: manifest.raw[e.line - 1].clone(),
                help: "register it (register_counter(&manifest::…)) or delete the declaration",
            });
        }
    }
}

fn site_diag(file: &SourceFile, idx: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: "metrics-manifest",
        path: file.rel_path.clone(),
        line: idx + 1,
        message,
        snippet: file.raw[idx].clone(),
        help: "declare metrics in crates/telemetry/src/manifest.rs and register via \
               register_counter/register_gauge/register_histogram",
    }
}

// ---------------------------------------------------------------------
// state-machine
// ---------------------------------------------------------------------

/// `state-machine`: each configured machine's transition table is
/// internally exhaustive and in sync with its enum.
pub fn state_machine(files: &[SourceFile], config: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for spec in &config.machines {
        check_machine(spec, files, diags);
    }
}

fn machine_diag(spec: &MachineSpec, line: usize, snippet: String, message: String) -> Diagnostic {
    Diagnostic {
        rule: "state-machine",
        path: spec.file.to_owned(),
        line,
        message,
        snippet,
        help: "keep crates/lint/src/machines.rs and the enum/transition code in sync",
    }
}

fn check_machine(spec: &MachineSpec, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    let mut fail = |msg: String| diags.push(machine_diag(spec, 0, String::new(), msg));

    // -- internal consistency of the table ---------------------------
    let known = |s: &str| spec.states.contains(&s);
    if !known(spec.initial) {
        fail(format!(
            "machine `{}`: initial state `{}` is not in the state list",
            spec.name, spec.initial
        ));
    }
    for t in spec.terminal {
        if !known(t) {
            fail(format!(
                "machine `{}`: terminal state `{t}` is not in the state list",
                spec.name
            ));
        }
    }
    for tr in spec.transitions {
        for s in [tr.from, tr.to] {
            if !known(s) {
                fail(format!(
                    "machine `{}`: transition {} -> {} references unknown state `{s}`",
                    spec.name, tr.from, tr.to
                ));
            }
        }
        if spec.terminal.contains(&tr.from) {
            fail(format!(
                "machine `{}`: terminal state `{}` has an outgoing transition to `{}`",
                spec.name, tr.from, tr.to
            ));
        }
    }
    // Reachability from the initial state.
    let mut reached = vec![false; spec.states.len()];
    if let Some(i) = spec.states.iter().position(|s| *s == spec.initial) {
        reached[i] = true;
        let mut frontier = vec![spec.initial];
        while let Some(from) = frontier.pop() {
            for tr in spec.transitions.iter().filter(|t| t.from == from) {
                if let Some(j) = spec.states.iter().position(|s| *s == tr.to) {
                    if !reached[j] {
                        reached[j] = true;
                        frontier.push(tr.to);
                    }
                }
            }
        }
    }
    for (i, s) in spec.states.iter().enumerate() {
        if !reached[i] {
            fail(format!(
                "machine `{}`: state `{s}` is unreachable from `{}`",
                spec.name, spec.initial
            ));
        }
    }
    // Every non-terminal state needs a forced conclusion to a terminal
    // state — this is the watchdog/force_conclude coverage guarantee.
    for s in spec.states.iter().filter(|s| !spec.terminal.contains(s)) {
        let covered = spec
            .transitions
            .iter()
            .any(|t| t.force && t.from == *s && spec.terminal.contains(&t.to));
        if !covered {
            fail(format!(
                "machine `{}`: non-terminal state `{s}` has no forced transition \
                 to a terminal state (watchdog/force_conclude would leak it)",
                spec.name
            ));
        }
    }

    // -- sync with the source ----------------------------------------
    let Some(file) = files.iter().find(|f| f.rel_path == spec.file) else {
        fail(format!(
            "machine `{}`: file {} not found in the workspace",
            spec.name, spec.file
        ));
        return;
    };
    let Some(decl_start) = file.code.iter().position(|l| {
        (l.contains(&format!("enum {} ", spec.name))
            || l.contains(&format!("enum {}{{", spec.name)))
            && !l.trim_start().starts_with("//")
    }) else {
        fail(format!(
            "machine `{}`: no `enum {}` declaration in {}",
            spec.name, spec.name, spec.file
        ));
        return;
    };
    // Collect variants until the closing brace.
    let mut variants = Vec::new();
    let mut decl_end = decl_start;
    for (idx, code) in file.code.iter().enumerate().skip(decl_start + 1) {
        let t = code.trim();
        if t.starts_with('}') {
            decl_end = idx;
            break;
        }
        let ident: String = t
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if ident.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            variants.push(ident);
        }
    }
    for v in &variants {
        if !known(v) {
            diags.push(machine_diag(
                spec,
                decl_start + 1,
                file.raw[decl_start].clone(),
                format!(
                    "machine `{}`: enum variant `{v}` is missing from the transition table",
                    spec.name
                ),
            ));
        }
    }
    for s in spec.states {
        if !variants.iter().any(|v| v == s) {
            diags.push(machine_diag(
                spec,
                decl_start + 1,
                file.raw[decl_start].clone(),
                format!(
                    "machine `{}`: table state `{s}` is not a variant of the enum",
                    spec.name
                ),
            ));
        }
    }
    // Every state must be produced (assigned/constructed) and handled
    // (matched/compared) somewhere outside the declaration.
    for s in spec.states {
        let token = format!("{}::{s}", spec.name);
        let mut produced = false;
        let mut handled = false;
        for (idx, code) in file.code.iter().enumerate() {
            if file.is_test(idx) {
                break;
            }
            if idx >= decl_start && idx <= decl_end {
                continue;
            }
            let mut from = 0;
            while let Some(pos) = code[from..].find(&token) {
                let at = from + pos;
                let prefix = code[..at].trim_end();
                let suffix = code[at + token.len()..].trim_start();
                if prefix.ends_with("==")
                    || prefix.ends_with("!=")
                    || prefix.ends_with('|')
                    || suffix.starts_with("=>")
                    || suffix.starts_with('|')
                {
                    handled = true;
                } else if prefix.ends_with("=>")
                    || prefix.ends_with('=')
                    || prefix.ends_with(':')
                    || prefix.ends_with('{')
                    || prefix.ends_with('(')
                    || prefix.ends_with(',')
                    || prefix.is_empty()
                {
                    produced = true;
                }
                from = at + token.len();
            }
        }
        if !produced {
            diags.push(machine_diag(
                spec,
                decl_start + 1,
                file.raw[decl_start].clone(),
                format!(
                    "machine `{}`: state `{s}` is never produced (no `= {token}` / \
                     `: {token}` site)",
                    spec.name
                ),
            ));
        }
        if !handled {
            diags.push(machine_diag(
                spec,
                decl_start + 1,
                file.raw[decl_start].clone(),
                format!(
                    "machine `{}`: state `{s}` is never handled (no `{token} =>` arm or \
                     comparison)",
                    spec.name
                ),
            ));
        }
    }
}
