//! Session state machines as data.
//!
//! The `state-machine` rule checks these transition tables two ways:
//! internally (every state reachable from the initial state, every
//! non-terminal state has a forced path to a terminal state, terminal
//! states are sinks) and against the source (the `enum` declaration
//! matches `states`, and every state is both produced and handled in
//! the file that owns the machine).
//!
//! When a machine gains a state or a transition, update the table here
//! in the same change — the lint fails loudly otherwise, which is the
//! point: the force/watchdog paths (`force_conclude`, `Tcb::abort`)
//! must keep covering every non-terminal state.

/// One edge of a machine's transition relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: &'static str,
    /// Destination state.
    pub to: &'static str,
    /// True if this edge is a forced conclusion (watchdog / eviction /
    /// `force_conclude`) rather than a normal protocol step.
    pub force: bool,
}

/// A session state machine: the enum in the source plus its intended
/// transition relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineSpec {
    /// Enum name as written in the source (`Phase`, `State`).
    pub name: &'static str,
    /// Workspace-relative path of the file declaring and driving the
    /// machine.
    pub file: &'static str,
    /// Every variant of the enum, in declaration order.
    pub states: &'static [&'static str],
    /// The state a fresh machine starts in.
    pub initial: &'static str,
    /// States the machine may end in (sinks).
    pub terminal: &'static [&'static str],
    /// The intended transition relation.
    pub transitions: &'static [Transition],
}

const fn step(from: &'static str, to: &'static str) -> Transition {
    Transition {
        from,
        to,
        force: false,
    }
}

const fn force(from: &'static str, to: &'static str) -> Transition {
    Transition {
        from,
        to,
        force: true,
    }
}

/// The probe-session machine (`HostSession`'s per-connection `Phase` in
/// `iw-core`): SYN sent → collecting the response burst → verifying via
/// the delayed ACK → done. `force_conclude` (timeouts, watchdog
/// eviction, mid-connection errors) must conclude every live phase.
pub fn phase_machine() -> MachineSpec {
    const TRANSITIONS: [Transition; 5] = [
        step("SynSent", "Collecting"),
        step("Collecting", "Verifying"),
        force("SynSent", "Done"),
        force("Collecting", "Done"),
        force("Verifying", "Done"),
    ];
    MachineSpec {
        name: "Phase",
        file: "crates/core/src/inference.rs",
        states: &["SynSent", "Collecting", "Verifying", "Done"],
        initial: "SynSent",
        terminal: &["Done"],
        transitions: &TRANSITIONS,
    }
}

/// The responder-side TCB machine in `iw-hoststack`: handshake →
/// established → FIN-wait → closed, with `abort`/RST as the forced path
/// out of every live state.
pub fn tcb_machine() -> MachineSpec {
    const TRANSITIONS: [Transition; 6] = [
        step("SynRcvd", "Established"),
        step("Established", "FinWait"),
        step("FinWait", "Closed"),
        force("SynRcvd", "Closed"),
        force("Established", "Closed"),
        force("FinWait", "Closed"),
    ];
    MachineSpec {
        name: "State",
        file: "crates/hoststack/src/tcb.rs",
        states: &["SynRcvd", "Established", "FinWait", "Closed"],
        initial: "SynRcvd",
        terminal: &["Closed"],
        transitions: &TRANSITIONS,
    }
}

/// The machines the project config checks.
pub fn project_machines() -> Vec<MachineSpec> {
    vec![phase_machine(), tcb_machine()]
}
